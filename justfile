# Developer entry points. Install just (https://github.com/casey/just)
# or read the recipes as plain command documentation.

# list available recipes
default:
    @just --list

# full static pass: type-check everything, lints as errors, formatting
check:
    cargo check --workspace --all-targets
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --all -- --check

# the tier-1 gate: release build + full test suite
test:
    cargo build --release --workspace
    cargo test -q --workspace

# quick end-to-end smoke: build, run the fast tests, one example, one table
smoke:
    cargo build --workspace
    cargo test -q -p wse-sim
    cargo test -q -p wse-sim --release --test parallel_equivalence
    cargo run --release --example quickstart
    cargo run -p bench --release --bin table4_instructions

# the differential determinism harness (sequential vs sharded engine)
equivalence:
    cargo test -q -p wse-sim --release --test parallel_equivalence --test dsd_properties

# the stencil-compiler gate: compiled TPFA ≡ hand-derived routes
# bit-for-bit (residuals, stats, traces, checkpoints), spec-compiler
# property tests, and the two non-TPFA workloads end-to-end
stencil:
    cargo test -q -p wse-stencil --release
    cargo test -q -p tpfa-dataflow --release -- laplace wave
    cargo run --release --example seismic_wave

# engine wall-clock comparison (criterion; honest numbers depend on cores)
bench-engines:
    cargo bench -p bench --bench weak_scaling -- 'engine/64x64'

# event-queue microbench (BinaryHeap vs calendar queue at 1k/100k/1M) and
# the fast-forwarding on/off toggle on the real 64x64 TPFA apply
bench-queue:
    cargo bench -p bench --bench event_queue

# traced quickstart run: asserts trace determinism across engines, writes
# trace.json (open in https://ui.perfetto.dev or chrome://tracing) and
# prints the per-shard load summary
trace:
    cargo run --release --example quickstart -- --trace trace.json

# tracing overhead guard: `trace_overhead/off` must match
# `engine/64x64/sequential`; the ring variants price enabling tracing
bench-trace-overhead:
    cargo bench -p bench --bench weak_scaling -- 'engine/64x64/sequential'
    cargo bench -p bench --bench trace_overhead

# profiled quickstart run: per-region cycle attribution + recovered
# critical path, asserted bit-identical across engines, exported as JSON
profile:
    cargo run --release --example quickstart -- --profile prof.json

# profiler overhead guard: `profile_overhead/regions-off` must match
# `engine/64x64/sequential`; `analyze` prices the host-side analysis
bench-profile-overhead:
    cargo bench -p bench --bench weak_scaling -- 'engine/64x64/sequential'
    cargo bench -p bench --bench profile_overhead

# chaos harness: seeded random fault schedules x all recovery policies x
# both engines; every run must recover bit-identically or fail typed
chaos schedules="15":
    cargo run -p bench --release --bin chaos -- --schedules {{schedules}} --report chaos-report.json

# the job-server harness: submit -> preempt -> resume -> verify
# bit-identity, compiled-layout cache hit, bounded-queue rejection
serve:
    cargo run -p bench --release --bin serve

# checkpoint/restore differential: binary-codec roundtrips at every event
# boundary across engine hops, plus corruption rejection; then a CLI
# kill/restore cycle through the quickstart flags
checkpoint:
    cargo test -q -p wse-sim --release --test checkpoint_equivalence
    cargo run --release --example quickstart -- --checkpoint ckpt.bin --resume ckpt.bin

# the fault-injection test suites (fabric-level fixtures + host recovery)
faults:
    cargo test -q -p wse-sim --release --test fault_equivalence
    cargo test -q -p tpfa-dataflow --release --test fault_recovery

# the paper-scale smoke: one measured TPFA apply on the paper's 746x989
# PE footprint (737,794 PEs) with a blocking wall budget and peak-RSS
# ceiling — the bin reads VmHWM from /proc/self/status, the same figure
# `/usr/bin/time -v` reports as maximum resident set size
paper-mesh budget_s="300" max_rss_mb="6144":
    cargo run -p bench --release --bin paper_mesh -- --budget-s {{budget_s}} --max-rss-mb {{max_rss_mb}}

# write a schema-versioned BENCH_<rev>.json perf report for this checkout
perf-report rev="local":
    cargo run -p bench --release --bin perf_harness -- {{rev}}

# re-measure this checkout and rewrite the committed BENCH_baseline.json
bench-baseline:
    cargo run -p bench --release --bin perf_harness -- baseline --update-baseline

# compare two perf reports (report-only; add --strict to fail on regression)
perf-diff a b *flags="":
    cargo run -p bench --release --bin perf_diff -- {{a}} {{b}} {{flags}}

# regenerate every table/figure of the paper's evaluation
tables:
    cargo run -p bench --release --bin table1
    cargo run -p bench --release --bin table2_scaling
    cargo run -p bench --release --bin table3_breakdown
    cargo run -p bench --release --bin table4_instructions
    cargo run -p bench --release --bin figure8_roofline
    cargo run -p bench --release --bin energy

# live ASCII dashboard over the job server's progress streams: one bar
# per job at chunk granularity plus a serve_* telemetry footer
top:
    cargo run -p bench --release --bin top

# instrumented serve-harness run: serve_*/fabric_*/driver_* series
# written as Prometheus text (also see `--metrics` on every table binary)
metrics:
    cargo run -p bench --release --bin serve -- --metrics metrics.prom
    @head -n 24 metrics.prom

# telemetry overhead guard: `metrics_overhead/off` (MetricsHub::Null) must
# match `engine/64x64/sequential`; `live` prices a live hub
bench-metrics-overhead:
    cargo bench -p bench --bench weak_scaling -- 'engine/64x64/sequential'
    cargo bench -p bench --bench metrics_overhead
