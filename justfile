# Developer entry points. Install just (https://github.com/casey/just)
# or read the recipes as plain command documentation.

# list available recipes
default:
    @just --list

# full static pass: type-check everything, lints as errors, formatting
check:
    cargo check --workspace --all-targets
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --all -- --check

# the tier-1 gate: release build + full test suite
test:
    cargo build --release --workspace
    cargo test -q --workspace

# quick end-to-end smoke: build, run the fast tests, one example, one table
smoke:
    cargo build --workspace
    cargo test -q -p wse-sim
    cargo test -q -p wse-sim --release --test parallel_equivalence
    cargo run --release --example quickstart
    cargo run -p bench --release --bin table4_instructions

# the differential determinism harness (sequential vs sharded engine)
equivalence:
    cargo test -q -p wse-sim --release --test parallel_equivalence --test dsd_properties

# engine wall-clock comparison (criterion; honest numbers depend on cores)
bench-engines:
    cargo bench -p bench --bench weak_scaling -- 'engine/64x64'

# regenerate every table/figure of the paper's evaluation
tables:
    cargo run -p bench --release --bin table1
    cargo run -p bench --release --bin table2_scaling
    cargo run -p bench --release --bin table3_breakdown
    cargo run -p bench --release --bin table4_instructions
    cargo run -p bench --release --bin figure8_roofline
    cargo run -p bench --release --bin energy
