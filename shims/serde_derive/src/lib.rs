//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata —
//! no code path serializes at runtime — so empty expansions keep every
//! annotated type compiling without the real (network-fetched) serde stack.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
