//! Offline shim for `proptest`: the subset of the API this workspace's
//! property tests use, built on the deterministic `rand` shim.
//!
//! Differences from the real proptest: cases are generated from a fixed
//! per-test seed (derived from the test name), there is **no shrinking**,
//! and strategies are plain samplers. Failures print the offending case via
//! the standard assert message, which is reproducible because the stream is
//! deterministic.

pub use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy combinators and implementations.
pub mod strategy {
    use super::StdRng;
    use rand::Rng;

    /// A value generator (the real proptest's `Strategy`, minus shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and samples
        /// the result (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// A size specification: an exact length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A `Vec` of values drawn from `element`, with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`] (the real `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (`ProptestConfig` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic per-test RNG, seeded from the test's name.
pub fn test_rng(name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs and platforms
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// The `proptest!` block macro: each contained `fn name(pat in strategy, ..)`
/// becomes a `#[test]` that runs the body over `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($items)* }
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn flat_map_builds_matched_pairs((a, b) in (1usize..16).prop_flat_map(|n| (
            collection::vec(0.0f32..1.0, n),
            collection::vec(0.0f32..1.0, n),
        ))) {
            prop_assert_eq!(a.len(), b.len());
            prop_assert!(!a.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn config_is_honored(_x in 0u32..10) {
            // runs 4 times; nothing to assert beyond not crashing
        }
    }

    #[test]
    fn test_rng_is_stable() {
        use crate::strategy::Strategy;
        let mut a = crate::test_rng("name");
        let mut b = crate::test_rng("name");
        assert_eq!((0usize..100).sample(&mut a), (0usize..100).sample(&mut b));
    }
}
