//! Offline shim for `serde`: marker traits plus no-op derive macros.
//!
//! The container building this workspace has no crates.io access, and the
//! workspace never serializes at runtime — the `#[derive(Serialize,
//! Deserialize)]` annotations are forward-looking metadata. This shim keeps
//! the same import surface (`use serde::{Deserialize, Serialize}`) with
//! empty derive expansions.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no derive ever implements it).
pub trait SerializeTrait {}

/// Marker stand-in for `serde::Deserialize` (no derive ever implements it).
pub trait DeserializeTrait {}
