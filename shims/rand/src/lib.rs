//! Offline shim for `rand` 0.8: the subset of the API this workspace uses,
//! backed by a deterministic SplitMix64 generator.
//!
//! The container building this workspace has no crates.io access, so the
//! real `rand` cannot be fetched. Everything here is seeded and
//! reproducible — which is exactly what the workspace wants anyway (all
//! call sites use `StdRng::seed_from_u64`). The streams differ from the
//! real `rand`'s ChaCha-based `StdRng`, but no test depends on specific
//! draws, only on reproducibility.

/// Core generator interface: a source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open for `a..b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
    {
        let r = range.into();
        T::sample_uniform(self, &r)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators (`rand::rngs` subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // avoid the all-zero fixed point and decorrelate small seeds
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014)
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// A half-open uniform range `[lo, hi)` in sampled-type space.
#[derive(Debug, Clone, Copy)]
pub struct UniformRange<T> {
    /// Inclusive lower bound.
    pub lo: T,
    /// Exclusive upper bound.
    pub hi: T,
}

impl<T> From<std::ops::Range<T>> for UniformRange<T> {
    fn from(r: std::ops::Range<T>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Types uniformly sampleable from a [`UniformRange`].
pub trait SampleUniform: Sized + Copy {
    /// Draws one sample from `range` using `rng`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, range: &UniformRange<Self>) -> Self;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1)
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, range: &UniformRange<Self>) -> Self {
        range.lo + unit_f64(rng) * (range.hi - range.lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, range: &UniformRange<Self>) -> Self {
        range.lo + (unit_f64(rng) as f32) * (range.hi - range.lo)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                range: &UniformRange<Self>,
            ) -> Self {
                let span = (range.hi as i128 - range.lo as i128) as u128;
                assert!(span > 0, "gen_range: empty range");
                // multiply-shift bounded sampling (bias < 2^-64, fine here)
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (range.lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Distribution types (`rand::distributions` subset).
pub mod distributions {
    use super::{RngCore, SampleUniform, UniformRange};

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        range: UniformRange<T>,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Builds the uniform distribution over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Self {
                range: UniformRange { lo, hi },
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_uniform(rng, &self.range)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let u = Uniform::new(-1.0_f64, 1.0);
        for _ in 0..1000 {
            let v = u.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-5.0_f32..5.0);
            assert!((-5.0..5.0).contains(&f));
        }
    }

    #[test]
    fn integer_sampling_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
