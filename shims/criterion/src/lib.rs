//! Offline shim for `criterion`: a minimal wall-clock benchmark harness
//! with the API surface this workspace's benches use.
//!
//! No statistics, no HTML reports — each benchmark runs a short warm-up,
//! then a bounded measurement loop, and prints `group/id: <mean> ns/iter`
//! (plus throughput when declared). Good enough to compare engine variants
//! on one machine, which is all the benches here do.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// Declared throughput of a benchmark, printed alongside the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the mean over a bounded number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up
        black_box(f());
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.iters || start.elapsed() < Duration::from_millis(10) {
            black_box(f());
            iters += 1;
            if start.elapsed() > budget {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration target.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Declares the group's throughput (printed with each result).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: self.sample_size,
        };
        f(&mut b);
        let mut line = format!("{}/{}: {:.0} ns/iter", self.name, label, b.mean_ns);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_s = n as f64 / (b.mean_ns * 1e-9);
                line.push_str(&format!("  ({per_s:.3e} elem/s)"));
            }
            Some(Throughput::Bytes(n)) => {
                let per_s = n as f64 / (b.mean_ns * 1e-9);
                line.push_str(&format!("  ({per_s:.3e} B/s)"));
            }
            None => {}
        }
        println!("{line}");
    }

    /// Benchmarks `f` under `id` with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = id.label.clone();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain string id.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Ends the group (printing already happened per-bench).
    pub fn finish(self) {}
}

/// The harness entry point (a much-reduced `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function from bench target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
