//! Offline shim for `rayon`: real (scoped-thread) parallelism for the
//! small API surface this workspace uses — `(a..b).into_par_iter()
//! .for_each(..)` over index ranges, plus slice `par_iter`/`par_chunks`.
//!
//! Instead of a work-stealing pool, the index space is split into
//! contiguous chunks, one per available core, each run on a scoped std
//! thread. For the embarrassingly-parallel cell loops in `gpu-ref` this is
//! within noise of real rayon.

use std::ops::Range;

fn worker_count(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Parallel iterator over `usize` indices (contiguous-chunk scheduling).
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Applies `f` to every index, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let len = self.range.len();
        if len == 0 {
            return;
        }
        let workers = worker_count(len);
        if workers == 1 {
            for i in self.range {
                f(i);
            }
            return;
        }
        let chunk = len.div_ceil(workers);
        let start = self.range.start;
        let f = &f;
        std::thread::scope(|s| {
            for w in 0..workers {
                let lo = start + w * chunk;
                let hi = (lo + chunk).min(self.range.end);
                s.spawn(move || {
                    for i in lo..hi {
                        f(i);
                    }
                });
            }
        });
    }

    /// Maps each index and collects results in index order.
    pub fn map_collect<T, F>(self, f: F) -> Vec<T>
    where
        T: Send + Default + Clone,
        F: Fn(usize) -> T + Sync,
    {
        let len = self.range.len();
        let start = self.range.start;
        let mut out = vec![T::default(); len];
        let slots = SyncSlice::new(&mut out);
        self.for_each(|i| {
            // SAFETY: each index is written exactly once.
            unsafe { slots.write(i - start, f(i)) };
        });
        out
    }
}

struct SyncSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SyncSlice<'_, T> {}
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// # Safety
    /// Each index must be written by at most one thread.
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) = value };
    }
}

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// One-stop imports, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn for_each_covers_every_index_once() {
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        (0..1000usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_fine() {
        (5..5usize).into_par_iter().for_each(|_| panic!("no items"));
    }

    #[test]
    fn map_collect_preserves_order() {
        let v = (10..20usize).into_par_iter().map_collect(|i| i * 3);
        assert_eq!(v, (10..20).map(|i| i * 3).collect::<Vec<_>>());
    }
}
