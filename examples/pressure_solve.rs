//! Matrix-free pressure solve — the paper's §8 outlook realized: "The FV
//! flux computation is naturally extendable to a matrix-free operator ...
//! for use in an iterative Krylov method which would solve equation (2)."
//!
//! Solves a steady pressure equation with fixed injector/producer source
//! terms using conjugate gradients on the frozen-mobility (Picard) operator
//! — no matrix is ever assembled; every CG iteration is one flux-stencil
//! sweep.
//!
//! ```text
//! cargo run --release --example pressure_solve
//! ```

use mdfv::fv::linalg::norm2;
use mdfv::fv::operator::{FrozenMobilityOperator, LinearOperator};
use mdfv::fv::prelude::*;
use mdfv::fv::solver::cg::ConjugateGradient;

fn main() {
    // Quarter-five-spot: injector in one corner, producer in the other.
    let mesh = CartesianMesh3::new(Extents::new(32, 32, 4), Spacing::new(10.0, 10.0, 5.0));
    let fluid = Fluid::water_like().without_gravity();
    let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.5, 1234);
    let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
    let n = mesh.num_cells();

    // Picard operator frozen at the initial pressure, with a tiny
    // compressibility shift to pin the constant null-space mode.
    let p0 = FlowState::<f64>::uniform(&mesh, 15.0e6);
    let op = FrozenMobilityOperator::new(&mesh, &fluid, &trans, p0.pressure())
        .with_diagonal(vec![1e-10; n]);

    // RHS: +q in the injector column, −q in the producer column.
    let mut rhs = vec![0.0_f64; n];
    for z in 0..mesh.nz() {
        rhs[mesh.linear(2, 2, z)] = 1.0;
        rhs[mesh.linear(29, 29, z)] = -1.0;
    }

    println!("matrix-free pressure solve: {n} unknowns, quarter-five-spot RHS");
    println!("operator = frozen-mobility TPFA stencil (one sweep per CG iteration)\n");

    // Plain CG vs Jacobi-preconditioned CG.
    for (label, jacobi) in [("CG", false), ("CG + Jacobi", true)] {
        let mut solver = ConjugateGradient::new(n, 2000, 1e-10);
        if jacobi {
            let diag = op.diagonal();
            solver = solver.with_jacobi(&diag);
        }
        let mut dp = vec![0.0_f64; n];
        let report = solver.solve(&op, &rhs, &mut dp);
        assert!(report.converged(), "{label} failed: {report:?}");

        // verify the solution satisfies the system
        let mut check = vec![0.0_f64; n];
        op.apply(&dp, &mut check);
        for i in 0..n {
            check[i] -= rhs[i];
        }
        println!(
            "{label:12}: {:4} iterations, residual {:.2e}, ‖A·dp − rhs‖ = {:.2e}",
            report.iterations,
            report.residual_norm,
            norm2(&check)
        );

        // physics sanity: pressure rises at the injector, falls at the
        // producer, and the gradient drives flow between them
        let inj = dp[mesh.linear(2, 2, 0)];
        let prod = dp[mesh.linear(29, 29, 0)];
        assert!(inj > 0.0 && prod < 0.0);
        println!(
            "              injector dP {:+.3e} Pa, producer dP {:+.3e} Pa",
            inj, prod
        );
    }
    println!("\nno matrix was assembled at any point — flux sweeps only (paper §8)");
}
