//! CO₂ injection into a layered saline aquifer — the paper's motivating
//! application (geologic carbon storage), run with the §8 extension: the
//! implicit backward-Euler residual of Eq. (2) solved by Newton–Krylov with
//! the matrix-free flux operator.
//!
//! A vertical injector in the center of a layered formation injects
//! supercritical CO₂-like fluid for 30 days; the example reports the
//! pressure build-up, the overpressure footprint, and mass-balance error
//! per step.
//!
//! ```text
//! cargo run --release --example co2_injection
//! ```

use mdfv::fv::prelude::*;
use mdfv::fv::residual::AccumulationParams;
use mdfv::fv::solver::newton::{NewtonConfig, NewtonSolver};
use mdfv::fv::source::SourceTerm;

fn main() {
    // Layered formation: permeable sands between tight shale streaks.
    let mesh = CartesianMesh3::new(Extents::new(20, 20, 10), Spacing::new(25.0, 25.0, 5.0));
    let fluid = Fluid::co2_like();
    let layers = [5e-13, 1e-14, 3e-13, 5e-15, 2e-13];
    let perm = PermeabilityField::layered(&mesh, &layers);
    let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);

    // Initial condition: hydrostatic equilibrium, 15 MPa at the bottom.
    let initial = FlowState::<f64>::hydrostatic(&mesh, &fluid, 15.0e6);

    // A vertical injector in the middle of the domain, 2 kg/s total.
    let rate = 2.0;
    let well = SourceTerm::vertical_well(&mesh, 10, 10, rate);
    println!(
        "injector at column (10, 10), {} perforations, {rate} kg/s total",
        well.len()
    );

    let acc = AccumulationParams {
        phi_ref: 0.2,
        rock_compressibility: 1.0e-9,
        dt: 86_400.0, // 1 day
    };
    let mut newton = NewtonSolver::new(
        mesh.num_cells(),
        NewtonConfig {
            abs_tolerance: 1e-8,
            ..NewtonConfig::default()
        },
    );

    let vol = mesh.cell_volume();
    let mass = |p: &[f64]| -> f64 {
        p.iter()
            .map(|&pi| {
                vol * fluid.porosity(acc.phi_ref, acc.rock_compressibility, pi) * fluid.density(pi)
            })
            .sum()
    };

    let mut p = initial.pressure().to_vec();
    let mut p_old = p.clone();
    let well_cell = mesh.linear(10, 10, 5);
    let p0_well = p[well_cell];

    println!("\n day   newton  linear-its   well dP [kPa]   footprint   mass err");
    println!("------------------------------------------------------------------");
    let mut mass_prev = mass(&p);
    for day in 1..=30 {
        let report = newton.step(&mesh, &fluid, &trans, acc, &p_old, &well, &mut p);
        assert!(report.converged, "Newton failed on day {day}: {report:?}");
        let mass_now = mass(&p);
        let injected = rate * acc.dt;
        let mass_err = ((mass_now - mass_prev) - injected).abs() / injected;
        // overpressure footprint: cells more than 10 kPa above initial
        let footprint = p
            .iter()
            .zip(initial.pressure())
            .filter(|(a, b)| *a - *b > 1.0e4)
            .count();
        if day <= 5 || day % 5 == 0 {
            println!(
                "{day:4}   {:6}  {:10}   {:13.1}   {footprint:9}   {mass_err:.2e}",
                report.iterations,
                report.last_linear.map(|l| l.iterations).unwrap_or(0),
                (p[well_cell] - p0_well) / 1e3,
            );
        }
        assert!(mass_err < 1e-6, "mass balance violated on day {day}");
        mass_prev = mass_now;
        p_old.copy_from_slice(&p);
    }

    let dp_well = (p[well_cell] - p0_well) / 1e3;
    println!("\nafter 30 days: well-cell overpressure {dp_well:.1} kPa");
    println!("mass balance held to <1e-6 relative error every step");

    // The pressure plume must respect the layering: tight layers contain it.
    let sand = mesh.linear(10, 10, 2); // high-perm layer, same column
    let shale = mesh.linear(10, 10, 3); // tight layer above it
    let dp_sand = p[sand] - initial.pressure()[sand];
    let dp_shale = p[shale] - initial.pressure()[shale];
    println!(
        "layer contrast: sand layer dP {:.1} kPa vs shale layer dP {:.1} kPa",
        dp_sand / 1e3,
        dp_shale / 1e3
    );
}
