//! Quickstart: build a small CCS-style problem, compute the TPFA flux
//! residual three ways — serial reference, GPU-style reference, and the
//! wafer-scale dataflow fabric — and cross-validate the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mdfv::dataflow::{DataflowFluxSimulator, DataflowOptions};
use mdfv::fv::prelude::*;
use mdfv::fv::validate::Validation;
use mdfv::gpu::problem::{GpuFluxProblem, GpuModel};
use mdfv::wse::fabric::Execution;

fn main() {
    // 1. A 16×12×8 Cartesian mesh with heterogeneous (log-normal)
    //    permeability and a water-like slightly-compressible fluid.
    let mesh = CartesianMesh3::new(Extents::new(16, 12, 8), Spacing::new(10.0, 10.0, 4.0));
    let fluid = Fluid::water_like();
    let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.4, 2024);
    let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
    println!(
        "mesh: {}x{}x{} = {} cells, 10-face TPFA stencil",
        mesh.nx(),
        mesh.ny(),
        mesh.nz(),
        mesh.num_cells()
    );

    // 2. A pressure field: injection-style overpressure pulse.
    let state = FlowState::<f32>::gaussian_pulse(&mesh, 20.0e6, 2.0e6, 3.0);

    // 3. Serial reference (Algorithm 1), f64 ground truth.
    let p64: Vec<f64> = state.pressure().iter().map(|&v| v as f64).collect();
    let mut reference = vec![0.0_f64; mesh.num_cells()];
    assemble_flux_residual(&mesh, &fluid, &trans, &p64, &mut reference);
    println!("serial reference computed ({} cells)", reference.len());

    // 4. GPU-style references (RAJA-like and CUDA-like launchers).
    let mut gpu = GpuFluxProblem::new(&mesh, &fluid, &trans);
    let raja = gpu.apply_and_read(GpuModel::Raja, state.pressure());
    let cuda = gpu.apply_and_read(GpuModel::Cuda, state.pressure());

    // 5. The dataflow fabric: one PE per (x, y) column, cardinal exchange
    //    with router switching, diagonal exchange through intermediaries.
    let mut fabric = DataflowFluxSimulator::new(&mesh, &fluid, &trans, DataflowOptions::default());
    let dataflow = fabric.apply(state.pressure()).expect("fabric run");
    let stats = fabric.stats();
    println!(
        "fabric run: {} PEs, {} FLOPs, {} wavelets received",
        mesh.nx() * mesh.ny(),
        stats.total.flops(),
        stats.total.fabric_loads,
    );

    // 6. The same fabric program on the parallel sharded engine (BSP
    //    supersteps over 4 rectangular shards): bit-identical results.
    let mut sharded_sim = DataflowFluxSimulator::new(
        &mesh,
        &fluid,
        &trans,
        DataflowOptions {
            execution: Execution::Sharded {
                shards: 4,
                threads: 2,
            },
            ..DataflowOptions::default()
        },
    );
    let sharded = sharded_sim.apply(state.pressure()).expect("sharded run");
    assert!(
        dataflow
            .iter()
            .zip(&sharded)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "sharded engine must be bit-identical to the sequential engine"
    );
    println!("sharded engine (4 shards, 2 threads): bit-identical residual");

    // 7. Cross-validation.
    println!();
    for v in [
        Validation::compare("GPU/RAJA  vs serial", &reference, &raja, 1e-4),
        Validation::compare("GPU/CUDA  vs serial", &reference, &cuda, 1e-4),
        Validation::compare("dataflow  vs serial", &reference, &dataflow, 1e-3),
    ] {
        println!("{v}");
        assert!(v.passed());
    }
    println!("\nall implementations agree — see DESIGN.md for the architecture map");
}
