//! Quickstart: build a small CCS-style problem, compute the TPFA flux
//! residual three ways — serial reference, GPU-style reference, and the
//! wafer-scale dataflow fabric — and cross-validate the results.
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --example quickstart -- --trace trace.json [--trace-cap N]
//! cargo run --example quickstart -- --profile prof.json [--trace-cap N]
//! cargo run --example quickstart -- --metrics metrics.prom
//! ```
//!
//! With `--trace`, both engine runs record per-PE event traces; the sorted
//! traces are asserted bit-identical (the determinism probe), a Chrome
//! `trace_event` JSON is written (open in Perfetto or `chrome://tracing`),
//! and a load summary is printed. With `--profile`, the trace is analyzed
//! instead: per-region cycle attribution plus the recovered critical path,
//! both asserted bit-identical across engines, exported as JSON. With
//! `--metrics`, both engine runs publish `fabric_*`/`driver_*` telemetry
//! into one live hub, written out as Prometheus text on exit.

use bench::CommonArgs;
use mdfv::dataflow::DataflowFluxSimulator;
use mdfv::fv::prelude::*;
use mdfv::fv::validate::Validation;
use mdfv::gpu::problem::{GpuFluxProblem, GpuModel};
use mdfv::prof::{critical_path, profile_json, Profile};
use mdfv::wse::fabric::Execution;
use mdfv::wse::trace::{chrome_trace_json, TraceSummary};

fn main() {
    // The shared benchmark flag family (`--trace`, `--profile`,
    // `--trace-cap`, `--shards`, ...), parsed once.
    let args = CommonArgs::parse();
    let hub = bench::metrics_hub(&args);
    let trace_req = args.trace.clone();
    let profile_req = args.profile.clone();
    let trace_spec = trace_req
        .as_ref()
        .map(|r| r.spec())
        .or_else(|| profile_req.as_ref().map(|r| r.spec()))
        .unwrap_or_default();
    // 1. A 16×12×8 Cartesian mesh with heterogeneous (log-normal)
    //    permeability and a water-like slightly-compressible fluid.
    let mesh = CartesianMesh3::new(Extents::new(16, 12, 8), Spacing::new(10.0, 10.0, 4.0));
    let fluid = Fluid::water_like();
    let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.4, 2024);
    let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
    println!(
        "mesh: {}x{}x{} = {} cells, 10-face TPFA stencil",
        mesh.nx(),
        mesh.ny(),
        mesh.nz(),
        mesh.num_cells()
    );

    // 2. A pressure field: injection-style overpressure pulse.
    let state = FlowState::<f32>::gaussian_pulse(&mesh, 20.0e6, 2.0e6, 3.0);

    // 3. Serial reference (Algorithm 1), f64 ground truth.
    let p64: Vec<f64> = state.pressure().iter().map(|&v| v as f64).collect();
    let mut reference = vec![0.0_f64; mesh.num_cells()];
    assemble_flux_residual(&mesh, &fluid, &trans, &p64, &mut reference);
    println!("serial reference computed ({} cells)", reference.len());

    // 4. GPU-style references (RAJA-like and CUDA-like launchers).
    let mut gpu = GpuFluxProblem::new(&mesh, &fluid, &trans);
    let raja = gpu.apply_and_read(GpuModel::Raja, state.pressure());
    let cuda = gpu.apply_and_read(GpuModel::Cuda, state.pressure());

    // 5. The dataflow fabric: one PE per (x, y) column, cardinal exchange
    //    with router switching, diagonal exchange through intermediaries.
    let mut fabric = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .trace(trace_spec)
        .metrics(hub.clone())
        .build()
        .expect("quickstart problem passes builder validation");
    let dataflow = fabric.apply(state.pressure()).expect("fabric run");
    let stats = fabric.stats();
    println!(
        "fabric run: {} PEs, {} FLOPs, {} wavelets received",
        mesh.nx() * mesh.ny(),
        stats.total.flops(),
        stats.total.fabric_loads,
    );
    // `fluid()`/`transmissibilities()` are a thin wrapper over the generic
    // workload API: the declarative TPFA stencil spec (`mdfv::stencil`) is
    // compiled to colors, route programs and an exchange schedule, exactly
    // like the Laplacian and seismic-wave workloads
    // (`builder.workload(...)`, see `examples/seismic_wave.rs`).
    let pattern = fabric.workload().pattern();
    println!(
        "compiled '{}' stencil: {} receive streams on {} colors \
         ({} cardinal lanes, {} diagonal families)",
        fabric.workload().name(),
        pattern.streams,
        pattern.colors_used(),
        pattern.cardinals.len(),
        pattern.diagonals.len(),
    );

    // 6. The same fabric program on the parallel sharded engine (BSP
    //    supersteps over 4 rectangular shards): bit-identical results.
    let sharded_exec = match args.execution {
        Execution::Sharded { .. } => args.execution,
        Execution::Sequential => Execution::Sharded {
            shards: 4,
            threads: 2,
        },
    };
    let mut sharded_sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .execution(sharded_exec)
        .trace(trace_spec)
        .metrics(hub.clone())
        .build()
        .expect("quickstart problem passes builder validation");
    let sharded = sharded_sim.apply(state.pressure()).expect("sharded run");
    assert!(
        dataflow
            .iter()
            .zip(&sharded)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "sharded engine must be bit-identical to the sequential engine"
    );
    println!(
        "{}: bit-identical residual",
        bench::execution_label(sharded_exec)
    );

    // 7. Cross-validation.
    println!();
    for v in [
        Validation::compare("GPU/RAJA  vs serial", &reference, &raja, 1e-4),
        Validation::compare("GPU/CUDA  vs serial", &reference, &cuda, 1e-4),
        Validation::compare("dataflow  vs serial", &reference, &dataflow, 1e-3),
    ] {
        println!("{v}");
        assert!(v.passed());
    }
    println!("\nall implementations agree — see DESIGN.md for the architecture map");

    // 8. Tracing (only with `--trace`): the sorted per-PE event streams of
    //    the two engines must be bit-identical — a determinism probe far
    //    stronger than residual equality — then export for Perfetto.
    if let Some(req) = trace_req {
        let seq_trace = fabric.trace().expect("tracing was enabled");
        let sh_trace = sharded_sim.trace().expect("tracing was enabled");
        assert_eq!(
            seq_trace.events, sh_trace.events,
            "sequential and sharded sorted traces must be bit-identical"
        );
        println!(
            "\ntrace determinism: {} events bit-identical across engines",
            seq_trace.events.len()
        );
        std::fs::write(&req.path, chrome_trace_json(&sh_trace))
            .unwrap_or_else(|e| panic!("writing {}: {e}", req.path));
        print!("{}", TraceSummary::from_trace(&sh_trace, 5));
        println!(
            "trace written to {} ({} events, {} dropped)",
            req.path,
            sh_trace.events.len(),
            sh_trace.dropped
        );
    }

    // 9. Profiling (only with `--profile`): attribute every cycle to a
    //    named region and recover the critical path bounding the makespan.
    //    Both are pure functions of the engine-invariant per-PE streams, so
    //    both must be bit-identical across engines too.
    if let Some(req) = profile_req {
        let seq_trace = fabric.trace().expect("tracing was enabled");
        let sh_trace = sharded_sim.trace().expect("tracing was enabled");
        let profile = Profile::from_trace(&seq_trace);
        let path = critical_path(&seq_trace, 1);
        assert_eq!(
            profile,
            Profile::from_trace(&sh_trace),
            "attribution must be bit-identical across engines"
        );
        assert_eq!(
            path,
            critical_path(&sh_trace, 1),
            "critical path must be bit-identical across engines"
        );
        println!(
            "\nprofiler determinism: attribution + critical path bit-identical across engines\n"
        );
        print!("{profile}");
        if let Some(cp) = &path {
            print!("{cp}");
        }
        std::fs::write(&req.path, profile_json(&profile, path.as_ref()))
            .unwrap_or_else(|e| panic!("writing {}: {e}", req.path));
        println!("profile written to {}", req.path);
    }

    // 10. Fault injection (only with `--faults <seed>`): one faulted run
    //     under the `--recovery` policy — recover bit-identically, degrade
    //     honestly, or fail with the typed error.
    bench::run_faulted_demo(&args, mesh.nx(), mesh.ny(), mesh.nz());

    // 11. Checkpoint/restore (only with `--checkpoint`/`--resume`): write
    //     a mid-application fabric snapshot, or restore one — on any
    //     engine — and finish it bit-identically.
    bench::run_checkpoint_demo(&args, mesh.nx(), mesh.ny(), mesh.nz());

    // 12. Telemetry (only with `--metrics <path>`): both engine runs
    //     published into one hub, labeled by engine — written out as
    //     Prometheus text.
    bench::export_metrics(&args, &hub);
}
