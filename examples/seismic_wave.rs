//! Acoustic wave propagation on the dataflow fabric — the application the
//! paper's §8 says the diagonal communication pattern unlocks ("solving the
//! acoustic wave equation on tiled transversely isotropic media ... also
//! require[s] fetching data from diagonal neighbors").
//!
//! A point source rings in the middle of the domain; the wavefront expands
//! over the PE grid, each time step powered by one full in-plane exchange
//! (cardinal switching + diagonal intermediaries). The fabric result is
//! checked against the serial reference every few steps and the wavefront
//! radius is printed as a crude seismogram.
//!
//! The wave stencil is *not* hand-routed: `WaveParams::spec()` is a
//! declarative [`mdfv::stencil::StencilSpec`] (full in-plane ring, one
//! quantity) that the stencil compiler lowers to colors, route programs
//! and an exchange schedule, and the workload rides the same generic
//! `builder.workload(...)` path as TPFA and the Laplacian.
//!
//! ```text
//! cargo run --release --example seismic_wave
//! ```

use mdfv::dataflow::driver::DataflowFluxSimulator;
use mdfv::dataflow::wave::{serial_wave_step, WaveParams, WaveSimulator, WaveWorkload};
use mdfv::dataflow::workload::Workload;

fn main() {
    let (nx, ny, nz) = (21usize, 21, 4);
    // 10 m cells, 1500 m/s medium, CFL-stable step, diagonal coupling on
    let params = WaveParams::new(10.0, 10.0, 10.0, 1500.0, 2.0e-3, 0.5);
    println!(
        "acoustic wave on a {nx}x{ny} PE fabric, {nz}-deep columns, CFL = {:.3}",
        params.cfl()
    );

    // Compile the declarative stencil spec into a fabric workload and hand
    // it to the generic simulator builder — no hand-derived route tables.
    let workload = WaveWorkload::new(nx, ny, nz, params).expect("wave spec compiles");
    {
        let pattern = workload.pattern();
        println!(
            "compiled '{}': {} receive streams, {} cardinal + {} diagonal lanes, {} colors",
            workload.name(),
            pattern.streams,
            pattern.cardinals.len(),
            pattern.diagonals.len(),
            pattern.colors_used()
        );
    }

    // initial condition: a sharp Gaussian at the center, zero velocity
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut u0 = vec![0.0_f32; nx * ny * nz];
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let r2 = (x as f64 - 10.0).powi(2) + (y as f64 - 10.0).powi(2);
                u0[idx(x, y, z)] = (-r2 / 2.0).exp() as f32;
            }
        }
    }

    let sim = DataflowFluxSimulator::workload_builder()
        .workload(workload)
        .build()
        .expect("valid wave problem");
    let mut sim = WaveSimulator::from_simulator(sim);
    sim.set_initial(&u0, &u0);

    // serial shadow for validation
    let mut u = u0.clone();
    let mut u_prev = u0;

    println!("\nstep   center amp   wavefront radius [cells]   max |fab-serial|");
    println!("----------------------------------------------------------------");
    for step in 1..=24 {
        sim.step().expect("fabric step");
        let next = serial_wave_step(nx, ny, nz, &params, &u, &u_prev);
        u_prev = std::mem::replace(&mut u, next);

        if step % 4 == 0 {
            let fab = sim.read_field();
            let max_diff = fab
                .iter()
                .zip(&u)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f32, f32::max);
            // wavefront radius: farthest cell (along +x from center) whose
            // amplitude exceeds 5% of the current peak
            let peak = fab.iter().map(|v| v.abs()).fold(0.0_f32, f32::max);
            let mut radius = 0usize;
            for r in 0..=10 {
                if fab[idx(10 + r, 10, 1)].abs() > 0.05 * peak {
                    radius = r;
                }
            }
            println!(
                "{step:4}   {:+.4e}   {radius:24}   {max_diff:.3e}",
                fab[idx(10, 10, 1)]
            );
            assert!(max_diff < 1e-4, "fabric diverged from serial");
        }
    }

    let stats = sim.stats();
    println!(
        "\n{} steps, {} wavelets exchanged, {} FLOPs on the fabric",
        sim.steps(),
        stats.total.fabric_loads,
        stats.total.flops()
    );
    println!("fabric == serial reference at every checkpoint — diagonal stencil verified");
}
