//! Communication-pattern walkthrough (the paper's Figures 5 and 6): watch
//! the router switch positions alternate during the cardinal exchange and
//! verify that every PE receives its eight in-plane neighbors' columns —
//! the diagonal ones through intermediary routers.
//!
//! ```text
//! cargo run --example comm_pattern_demo
//! ```

use mdfv::dataflow::colors::{CARDINAL_CHANNELS, DIAGONAL_FAMILIES};
use mdfv::dataflow::DataflowFluxSimulator;
use mdfv::fv::prelude::*;
use mdfv::wse::geometry::{FabricDims, PeCoord};

fn main() {
    let (nx, ny, nz) = (5usize, 4usize, 3usize);
    let dims = FabricDims::new(nx, ny);

    // --- static picture: roles per channel --------------------------------
    println!("== cardinal channels (Fig. 6): first-sender parity ==\n");
    for ch in CARDINAL_CHANNELS {
        println!(
            "color {} moves data {:?}, delivers the {:?} face:",
            ch.color.id(),
            ch.send_dir,
            ch.delivers
        );
        for row in 0..ny {
            let mut line = String::from("   ");
            for col in 0..nx {
                let c = PeCoord::new(col, row);
                let mark = if !ch.has_sender(dims, c) {
                    'F' // fixed Sending (trailing edge)
                } else if ch.is_first_sender(dims, c) {
                    'S' // switchable, starts Sending
                } else {
                    'R' // switchable, starts Receiving
                };
                line.push(mark);
                line.push(' ');
            }
            println!("{line}");
        }
        println!();
    }

    println!("== diagonal families (Fig. 5): 3-phase colors ==\n");
    for fam in DIAGONAL_FAMILIES {
        let src = PeCoord::new(2, 2);
        println!(
            "family {:?}->{:?} delivers {:?}: PE (2,2) sources color {}, \
             receives color {}",
            fam.leg1,
            fam.leg2,
            fam.delivers,
            fam.source_color(src).id(),
            fam.receive_color(src).id()
        );
    }

    // --- dynamic picture: run one exchange and inspect the outcome --------
    let mesh = CartesianMesh3::new(Extents::new(nx, ny, nz), Spacing::uniform(1.0));
    let fluid = Fluid::water_like().without_gravity();
    let perm = PermeabilityField::uniform(&mesh, 1e-12);
    let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .build()
        .unwrap();

    // Encode each cell's identity into its pressure so receives are traceable.
    let p: Vec<f32> = (0..mesh.num_cells()).map(|i| 1.0e7 + i as f32).collect();
    sim.apply(&p).expect("fabric run");

    println!("\n== after one application ==\n");
    let interior = (nx / 2, ny / 2);
    let c = sim.pe_counters(interior.0, interior.1);
    println!(
        "interior PE {:?}: {} wavelets received = 8 neighbors x 2 columns x nz({nz})",
        interior, c.fabric_loads
    );
    assert_eq!(c.fabric_loads, 16 * nz as u64);

    let corner = sim.pe_counters(0, 0);
    println!(
        "corner  PE (0,0): {} wavelets received = 3 neighbors x 2 columns x nz({nz})",
        corner.fabric_loads
    );
    assert_eq!(corner.fabric_loads, 6 * nz as u64);

    // Residuals still match the serial reference, proving the exchange
    // delivered the right columns to the right faces.
    let p64: Vec<f64> = p.iter().map(|&v| v as f64).collect();
    let mut reference = vec![0.0_f64; mesh.num_cells()];
    assemble_flux_residual(&mesh, &fluid, &trans, &p64, &mut reference);
    let got = sim.apply(&p).unwrap();
    let v = mdfv::fv::validate::Validation::compare("exchange", &reference, &got, 1e-3);
    println!("\n{v}");
    assert!(v.passed());
    println!("\nevery PE received exactly its 8 in-plane neighbors' data — Figs. 5/6 verified");
}
