//! Two-phase waterflood (IMPES) — water displacing CO₂ in a heterogeneous
//! layer, the multiphase capability the paper's reference simulator GEOS
//! provides, built on the same TPFA stencil.
//!
//! A quarter-five-spot pattern: water injected in one corner displaces the
//! resident CO₂-like phase toward a producer in the opposite corner. The
//! example prints the advancing saturation front as ASCII art and tracks
//! water breakthrough at the producer.
//!
//! ```text
//! cargo run --release --example waterflood
//! ```

use mdfv::fv::fields::PermeabilityField;
use mdfv::fv::mesh::{CartesianMesh3, Extents, Spacing};
use mdfv::fv::trans::{StencilKind, Transmissibilities};
use mdfv::fv::twophase::{ImpesSimulator, TwoPhaseFluid, VolumetricSource};

fn main() {
    let (nx, ny) = (16usize, 16usize);
    let mesh = CartesianMesh3::new(Extents::new(nx, ny, 1), Spacing::new(5.0, 5.0, 5.0));
    let fluid = TwoPhaseFluid::water_co2();
    let perm = PermeabilityField::log_normal(&mesh, 2e-13, 0.35, 42);
    let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
    let n = mesh.num_cells();

    let injector = mesh.linear(1, 1, 0);
    let producer = mesh.linear(nx - 2, ny - 2, 0);
    let rate = 3.0e-4; // m³/s
    let sources = vec![
        VolumetricSource {
            cell: injector,
            rate,
            water_fraction: 1.0,
        },
        VolumetricSource {
            cell: producer,
            rate: -rate,
            water_fraction: 0.0,
        },
    ];

    let porosity = 0.2;
    let mut sim = ImpesSimulator::new(n, porosity);
    let mut pressure = vec![1.5e7_f64; n];
    let mut s_w = vec![fluid.s_wc; n];
    let dt = sim.suggest_dt(&mesh, &sources, 0.08);
    println!(
        "quarter-five-spot waterflood on {nx}x{ny} cells, dt = {dt:.1} s, \
         viscosity ratio {:.1}",
        fluid.mu_w / fluid.mu_n
    );

    let pore_volume = porosity * mesh.cell_volume() * n as f64;
    let mut breakthrough: Option<f64> = None;
    let total_steps = 3_000;
    for step in 1..=total_steps {
        let rep = sim.step(&mesh, &fluid, &trans, &sources, dt, &mut pressure, &mut s_w);
        assert!(rep.pressure_solve.converged());
        let produced_fw = fluid.fractional_flow(s_w[producer]);
        if breakthrough.is_none() && produced_fw > 0.05 {
            breakthrough = Some(step as f64 * dt * rate / pore_volume);
        }
        if step % 1000 == 0 {
            let injected_pv = step as f64 * dt * rate / pore_volume;
            println!(
                "\nafter {:.2} pore volumes injected (step {step}), producer water cut {:.1}%:",
                injected_pv,
                100.0 * produced_fw
            );
            // ASCII saturation map (every other row/column)
            for y in (0..ny).step_by(2) {
                let mut line = String::from("  ");
                for x in (0..nx).step_by(2) {
                    let se = fluid.effective_saturation(s_w[mesh.linear(x, y, 0)]);
                    line.push(match (se * 5.0) as usize {
                        0 => '.',
                        1 => ':',
                        2 => '+',
                        3 => 'o',
                        4 => 'O',
                        _ => '#',
                    });
                }
                println!("{line}");
            }
        }
    }

    match breakthrough {
        Some(pv) => println!("\nwater breakthrough after {pv:.2} pore volumes injected"),
        None => println!("\nno breakthrough within the simulated window"),
    }
    let swept = s_w
        .iter()
        .filter(|&&s| fluid.effective_saturation(s) > 0.5)
        .count();
    println!("swept region: {swept}/{n} cells above 50% effective water saturation");
    assert!(s_w[injector] > 0.95 * fluid.s_w_max());
    println!("saturations stayed within [S_wc, 1 - S_nr] throughout - IMPES stable");
}
