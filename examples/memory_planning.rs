//! PE memory planning and the §5.3.1 buffer-reuse ablation.
//!
//! "Reducing the memory consumption on each PE is crucial to fit the
//! largest possible problem ... by minimizing the amount of memory the
//! implementation requires, larger problems can be solved." This example
//! quantifies that: the largest column height Nz a 48 kB PE can hold with
//! and without the hand-crafted buffer reuse, and the memory map of the
//! paper's production column (Nz = 246).
//!
//! ```text
//! cargo run --example memory_planning
//! ```

use mdfv::dataflow::layout::ColumnLayout;
use mdfv::dataflow::MemoryPlan;
use mdfv::wse::memory::WSE2_PE_MEMORY_BYTES;

fn main() {
    let words = WSE2_PE_MEMORY_BYTES / 4;
    println!("WSE-2 PE scratchpad: {WSE2_PE_MEMORY_BYTES} bytes = {words} f32 words\n");

    // Memory map of the paper's production column.
    let nz = 246;
    let plan = MemoryPlan::for_nz(nz);
    println!("memory map for Nz = {nz} (the paper's production mesh):");
    println!("  own pressure  (ghosted)   {:>6} words", plan.p_own);
    println!("  own density   (ghosted)   {:>6} words", plan.rho_own);
    println!("  residual                  {:>6} words", plan.residual);
    println!("  transmissibility x10      {:>6} words", plan.trans);
    println!("  receive buffers 8x2       {:>6} words", plan.recv);
    println!("  reused temporaries x3     {:>6} words", plan.temps);
    println!(
        "  total                     {:>6} words = {:.1} kB of 48 kB ({:.0}% full)",
        plan.total_words(),
        plan.total_words() as f64 * 4.0 / 1024.0,
        100.0 * plan.total_words() as f64 / words as f64
    );
    assert!(plan.fits(words));

    // The ablation: reuse on vs off.
    let with = MemoryPlan::max_nz(words);
    let without = MemoryPlan::max_nz_without_reuse(words);
    println!("\nbuffer-reuse ablation (§5.3.1):");
    println!("  max Nz with reused temporaries:    {with}");
    println!("  max Nz with per-face scratch:      {without}");
    println!(
        "  -> reuse fits a {:.0}% taller column",
        100.0 * (with as f64 / without as f64 - 1.0)
    );
    let needed = MemoryPlan::for_nz(246).total_words_without_reuse();
    println!(
        "  the paper's Nz = 246 column needs {} words without reuse — {}",
        needed,
        if needed > words {
            "does NOT fit; the optimization is load-bearing"
        } else {
            "fits"
        }
    );

    // The concrete word-level layout host and PE agree on.
    let layout = ColumnLayout::new(8);
    println!("\nword-level layout for a toy Nz = 8 column:");
    println!(
        "  p_own @ {:>4}..{:<4}  rho_own @ {:>4}..{:<4}  residual @ {:>4}..{:<4}",
        layout.p_own.offset,
        layout.p_own.offset + layout.p_own.len,
        layout.rho_own.offset,
        layout.rho_own.offset + layout.rho_own.len,
        layout.residual.offset,
        layout.residual.offset + layout.residual.len,
    );
    println!(
        "  trans[0] @ {}..{}  ...  recv_p[0] @ {}..{}  ...  temps[2] @ {}..{}",
        layout.trans[0].offset,
        layout.trans[0].offset + layout.trans[0].len,
        layout.recv_p[0].offset,
        layout.recv_p[0].offset + layout.recv_p[0].len,
        layout.temps[2].offset,
        layout.temps[2].offset + layout.temps[2].len,
    );
    println!("  total {} words", layout.total_words());
}
