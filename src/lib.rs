//! # mdfv — Massively Distributed Finite-Volume flux computation
//!
//! Umbrella crate re-exporting the whole workspace, reproducing
//! *"Massively Distributed Finite-Volume Flux Computation"* (SC 2023):
//! a TPFA finite-volume flux kernel mapped onto a (simulated) wafer-scale
//! dataflow architecture, with GPU-style reference implementations and the
//! analytic machine models used to regenerate the paper's evaluation.
//!
//! * [`fv`] — physics + serial reference + matrix-free solvers
//! * [`wse`] — the dataflow-architecture simulator
//! * [`stencil`] — the stencil→route compiler: declarative specs to
//!   colors, per-PE route programs and exchange schedules
//! * [`dataflow`] — the paper's contribution: TPFA on the fabric (now a
//!   workload of the generic simulator, alongside Laplacian and wave)
//! * [`gpu`] — RAJA-like and CUDA-like reference implementations
//! * [`perf`] — CS-2 / A100 machine models, rooflines, energy
//! * [`prof`] — critical-path profiling, cycle attribution, perf harness
//! * [`serve`] — checkpoint/restore of fabric state + the simulation job
//!   server with compiled-layout caching
//! * [`metrics`] — runtime telemetry: lock-free registry, Prometheus/JSON
//!   exposition, failure flight recorder
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use fv_core as fv;
pub use gpu_ref as gpu;
pub use perf_model as perf;
pub use tpfa_dataflow as dataflow;
pub use wse_metrics as metrics;
pub use wse_prof as prof;
pub use wse_serve as serve;
pub use wse_sim as wse;
pub use wse_stencil as stencil;
