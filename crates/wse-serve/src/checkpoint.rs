//! Versioned binary encoding of a [`DriverSnapshot`] with an integrity
//! header.
//!
//! # On-disk format (all little-endian)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `MDFVCKPT` |
//! | 8      | 4    | schema version ([`SCHEMA_VERSION`]) |
//! | 12     | 8    | problem spec hash ([`DataflowFluxSimulator::spec_hash`]) |
//! | 20     | 8    | payload length in bytes |
//! | 28     | 4    | murmur3_32 checksum of the payload |
//! | 32     | —    | payload |
//!
//! The payload serializes the driver counters followed by the fabric
//! snapshot field by field (length-prefixed vectors, tagged options). The
//! wavelet checksum word is persisted verbatim via
//! [`wse_sim::wavelet::Wavelet::raw_crc`]: a corrupted-in-flight wavelet
//! carries a deliberately stale checksum, and re-sealing it on restore
//! would un-detect the fault.
//!
//! Decoding validates the magic, version, payload length, and checksum
//! before touching the payload, and every variable-length count inside the
//! payload is bounds-checked against the remaining bytes — a truncated or
//! bit-flipped checkpoint is rejected with a typed [`CheckpointError`],
//! never a panic or a silently wrong state.

use std::path::Path;

use tpfa_dataflow::driver::{DriverSnapshot, StepTotals};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_sim::fabric::RunReport;
use wse_sim::fault::{FaultClass, FaultEvent};
use wse_sim::geometry::{Direction, PeCoord};
use wse_sim::snapshot::{EventRecord, FabricSnapshot, FaultRecord, PeRecord, TraceSeqRecord};
use wse_sim::stats::OpCounters;
use wse_sim::wavelet::{Color, Wavelet, WaveletKind, MAX_COLORS};

/// Magic bytes leading every checkpoint.
pub const MAGIC: [u8; 8] = *b"MDFVCKPT";

/// Current schema version; bumped on any payload layout change.
pub const SCHEMA_VERSION: u32 = 1;

/// Header size in bytes (magic + version + spec hash + payload length +
/// payload checksum).
pub const HEADER_LEN: usize = 32;

/// Why a checkpoint was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The leading bytes are not [`MAGIC`].
    BadMagic,
    /// The schema version is not [`SCHEMA_VERSION`].
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The buffer ends before the declared payload does.
    Truncated {
        /// Bytes the header or payload declared.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// The checkpoint belongs to a different problem specification.
    SpecHashMismatch {
        /// Hash of the restore target's specification.
        expected: u64,
        /// Hash recorded in the checkpoint.
        found: u64,
    },
    /// The payload passed the checksum but contains an impossible value
    /// (out-of-range enum tag, implausible count, trailing bytes).
    Malformed(String),
    /// The decoded snapshot was refused by the simulator.
    Restore(String),
    /// Reading or writing the checkpoint file failed.
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::BadVersion { found } => {
                write!(f, "unsupported schema version {found} (expected {SCHEMA_VERSION})")
            }
            CheckpointError::Truncated { needed, have } => {
                write!(f, "truncated checkpoint: need {needed} bytes, have {have}")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "payload checksum mismatch: header says {stored:#010x}, payload hashes to {computed:#010x}"
            ),
            CheckpointError::SpecHashMismatch { expected, found } => write!(
                f,
                "checkpoint is for spec {found:#018x}, target is {expected:#018x}"
            ),
            CheckpointError::Malformed(m) => write!(f, "malformed payload: {m}"),
            CheckpointError::Restore(m) => write!(f, "snapshot refused: {m}"),
            CheckpointError::Io(m) => write!(f, "checkpoint I/O: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Murmur3 32-bit hash (x86 variant, seed 0) — the payload integrity
/// checksum. Self-contained; the container has no hashing crates.
pub fn murmur3_32(data: &[u8]) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;
    let mut h: u32 = 0;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let mut k = u32::from_le_bytes(chunk.try_into().unwrap());
        k = k.wrapping_mul(C1).rotate_left(15).wrapping_mul(C2);
        h = (h ^ k)
            .rotate_left(13)
            .wrapping_mul(5)
            .wrapping_add(0xe654_6b64);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut k: u32 = 0;
        for (i, &b) in tail.iter().enumerate() {
            k |= (b as u32) << (8 * i);
        }
        k = k.wrapping_mul(C1).rotate_left(15).wrapping_mul(C2);
        h ^= k;
    }
    h ^= data.len() as u32;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^ (h >> 16)
}

/// A complete, portable checkpoint: the driver snapshot plus the hash of
/// the problem specification it belongs to. Restoring into a simulator
/// with a different [`DataflowFluxSimulator::spec_hash`] is refused —
/// the spec hash deliberately excludes the engine choice, so checkpoints
/// move freely between `Sequential` and `Sharded` simulators.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Hash of the originating simulator's problem specification.
    pub spec_hash: u64,
    /// The captured driver + fabric state.
    pub driver: DriverSnapshot,
}

impl Checkpoint {
    /// Captures the given simulator's complete state.
    pub fn capture(sim: &DataflowFluxSimulator) -> Self {
        Self {
            spec_hash: sim.spec_hash(),
            driver: sim.snapshot(),
        }
    }

    /// Restores this checkpoint into `sim`, which must be freshly built
    /// from the same problem specification (engine may differ).
    pub fn restore_into(&self, sim: &mut DataflowFluxSimulator) -> Result<(), CheckpointError> {
        let expected = sim.spec_hash();
        if expected != self.spec_hash {
            return Err(CheckpointError::SpecHashMismatch {
                expected,
                found: self.spec_hash,
            });
        }
        sim.restore_snapshot(&self.driver)
            .map_err(|e| CheckpointError::Restore(e.to_string()))
    }

    /// Serializes to the versioned binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        encode_driver(&mut payload, &self.driver);
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        out.extend_from_slice(&self.spec_hash.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&murmur3_32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses and validates the binary format.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < HEADER_LEN {
            return Err(CheckpointError::Truncated {
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SCHEMA_VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        let spec_hash = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let payload_len = u64::from_le_bytes(bytes[20..28].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
        let needed = match HEADER_LEN.checked_add(payload_len) {
            Some(n) if n <= bytes.len() => n,
            // Hostile lengths can overflow `usize`; saturate for the report.
            _ => {
                return Err(CheckpointError::Truncated {
                    needed: HEADER_LEN.saturating_add(payload_len),
                    have: bytes.len(),
                })
            }
        };
        let payload = &bytes[HEADER_LEN..needed];
        let computed = murmur3_32(payload);
        if computed != stored {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }
        let mut r = Reader::new(payload);
        let driver = decode_driver(&mut r)?;
        r.finish()?;
        Ok(Self { spec_hash, driver })
    }

    /// [`Checkpoint::encode`] with the wall-clock nanoseconds observed
    /// into `timing` — the hook the serving stack uses for its
    /// `serve_checkpoint_*` histograms. Pass a null handle (the default)
    /// and this is exactly `encode()`.
    pub fn encode_metered(&self, timing: &wse_metrics::Histogram) -> Vec<u8> {
        let t0 = std::time::Instant::now();
        let out = self.encode();
        timing.observe(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        out
    }

    /// [`Checkpoint::decode`] with the wall-clock nanoseconds observed
    /// into `timing` (also on the error path — a rejected checkpoint's
    /// validation cost is still a decode attempt).
    pub fn decode_metered(
        bytes: &[u8],
        timing: &wse_metrics::Histogram,
    ) -> Result<Self, CheckpointError> {
        let t0 = std::time::Instant::now();
        let out = Self::decode(bytes);
        timing.observe(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        out
    }

    /// Writes the encoded checkpoint to `path`.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        std::fs::write(path, self.encode()).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Reads and decodes a checkpoint from `path`.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::decode(&bytes)
    }
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_report(out: &mut Vec<u8>, r: &RunReport) {
    put_u64(out, r.events);
    put_u64(out, r.final_time);
    put_u64(out, r.edge_drops);
    put_u64(out, r.faults);
}

fn put_wavelet(out: &mut Vec<u8>, w: &Wavelet) {
    out.push(w.color.id());
    out.push(matches!(w.kind, WaveletKind::Control) as u8);
    put_u32(out, w.payload);
    put_u32(out, w.raw_crc());
}

fn put_trace_seq(out: &mut Vec<u8>, t: &TraceSeqRecord) {
    put_u32(out, t.next_seq);
    put_u64(out, t.dropped);
    put_u64(out, t.base_time);
    put_u64(out, t.base_cycles);
}

fn put_fault_event(out: &mut Vec<u8>, e: &FaultEvent) {
    put_u64(out, e.time);
    put_u64(out, e.pe.col as u64);
    put_u64(out, e.pe.row as u64);
    out.push(e.class.code());
    put_u32(out, e.detail);
    out.push(e.benign as u8);
}

fn encode_driver(out: &mut Vec<u8>, d: &DriverSnapshot) {
    put_u64(out, d.applications);
    put_u64(out, d.fabric_applications);
    match &d.in_flight {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_u64(out, t.events);
            put_u64(out, t.final_time);
            put_u64(out, t.edge_drops);
            put_u64(out, t.faults);
            out.push(t.complete as u8);
        }
    }
    match &d.last_run {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            put_report(out, r);
        }
    }
    encode_fabric(out, &d.fabric);
}

fn encode_fabric(out: &mut Vec<u8>, s: &FabricSnapshot) {
    put_u64(out, s.cols as u64);
    put_u64(out, s.rows as u64);
    put_u64(out, s.time);
    put_u64(out, s.host_seq);
    put_trace_seq(out, &s.host_trace_seq);
    put_u64(out, s.events.len() as u64);
    for ev in &s.events {
        put_u64(out, ev.time);
        put_u64(out, ev.seq);
        put_u64(out, ev.src as u64);
        put_u64(out, ev.pe as u64);
        match ev.route_input {
            None => out.push(0),
            Some(d) => out.push(1 + d.index() as u8),
        }
        put_wavelet(out, &ev.wavelet);
    }
    put_u64(out, s.pes.len() as u64);
    for pe in &s.pes {
        encode_pe(out, pe);
    }
}

fn encode_pe(out: &mut Vec<u8>, pe: &PeRecord) {
    put_u64(out, pe.memory_words.len() as u64);
    for &w in &pe.memory_words {
        put_u32(out, w);
    }
    put_u64(out, pe.memory_allocated as u64);
    for v in counters_to_array(&pe.counters) {
        put_u64(out, v);
    }
    put_u64(out, pe.router_positions.len() as u64);
    for &(color, pos) in &pe.router_positions {
        out.push(color);
        out.push(pos);
    }
    put_u32(out, pe.router_version);
    put_u64(out, pe.fabric_hops);
    put_u64(out, pe.ramp_deliveries);
    put_u64(out, pe.program_state.len() as u64);
    out.extend_from_slice(&pe.program_state);
    put_u64(out, pe.busy_until);
    put_u64(out, pe.parked.len() as u64);
    for (dir, w) in &pe.parked {
        out.push(dir.index() as u8);
        put_wavelet(out, w);
    }
    put_u64(out, pe.seq);
    put_u64(out, pe.edge_drops);
    put_u64(out, pe.flow_stalls);
    put_u64(out, pe.queue_wait_cycles);
    put_u64(out, pe.fault_drops);
    put_u64(out, pe.checksum_drops);
    encode_faults(out, &pe.faults);
    put_trace_seq(out, &pe.trace_seq);
}

fn encode_faults(out: &mut Vec<u8>, f: &FaultRecord) {
    out.push(f.active as u8);
    out.push(f.verify_checksums as u8);
    put_u64(out, f.link_down.len() as u64);
    for &(dir, from, until) in &f.link_down {
        out.push(dir.index() as u8);
        put_u64(out, from);
        put_u64(out, until);
    }
    match f.halt_at {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_u64(out, t);
        }
    }
    put_u64(out, f.slow.len() as u64);
    for &(from, until, factor) in &f.slow {
        put_u64(out, from);
        put_u64(out, until);
        put_u32(out, factor);
    }
    put_u64(out, f.slow_logged.len() as u64);
    for &l in &f.slow_logged {
        out.push(l as u8);
    }
    put_u64(out, f.corrupt.len() as u64);
    for &(at, xor) in &f.corrupt {
        put_u64(out, at);
        put_u32(out, xor);
    }
    put_u64(out, f.flips.len() as u64);
    for &(at, color) in &f.flips {
        put_u64(out, at);
        out.push(color.id());
    }
    put_u64(out, f.log.len() as u64);
    for e in &f.log {
        put_fault_event(out, e);
    }
    out.push(f.tainted as u8);
}

/// [`OpCounters`] as a fixed-order array (field declaration order).
fn counters_to_array(c: &OpCounters) -> [u64; 14] {
    [
        c.fmul,
        c.fsub,
        c.fadd,
        c.fma,
        c.fneg,
        c.fmov_in,
        c.fmov_out,
        c.mem_loads,
        c.mem_stores,
        c.fabric_loads,
        c.fabric_stores,
        c.eos_evals,
        c.compute_cycles,
        c.comm_cycles,
    ]
}

fn counters_from_array(a: [u64; 14]) -> OpCounters {
    OpCounters {
        fmul: a[0],
        fsub: a[1],
        fadd: a[2],
        fma: a[3],
        fneg: a[4],
        fmov_in: a[5],
        fmov_out: a[6],
        mem_loads: a[7],
        mem_stores: a[8],
        fabric_loads: a[9],
        fabric_stores: a[10],
        eos_evals: a[11],
        compute_cycles: a[12],
        comm_cycles: a[13],
    }
}

// ---------------------------------------------------------------------------
// Payload decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(CheckpointError::Malformed(format!(
                "payload ends at byte {} but {} more bytes were declared",
                self.bytes.len(),
                n
            )));
        };
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CheckpointError::Malformed(format!("boolean tag {v}"))),
        }
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A vector length; rejected if even one-byte elements could not fit
    /// in the remaining payload (so `Vec::with_capacity` stays sane).
    fn len(&mut self, elem_min_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.checked_mul(elem_min_bytes).is_none_or(|b| b > remaining) {
            return Err(CheckpointError::Malformed(format!(
                "count {n} needs at least {} bytes, {remaining} remain",
                n.saturating_mul(elem_min_bytes)
            )));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CheckpointError::Malformed(format!(
                "{} trailing bytes",
                self.bytes.len() - self.pos
            )))
        }
    }
}

fn read_report(r: &mut Reader) -> Result<RunReport, CheckpointError> {
    Ok(RunReport {
        events: r.u64()?,
        final_time: r.u64()?,
        edge_drops: r.u64()?,
        faults: r.u64()?,
    })
}

fn read_color(r: &mut Reader) -> Result<Color, CheckpointError> {
    let id = r.u8()?;
    if (id as usize) >= MAX_COLORS {
        return Err(CheckpointError::Malformed(format!("color id {id}")));
    }
    Ok(Color::new(id))
}

fn read_direction(r: &mut Reader) -> Result<Direction, CheckpointError> {
    direction_from_index(r.u8()?)
}

fn direction_from_index(i: u8) -> Result<Direction, CheckpointError> {
    Ok(match i {
        0 => Direction::North,
        1 => Direction::East,
        2 => Direction::South,
        3 => Direction::West,
        4 => Direction::Ramp,
        v => return Err(CheckpointError::Malformed(format!("direction {v}"))),
    })
}

fn fault_class_from_code(code: u8) -> Result<FaultClass, CheckpointError> {
    Ok(match code {
        0 => FaultClass::LinkDown,
        1 => FaultClass::PeHalt,
        2 => FaultClass::PeSlow,
        3 => FaultClass::CorruptInjected,
        4 => FaultClass::CorruptDetected,
        5 => FaultClass::RouterFlip,
        6 => FaultClass::WatchdogStall,
        v => return Err(CheckpointError::Malformed(format!("fault class {v}"))),
    })
}

fn read_wavelet(r: &mut Reader) -> Result<Wavelet, CheckpointError> {
    let color = read_color(r)?;
    let control = r.bool()?;
    let payload = r.u32()?;
    let crc = r.u32()?;
    let mut w = if control {
        Wavelet::control(color, payload)
    } else {
        Wavelet::data(color, payload)
    };
    w.set_raw_crc(crc);
    Ok(w)
}

fn read_trace_seq(r: &mut Reader) -> Result<TraceSeqRecord, CheckpointError> {
    Ok(TraceSeqRecord {
        next_seq: r.u32()?,
        dropped: r.u64()?,
        base_time: r.u64()?,
        base_cycles: r.u64()?,
    })
}

fn read_fault_event(r: &mut Reader) -> Result<FaultEvent, CheckpointError> {
    Ok(FaultEvent {
        time: r.u64()?,
        pe: PeCoord::new(r.u64()? as usize, r.u64()? as usize),
        class: fault_class_from_code(r.u8()?)?,
        detail: r.u32()?,
        benign: r.bool()?,
    })
}

fn decode_driver(r: &mut Reader) -> Result<DriverSnapshot, CheckpointError> {
    let applications = r.u64()?;
    let fabric_applications = r.u64()?;
    let in_flight = if r.bool()? {
        Some(StepTotals {
            events: r.u64()?,
            final_time: r.u64()?,
            edge_drops: r.u64()?,
            faults: r.u64()?,
            complete: r.bool()?,
        })
    } else {
        None
    };
    let last_run = if r.bool()? {
        Some(read_report(r)?)
    } else {
        None
    };
    let fabric = decode_fabric(r)?;
    Ok(DriverSnapshot {
        fabric,
        applications,
        fabric_applications,
        in_flight,
        last_run,
    })
}

fn decode_fabric(r: &mut Reader) -> Result<FabricSnapshot, CheckpointError> {
    let cols = r.u64()? as usize;
    let rows = r.u64()? as usize;
    let time = r.u64()?;
    let host_seq = r.u64()?;
    let host_trace_seq = read_trace_seq(r)?;
    let n_events = r.len(38)?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let time = r.u64()?;
        let seq = r.u64()?;
        let src = r.u64()? as usize;
        let pe = r.u64()? as usize;
        let route_input = match r.u8()? {
            0 => None,
            i => Some(direction_from_index(i - 1)?),
        };
        let wavelet = read_wavelet(r)?;
        events.push(EventRecord {
            time,
            seq,
            src,
            pe,
            route_input,
            wavelet,
        });
    }
    let n_pes = r.len(8)?;
    let mut pes = Vec::with_capacity(n_pes);
    for _ in 0..n_pes {
        pes.push(decode_pe(r)?);
    }
    Ok(FabricSnapshot {
        cols,
        rows,
        time,
        host_seq,
        host_trace_seq,
        events,
        pes,
    })
}

fn decode_pe(r: &mut Reader) -> Result<PeRecord, CheckpointError> {
    let n_words = r.len(4)?;
    let mut memory_words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        memory_words.push(r.u32()?);
    }
    let memory_allocated = r.u64()? as usize;
    let mut counters = [0u64; 14];
    for c in &mut counters {
        *c = r.u64()?;
    }
    let n_positions = r.len(2)?;
    let mut router_positions = Vec::with_capacity(n_positions);
    for _ in 0..n_positions {
        let color = r.u8()?;
        let pos = r.u8()?;
        router_positions.push((color, pos));
    }
    let router_version = r.u32()?;
    let fabric_hops = r.u64()?;
    let ramp_deliveries = r.u64()?;
    let n_state = r.len(1)?;
    let program_state = r.take(n_state)?.to_vec();
    let busy_until = r.u64()?;
    let n_parked = r.len(11)?;
    let mut parked = Vec::with_capacity(n_parked);
    for _ in 0..n_parked {
        let dir = read_direction(r)?;
        let w = read_wavelet(r)?;
        parked.push((dir, w));
    }
    let seq = r.u64()?;
    let edge_drops = r.u64()?;
    let flow_stalls = r.u64()?;
    let queue_wait_cycles = r.u64()?;
    let fault_drops = r.u64()?;
    let checksum_drops = r.u64()?;
    let faults = decode_faults(r)?;
    let trace_seq = read_trace_seq(r)?;
    Ok(PeRecord {
        memory_words,
        memory_allocated,
        counters: counters_from_array(counters),
        router_positions,
        router_version,
        fabric_hops,
        ramp_deliveries,
        program_state,
        busy_until,
        parked,
        seq,
        edge_drops,
        flow_stalls,
        queue_wait_cycles,
        fault_drops,
        checksum_drops,
        faults,
        trace_seq,
    })
}

fn decode_faults(r: &mut Reader) -> Result<FaultRecord, CheckpointError> {
    let active = r.bool()?;
    let verify_checksums = r.bool()?;
    let n_links = r.len(17)?;
    let mut link_down = Vec::with_capacity(n_links);
    for _ in 0..n_links {
        let dir = read_direction(r)?;
        let from = r.u64()?;
        let until = r.u64()?;
        link_down.push((dir, from, until));
    }
    let halt_at = if r.bool()? { Some(r.u64()?) } else { None };
    let n_slow = r.len(20)?;
    let mut slow = Vec::with_capacity(n_slow);
    for _ in 0..n_slow {
        slow.push((r.u64()?, r.u64()?, r.u32()?));
    }
    let n_logged = r.len(1)?;
    let mut slow_logged = Vec::with_capacity(n_logged);
    for _ in 0..n_logged {
        slow_logged.push(r.bool()?);
    }
    let n_corrupt = r.len(12)?;
    let mut corrupt = Vec::with_capacity(n_corrupt);
    for _ in 0..n_corrupt {
        corrupt.push((r.u64()?, r.u32()?));
    }
    let n_flips = r.len(9)?;
    let mut flips = Vec::with_capacity(n_flips);
    for _ in 0..n_flips {
        let at = r.u64()?;
        let color = read_color(r)?;
        flips.push((at, color));
    }
    let n_log = r.len(30)?;
    let mut log = Vec::with_capacity(n_log);
    for _ in 0..n_log {
        log.push(read_fault_event(r)?);
    }
    let tainted = r.bool()?;
    Ok(FaultRecord {
        active,
        verify_checksums,
        link_down,
        halt_at,
        slow,
        slow_logged,
        corrupt,
        flips,
        log,
        tainted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn murmur3_reference_vectors() {
        // Published test vectors for MurmurHash3_x86_32 with seed 0.
        assert_eq!(murmur3_32(b""), 0);
        assert_eq!(murmur3_32(b"a"), 0x3c25_69b2);
        assert_eq!(murmur3_32(b"hello"), 0x248b_fa47);
        assert_eq!(murmur3_32(b"Hello, world!"), 0xc036_3e43);
        assert_eq!(
            murmur3_32(b"The quick brown fox jumps over the lazy dog"),
            0x2e4f_f723
        );
    }

    #[test]
    fn header_too_short_is_truncated() {
        let err = Checkpoint::decode(&MAGIC[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[..8].copy_from_slice(b"NOTACKPT");
        assert_eq!(
            Checkpoint::decode(&bytes).unwrap_err(),
            CheckpointError::BadMagic
        );
    }

    #[test]
    fn metered_codec_matches_plain_and_records_timings() {
        use fv_core::mesh::{CartesianMesh3, Extents, Spacing};
        let mesh = CartesianMesh3::new(Extents::new(4, 4, 2), Spacing::new(10.0, 10.0, 4.0));
        let fluid = fv_core::eos::Fluid::water_like();
        let perm = fv_core::fields::PermeabilityField::uniform(&mesh, 1e-13);
        let trans = fv_core::trans::Transmissibilities::tpfa(
            &mesh,
            &perm,
            fv_core::trans::StencilKind::TenPoint,
        );
        let sim = DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .build()
            .expect("tiny problem builds");
        let ckpt = Checkpoint::capture(&sim);
        let hub = wse_metrics::MetricsHub::new_live();
        let timing = hub.histogram("serve_checkpoint_encode_ns", "test", &[]);
        let bytes = ckpt.encode_metered(&timing);
        assert_eq!(bytes, ckpt.encode(), "metering must not change the bytes");
        let back = Checkpoint::decode_metered(&bytes, &timing).expect("roundtrip");
        assert_eq!(back.spec_hash, ckpt.spec_hash);
        // One encode + one decode observed; the error path observes too.
        assert!(Checkpoint::decode_metered(&MAGIC[..], &timing).is_err());
        match &hub.snapshot()[0].value {
            wse_metrics::SampleValue::Histogram { count, .. } => assert_eq!(*count, 3),
            other => panic!("expected a histogram, got {other:?}"),
        }
        // A null handle is exactly encode()/decode().
        let null = wse_metrics::Histogram::default();
        assert_eq!(ckpt.encode_metered(&null), bytes);
    }
}
