//! A multi-tenant simulation job server.
//!
//! [`JobServer`] owns a pool of worker threads and a bounded submission
//! queue. Each [`JobSpec`] names a standard problem (mesh geometry + a
//! permeability seed), a scenario (how many applications of Algorithm 1,
//! with which pressure seed), and an engine configuration. Workers compile
//! the problem (mesh, transmissibilities — the expensive host-side setup),
//! build the simulator, and drive it with the stepped driver API so jobs
//! can be **preempted** at any event boundary: a preempted job's complete
//! state is captured as a [`Checkpoint`] and the worker moves on; `resume`
//! re-enqueues it and any worker continues it bit-identically — even on a
//! different engine than it started on.
//!
//! Compiled problems are cached by content hash: a repeat submission of
//! the same `ProblemSpec` skips the compile entirely and reports
//! `cache_hit = true` with its measured setup time, so the saving is
//! observable, not asserted.
//!
//! Everything is `std`-only (threads, `Mutex`/`Condvar`) — the container
//! has no async runtime and none is needed: jobs are CPU-bound and the
//! control API is polling + blocking waits.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

use fv_core::eos::Fluid;
use fv_core::fields::PermeabilityField;
use fv_core::mesh::{CartesianMesh3, Extents, Spacing};
use fv_core::state::FlowState;
use fv_core::trans::{StencilKind, Transmissibilities};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_metrics::{Counter, FlightRecorder, Gauge, Histogram, MetricsHub};
use wse_sim::fabric::{Execution, FabricError};
use wse_sim::fault::FaultPlan;
use wse_sim::stats::FabricStats;

use crate::checkpoint::Checkpoint;

/// Entries retained by each job's failure flight recorder — the last-N
/// control/progress events that travel with a failure.
pub const FLIGHT_RECORDER_CAPACITY: usize = 64;

/// Events per [`DataflowFluxSimulator::step_events`] chunk when the job
/// does not set [`JobSpec::checkpoint_every`]. Small enough for prompt
/// preemption, large enough to amortize the pause machinery.
pub const DEFAULT_CHUNK_EVENTS: u64 = 200_000;

/// A standard problem by content: geometry plus the permeability seed.
/// Mirrors the benchmark harness's synthetic workload (uniform spacing,
/// water-like fluid, log-normal permeability, ten-point stencil).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemSpec {
    /// PE-grid width (mesh X extent).
    pub nx: usize,
    /// PE-grid height (mesh Y extent).
    pub ny: usize,
    /// Column height (mesh Z extent, in PE memory).
    pub nz: usize,
    /// Seed of the log-normal permeability field.
    pub perm_seed: u64,
}

impl ProblemSpec {
    /// FNV-1a content hash — the compiled-layout cache key.
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for v in [
            self.nx as u64,
            self.ny as u64,
            self.nz as u64,
            self.perm_seed,
        ] {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }
}

/// A compiled problem: the host-side artifacts that are expensive to
/// build and identical for every job naming the same [`ProblemSpec`].
pub struct CompiledProblem {
    /// The Cartesian mesh.
    pub mesh: CartesianMesh3,
    /// The working fluid.
    pub fluid: Fluid,
    /// The full ten-point transmissibility set.
    pub trans: Transmissibilities,
}

impl CompiledProblem {
    /// Compiles the spec: mesh, fluid, permeability field, TPFA
    /// transmissibilities (the dominant cost).
    pub fn compile(spec: ProblemSpec) -> Self {
        let mesh = CartesianMesh3::new(
            Extents::new(spec.nx, spec.ny, spec.nz),
            Spacing::new(10.0, 10.0, 4.0),
        );
        let fluid = Fluid::water_like();
        let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.4, spec.perm_seed);
        let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
        Self { mesh, fluid, trans }
    }
}

/// What a job runs: problem, scenario, engine.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The problem to compile (or fetch from the cache).
    pub problem: ProblemSpec,
    /// Applications of Algorithm 1 to run.
    pub applications: usize,
    /// Seed stream for the per-application pressure vectors (application
    /// `i` uses `pressure_seed + i`).
    pub pressure_seed: u64,
    /// Event-loop engine for this job's fabric.
    pub execution: Execution,
    /// Static-route fast-forwarding.
    pub fast_forward: bool,
    /// Fault-injection plan (empty = fault-free).
    pub fault_plan: FaultPlan,
    /// Events per step chunk — the preemption granularity
    /// ([`DEFAULT_CHUNK_EVENTS`] when `None`).
    pub checkpoint_every: Option<u64>,
}

impl JobSpec {
    /// A fault-free sequential job over the given problem.
    pub fn new(problem: ProblemSpec, applications: usize) -> Self {
        Self {
            problem,
            applications,
            pressure_seed: 0,
            execution: Execution::Sequential,
            fast_forward: true,
            fault_plan: FaultPlan::new(),
            checkpoint_every: None,
        }
    }
}

/// Why a job ended without a residual.
#[derive(Debug, Clone, PartialEq)]
pub enum JobFailure {
    /// The fabric surfaced a typed error.
    Fabric(FabricError),
    /// The simulator could not be built or restored.
    Build(String),
    /// The job was canceled.
    Canceled,
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting for a worker (possibly holding a checkpoint to resume).
    Queued,
    /// A worker is driving the fabric.
    Running,
    /// Preempted: complete state captured, waiting for `resume`.
    Checkpointed,
    /// All applications finished; the residual is available.
    Done,
    /// Ended without a residual.
    Failed(JobFailure),
}

/// Job handle returned by [`JobServer::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// A point-in-time view of a job, returned by [`JobServer::status`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job's id.
    pub id: JobId,
    /// Lifecycle state.
    pub state: JobState,
    /// Completed applications of Algorithm 1.
    pub applications_done: usize,
    /// Applications requested.
    pub applications_total: usize,
    /// Fabric events processed so far (across preemptions).
    pub events: u64,
    /// Fabric clock of this job's simulator.
    pub fabric_time: u64,
    /// Estimated completion fraction in `[0, 1]`: completed applications
    /// plus an in-flight fraction extrapolated from the events-per-
    /// application average. Exactly `1.0` once [`JobState::Done`].
    pub progress: f64,
    /// Cumulative fabric statistics of this job's simulator, refreshed at
    /// every chunk boundary (zeroed until the first chunk completes).
    pub stats: FabricStats,
    /// Whether the compiled problem came from the cache (`None` until a
    /// worker picked the job up the first time).
    pub cache_hit: Option<bool>,
    /// Nanoseconds the worker spent obtaining the compiled problem
    /// (compile on a miss, clone-of-`Arc` on a hit).
    pub setup_nanos: Option<u64>,
    /// Checkpoints captured for this job (preemptions).
    pub checkpoints: u64,
}

/// One progress notification, delivered to [`JobServer::subscribe`]rs at
/// chunk granularity (plus one final update at every settling transition).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressUpdate {
    /// Completed applications of Algorithm 1.
    pub applications_done: usize,
    /// Fabric events processed so far (across preemptions).
    pub events: u64,
    /// Fabric clock of the job's simulator.
    pub fabric_time: u64,
    /// Estimated completion fraction in `[0, 1]` (see
    /// [`JobStatus::progress`]).
    pub progress: f64,
    /// Estimated wall-clock seconds to completion, extrapolated from time
    /// spent so far vs progress made. `None` until enough progress exists
    /// to extrapolate from.
    pub eta_seconds: Option<f64>,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later or raise
    /// [`ServerConfig::queue_capacity`].
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Server sizing and telemetry.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs; submissions beyond this are
    /// rejected with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Telemetry hub (default [`MetricsHub::Null`] — every probe is a
    /// no-op). A live hub receives `serve_*` server series and is passed
    /// through to each job's driver for the `fabric_*`/`wall_*` series.
    pub metrics: MetricsHub,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            metrics: MetricsHub::Null,
        }
    }
}

struct Job {
    spec: JobSpec,
    state: JobState,
    applications_done: usize,
    events: u64,
    fabric_time: u64,
    /// Events accumulated inside the current in-flight application (the
    /// numerator of the in-app progress fraction).
    in_app_events: u64,
    /// Cumulative fabric statistics, refreshed at chunk boundaries.
    stats: FabricStats,
    cache_hit: Option<bool>,
    setup_nanos: Option<u64>,
    checkpoints: u64,
    preempt_requested: bool,
    cancel_requested: bool,
    checkpoint: Option<Checkpoint>,
    result: Option<Vec<f32>>,
    /// Wall-clock submission instant (the submit→done latency anchor).
    submitted_at: Instant,
    /// First worker claim (the ETA extrapolation anchor).
    run_started: Option<Instant>,
    /// Live progress subscriptions; dead receivers are pruned on send.
    subscribers: Vec<mpsc::Sender<ProgressUpdate>>,
    /// Last-N control/progress events, attached to failures.
    flight: FlightRecorder<String>,
}

impl Job {
    fn progress(&self) -> f64 {
        if self.state == JobState::Done {
            return 1.0;
        }
        let total = self.spec.applications.max(1) as f64;
        let mut p = self.applications_done as f64 / total;
        // In-app fraction, extrapolated from the mean events a completed
        // application took. The first application has no baseline and
        // contributes nothing until it completes.
        let prior = self.events - self.in_app_events;
        if self.applications_done > 0 && prior > 0 && self.in_app_events > 0 {
            let avg = prior as f64 / self.applications_done as f64;
            p += (self.in_app_events as f64 / avg).min(0.99) / total;
        }
        p.clamp(0.0, 1.0)
    }

    fn status(&self, id: JobId) -> JobStatus {
        JobStatus {
            id,
            state: self.state.clone(),
            applications_done: self.applications_done,
            applications_total: self.spec.applications,
            events: self.events,
            fabric_time: self.fabric_time,
            progress: self.progress(),
            stats: self.stats,
            cache_hit: self.cache_hit,
            setup_nanos: self.setup_nanos,
            checkpoints: self.checkpoints,
        }
    }

    /// Appends a line to the flight recorder, stamped with the job's
    /// deterministic coordinates (fabric time + cumulative events).
    fn record(&mut self, what: &str) {
        let line = format!("t={} ev={} {what}", self.fabric_time, self.events);
        self.flight.push(line);
    }

    /// Sends the current progress to every live subscriber, pruning the
    /// ones whose receiver is gone. `final_update` additionally drops all
    /// subscriptions so receivers observe disconnection.
    fn notify_subscribers(&mut self, final_update: bool) {
        if self.subscribers.is_empty() {
            return;
        }
        let progress = self.progress();
        let eta_seconds = match (self.run_started, progress) {
            (Some(t0), p) if p > 1e-6 && !final_update => {
                Some(t0.elapsed().as_secs_f64() * (1.0 - p) / p)
            }
            _ => None,
        };
        let update = ProgressUpdate {
            applications_done: self.applications_done,
            events: self.events,
            fabric_time: self.fabric_time,
            progress,
            eta_seconds,
        };
        self.subscribers.retain(|s| s.send(update.clone()).is_ok());
        if final_update {
            self.subscribers.clear();
        }
    }
}

#[derive(Default)]
struct ServerState {
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, Job>,
    next_id: u64,
    /// Workers currently driving a job (the busy gauge's source of truth;
    /// maintained under the state lock, so claim/finish cannot race it).
    busy: usize,
}

/// Preregistered `serve_*` telemetry handles. All no-ops when the server
/// was configured with a null hub.
struct ServerMetrics {
    queue_depth: Gauge,
    workers_busy: Gauge,
    jobs_submitted: Counter,
    jobs_done: Counter,
    jobs_failed: Counter,
    preempts: Counter,
    resumes: Counter,
    cancels: Counter,
    queue_rejections: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    job_latency_ns: Histogram,
    wait_wakeups: Counter,
    ckpt_capture_ns: Histogram,
    ckpt_restore_ns: Histogram,
}

impl ServerMetrics {
    fn new(hub: &MetricsHub) -> Self {
        let l: &[(&str, &str)] = &[];
        Self {
            queue_depth: hub.gauge("serve_queue_depth", "Jobs queued and not yet claimed by a worker", l),
            workers_busy: hub.gauge("serve_workers_busy", "Workers currently driving a job", l),
            jobs_submitted: hub.counter("serve_jobs_submitted_total", "Jobs accepted by submit", l),
            jobs_done: hub.counter("serve_jobs_done_total", "Jobs that finished with a residual", l),
            jobs_failed: hub.counter("serve_jobs_failed_total", "Jobs that ended without a residual (fault, build error, cancel)", l),
            preempts: hub.counter("serve_preempts_total", "Accepted preemption requests", l),
            resumes: hub.counter("serve_resumes_total", "Accepted resume requests", l),
            cancels: hub.counter("serve_cancels_total", "Accepted cancel requests", l),
            queue_rejections: hub.counter("serve_queue_rejections_total", "Submissions rejected because the bounded queue was full", l),
            cache_hits: hub.counter("serve_cache_hits_total", "Compiled-problem cache hits", l),
            cache_misses: hub.counter("serve_cache_misses_total", "Compiled-problem cache misses (full compiles)", l),
            job_latency_ns: hub.histogram("serve_job_latency_ns", "Submit-to-done wall-clock latency per completed job, nanoseconds", l),
            wait_wakeups: hub.counter("serve_wait_wakeups_total", "Condvar wakeups observed inside JobServer::wait (each is one state-change signal, not a poll — this stays small)", l),
            ckpt_capture_ns: hub.histogram("serve_checkpoint_capture_ns", "Wall-clock nanoseconds per checkpoint capture (fabric snapshot)", l),
            ckpt_restore_ns: hub.histogram("serve_checkpoint_restore_ns", "Wall-clock nanoseconds per checkpoint restore into a fresh simulator", l),
        }
    }
}

struct Inner {
    state: Mutex<ServerState>,
    /// Wakes workers when the queue grows or shutdown begins.
    work_cv: Condvar,
    /// Wakes [`JobServer::wait`]ers on any job state change.
    change_cv: Condvar,
    cache: Mutex<HashMap<u64, Arc<CompiledProblem>>>,
    config: ServerConfig,
    shutdown: AtomicBool,
    metrics: ServerMetrics,
}

/// The job server. Dropping it shuts the workers down (running jobs
/// finish their current chunk and are checkpointed).
pub struct JobServer {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl JobServer {
    /// Starts the worker pool.
    pub fn start(config: ServerConfig) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        let worker_count = config.workers;
        let metrics = ServerMetrics::new(&config.metrics);
        let inner = Arc::new(Inner {
            state: Mutex::new(ServerState::default()),
            work_cv: Condvar::new(),
            change_cv: Condvar::new(),
            cache: Mutex::new(HashMap::new()),
            config,
            shutdown: AtomicBool::new(false),
            metrics,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("wse-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Submits a job; rejected when the queue is at capacity.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let mut st = self.inner.state.lock().unwrap();
        if st.queue.len() >= self.inner.config.queue_capacity {
            self.inner.metrics.queue_rejections.inc();
            return Err(SubmitError::QueueFull {
                capacity: self.inner.config.queue_capacity,
            });
        }
        let id = JobId(st.next_id);
        st.next_id += 1;
        let mut job = Job {
            spec,
            state: JobState::Queued,
            applications_done: 0,
            events: 0,
            fabric_time: 0,
            in_app_events: 0,
            stats: FabricStats::default(),
            cache_hit: None,
            setup_nanos: None,
            checkpoints: 0,
            preempt_requested: false,
            cancel_requested: false,
            checkpoint: None,
            result: None,
            submitted_at: Instant::now(),
            run_started: None,
            subscribers: Vec::new(),
            flight: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
        };
        job.record("submitted");
        st.jobs.insert(id, job);
        st.queue.push_back(id);
        self.inner.metrics.jobs_submitted.inc();
        self.inner
            .metrics
            .queue_depth
            .set_u64(st.queue.len() as u64);
        drop(st);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// Point-in-time view of a job; `None` for unknown ids.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).map(|j| j.status(id))
    }

    /// Requests preemption. A queued job parks immediately; a running job
    /// parks at its next chunk boundary with a captured checkpoint.
    /// Returns false for unknown ids and jobs already terminal.
    pub fn preempt(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            return false;
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Checkpointed;
                job.record("preempted while queued");
                job.notify_subscribers(true);
                st.queue.retain(|&q| q != id);
                self.inner.metrics.preempts.inc();
                self.inner
                    .metrics
                    .queue_depth
                    .set_u64(st.queue.len() as u64);
                self.inner.change_cv.notify_all();
                true
            }
            JobState::Running => {
                job.preempt_requested = true;
                job.record("preempt requested");
                self.inner.metrics.preempts.inc();
                true
            }
            _ => false,
        }
    }

    /// Re-enqueues a checkpointed job; any worker may pick it up and it
    /// continues from its checkpoint bit-identically. Returns false
    /// unless the job is currently [`JobState::Checkpointed`].
    pub fn resume(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            return false;
        };
        if job.state != JobState::Checkpointed {
            return false;
        }
        job.state = JobState::Queued;
        job.preempt_requested = false;
        job.record("resumed (re-enqueued)");
        st.queue.push_back(id);
        self.inner.metrics.resumes.inc();
        self.inner
            .metrics
            .queue_depth
            .set_u64(st.queue.len() as u64);
        drop(st);
        self.inner.work_cv.notify_one();
        true
    }

    /// Cancels a job: queued and checkpointed jobs fail immediately;
    /// running jobs stop at their next chunk boundary. Returns false for
    /// unknown ids and jobs already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            return false;
        };
        match job.state {
            JobState::Queued | JobState::Checkpointed => {
                job.state = JobState::Failed(JobFailure::Canceled);
                job.checkpoint = None;
                job.record("canceled before running");
                job.notify_subscribers(true);
                st.queue.retain(|&q| q != id);
                self.inner.metrics.cancels.inc();
                self.inner.metrics.jobs_failed.inc();
                self.inner
                    .metrics
                    .queue_depth
                    .set_u64(st.queue.len() as u64);
                self.inner.change_cv.notify_all();
                true
            }
            JobState::Running => {
                job.cancel_requested = true;
                job.record("cancel requested");
                self.inner.metrics.cancels.inc();
                true
            }
            _ => false,
        }
    }

    /// Blocks until the job leaves the Queued/Running states, returning
    /// its status (`None` for unknown ids). A checkpointed job counts as
    /// settled — it will not progress without [`JobServer::resume`]. A
    /// queued job also counts as settled once shutdown has begun (no
    /// worker will ever claim it).
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(job) => {
                    let settled = !matches!(job.state, JobState::Queued | JobState::Running)
                        || (job.state == JobState::Queued
                            && self.inner.shutdown.load(Ordering::SeqCst));
                    if settled {
                        return Some(job.status(id));
                    }
                }
            }
            st = self.inner.change_cv.wait(st).unwrap();
            // Each pass through here is one condvar signal, not a poll:
            // the counter's smallness is the no-busy-wait proof the tests
            // pin (`wait_blocks_without_busy_waiting`).
            self.inner.metrics.wait_wakeups.inc();
        }
    }

    /// Subscribes to a job's progress: the returned receiver yields one
    /// [`ProgressUpdate`] per completed chunk plus a final update at every
    /// settling transition (done, failed, checkpointed), after which the
    /// sender side is dropped and the channel disconnects. The first
    /// update (the job's current state) is delivered immediately, so
    /// subscribing to an already-settled job still yields one snapshot.
    /// `None` for unknown ids. Receivers that fall behind simply buffer —
    /// the channel is unbounded and updates are small; dropping the
    /// receiver unsubscribes at the next send.
    pub fn subscribe(&self, id: JobId) -> Option<mpsc::Receiver<ProgressUpdate>> {
        let mut st = self.inner.state.lock().unwrap();
        let job = st.jobs.get_mut(&id)?;
        let (tx, rx) = mpsc::channel();
        job.subscribers.push(tx);
        let settled = !matches!(job.state, JobState::Queued | JobState::Running);
        job.notify_subscribers(settled);
        Some(rx)
    }

    /// The job's flight-recorder tail: its last-N control/progress events,
    /// oldest first. Most useful on a failed job, where it is the context
    /// that arrived with the typed error; available for any known id.
    pub fn flight_of(&self, id: JobId) -> Option<Vec<String>> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).map(|j| j.flight.to_vec())
    }

    /// The failure with its flight-recorder context attached: `(why, last
    /// N events)`. `None` unless the job is [`JobState::Failed`].
    pub fn failure_of(&self, id: JobId) -> Option<(JobFailure, Vec<String>)> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).and_then(|j| match &j.state {
            JobState::Failed(f) => Some((f.clone(), j.flight.to_vec())),
            _ => None,
        })
    }

    /// The telemetry hub this server was configured with (null unless
    /// [`ServerConfig::metrics`] installed a live one) — e.g. to render
    /// [`MetricsHub::prometheus_text`] after a run.
    pub fn metrics(&self) -> &MetricsHub {
        &self.inner.config.metrics
    }

    /// The finished job's residual (mesh linear order); `None` unless the
    /// job is [`JobState::Done`].
    pub fn result(&self, id: JobId) -> Option<Vec<f32>> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).and_then(|j| j.result.clone())
    }

    /// The job's parked checkpoint, if it is currently checkpointed —
    /// e.g. to persist it with [`Checkpoint::write_file`].
    pub fn checkpoint_of(&self, id: JobId) -> Option<Checkpoint> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).and_then(|j| j.checkpoint.clone())
    }

    /// Compiled problems currently cached.
    pub fn cached_problems(&self) -> usize {
        self.inner.cache.lock().unwrap().len()
    }

    /// Stops accepting work and joins the workers. Running jobs are
    /// checkpointed at their next chunk boundary; queued jobs stay queued
    /// (their state is preserved until the server is dropped).
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        self.inner.change_cv.notify_all();
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Obtains the compiled problem, recording whether it was a cache hit and
/// how long the acquisition took.
fn obtain_problem(inner: &Inner, spec: ProblemSpec) -> (Arc<CompiledProblem>, bool, u64) {
    let key = spec.content_hash();
    let start = Instant::now();
    if let Some(hit) = inner.cache.lock().unwrap().get(&key) {
        return (Arc::clone(hit), true, start.elapsed().as_nanos() as u64);
    }
    // Compile outside the cache lock: a slow compile must not serialize
    // unrelated workers. A concurrent duplicate compile is possible and
    // harmless — last insert wins, both Arcs are equivalent.
    let compiled = Arc::new(CompiledProblem::compile(spec));
    inner
        .cache
        .lock()
        .unwrap()
        .insert(key, Arc::clone(&compiled));
    (compiled, false, start.elapsed().as_nanos() as u64)
}

fn build_simulator(
    problem: &CompiledProblem,
    spec: &JobSpec,
    metrics: &MetricsHub,
) -> Result<DataflowFluxSimulator, String> {
    DataflowFluxSimulator::builder(&problem.mesh)
        .fluid(&problem.fluid)
        .transmissibilities(&problem.trans)
        .execution(spec.execution)
        .fast_forward(spec.fast_forward)
        .fault_plan(spec.fault_plan.clone())
        .metrics(metrics.clone())
        .build()
        .map_err(|e| e.to_string())
}

fn pressure_for(problem: &CompiledProblem, spec: &JobSpec, application: usize) -> Vec<f32> {
    FlowState::<f32>::varied(
        &problem.mesh,
        1.0e7,
        1.2e7,
        spec.pressure_seed + application as u64,
    )
    .pressure()
    .to_vec()
}

enum ChunkOutcome {
    Continue,
    Preempt,
    Cancel,
}

fn worker_loop(inner: &Inner) {
    loop {
        let id = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    st.busy += 1;
                    inner.metrics.queue_depth.set_u64(st.queue.len() as u64);
                    inner.metrics.workers_busy.set_u64(st.busy as u64);
                    break id;
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };
        run_job(inner, id);
        {
            let mut st = inner.state.lock().unwrap();
            st.busy -= 1;
            inner.metrics.workers_busy.set_u64(st.busy as u64);
        }
        inner.change_cv.notify_all();
    }
}

/// Drives one job until it finishes, fails, or parks on a checkpoint.
fn run_job(inner: &Inner, id: JobId) {
    // Claim the job and take its resume checkpoint, if any.
    let (spec, resume_from) = {
        let mut st = inner.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            return;
        };
        if job.state != JobState::Queued {
            return; // canceled between dequeue and claim
        }
        job.state = JobState::Running;
        if job.run_started.is_none() {
            job.run_started = Some(Instant::now());
        }
        job.record("claimed by worker");
        (job.spec.clone(), job.checkpoint.take())
    };

    let (problem, cache_hit, setup_nanos) = obtain_problem(inner, spec.problem);
    if cache_hit {
        inner.metrics.cache_hits.inc();
    } else {
        inner.metrics.cache_misses.inc();
    }
    {
        let mut st = inner.state.lock().unwrap();
        if let Some(job) = st.jobs.get_mut(&id) {
            // First pickup wins: a resumed job keeps its original figures.
            if job.cache_hit.is_none() {
                job.cache_hit = Some(cache_hit);
                job.setup_nanos = Some(setup_nanos);
            }
            job.record(if cache_hit {
                "compiled problem from cache"
            } else {
                "compiled problem (cache miss)"
            });
        }
    }

    let mut sim = match build_simulator(&problem, &spec, &inner.config.metrics) {
        Ok(sim) => sim,
        Err(e) => return fail_job(inner, id, JobFailure::Build(e)),
    };
    if let Some(ckpt) = resume_from {
        let t0 = Instant::now();
        if let Err(e) = ckpt.restore_into(&mut sim) {
            return fail_job(inner, id, JobFailure::Build(e.to_string()));
        }
        inner
            .metrics
            .ckpt_restore_ns
            .observe(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        let mut st = inner.state.lock().unwrap();
        if let Some(job) = st.jobs.get_mut(&id) {
            job.record("checkpoint restored");
        }
    }

    let chunk = spec.checkpoint_every.unwrap_or(DEFAULT_CHUNK_EVENTS).max(1);
    let mut last_residual: Option<Vec<f32>> = None;
    // Events inside the current application (the in-app progress
    // numerator). A mid-application resume restarts it at zero — the
    // fraction is an estimate and recovers within one application.
    let mut in_app: u64 = 0;
    // `applications()` survives the checkpoint round-trip, so a resumed
    // job continues exactly where it parked — mid-application included
    // (`in_flight` skips the re-inject).
    while sim.applications() < spec.applications {
        if !sim.in_flight() {
            let pressure = pressure_for(&problem, &spec, sim.applications());
            sim.begin_apply(&pressure);
            in_app = 0;
        }
        loop {
            let step = match sim.step_events(chunk) {
                Ok(step) => step,
                Err(e) => return fail_job(inner, id, JobFailure::Fabric(e)),
            };
            in_app += step.events;
            match note_progress(inner, id, step.events, step.fabric_time, in_app, &sim) {
                ChunkOutcome::Continue => {}
                ChunkOutcome::Preempt => return park_job(inner, id, &sim),
                ChunkOutcome::Cancel => return fail_job(inner, id, JobFailure::Canceled),
            }
            if step.complete {
                break;
            }
        }
        match sim.finish_apply() {
            Ok(residual) => last_residual = Some(residual),
            Err(e) => return fail_job(inner, id, JobFailure::Fabric(e)),
        }
        in_app = 0;
        let mut st = inner.state.lock().unwrap();
        if let Some(job) = st.jobs.get_mut(&id) {
            job.applications_done = sim.applications();
            job.in_app_events = 0;
            job.stats = sim.stats();
            job.record("application complete");
        }
    }

    let mut st = inner.state.lock().unwrap();
    if let Some(job) = st.jobs.get_mut(&id) {
        job.applications_done = sim.applications();
        job.stats = sim.stats();
        job.result = last_residual;
        job.state = JobState::Done;
        job.record("done");
        job.notify_subscribers(true);
        inner.metrics.jobs_done.inc();
        inner
            .metrics
            .job_latency_ns
            .observe(job.submitted_at.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// Records chunk progress and reports any pending control request.
/// Shutdown counts as preemption so in-flight work parks restorably.
fn note_progress(
    inner: &Inner,
    id: JobId,
    events: u64,
    fabric_time: u64,
    in_app: u64,
    sim: &DataflowFluxSimulator,
) -> ChunkOutcome {
    let mut st = inner.state.lock().unwrap();
    let Some(job) = st.jobs.get_mut(&id) else {
        return ChunkOutcome::Cancel;
    };
    job.events += events;
    job.fabric_time = fabric_time;
    job.in_app_events = in_app;
    job.applications_done = sim.applications();
    job.stats = sim.stats();
    job.notify_subscribers(false);
    if job.cancel_requested {
        ChunkOutcome::Cancel
    } else if job.preempt_requested || inner.shutdown.load(Ordering::SeqCst) {
        ChunkOutcome::Preempt
    } else {
        ChunkOutcome::Continue
    }
}

fn park_job(inner: &Inner, id: JobId, sim: &DataflowFluxSimulator) {
    let t0 = Instant::now();
    let ckpt = Checkpoint::capture(sim);
    inner
        .metrics
        .ckpt_capture_ns
        .observe(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    let mut st = inner.state.lock().unwrap();
    if let Some(job) = st.jobs.get_mut(&id) {
        job.applications_done = sim.applications();
        job.checkpoint = Some(ckpt);
        job.checkpoints += 1;
        job.preempt_requested = false;
        job.state = JobState::Checkpointed;
        job.record("checkpoint captured (parked)");
        job.notify_subscribers(true);
    }
}

fn fail_job(inner: &Inner, id: JobId, failure: JobFailure) {
    let mut st = inner.state.lock().unwrap();
    if let Some(job) = st.jobs.get_mut(&id) {
        job.record(&format!("failed: {failure:?}"));
        job.state = JobState::Failed(failure);
        job.cancel_requested = false;
        job.notify_subscribers(true);
        inner.metrics.jobs_failed.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem() -> ProblemSpec {
        ProblemSpec {
            nx: 5,
            ny: 4,
            nz: 3,
            perm_seed: 11,
        }
    }

    fn direct_residual(spec: &JobSpec) -> Vec<f32> {
        let problem = CompiledProblem::compile(spec.problem);
        let mut sim = build_simulator(&problem, spec, &MetricsHub::Null).unwrap();
        let mut last = Vec::new();
        for i in 0..spec.applications {
            last = sim.apply(&pressure_for(&problem, spec, i)).unwrap();
        }
        last
    }

    #[test]
    fn job_runs_to_done_and_matches_direct_run() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        });
        let spec = JobSpec::new(small_problem(), 3);
        let expected = direct_residual(&spec);
        let id = server.submit(spec).unwrap();
        let status = server.wait(id).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert_eq!(status.applications_done, 3);
        assert!(status.events > 0);
        assert_eq!(server.result(id).unwrap(), expected);
        server.shutdown();
    }

    #[test]
    fn repeat_submission_hits_the_compiled_layout_cache() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        });
        let first = server.submit(JobSpec::new(small_problem(), 1)).unwrap();
        let s1 = server.wait(first).unwrap();
        assert_eq!(s1.cache_hit, Some(false));
        let second = server.submit(JobSpec::new(small_problem(), 1)).unwrap();
        let s2 = server.wait(second).unwrap();
        assert_eq!(s2.cache_hit, Some(true));
        assert_eq!(server.result(first), server.result(second));
        assert_eq!(server.cached_problems(), 1);
        // The hit skips the compile: acquiring the Arc must be faster
        // than building transmissibilities was. Guard loosely (10x) so a
        // noisy scheduler cannot flake the assertion.
        assert!(
            s2.setup_nanos.unwrap() < s1.setup_nanos.unwrap() / 10 + 1_000_000,
            "hit {}ns vs miss {}ns",
            s2.setup_nanos.unwrap(),
            s1.setup_nanos.unwrap()
        );
        server.shutdown();
    }

    #[test]
    fn preempt_resume_is_bit_identical() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        });
        let mut spec = JobSpec::new(small_problem(), 3);
        spec.checkpoint_every = Some(16); // hundreds of park opportunities
        let expected = direct_residual(&spec);
        // Park the lone worker behind a long blocker so the target is
        // preempted while still Queued — deterministic even on a
        // one-core host, where the worker thread can otherwise run a
        // tiny job to completion before this thread is scheduled again.
        let mut blocker = JobSpec::new(small_problem(), 10_000);
        blocker.checkpoint_every = Some(16);
        let blocker = server.submit(blocker).unwrap();
        let id = server.submit(spec).unwrap();
        assert!(server.preempt(id), "a queued job accepts preempt");
        assert_eq!(server.status(id).unwrap().state, JobState::Checkpointed);
        assert!(server.cancel(blocker), "blocker is live");
        let mut preemptions = 0u32;
        loop {
            let status = server.wait(id).unwrap();
            match status.state {
                JobState::Checkpointed => {
                    preemptions += 1;
                    assert!(server.resume(id));
                    if preemptions < 3 {
                        // Best effort: the tiny job can settle before
                        // the request lands; wait() then reports Done
                        // and both outcomes are covered below.
                        server.preempt(id);
                    }
                }
                JobState::Done => break,
                other => panic!("unexpected state {other:?}"),
            }
        }
        assert!(preemptions >= 1, "preemption never landed");
        assert_eq!(server.result(id).unwrap(), expected);
        server.shutdown();
    }

    #[test]
    fn preempt_parks_and_cancel_is_terminal() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        });
        let mut spec = JobSpec::new(small_problem(), 50);
        spec.checkpoint_every = Some(32);
        let id = server.submit(spec).unwrap();
        assert!(server.preempt(id));
        let status = server.wait(id).unwrap();
        if status.state == JobState::Checkpointed {
            assert!(server.cancel(id));
            let s = server.wait(id).unwrap();
            assert_eq!(s.state, JobState::Failed(JobFailure::Canceled));
        } else {
            // The job finished before the preempt landed — fine; cancel
            // of a terminal job must then be refused.
            assert!(!server.cancel(id));
        }
        assert!(!server.resume(id), "cannot resume a terminal job");
        server.shutdown();
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        });
        // A long job occupies the worker; fill the queue behind it.
        let mut long = JobSpec::new(small_problem(), 100);
        long.checkpoint_every = Some(32);
        let running = server.submit(long.clone()).unwrap();
        // Give the worker a moment to claim the first job, then fill the
        // single queue slot and overflow it. Claiming is quick, but don't
        // race: retry until the queue has drained the first entry.
        let queued = loop {
            match server.submit(long.clone()) {
                Ok(id) => break id,
                Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => panic!("{e}"),
            }
        };
        let overflow = loop {
            match server.submit(long.clone()) {
                Err(SubmitError::QueueFull { capacity }) => break capacity,
                Ok(extra) => {
                    // Queue drained faster than we filled it; park this
                    // one and retry.
                    server.cancel(extra);
                    std::thread::yield_now();
                }
                Err(e) => panic!("{e}"),
            }
        };
        assert_eq!(overflow, 1);
        server.cancel(running);
        server.cancel(queued);
        server.shutdown();
    }

    #[test]
    fn wait_blocks_without_busy_waiting() {
        let hub = MetricsHub::new_live();
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
            metrics: hub.clone(),
        });
        // Small chunks force hundreds of chunk boundaries: a polling wait
        // would spin through thousands of loop iterations over this job's
        // wall time. The condvar wait only wakes on actual state-change
        // signals, and the registry counts every wakeup.
        let mut spec = JobSpec::new(small_problem(), 2);
        spec.checkpoint_every = Some(64);
        let id = server.submit(spec).unwrap();
        let status = server.wait(id).unwrap();
        assert_eq!(status.state, JobState::Done);
        let wakeups = hub.counter("serve_wait_wakeups_total", "", &[]).get();
        assert!(
            wakeups < 50,
            "wait() woke {wakeups} times — that is polling, not blocking"
        );
        server.shutdown();
    }

    #[test]
    fn subscribers_stream_progress_to_completion() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        });
        let mut spec = JobSpec::new(small_problem(), 2);
        spec.checkpoint_every = Some(64); // many chunk-boundary updates
        let id = server.submit(spec).unwrap();
        let rx = server.subscribe(id).expect("known id");
        assert!(server.subscribe(JobId(9999)).is_none());
        // Drain until the final update drops the sender (job settled).
        let updates: Vec<ProgressUpdate> = rx.iter().collect();
        assert!(!updates.is_empty(), "at least the immediate snapshot");
        for w in updates.windows(2) {
            assert!(w[1].events >= w[0].events, "events are monotone");
        }
        let last = updates.last().unwrap();
        assert_eq!(last.applications_done, 2);
        assert!((last.progress - 1.0).abs() < 1e-12, "final progress is 1.0");
        assert_eq!(server.status(id).unwrap().state, JobState::Done);
        server.shutdown();
    }

    #[test]
    fn failure_carries_flight_recorder_context() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        });
        // Park the worker behind a blocker so the target stays queued and
        // the cancel lands deterministically.
        let mut blocker = JobSpec::new(small_problem(), 10_000);
        blocker.checkpoint_every = Some(16);
        let blocker = server.submit(blocker).unwrap();
        let id = server.submit(JobSpec::new(small_problem(), 1)).unwrap();
        assert!(server.cancel(id));
        let status = server.wait(id).unwrap();
        assert_eq!(status.state, JobState::Failed(JobFailure::Canceled));
        let (failure, flight) = server.failure_of(id).expect("failed job");
        assert_eq!(failure, JobFailure::Canceled);
        assert!(!flight.is_empty(), "failure arrives with flight context");
        assert!(
            flight.iter().any(|l| l.contains("canceled")),
            "tail names the terminal transition: {flight:?}"
        );
        // Non-failed jobs expose no failure, but their flight is readable.
        assert!(server.failure_of(blocker).is_none());
        assert!(!server.flight_of(blocker).unwrap().is_empty());
        server.cancel(blocker);
        server.shutdown();
    }

    #[test]
    fn server_metrics_capture_lifecycle_counters() {
        let hub = MetricsHub::new_live();
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
            metrics: hub.clone(),
        });
        let a = server.submit(JobSpec::new(small_problem(), 1)).unwrap();
        server.wait(a).unwrap();
        let b = server.submit(JobSpec::new(small_problem(), 1)).unwrap();
        let sb = server.wait(b).unwrap();
        assert!((sb.progress - 1.0).abs() < 1e-12);
        assert_eq!(sb.stats.num_pes, 5 * 4, "stats are populated");
        server.shutdown();
        assert_eq!(hub.counter("serve_jobs_submitted_total", "", &[]).get(), 2);
        assert_eq!(hub.counter("serve_jobs_done_total", "", &[]).get(), 2);
        assert_eq!(hub.counter("serve_jobs_failed_total", "", &[]).get(), 0);
        assert_eq!(hub.counter("serve_cache_misses_total", "", &[]).get(), 1);
        assert_eq!(hub.counter("serve_cache_hits_total", "", &[]).get(), 1);
        let text = hub.prometheus_text();
        assert!(text.contains("serve_jobs_done_total 2"));
        assert!(text.contains("serve_job_latency_ns_count 2"));
        // The drivers published their fabric series through the same hub.
        assert!(text.contains("fabric_events_total{engine=\"sequential\"}"));
    }

    #[test]
    fn problem_hash_distinguishes_specs() {
        let a = small_problem();
        let mut b = a;
        b.perm_seed += 1;
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash(), small_problem().content_hash());
    }
}
