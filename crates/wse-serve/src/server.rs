//! A multi-tenant simulation job server.
//!
//! [`JobServer`] owns a pool of worker threads and a bounded submission
//! queue. Each [`JobSpec`] names a standard problem (mesh geometry + a
//! permeability seed), a scenario (how many applications of Algorithm 1,
//! with which pressure seed), and an engine configuration. Workers compile
//! the problem (mesh, transmissibilities — the expensive host-side setup),
//! build the simulator, and drive it with the stepped driver API so jobs
//! can be **preempted** at any event boundary: a preempted job's complete
//! state is captured as a [`Checkpoint`] and the worker moves on; `resume`
//! re-enqueues it and any worker continues it bit-identically — even on a
//! different engine than it started on.
//!
//! Compiled problems are cached by content hash: a repeat submission of
//! the same `ProblemSpec` skips the compile entirely and reports
//! `cache_hit = true` with its measured setup time, so the saving is
//! observable, not asserted.
//!
//! Everything is `std`-only (threads, `Mutex`/`Condvar`) — the container
//! has no async runtime and none is needed: jobs are CPU-bound and the
//! control API is polling + blocking waits.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use fv_core::eos::Fluid;
use fv_core::fields::PermeabilityField;
use fv_core::mesh::{CartesianMesh3, Extents, Spacing};
use fv_core::state::FlowState;
use fv_core::trans::{StencilKind, Transmissibilities};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_sim::fabric::{Execution, FabricError};
use wse_sim::fault::FaultPlan;

use crate::checkpoint::Checkpoint;

/// Events per [`DataflowFluxSimulator::step_events`] chunk when the job
/// does not set [`JobSpec::checkpoint_every`]. Small enough for prompt
/// preemption, large enough to amortize the pause machinery.
pub const DEFAULT_CHUNK_EVENTS: u64 = 200_000;

/// A standard problem by content: geometry plus the permeability seed.
/// Mirrors the benchmark harness's synthetic workload (uniform spacing,
/// water-like fluid, log-normal permeability, ten-point stencil).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemSpec {
    /// PE-grid width (mesh X extent).
    pub nx: usize,
    /// PE-grid height (mesh Y extent).
    pub ny: usize,
    /// Column height (mesh Z extent, in PE memory).
    pub nz: usize,
    /// Seed of the log-normal permeability field.
    pub perm_seed: u64,
}

impl ProblemSpec {
    /// FNV-1a content hash — the compiled-layout cache key.
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for v in [
            self.nx as u64,
            self.ny as u64,
            self.nz as u64,
            self.perm_seed,
        ] {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }
}

/// A compiled problem: the host-side artifacts that are expensive to
/// build and identical for every job naming the same [`ProblemSpec`].
pub struct CompiledProblem {
    /// The Cartesian mesh.
    pub mesh: CartesianMesh3,
    /// The working fluid.
    pub fluid: Fluid,
    /// The full ten-point transmissibility set.
    pub trans: Transmissibilities,
}

impl CompiledProblem {
    /// Compiles the spec: mesh, fluid, permeability field, TPFA
    /// transmissibilities (the dominant cost).
    pub fn compile(spec: ProblemSpec) -> Self {
        let mesh = CartesianMesh3::new(
            Extents::new(spec.nx, spec.ny, spec.nz),
            Spacing::new(10.0, 10.0, 4.0),
        );
        let fluid = Fluid::water_like();
        let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.4, spec.perm_seed);
        let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
        Self { mesh, fluid, trans }
    }
}

/// What a job runs: problem, scenario, engine.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The problem to compile (or fetch from the cache).
    pub problem: ProblemSpec,
    /// Applications of Algorithm 1 to run.
    pub applications: usize,
    /// Seed stream for the per-application pressure vectors (application
    /// `i` uses `pressure_seed + i`).
    pub pressure_seed: u64,
    /// Event-loop engine for this job's fabric.
    pub execution: Execution,
    /// Static-route fast-forwarding.
    pub fast_forward: bool,
    /// Fault-injection plan (empty = fault-free).
    pub fault_plan: FaultPlan,
    /// Events per step chunk — the preemption granularity
    /// ([`DEFAULT_CHUNK_EVENTS`] when `None`).
    pub checkpoint_every: Option<u64>,
}

impl JobSpec {
    /// A fault-free sequential job over the given problem.
    pub fn new(problem: ProblemSpec, applications: usize) -> Self {
        Self {
            problem,
            applications,
            pressure_seed: 0,
            execution: Execution::Sequential,
            fast_forward: true,
            fault_plan: FaultPlan::new(),
            checkpoint_every: None,
        }
    }
}

/// Why a job ended without a residual.
#[derive(Debug, Clone, PartialEq)]
pub enum JobFailure {
    /// The fabric surfaced a typed error.
    Fabric(FabricError),
    /// The simulator could not be built or restored.
    Build(String),
    /// The job was canceled.
    Canceled,
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting for a worker (possibly holding a checkpoint to resume).
    Queued,
    /// A worker is driving the fabric.
    Running,
    /// Preempted: complete state captured, waiting for `resume`.
    Checkpointed,
    /// All applications finished; the residual is available.
    Done,
    /// Ended without a residual.
    Failed(JobFailure),
}

/// Job handle returned by [`JobServer::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// A point-in-time view of a job, returned by [`JobServer::status`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job's id.
    pub id: JobId,
    /// Lifecycle state.
    pub state: JobState,
    /// Completed applications of Algorithm 1.
    pub applications_done: usize,
    /// Applications requested.
    pub applications_total: usize,
    /// Fabric events processed so far (across preemptions).
    pub events: u64,
    /// Fabric clock of this job's simulator.
    pub fabric_time: u64,
    /// Whether the compiled problem came from the cache (`None` until a
    /// worker picked the job up the first time).
    pub cache_hit: Option<bool>,
    /// Nanoseconds the worker spent obtaining the compiled problem
    /// (compile on a miss, clone-of-`Arc` on a hit).
    pub setup_nanos: Option<u64>,
    /// Checkpoints captured for this job (preemptions).
    pub checkpoints: u64,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later or raise
    /// [`ServerConfig::queue_capacity`].
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Server sizing.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs; submissions beyond this are
    /// rejected with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
        }
    }
}

struct Job {
    spec: JobSpec,
    state: JobState,
    applications_done: usize,
    events: u64,
    fabric_time: u64,
    cache_hit: Option<bool>,
    setup_nanos: Option<u64>,
    checkpoints: u64,
    preempt_requested: bool,
    cancel_requested: bool,
    checkpoint: Option<Checkpoint>,
    result: Option<Vec<f32>>,
}

impl Job {
    fn status(&self, id: JobId) -> JobStatus {
        JobStatus {
            id,
            state: self.state.clone(),
            applications_done: self.applications_done,
            applications_total: self.spec.applications,
            events: self.events,
            fabric_time: self.fabric_time,
            cache_hit: self.cache_hit,
            setup_nanos: self.setup_nanos,
            checkpoints: self.checkpoints,
        }
    }
}

#[derive(Default)]
struct ServerState {
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, Job>,
    next_id: u64,
}

struct Inner {
    state: Mutex<ServerState>,
    /// Wakes workers when the queue grows or shutdown begins.
    work_cv: Condvar,
    /// Wakes [`JobServer::wait`]ers on any job state change.
    change_cv: Condvar,
    cache: Mutex<HashMap<u64, Arc<CompiledProblem>>>,
    config: ServerConfig,
    shutdown: AtomicBool,
}

/// The job server. Dropping it shuts the workers down (running jobs
/// finish their current chunk and are checkpointed).
pub struct JobServer {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl JobServer {
    /// Starts the worker pool.
    pub fn start(config: ServerConfig) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        let inner = Arc::new(Inner {
            state: Mutex::new(ServerState::default()),
            work_cv: Condvar::new(),
            change_cv: Condvar::new(),
            cache: Mutex::new(HashMap::new()),
            config,
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("wse-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Submits a job; rejected when the queue is at capacity.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let mut st = self.inner.state.lock().unwrap();
        if st.queue.len() >= self.inner.config.queue_capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.inner.config.queue_capacity,
            });
        }
        let id = JobId(st.next_id);
        st.next_id += 1;
        st.jobs.insert(
            id,
            Job {
                spec,
                state: JobState::Queued,
                applications_done: 0,
                events: 0,
                fabric_time: 0,
                cache_hit: None,
                setup_nanos: None,
                checkpoints: 0,
                preempt_requested: false,
                cancel_requested: false,
                checkpoint: None,
                result: None,
            },
        );
        st.queue.push_back(id);
        drop(st);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// Point-in-time view of a job; `None` for unknown ids.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).map(|j| j.status(id))
    }

    /// Requests preemption. A queued job parks immediately; a running job
    /// parks at its next chunk boundary with a captured checkpoint.
    /// Returns false for unknown ids and jobs already terminal.
    pub fn preempt(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            return false;
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Checkpointed;
                st.queue.retain(|&q| q != id);
                self.inner.change_cv.notify_all();
                true
            }
            JobState::Running => {
                job.preempt_requested = true;
                true
            }
            _ => false,
        }
    }

    /// Re-enqueues a checkpointed job; any worker may pick it up and it
    /// continues from its checkpoint bit-identically. Returns false
    /// unless the job is currently [`JobState::Checkpointed`].
    pub fn resume(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            return false;
        };
        if job.state != JobState::Checkpointed {
            return false;
        }
        job.state = JobState::Queued;
        job.preempt_requested = false;
        st.queue.push_back(id);
        drop(st);
        self.inner.work_cv.notify_one();
        true
    }

    /// Cancels a job: queued and checkpointed jobs fail immediately;
    /// running jobs stop at their next chunk boundary. Returns false for
    /// unknown ids and jobs already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            return false;
        };
        match job.state {
            JobState::Queued | JobState::Checkpointed => {
                job.state = JobState::Failed(JobFailure::Canceled);
                job.checkpoint = None;
                st.queue.retain(|&q| q != id);
                self.inner.change_cv.notify_all();
                true
            }
            JobState::Running => {
                job.cancel_requested = true;
                true
            }
            _ => false,
        }
    }

    /// Blocks until the job leaves the Queued/Running states, returning
    /// its status (`None` for unknown ids). A checkpointed job counts as
    /// settled — it will not progress without [`JobServer::resume`]. A
    /// queued job also counts as settled once shutdown has begun (no
    /// worker will ever claim it).
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(job) => {
                    let settled = !matches!(job.state, JobState::Queued | JobState::Running)
                        || (job.state == JobState::Queued
                            && self.inner.shutdown.load(Ordering::SeqCst));
                    if settled {
                        return Some(job.status(id));
                    }
                }
            }
            st = self.inner.change_cv.wait(st).unwrap();
        }
    }

    /// The finished job's residual (mesh linear order); `None` unless the
    /// job is [`JobState::Done`].
    pub fn result(&self, id: JobId) -> Option<Vec<f32>> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).and_then(|j| j.result.clone())
    }

    /// The job's parked checkpoint, if it is currently checkpointed —
    /// e.g. to persist it with [`Checkpoint::write_file`].
    pub fn checkpoint_of(&self, id: JobId) -> Option<Checkpoint> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).and_then(|j| j.checkpoint.clone())
    }

    /// Compiled problems currently cached.
    pub fn cached_problems(&self) -> usize {
        self.inner.cache.lock().unwrap().len()
    }

    /// Stops accepting work and joins the workers. Running jobs are
    /// checkpointed at their next chunk boundary; queued jobs stay queued
    /// (their state is preserved until the server is dropped).
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        self.inner.change_cv.notify_all();
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Obtains the compiled problem, recording whether it was a cache hit and
/// how long the acquisition took.
fn obtain_problem(inner: &Inner, spec: ProblemSpec) -> (Arc<CompiledProblem>, bool, u64) {
    let key = spec.content_hash();
    let start = Instant::now();
    if let Some(hit) = inner.cache.lock().unwrap().get(&key) {
        return (Arc::clone(hit), true, start.elapsed().as_nanos() as u64);
    }
    // Compile outside the cache lock: a slow compile must not serialize
    // unrelated workers. A concurrent duplicate compile is possible and
    // harmless — last insert wins, both Arcs are equivalent.
    let compiled = Arc::new(CompiledProblem::compile(spec));
    inner
        .cache
        .lock()
        .unwrap()
        .insert(key, Arc::clone(&compiled));
    (compiled, false, start.elapsed().as_nanos() as u64)
}

fn build_simulator(
    problem: &CompiledProblem,
    spec: &JobSpec,
) -> Result<DataflowFluxSimulator, String> {
    DataflowFluxSimulator::builder(&problem.mesh)
        .fluid(&problem.fluid)
        .transmissibilities(&problem.trans)
        .execution(spec.execution)
        .fast_forward(spec.fast_forward)
        .fault_plan(spec.fault_plan.clone())
        .build()
        .map_err(|e| e.to_string())
}

fn pressure_for(problem: &CompiledProblem, spec: &JobSpec, application: usize) -> Vec<f32> {
    FlowState::<f32>::varied(
        &problem.mesh,
        1.0e7,
        1.2e7,
        spec.pressure_seed + application as u64,
    )
    .pressure()
    .to_vec()
}

enum ChunkOutcome {
    Continue,
    Preempt,
    Cancel,
}

fn worker_loop(inner: &Inner) {
    loop {
        let id = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    break id;
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };
        run_job(inner, id);
        inner.change_cv.notify_all();
    }
}

/// Drives one job until it finishes, fails, or parks on a checkpoint.
fn run_job(inner: &Inner, id: JobId) {
    // Claim the job and take its resume checkpoint, if any.
    let (spec, resume_from) = {
        let mut st = inner.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            return;
        };
        if job.state != JobState::Queued {
            return; // canceled between dequeue and claim
        }
        job.state = JobState::Running;
        (job.spec.clone(), job.checkpoint.take())
    };

    let (problem, cache_hit, setup_nanos) = obtain_problem(inner, spec.problem);
    {
        let mut st = inner.state.lock().unwrap();
        if let Some(job) = st.jobs.get_mut(&id) {
            // First pickup wins: a resumed job keeps its original figures.
            if job.cache_hit.is_none() {
                job.cache_hit = Some(cache_hit);
                job.setup_nanos = Some(setup_nanos);
            }
        }
    }

    let mut sim = match build_simulator(&problem, &spec) {
        Ok(sim) => sim,
        Err(e) => return fail_job(inner, id, JobFailure::Build(e)),
    };
    if let Some(ckpt) = resume_from {
        if let Err(e) = ckpt.restore_into(&mut sim) {
            return fail_job(inner, id, JobFailure::Build(e.to_string()));
        }
    }

    let chunk = spec.checkpoint_every.unwrap_or(DEFAULT_CHUNK_EVENTS).max(1);
    let mut last_residual: Option<Vec<f32>> = None;
    // `applications()` survives the checkpoint round-trip, so a resumed
    // job continues exactly where it parked — mid-application included
    // (`in_flight` skips the re-inject).
    while sim.applications() < spec.applications {
        if !sim.in_flight() {
            let pressure = pressure_for(&problem, &spec, sim.applications());
            sim.begin_apply(&pressure);
        }
        loop {
            let step = match sim.step_events(chunk) {
                Ok(step) => step,
                Err(e) => return fail_job(inner, id, JobFailure::Fabric(e)),
            };
            match note_progress(inner, id, step.events, step.fabric_time) {
                ChunkOutcome::Continue => {}
                ChunkOutcome::Preempt => return park_job(inner, id, &sim),
                ChunkOutcome::Cancel => return fail_job(inner, id, JobFailure::Canceled),
            }
            if step.complete {
                break;
            }
        }
        match sim.finish_apply() {
            Ok(residual) => last_residual = Some(residual),
            Err(e) => return fail_job(inner, id, JobFailure::Fabric(e)),
        }
    }

    let mut st = inner.state.lock().unwrap();
    if let Some(job) = st.jobs.get_mut(&id) {
        job.applications_done = sim.applications();
        job.result = last_residual;
        job.state = JobState::Done;
    }
}

/// Records chunk progress and reports any pending control request.
/// Shutdown counts as preemption so in-flight work parks restorably.
fn note_progress(inner: &Inner, id: JobId, events: u64, fabric_time: u64) -> ChunkOutcome {
    let mut st = inner.state.lock().unwrap();
    let Some(job) = st.jobs.get_mut(&id) else {
        return ChunkOutcome::Cancel;
    };
    job.events += events;
    job.fabric_time = fabric_time;
    if job.cancel_requested {
        ChunkOutcome::Cancel
    } else if job.preempt_requested || inner.shutdown.load(Ordering::SeqCst) {
        ChunkOutcome::Preempt
    } else {
        ChunkOutcome::Continue
    }
}

fn park_job(inner: &Inner, id: JobId, sim: &DataflowFluxSimulator) {
    let ckpt = Checkpoint::capture(sim);
    let mut st = inner.state.lock().unwrap();
    if let Some(job) = st.jobs.get_mut(&id) {
        job.applications_done = sim.applications();
        job.checkpoint = Some(ckpt);
        job.checkpoints += 1;
        job.preempt_requested = false;
        job.state = JobState::Checkpointed;
    }
}

fn fail_job(inner: &Inner, id: JobId, failure: JobFailure) {
    let mut st = inner.state.lock().unwrap();
    if let Some(job) = st.jobs.get_mut(&id) {
        job.state = JobState::Failed(failure);
        job.cancel_requested = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem() -> ProblemSpec {
        ProblemSpec {
            nx: 5,
            ny: 4,
            nz: 3,
            perm_seed: 11,
        }
    }

    fn direct_residual(spec: &JobSpec) -> Vec<f32> {
        let problem = CompiledProblem::compile(spec.problem);
        let mut sim = build_simulator(&problem, spec).unwrap();
        let mut last = Vec::new();
        for i in 0..spec.applications {
            last = sim.apply(&pressure_for(&problem, spec, i)).unwrap();
        }
        last
    }

    #[test]
    fn job_runs_to_done_and_matches_direct_run() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let spec = JobSpec::new(small_problem(), 3);
        let expected = direct_residual(&spec);
        let id = server.submit(spec).unwrap();
        let status = server.wait(id).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert_eq!(status.applications_done, 3);
        assert!(status.events > 0);
        assert_eq!(server.result(id).unwrap(), expected);
        server.shutdown();
    }

    #[test]
    fn repeat_submission_hits_the_compiled_layout_cache() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let first = server.submit(JobSpec::new(small_problem(), 1)).unwrap();
        let s1 = server.wait(first).unwrap();
        assert_eq!(s1.cache_hit, Some(false));
        let second = server.submit(JobSpec::new(small_problem(), 1)).unwrap();
        let s2 = server.wait(second).unwrap();
        assert_eq!(s2.cache_hit, Some(true));
        assert_eq!(server.result(first), server.result(second));
        assert_eq!(server.cached_problems(), 1);
        // The hit skips the compile: acquiring the Arc must be faster
        // than building transmissibilities was. Guard loosely (10x) so a
        // noisy scheduler cannot flake the assertion.
        assert!(
            s2.setup_nanos.unwrap() < s1.setup_nanos.unwrap() / 10 + 1_000_000,
            "hit {}ns vs miss {}ns",
            s2.setup_nanos.unwrap(),
            s1.setup_nanos.unwrap()
        );
        server.shutdown();
    }

    #[test]
    fn preempt_resume_is_bit_identical() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let mut spec = JobSpec::new(small_problem(), 3);
        spec.checkpoint_every = Some(16); // hundreds of park opportunities
        let expected = direct_residual(&spec);
        // Park the lone worker behind a long blocker so the target is
        // preempted while still Queued — deterministic even on a
        // one-core host, where the worker thread can otherwise run a
        // tiny job to completion before this thread is scheduled again.
        let mut blocker = JobSpec::new(small_problem(), 10_000);
        blocker.checkpoint_every = Some(16);
        let blocker = server.submit(blocker).unwrap();
        let id = server.submit(spec).unwrap();
        assert!(server.preempt(id), "a queued job accepts preempt");
        assert_eq!(server.status(id).unwrap().state, JobState::Checkpointed);
        assert!(server.cancel(blocker), "blocker is live");
        let mut preemptions = 0u32;
        loop {
            let status = server.wait(id).unwrap();
            match status.state {
                JobState::Checkpointed => {
                    preemptions += 1;
                    assert!(server.resume(id));
                    if preemptions < 3 {
                        // Best effort: the tiny job can settle before
                        // the request lands; wait() then reports Done
                        // and both outcomes are covered below.
                        server.preempt(id);
                    }
                }
                JobState::Done => break,
                other => panic!("unexpected state {other:?}"),
            }
        }
        assert!(preemptions >= 1, "preemption never landed");
        assert_eq!(server.result(id).unwrap(), expected);
        server.shutdown();
    }

    #[test]
    fn preempt_parks_and_cancel_is_terminal() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let mut spec = JobSpec::new(small_problem(), 50);
        spec.checkpoint_every = Some(32);
        let id = server.submit(spec).unwrap();
        assert!(server.preempt(id));
        let status = server.wait(id).unwrap();
        if status.state == JobState::Checkpointed {
            assert!(server.cancel(id));
            let s = server.wait(id).unwrap();
            assert_eq!(s.state, JobState::Failed(JobFailure::Canceled));
        } else {
            // The job finished before the preempt landed — fine; cancel
            // of a terminal job must then be refused.
            assert!(!server.cancel(id));
        }
        assert!(!server.resume(id), "cannot resume a terminal job");
        server.shutdown();
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let server = JobServer::start(ServerConfig {
            workers: 1,
            queue_capacity: 1,
        });
        // A long job occupies the worker; fill the queue behind it.
        let mut long = JobSpec::new(small_problem(), 100);
        long.checkpoint_every = Some(32);
        let running = server.submit(long.clone()).unwrap();
        // Give the worker a moment to claim the first job, then fill the
        // single queue slot and overflow it. Claiming is quick, but don't
        // race: retry until the queue has drained the first entry.
        let queued = loop {
            match server.submit(long.clone()) {
                Ok(id) => break id,
                Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => panic!("{e}"),
            }
        };
        let overflow = loop {
            match server.submit(long.clone()) {
                Err(SubmitError::QueueFull { capacity }) => break capacity,
                Ok(extra) => {
                    // Queue drained faster than we filled it; park this
                    // one and retry.
                    server.cancel(extra);
                    std::thread::yield_now();
                }
                Err(e) => panic!("{e}"),
            }
        };
        assert_eq!(overflow, 1);
        server.cancel(running);
        server.cancel(queued);
        server.shutdown();
    }

    #[test]
    fn problem_hash_distinguishes_specs() {
        let a = small_problem();
        let mut b = a;
        b.perm_seed += 1;
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash(), small_problem().content_hash());
    }
}
