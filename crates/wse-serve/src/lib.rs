//! # wse-serve — checkpoint/restore and a multi-tenant simulation job server
//!
//! Long fabric simulations (the paper applies Algorithm 1 a thousand times
//! per run) need to survive interruption, migrate between engines, and
//! share a machine. This crate adds both halves:
//!
//! * [`checkpoint`] — a versioned binary encoding of the complete driver +
//!   fabric state ([`tpfa_dataflow::DriverSnapshot`]) with an integrity
//!   header: magic, schema version, problem-spec hash, payload length, and
//!   a murmur3 payload checksum. Truncated, bit-flipped, or wrong-problem
//!   checkpoints are rejected with typed errors; accepted ones resume
//!   **bit-identically**, on either engine, with fast-forwarding on or
//!   off.
//! * [`server`] — a `std`-threaded [`JobServer`] with a bounded submission
//!   queue, preempt/resume/cancel at event-chunk granularity, and a
//!   compiled-problem cache keyed by content hash so repeat submissions
//!   skip the expensive host-side setup (`cache_hit` and the measured
//!   setup time are reported per job). The server is instrumented with
//!   `wse-metrics` (`serve_*` series: queue depth, worker utilization,
//!   submit→done latency, cache hit ratio, control-plane counters),
//!   streams per-job [`server::ProgressUpdate`]s to
//!   [`JobServer::subscribe`]rs, and keeps a per-job failure flight
//!   recorder whose last-N-events tail travels with every failure
//!   ([`JobServer::failure_of`]).
//!
//! The crate is re-exported from the umbrella crate as `mdfv::serve`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod checkpoint;
pub mod server;

pub use checkpoint::{Checkpoint, CheckpointError, SCHEMA_VERSION};
pub use server::{
    CompiledProblem, JobFailure, JobId, JobServer, JobSpec, JobState, JobStatus, ProblemSpec,
    ProgressUpdate, ServerConfig, SubmitError, FLIGHT_RECORDER_CAPACITY,
};
