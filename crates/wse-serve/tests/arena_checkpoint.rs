//! The checkpoint codec against the SPMD arena representation: a wire
//! checkpoint must be a function of the *problem state*, never of the
//! in-memory layout that produced it. Struct-of-array scalar arenas,
//! per-class shared route tables (`dedup_routes`), and lazily-grown PE
//! memories all canonicalize to the same byte stream as the legacy
//! per-PE layout — so the schema stays at version 1 and checkpoints
//! interchange freely across representations *and* engines.

use fv_core::eos::Fluid;
use fv_core::fields::PermeabilityField;
use fv_core::mesh::{CartesianMesh3, Extents, Spacing};
use fv_core::state::FlowState;
use fv_core::trans::{StencilKind, Transmissibilities};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_serve::{Checkpoint, SCHEMA_VERSION};
use wse_sim::fabric::Execution;

const NX: usize = 10;
const NY: usize = 9;
const NZ: usize = 3;

struct Problem {
    mesh: CartesianMesh3,
    fluid: Fluid,
    trans: Transmissibilities,
    pressure: Vec<f32>,
}

fn problem() -> Problem {
    let mesh = CartesianMesh3::new(Extents::new(NX, NY, NZ), Spacing::new(10.0, 10.0, 4.0));
    let fluid = Fluid::water_like();
    let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.4, 23);
    let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
    let pressure = FlowState::<f32>::varied(&mesh, 1.0e7, 1.2e7, 2)
        .pressure()
        .to_vec();
    Problem {
        mesh,
        fluid,
        trans,
        pressure,
    }
}

fn build(p: &Problem, dedup: bool, execution: Execution) -> DataflowFluxSimulator {
    DataflowFluxSimulator::builder(&p.mesh)
        .fluid(&p.fluid)
        .transmissibilities(&p.trans)
        .dedup_routes(dedup)
        .execution(execution)
        .build()
        .expect("build failed")
}

#[test]
fn encoded_bytes_are_independent_of_the_representation() {
    // Same problem, same state, two in-memory layouts: the wire bytes
    // must be identical — the codec sees canonical snapshots, not arenas.
    let p = problem();
    let mut dedup = build(&p, true, Execution::Sequential);
    let mut per_pe = build(&p, false, Execution::Sequential);
    for _ in 0..2 {
        dedup.apply(&p.pressure).expect("dedup run failed");
        per_pe.apply(&p.pressure).expect("per-PE run failed");
    }
    let b_dedup = Checkpoint::capture(&dedup).encode();
    let b_per_pe = Checkpoint::capture(&per_pe).encode();
    assert_eq!(
        b_dedup, b_per_pe,
        "representation leaked into the wire format"
    );
    assert_eq!(
        SCHEMA_VERSION, 1,
        "arena layout must not force a schema bump"
    );
}

#[test]
fn encoded_bytes_are_independent_of_the_engine() {
    let p = problem();
    let mut seq = build(&p, true, Execution::Sequential);
    let mut sharded = build(
        &p,
        true,
        Execution::Sharded {
            shards: 4,
            threads: 2,
        },
    );
    for _ in 0..2 {
        seq.apply(&p.pressure).expect("sequential run failed");
        sharded.apply(&p.pressure).expect("sharded run failed");
    }
    assert_eq!(
        Checkpoint::capture(&seq).encode(),
        Checkpoint::capture(&sharded).encode(),
        "engine leaked into the wire format"
    );
}

#[test]
fn wire_roundtrip_crosses_representations_and_engines() {
    // Capture from a deduplicated sharded simulator, push the bytes
    // through encode/decode, restore into a legacy per-PE sequential one,
    // and demand the continuation is bit-identical to never stopping.
    let p = problem();
    let mut origin = build(
        &p,
        true,
        Execution::Sharded {
            shards: 4,
            threads: 2,
        },
    );
    for _ in 0..2 {
        origin.apply(&p.pressure).expect("origin run failed");
    }
    let bytes = Checkpoint::capture(&origin).encode();
    let decoded = Checkpoint::decode(&bytes).expect("decode failed");

    let mut resumed = build(&p, false, Execution::Sequential);
    decoded
        .restore_into(&mut resumed)
        .expect("cross-representation restore failed");
    assert_eq!(resumed.applications(), 2);

    let r_origin = origin.apply(&p.pressure).expect("origin run failed");
    let r_resumed = resumed.apply(&p.pressure).expect("resumed run failed");
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&r_origin),
        bits(&r_resumed),
        "resumed continuation diverged from the uninterrupted run"
    );
}
