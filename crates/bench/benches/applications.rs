//! Application-level benches for the extensions: the §8 acoustic-wave
//! program on the fabric and the GEOS-style two-phase IMPES step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fv_core::fields::PermeabilityField;
use fv_core::mesh::{CartesianMesh3, Extents, Spacing};
use fv_core::trans::{StencilKind, Transmissibilities};
use fv_core::twophase::{ImpesSimulator, TwoPhaseFluid, VolumetricSource};
use tpfa_dataflow::wave::{serial_wave_step, WaveParams, WaveSimulator};

fn bench_wave_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("wave/fabric_step");
    g.sample_size(10);
    let params = WaveParams::new(10.0, 10.0, 10.0, 1500.0, 2.0e-3, 0.5);
    for n in [6usize, 10] {
        let mut sim = WaveSimulator::new(n, n, 4, params);
        let u0 = vec![0.5_f32; n * n * 4];
        sim.set_initial(&u0, &u0);
        g.throughput(Throughput::Elements((n * n * 4) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n * n), &n, |b, _| {
            b.iter(|| sim.step().unwrap());
        });
    }
    g.finish();
}

fn bench_wave_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("wave/serial_step");
    let params = WaveParams::new(10.0, 10.0, 10.0, 1500.0, 2.0e-3, 0.5);
    for n in [16usize, 32] {
        let u0 = vec![0.5_f32; n * n * 8];
        g.throughput(Throughput::Elements((n * n * 8) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n * n * 8), &n, |b, &n| {
            b.iter(|| serial_wave_step(n, n, 8, &params, &u0, &u0));
        });
    }
    g.finish();
}

fn bench_impes_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("twophase/impes_step");
    g.sample_size(10);
    for n in [12usize, 20] {
        let mesh = CartesianMesh3::new(Extents::new(n, n, 1), Spacing::uniform(5.0));
        let fluid = TwoPhaseFluid::water_co2();
        let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.3, 3);
        let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
        let ncells = mesh.num_cells();
        let sources = vec![
            VolumetricSource {
                cell: 0,
                rate: 1e-4,
                water_fraction: 1.0,
            },
            VolumetricSource {
                cell: ncells - 1,
                rate: -1e-4,
                water_fraction: 0.0,
            },
        ];
        let mut sim = ImpesSimulator::new(ncells, 0.2);
        let mut p = vec![1.0e7; ncells];
        let mut s = vec![fluid.s_wc; ncells];
        let dt = sim.suggest_dt(&mesh, &sources, 0.05);
        g.throughput(Throughput::Elements(ncells as u64));
        g.bench_with_input(BenchmarkId::from_parameter(ncells), &n, |b, _| {
            b.iter(|| sim.step(&mesh, &fluid, &trans, &sources, dt, &mut p, &mut s));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_wave_fabric,
    bench_wave_serial,
    bench_impes_step
);
criterion_main!(benches);
