//! Microbenchmarks for the event-queue engines and the static-route
//! fast-forwarding toggle.
//!
//! `event_queue/*` pits the reference `BinaryHeap` queue against the
//! bucketed calendar queue on a synthetic push/pop workload shaped like
//! the fabric's (hop-quantized times, heavy same-cycle ties, a sprinkle
//! of far-future events exercising the overflow heap) at 1k/100k/1M
//! events. `fast_forward/*` runs the real 64×64×6 TPFA apply with
//! fast-forwarding on and off — the delta is what eliding per-hop events
//! on the fixed diagonal routes buys end to end.

use bench::{pressure_for_iteration, standard_problem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_sim::queue::{CalendarQueue, EventQueue, HeapQueue, Timestamped};

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: u64,
    seq: u64,
    src: usize,
}

impl Timestamped for Key {
    fn time(&self) -> u64 {
        self.time
    }
}

/// A fabric-shaped schedule: each popped event spawns a successor one hop
/// later (sometimes same-cycle, rarely far in the future), so the queue
/// stays at a steady occupancy with dense ties — the pattern a lockstep
/// stencil produces.
fn churn<Q: EventQueue<Key>>(queue: &mut Q, n: u64) -> u64 {
    let mut seq = 0u64;
    for i in 0..4096 {
        queue.push(Key {
            time: 0,
            seq,
            src: i as usize,
        });
        seq += 1;
    }
    let mut popped = 0u64;
    while let Some(k) = queue.pop() {
        popped += 1;
        if seq < n {
            // xorshift for a deterministic, cheap pseudo-random spread
            let mut x = seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            x ^= x >> 33;
            let dt = match x % 16 {
                0..=3 => 0,  // same cycle (ramp deliveries): side-heap path
                15 => 5_000, // far future (faults, backoff): overflow heap
                _ => 1,      // the common hop-quantized case
            };
            queue.push(Key {
                time: k.time + dt,
                seq,
                src: (x % 4096) as usize,
            });
            seq += 1;
        }
    }
    popped
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.sample_size(10);
    for n in [1_000u64, 100_000, 1_000_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("binary-heap", n), &n, |b, &n| {
            b.iter(|| churn(&mut HeapQueue::new(), n));
        });
        g.bench_with_input(BenchmarkId::new("calendar", n), &n, |b, &n| {
            b.iter(|| churn(&mut CalendarQueue::new(), n));
        });
    }
    g.finish();
}

fn bench_fast_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("fast_forward");
    g.sample_size(10);
    let n = 64usize;
    let (mesh, fluid, trans) = standard_problem(n, n, 6, 2);
    let p = pressure_for_iteration(&mesh, 0);
    for (label, enabled) in [("on", true), ("off", false)] {
        let mut sim = DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .fast_forward(enabled)
            .build()
            .unwrap();
        g.throughput(Throughput::Elements(mesh.num_cells() as u64));
        g.bench_with_input(BenchmarkId::new(label, n * n), &n, |b, _| {
            b.iter(|| sim.apply(&p).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_fast_forward);
criterion_main!(benches);
