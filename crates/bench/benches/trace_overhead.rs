//! Overhead guard for the tracing subsystem: the `NullSink` path (tracing
//! off, the default) must be indistinguishable from the pre-tracing
//! simulator, and the `RingSink` path quantifies the cost of recording.
//!
//! Compare `trace_overhead/off` against `engine/64x64/sequential` (same
//! fabric, same problem, same engine): any measurable gap is a regression
//! in the zero-overhead-when-off claim. The `ring` variants show what
//! enabling tracing costs.

use bench::{pressure_for_iteration, standard_problem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_sim::trace::TraceSpec;

const NZ: usize = 6;

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);
    let n = 64usize;
    let (mesh, fluid, trans) = standard_problem(n, n, NZ, 2);
    let p = pressure_for_iteration(&mesh, 0);
    let variants = [
        ("off", TraceSpec::OFF),
        ("ring-256", TraceSpec::ring(256)),
        ("ring-4096", TraceSpec::ring(4096)),
    ];
    for (label, trace) in variants {
        let mut sim = DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .trace(trace)
            .build()
            .unwrap();
        g.throughput(Throughput::Elements(mesh.num_cells() as u64));
        g.bench_with_input(BenchmarkId::new(label, n * n), &n, |b, _| {
            b.iter(|| sim.apply(&p).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
