//! DSD vector-op microbenches (the measured layer behind Table 4 and the
//! §5.3.3 vectorization claim): per-element cost of each instruction kind
//! and of the full 13-op face kernel, across column heights.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpfa_dataflow::{compute_face_flux, FaceBuffers, FaceInputs};
use wse_sim::dsd::{fadds, fmacs, fmuls, fmuls_gate, fnegs, fsubs, Dsd, Operand};
use wse_sim::memory::PeMemory;
use wse_sim::stats::OpCounters;
use wse_sim::trace::PeTracer;

fn rig(len: usize, arrays: usize) -> (PeMemory, Vec<Dsd>) {
    let mut mem = PeMemory::with_capacity_bytes(((arrays * len * 4) + 64).next_multiple_of(4));
    let dsds: Vec<Dsd> = (0..arrays)
        .map(|_| Dsd::contiguous(mem.alloc(len).unwrap().offset, len))
        .collect();
    for d in &dsds {
        for i in 0..len {
            mem.write_f32(d.at(i), (i % 97) as f32 + 1.0);
        }
    }
    (mem, dsds)
}

fn bench_single_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsd_ops");
    let len = 246; // the paper's Nz
    let (mut mem, d) = rig(len, 3);
    let mut ctr = OpCounters::default();
    let mut tr = PeTracer::null();
    g.throughput(Throughput::Elements(len as u64));
    g.bench_function("fmuls", |b| {
        b.iter(|| {
            fmuls(
                &mut mem,
                &mut ctr,
                &mut tr,
                d[0],
                Operand::Mem(d[1]),
                Operand::Mem(d[2]),
            )
        })
    });
    g.bench_function("fsubs", |b| {
        b.iter(|| {
            fsubs(
                &mut mem,
                &mut ctr,
                &mut tr,
                d[0],
                Operand::Mem(d[1]),
                Operand::Mem(d[2]),
            )
        })
    });
    g.bench_function("fadds", |b| {
        b.iter(|| {
            fadds(
                &mut mem,
                &mut ctr,
                &mut tr,
                d[0],
                Operand::Mem(d[1]),
                Operand::Mem(d[2]),
            )
        })
    });
    g.bench_function("fmacs", |b| {
        b.iter(|| {
            fmacs(
                &mut mem,
                &mut ctr,
                &mut tr,
                d[0],
                Operand::Mem(d[1]),
                Operand::Mem(d[2]),
            )
        })
    });
    g.bench_function("fnegs", |b| {
        b.iter(|| fnegs(&mut mem, &mut ctr, &mut tr, d[0], Operand::Mem(d[1])))
    });
    g.bench_function("fmuls_gate", |b| {
        b.iter(|| {
            fmuls_gate(
                &mut mem,
                &mut ctr,
                &mut tr,
                d[0],
                Operand::Mem(d[1]),
                Operand::Mem(d[2]),
            )
        })
    });
    g.finish();
}

fn bench_face_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("face_kernel");
    for nz in [64usize, 246, 512] {
        let (mut mem, d) = rig(nz, 9);
        let mut ctr = OpCounters::default();
        let mut tr = PeTracer::null();
        let inputs = FaceInputs {
            p_k: d[0],
            rho_k: d[1],
            p_l: d[2],
            rho_l: d[3],
            trans: d[4],
            g_dz: -9.81 * 4.0,
            inv_mu: 1.0e3,
        };
        let buffers = FaceBuffers {
            t0: d[6],
            t1: d[7],
            t2: d[8],
        };
        g.throughput(Throughput::Elements(nz as u64));
        g.bench_with_input(BenchmarkId::from_parameter(nz), &nz, |b, _| {
            b.iter(|| compute_face_flux(&mut mem, &mut ctr, &mut tr, d[5], inputs, buffers));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_single_ops, bench_face_kernel);
criterion_main!(benches);
