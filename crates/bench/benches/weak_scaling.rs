//! Weak-scaling bench (the measured layer behind Table 2): grow the fabric
//! while keeping the column height constant and measure one application of
//! Algorithm 1 on the functional simulator, plus the GPU-like kernels on
//! the same growing meshes.

use bench::{pressure_for_iteration, standard_problem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_ref::problem::{GpuFluxProblem, GpuModel};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_sim::fabric::Execution;

const NZ: usize = 6;

fn bench_dataflow_weak_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("weak_scaling/dataflow");
    g.sample_size(10);
    for n in [4usize, 8, 12] {
        let (mesh, fluid, trans) = standard_problem(n, n, NZ, 2);
        let mut sim = DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .build()
            .unwrap();
        let p = pressure_for_iteration(&mesh, 0);
        g.throughput(Throughput::Elements(mesh.num_cells() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n * n), &n, |b, _| {
            b.iter(|| sim.apply(&p).unwrap());
        });
    }
    g.finish();
}

/// Sequential vs sharded fabric engine on the same 64×64 fabric. Results
/// are bit-identical; only the host wall-clock differs — this group is the
/// speedup measurement for the parallel engine.
fn bench_engine_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/64x64");
    g.sample_size(10);
    let n = 64usize;
    let (mesh, fluid, trans) = standard_problem(n, n, NZ, 2);
    let p = pressure_for_iteration(&mesh, 0);
    let threads = std::thread::available_parallelism().map_or(4, |c| c.get().min(4));
    let engines = [
        ("sequential".to_string(), Execution::Sequential),
        (
            format!("sharded-4x{threads}t"),
            Execution::Sharded { shards: 4, threads },
        ),
        (
            format!("sharded-16x{threads}t"),
            Execution::Sharded {
                shards: 16,
                threads,
            },
        ),
        (
            format!("sharded-64x{threads}t"),
            Execution::Sharded {
                shards: 64,
                threads,
            },
        ),
    ];
    for (label, execution) in engines {
        let mut sim = DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .execution(execution)
            .build()
            .unwrap();
        g.throughput(Throughput::Elements(mesh.num_cells() as u64));
        g.bench_with_input(BenchmarkId::new(label, n * n), &n, |b, _| {
            b.iter(|| sim.apply(&p).unwrap());
        });
    }
    g.finish();
}

fn bench_gpu_weak_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("weak_scaling/gpu_like");
    for n in [16usize, 32, 64] {
        let (mesh, fluid, trans) = standard_problem(n, n, NZ, 2);
        let mut prob = GpuFluxProblem::new(&mesh, &fluid, &trans);
        prob.apply(GpuModel::Raja, &pressure_for_iteration(&mesh, 0));
        g.throughput(Throughput::Elements(mesh.num_cells() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n * n), &n, |b, _| {
            b.iter(|| prob.launch(GpuModel::Raja));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_dataflow_weak_scaling,
    bench_engine_comparison,
    bench_gpu_weak_scaling
);
criterion_main!(benches);
