//! Overhead guard for the region-marker instrumentation: with tracing off
//! (the default), the markers in `tpfa-dataflow`'s kernel driver compile
//! down to the same predictable `NullSink` branch as every other
//! instrumentation site — `profile_overhead/regions-off` must be
//! indistinguishable from `engine/64x64/sequential` and from
//! `trace_overhead/off` (same fabric, same problem, same engine).
//!
//! The `ring` variant shows what a profiled run costs (recording the
//! markers plus every other event family), and `analyze` measures the
//! profiler itself — attribution + critical-path recovery over a recorded
//! trace, which runs on the host after the simulation.

use bench::{pressure_for_iteration, standard_problem};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_prof::{critical_path, Profile};
use wse_sim::trace::TraceSpec;

const NZ: usize = 6;

fn bench_profile_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("profile_overhead");
    g.sample_size(10);
    let n = 64usize;
    let (mesh, fluid, trans) = standard_problem(n, n, NZ, 2);
    let p = pressure_for_iteration(&mesh, 0);

    // Simulation cost with markers compiled in: off must match
    // engine/64x64/sequential within noise.
    for (label, trace) in [
        ("regions-off", TraceSpec::OFF),
        ("ring-4096", TraceSpec::ring(4096)),
    ] {
        let mut sim = DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .trace(trace)
            .build()
            .unwrap();
        g.throughput(Throughput::Elements(mesh.num_cells() as u64));
        g.bench_with_input(BenchmarkId::new(label, n * n), &n, |b, _| {
            b.iter(|| sim.apply(&p).unwrap());
        });
    }

    // Host-side analysis cost over a recorded 16×16 trace.
    let (mesh16, fluid16, trans16) = standard_problem(16, 16, NZ, 7);
    let mut sim16 = DataflowFluxSimulator::builder(&mesh16)
        .fluid(&fluid16)
        .transmissibilities(&trans16)
        .trace(TraceSpec::ring(8192))
        .build()
        .unwrap();
    sim16
        .apply(&pressure_for_iteration(&mesh16, 3))
        .expect("traced run failed");
    let trace = sim16.trace().expect("tracing was enabled");
    g.throughput(Throughput::Elements(trace.events.len() as u64));
    g.bench_with_input(
        BenchmarkId::new("analyze", trace.events.len()),
        &n,
        |b, _| {
            b.iter(|| {
                let profile = Profile::from_trace(&trace);
                let cp = critical_path(&trace, 1);
                black_box((profile, cp))
            });
        },
    );
    g.finish();
}

criterion_group!(benches, bench_profile_overhead);
criterion_main!(benches);
