//! Overhead guard for the telemetry subsystem: the `MetricsHub::Null`
//! path (metrics off, the default) must be indistinguishable from the
//! uninstrumented simulator, and the live-hub variant quantifies the cost
//! of publishing.
//!
//! Compare `metrics_overhead/off` against `engine/64x64/sequential` (same
//! fabric, same problem, same engine): any measurable gap is a regression
//! in the zero-overhead-when-off claim. Instrumentation only publishes at
//! application boundaries (never per event), so even `live` should sit
//! within noise of `off`.

use bench::{pressure_for_iteration, standard_problem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_metrics::MetricsHub;

const NZ: usize = 6;

fn bench_metrics_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_overhead");
    g.sample_size(10);
    let n = 64usize;
    let (mesh, fluid, trans) = standard_problem(n, n, NZ, 2);
    let p = pressure_for_iteration(&mesh, 0);
    let variants = [("off", MetricsHub::Null), ("live", MetricsHub::new_live())];
    for (label, hub) in variants {
        let mut sim = DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .metrics(hub)
            .build()
            .unwrap();
        g.throughput(Throughput::Elements(mesh.num_cells() as u64));
        g.bench_with_input(BenchmarkId::new(label, n * n), &n, |b, _| {
            b.iter(|| sim.apply(&p).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
