//! Solver benches for the §8 extension: matrix-free operator application,
//! conjugate gradients on the Picard operator, BiCGSTAB on the Jacobian,
//! and one full Newton step of the implicit residual (Eq. 2).

use bench::standard_problem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fv_core::operator::{FrozenMobilityOperator, JacobianOperator, LinearOperator};
use fv_core::residual::AccumulationParams;
use fv_core::solver::bicgstab::BiCgStab;
use fv_core::solver::cg::ConjugateGradient;
use fv_core::solver::newton::{NewtonConfig, NewtonSolver};
use fv_core::state::FlowState;

fn bench_operator_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("operator_apply");
    for n in [8usize, 16, 24] {
        let (mesh, fluid, trans) = standard_problem(n, n, n, 5);
        let p = FlowState::<f64>::varied(&mesh, 1.0e7, 1.1e7, 0);
        let frozen = FrozenMobilityOperator::new(&mesh, &fluid, &trans, p.pressure());
        let jac = JacobianOperator::new(&mesh, &fluid, &trans, p.pressure());
        let x: Vec<f64> = (0..mesh.num_cells()).map(|i| (i % 13) as f64).collect();
        let mut y = vec![0.0; mesh.num_cells()];
        g.throughput(Throughput::Elements(mesh.num_cells() as u64));
        g.bench_with_input(BenchmarkId::new("frozen_mobility", n), &n, |b, _| {
            b.iter(|| frozen.apply(&x, &mut y));
        });
        g.bench_with_input(BenchmarkId::new("jacobian", n), &n, |b, _| {
            b.iter(|| jac.apply(&x, &mut y));
        });
    }
    g.finish();
}

fn bench_krylov(c: &mut Criterion) {
    let mut g = c.benchmark_group("krylov");
    g.sample_size(10);
    let n = 12usize;
    let (mesh, fluid, trans) = standard_problem(n, n, n, 5);
    let ncells = mesh.num_cells();
    let p = FlowState::<f64>::uniform(&mesh, 1.0e7);
    let op = FrozenMobilityOperator::new(&mesh, &fluid, &trans, p.pressure())
        .with_diagonal(vec![1e-8; ncells]);
    let rhs: Vec<f64> = (0..ncells).map(|i| ((i * 31) % 17) as f64 * 1e-9).collect();
    g.bench_function("cg", |b| {
        let mut cg = ConjugateGradient::new(ncells, 500, 1e-8);
        let mut x = vec![0.0; ncells];
        b.iter(|| {
            x.iter_mut().for_each(|v| *v = 0.0);
            cg.solve(&op, &rhs, &mut x)
        });
    });
    g.bench_function("cg_jacobi", |b| {
        let diag = op.diagonal();
        let mut cg = ConjugateGradient::new(ncells, 500, 1e-8).with_jacobi(&diag);
        let mut x = vec![0.0; ncells];
        b.iter(|| {
            x.iter_mut().for_each(|v| *v = 0.0);
            cg.solve(&op, &rhs, &mut x)
        });
    });
    g.bench_function("bicgstab", |b| {
        let jac = JacobianOperator::new(&mesh, &fluid, &trans, p.pressure())
            .with_diagonal(vec![1e-8; ncells]);
        let mut solver = BiCgStab::new(ncells, 500, 1e-8);
        let mut x = vec![0.0; ncells];
        b.iter(|| {
            x.iter_mut().for_each(|v| *v = 0.0);
            solver.solve(&jac, &rhs, &mut x)
        });
    });
    g.finish();
}

fn bench_newton_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("newton");
    g.sample_size(10);
    let n = 10usize;
    let (mesh, fluid, trans) = standard_problem(n, n, 4, 5);
    let fluid = fluid.without_gravity();
    let p0 = FlowState::<f64>::gaussian_pulse(&mesh, 2.0e7, 0.5e6, 2.0);
    let acc = AccumulationParams {
        phi_ref: 0.2,
        rock_compressibility: 1e-9,
        dt: 3600.0,
    };
    g.bench_function("implicit_step", |b| {
        let mut newton = NewtonSolver::new(mesh.num_cells(), NewtonConfig::default());
        b.iter(|| {
            let mut p = p0.pressure().to_vec();
            newton.step(&mesh, &fluid, &trans, acc, p0.pressure(), &[], &mut p)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_operator_apply,
    bench_krylov,
    bench_newton_step
);
criterion_main!(benches);
