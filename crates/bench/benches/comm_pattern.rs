//! Communication-pattern bench (the measured layer behind Table 3): the
//! full iteration vs the communication-only variant (flux computation
//! stripped), exactly the paper's protocol for isolating data-movement
//! cost.

use bench::{pressure_for_iteration, standard_problem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpfa_dataflow::DataflowFluxSimulator;

fn bench_comm_vs_full(c: &mut Criterion) {
    let mut g = c.benchmark_group("comm_pattern");
    g.sample_size(10);
    let n = 8usize;
    for (label, compute) in [("full", true), ("comm_only", false)] {
        let (mesh, fluid, trans) = standard_problem(n, n, 8, 3);
        let mut sim = DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .compute_enabled(compute)
            .build()
            .unwrap();
        let p = pressure_for_iteration(&mesh, 0);
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| sim.apply(&p).unwrap());
        });
    }
    g.finish();
}

fn bench_fabric_sizes_comm(c: &mut Criterion) {
    // communication volume grows with the fabric area; per-PE comm is flat
    let mut g = c.benchmark_group("comm_pattern/fabric_area");
    g.sample_size(10);
    for n in [4usize, 8] {
        let (mesh, fluid, trans) = standard_problem(n, n, 8, 3);
        let mut sim = DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .compute_enabled(false)
            .build()
            .unwrap();
        let p = pressure_for_iteration(&mesh, 0);
        g.bench_with_input(BenchmarkId::from_parameter(n * n), &n, |b, _| {
            b.iter(|| sim.apply(&p).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_comm_vs_full, bench_fabric_sizes_comm);
criterion_main!(benches);
