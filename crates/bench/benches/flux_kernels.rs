//! Criterion microbenches of the flux implementations (the measured layer
//! behind Table 1): serial reference, face-wise reference, RAJA-like,
//! CUDA-like, and the functional fabric simulation.

use bench::{pressure_for_iteration, standard_problem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fv_core::residual::{assemble_flux_residual, assemble_flux_residual_facewise};
use gpu_ref::problem::{GpuFluxProblem, GpuModel};
use tpfa_dataflow::DataflowFluxSimulator;

fn bench_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("serial_reference");
    for n in [8usize, 16, 32] {
        let (mesh, fluid, trans) = standard_problem(n, n, n, 1);
        let p = pressure_for_iteration(&mesh, 0);
        let mut r = vec![0.0_f32; mesh.num_cells()];
        g.throughput(Throughput::Elements(mesh.num_cells() as u64));
        g.bench_with_input(BenchmarkId::new("cellwise", n), &n, |b, _| {
            b.iter(|| assemble_flux_residual(&mesh, &fluid, &trans, &p, &mut r));
        });
        g.bench_with_input(BenchmarkId::new("facewise", n), &n, |b, _| {
            b.iter(|| assemble_flux_residual_facewise(&mesh, &fluid, &trans, &p, &mut r));
        });
    }
    g.finish();
}

fn bench_gpu_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_reference");
    for n in [16usize, 32, 48] {
        let (mesh, fluid, trans) = standard_problem(n, n, n, 1);
        let p = pressure_for_iteration(&mesh, 0);
        let mut prob = GpuFluxProblem::new(&mesh, &fluid, &trans);
        prob.apply(GpuModel::Raja, &p); // pressure now resident on device
        g.throughput(Throughput::Elements(mesh.num_cells() as u64));
        g.bench_with_input(BenchmarkId::new("raja_like", n), &n, |b, _| {
            b.iter(|| prob.launch(GpuModel::Raja));
        });
        g.bench_with_input(BenchmarkId::new("cuda_like", n), &n, |b, _| {
            b.iter(|| prob.launch(GpuModel::Cuda));
        });
    }
    g.finish();
}

fn bench_dataflow_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataflow_simulation");
    g.sample_size(10);
    for n in [6usize, 10] {
        let (mesh, fluid, trans) = standard_problem(n, n, 6, 1);
        let mut sim = DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .build()
            .unwrap();
        let p = pressure_for_iteration(&mesh, 0);
        g.throughput(Throughput::Elements(mesh.num_cells() as u64));
        g.bench_with_input(BenchmarkId::new("one_application", n), &n, |b, _| {
            b.iter(|| sim.apply(&p).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_serial, bench_gpu_models, bench_dataflow_sim);
criterion_main!(benches);
