//! Shared CLI parsing for the benchmark binaries.
//!
//! Every table/figure generator accepts the same flag family; parsing it
//! used to be copy-pasted per binary. [`CommonArgs`] centralizes it:
//!
//! * `--shards N [--threads M]` — fabric engine selection (sequential
//!   reference when absent);
//! * `--trace out.json [--trace-cap N]` — Chrome-JSON event trace export;
//! * `--profile out.json [--trace-cap N]` — cycle attribution + critical
//!   path export;
//! * `--faults <seed>` — install a randomized seeded
//!   [`wse_sim::fault::FaultPlan`] (fault injection off when absent);
//! * `--recovery fail|retry[:attempts[:backoff]]|degrade` — what the
//!   driver does when a fault is detected (default `fail`);
//! * `--checkpoint <path>` / `--resume <path>` — write a mid-application
//!   fabric checkpoint / restore one and finish the run bit-identically
//!   (see [`crate::run_checkpoint_demo`]);
//! * `--metrics <path>` — collect runtime telemetry into a live
//!   [`wse_metrics::MetricsHub`] and write the Prometheus text exposition
//!   there on exit (see [`crate::metrics_hub`] / [`crate::export_metrics`]);
//! * `--stencil tpfa|laplace7|wave` — which compiled workload to drive
//!   (default `tpfa`, the paper's kernel; binaries that only make sense for
//!   one workload may ignore it).

use tpfa_dataflow::RecoveryPolicy;
use wse_sim::fabric::Execution;
use wse_sim::fault::FaultPlan;
use wse_sim::geometry::FabricDims;
use wse_sim::trace::{
    profile_request_from_arg_slice, trace_request_from_arg_slice, ProfileRequest, TraceRequest,
};

/// Which compiled stencil workload a benchmark binary drives
/// (`--stencil`). All three run through the same `builder.workload(...)`
/// path of the generic simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StencilArg {
    /// The paper's ten-point TPFA flux kernel (the default).
    #[default]
    Tpfa,
    /// The 7-point Laplacian (cardinal-only compiled pattern).
    Laplace7,
    /// The second-order seismic wave stencil (full in-plane ring).
    Wave,
}

impl StencilArg {
    /// Parses a `--stencil` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "tpfa" => Ok(Self::Tpfa),
            "laplace7" => Ok(Self::Laplace7),
            "wave" => Ok(Self::Wave),
            other => Err(format!(
                "bad value for --stencil: {other:?} (expected tpfa, laplace7 or wave)"
            )),
        }
    }

    /// The workload name as the stencil compiler spells it.
    pub fn name(self) -> &'static str {
        match self {
            Self::Tpfa => "tpfa",
            Self::Laplace7 => "laplace7",
            Self::Wave => "wave",
        }
    }
}

/// The flag set shared by all benchmark binaries, parsed once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonArgs {
    /// Fabric engine (`--shards`/`--threads`; sequential when absent).
    pub execution: Execution,
    /// `--trace` request, if any.
    pub trace: Option<TraceRequest>,
    /// `--profile` request, if any.
    pub profile: Option<ProfileRequest>,
    /// `--faults <seed>`: seed for a randomized fault plan, if any.
    pub fault_seed: Option<u64>,
    /// `--recovery <policy>` (default [`RecoveryPolicy::Fail`]).
    pub recovery: RecoveryPolicy,
    /// `--checkpoint <path>`: write a mid-application checkpoint here.
    pub checkpoint: Option<String>,
    /// `--resume <path>`: restore a checkpoint from here and finish it.
    pub resume: Option<String>,
    /// `--metrics <path>`: write the Prometheus text exposition here.
    pub metrics: Option<String>,
    /// `--stencil <workload>` (default [`StencilArg::Tpfa`]).
    pub stencil: StencilArg,
}

impl CommonArgs {
    /// Parses the common flags from an argument slice. Unknown flags are
    /// ignored (binaries may have extras); malformed values of the known
    /// flags are an error.
    pub fn from_slice(args: &[String]) -> Result<Self, String> {
        let value_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
        };
        let usize_of = |flag: &str| -> Result<Option<usize>, String> {
            match value_of(flag) {
                None => Ok(None),
                Some(v) => v
                    .parse::<usize>()
                    .map(Some)
                    .map_err(|_| format!("bad value for {flag}: {v:?}")),
            }
        };
        let execution = match usize_of("--shards")? {
            None | Some(0) => Execution::Sequential,
            Some(shards) => {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                let threads = usize_of("--threads")?.unwrap_or_else(|| shards.min(cores));
                Execution::Sharded { shards, threads }
            }
        };
        let fault_seed = match value_of("--faults") {
            None => None,
            Some(v) => Some(
                v.parse::<u64>()
                    .map_err(|_| format!("bad value for --faults: {v:?}"))?,
            ),
        };
        let recovery = match value_of("--recovery") {
            None => RecoveryPolicy::Fail,
            Some(v) => RecoveryPolicy::parse(v)?,
        };
        let stencil = match value_of("--stencil") {
            None => StencilArg::default(),
            Some(v) => StencilArg::parse(v)?,
        };
        Ok(Self {
            execution,
            trace: trace_request_from_arg_slice(args),
            profile: profile_request_from_arg_slice(args),
            fault_seed,
            recovery,
            checkpoint: value_of("--checkpoint").cloned(),
            resume: value_of("--resume").cloned(),
            metrics: value_of("--metrics").cloned(),
            stencil,
        })
    }

    /// [`CommonArgs::from_slice`] over the process's own CLI arguments,
    /// exiting with the parse error on bad input.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::from_slice(&args) {
            Ok(parsed) => parsed,
            Err(why) => {
                eprintln!("error: {why}");
                std::process::exit(2);
            }
        }
    }

    /// Human-readable engine label for benchmark headers.
    pub fn execution_label(&self) -> String {
        crate::execution_label(self.execution)
    }

    /// The fault plan the flags request for a fabric of `dims`:
    /// `n_faults` randomized faults over `[1, horizon]` when `--faults` was
    /// given, empty otherwise.
    pub fn fault_plan(&self, dims: FabricDims, horizon: u64, n_faults: usize) -> FaultPlan {
        match self.fault_seed {
            Some(seed) => FaultPlan::randomized(seed, dims, horizon, n_faults),
            None => FaultPlan::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_with_no_flags() {
        let args = CommonArgs::from_slice(&to_args("")).unwrap();
        assert_eq!(args.execution, Execution::Sequential);
        assert_eq!(args.trace, None);
        assert_eq!(args.profile, None);
        assert_eq!(args.fault_seed, None);
        assert_eq!(args.recovery, RecoveryPolicy::Fail);
        assert_eq!(args.checkpoint, None);
        assert_eq!(args.resume, None);
        assert_eq!(args.metrics, None);
        assert_eq!(args.stencil, StencilArg::Tpfa);
    }

    #[test]
    fn parses_the_full_flag_family() {
        let args = CommonArgs::from_slice(&to_args(
            "--shards 4 --threads 2 --trace t.json --profile p.json --trace-cap 64 \
             --faults 7 --recovery retry:5:100 --checkpoint c.bin --resume r.bin \
             --metrics m.prom --stencil wave",
        ))
        .unwrap();
        assert_eq!(
            args.execution,
            Execution::Sharded {
                shards: 4,
                threads: 2
            }
        );
        assert_eq!(args.trace.as_ref().unwrap().path, "t.json");
        assert_eq!(args.trace.as_ref().unwrap().capacity, 64);
        assert_eq!(args.profile.as_ref().unwrap().path, "p.json");
        assert_eq!(args.fault_seed, Some(7));
        assert_eq!(args.checkpoint.as_deref(), Some("c.bin"));
        assert_eq!(args.resume.as_deref(), Some("r.bin"));
        assert_eq!(args.metrics.as_deref(), Some("m.prom"));
        assert_eq!(args.stencil, StencilArg::Wave);
        assert_eq!(
            args.recovery,
            RecoveryPolicy::Retry {
                max_attempts: 5,
                backoff: 100
            }
        );
    }

    #[test]
    fn rejects_malformed_values() {
        assert!(CommonArgs::from_slice(&to_args("--shards four")).is_err());
        assert!(CommonArgs::from_slice(&to_args("--faults abc")).is_err());
        assert!(CommonArgs::from_slice(&to_args("--recovery sometimes")).is_err());
        assert!(CommonArgs::from_slice(&to_args("--stencil biharmonic")).is_err());
    }

    #[test]
    fn stencil_flag_selects_each_workload() {
        for (value, want) in [
            ("tpfa", StencilArg::Tpfa),
            ("laplace7", StencilArg::Laplace7),
            ("wave", StencilArg::Wave),
        ] {
            let args = CommonArgs::from_slice(&to_args(&format!("--stencil {value}"))).unwrap();
            assert_eq!(args.stencil, want);
            assert_eq!(args.stencil.name(), value);
        }
    }

    #[test]
    fn fault_plan_is_empty_without_the_flag_and_seeded_with_it() {
        let dims = FabricDims::new(4, 4);
        let off = CommonArgs::from_slice(&to_args("")).unwrap();
        assert!(off.fault_plan(dims, 1000, 3).is_empty());
        let on = CommonArgs::from_slice(&to_args("--faults 42")).unwrap();
        let a = on.fault_plan(dims, 1000, 3);
        let b = on.fault_plan(dims, 1000, 3);
        assert!(!a.is_empty());
        assert_eq!(a, b, "seeded plans are deterministic");
    }
}
