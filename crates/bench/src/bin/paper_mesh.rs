//! **paper-mesh** — the paper-scale smoke run: one full TPFA flux
//! application on the paper's 746×989 mesh footprint (737,794 PEs, one
//! cell column per PE), measured, not modeled.
//!
//! This is the workload the SPMD arena work exists for: per-PE scalar
//! state lives in flat struct-of-array arenas, route programs are
//! deduplicated to O(1) equivalence classes, and PE memories grow
//! lazily — so peak RSS is O(PEs × state words) and the fabric fits on
//! an ordinary host. The z extent is truncated to 2 layers so one apply
//! finishes in CI; the xy extent (the PE grid, the part that stresses
//! the fabric representation) is the paper's.
//!
//! ```text
//! cargo run --release --bin paper_mesh -- [--budget-s S] [--max-rss-mb MB] [--shards N [--threads M]]
//! ```
//!
//! With `--budget-s` / `--max-rss-mb` the run becomes a blocking gate:
//! exit 1 if the apply exceeds the wall budget or the process high-water
//! RSS (`VmHWM`, the same figure `/usr/bin/time -v` reports) exceeds the
//! ceiling. CI runs `just paper-mesh` with both set.

use std::time::Instant;

use bench::{peak_rss_mb, pressure_for_iteration, standard_problem, PAPER_MESH_XY, PAPER_SMOKE_NZ};
use tpfa_dataflow::DataflowFluxSimulator;

const PAPER_NX: usize = PAPER_MESH_XY.0;
const PAPER_NY: usize = PAPER_MESH_XY.1;
const SMOKE_NZ: usize = PAPER_SMOKE_NZ;

fn flag_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let common = bench::CommonArgs::from_slice(&raw).unwrap_or_else(|why| {
        eprintln!("error: {why}");
        std::process::exit(2);
    });
    let budget_s = flag_value(&raw, "--budget-s");
    let max_rss_mb = flag_value(&raw, "--max-rss-mb");

    println!(
        "== paper mesh: {PAPER_NX}x{PAPER_NY}x{SMOKE_NZ} ({} PEs), engine {} ==",
        PAPER_NX * PAPER_NY,
        common.execution_label()
    );

    let t_setup = Instant::now();
    let (mesh, fluid, trans) = standard_problem(PAPER_NX, PAPER_NY, SMOKE_NZ, 2);
    let p = pressure_for_iteration(&mesh, 0);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .execution(common.execution)
        .build()
        .expect("paper-mesh problem must build");
    println!(
        "  setup: {:.1} s ({} route equivalence classes across {} PEs)",
        t_setup.elapsed().as_secs_f64(),
        sim.eq_classes(),
        PAPER_NX * PAPER_NY,
    );

    let t_apply = Instant::now();
    let residual = sim.apply(&p).expect("paper-mesh apply failed");
    let wall_s = t_apply.elapsed().as_secs_f64();
    let report = sim.last_run().expect("run recorded");
    assert_eq!(residual.len(), PAPER_NX * PAPER_NY * SMOKE_NZ);
    assert!(
        residual.iter().all(|v| v.is_finite()),
        "paper-mesh residual must be finite"
    );

    let rss = peak_rss_mb();
    println!(
        "  apply: {wall_s:.1} s, {} events ({:.0} events/s), final time {} cycles",
        report.events,
        report.events as f64 / wall_s,
        report.final_time,
    );
    match rss {
        Some(mb) => println!("  peak RSS: {mb:.0} MiB (VmHWM)"),
        None => println!("  peak RSS: unavailable (no /proc)"),
    }

    let mut failed = false;
    if let Some(budget) = budget_s {
        if wall_s > budget {
            eprintln!("FAIL: apply took {wall_s:.1} s, budget {budget:.1} s");
            failed = true;
        } else {
            println!("  wall budget: {wall_s:.1} s <= {budget:.1} s");
        }
    }
    if let (Some(ceiling), Some(mb)) = (max_rss_mb, rss) {
        if mb > ceiling {
            eprintln!("FAIL: peak RSS {mb:.0} MiB, ceiling {ceiling:.0} MiB");
            failed = true;
        } else {
            println!("  RSS ceiling: {mb:.0} MiB <= {ceiling:.0} MiB");
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("paper-mesh smoke passed");
}
