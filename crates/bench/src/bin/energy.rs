//! **§7.2 energy comparison** — GFLOP/W of the dataflow implementation vs
//! the A100 reference, and their ratio (paper: 13.67 GFLOP/W and 2.2×).

use bench::{measure_dataflow, PAPER_ITERATIONS, PAPER_MESH};
use perf_model::energy::efficiency_ratio;
use perf_model::{A100Model, Cs2Model, EnergyModel};

fn main() {
    println!("== Energy efficiency (paper §7.2) ==\n");

    let (px, py, pz) = PAPER_MESH;
    let cells = px * py * pz;
    let total_flops = 140.0 * cells as f64 * PAPER_ITERATIONS as f64;

    // CS-2: modeled time from measured counters.
    let cs2 = Cs2Model::default();
    let meas = measure_dataflow(9, 9, 12, 1, true);
    let per_iter = meas.interior_pe_per_iteration.cycles() as f64 * pz as f64 / 12.0;
    let t_cs2 = cs2.time_seconds(per_iter / cs2.simd_width, PAPER_ITERATIONS);
    let e_cs2 = EnergyModel::new(cs2.power_watts);
    let eff_cs2 = e_cs2.gflop_per_watt(total_flops, t_cs2);

    // A100: modeled time from the bandwidth roofline.
    let a100 = A100Model::default();
    let t_a100 = a100.time_seconds(cells, PAPER_ITERATIONS);
    let e_a100 = EnergyModel::new(a100.power_watts);
    let eff_a100 = e_a100.gflop_per_watt(total_flops, t_a100);

    let w = [12, 12, 12, 14, 14, 14];
    bench::print_row(
        &[
            "machine".into(),
            "power [W]".into(),
            "time [s]".into(),
            "energy [kJ]".into(),
            "GFLOP/W".into(),
            "paper".into(),
        ],
        &w,
    );
    bench::print_sep(&w);
    bench::print_row(
        &[
            "CS-2".into(),
            format!("{:.0}", cs2.power_watts),
            bench::fmt_s(t_cs2),
            format!("{:.2}", e_cs2.energy_joules(t_cs2) / 1e3),
            format!("{eff_cs2:.2}"),
            "13.67".into(),
        ],
        &w,
    );
    bench::print_row(
        &[
            "A100".into(),
            format!("{:.0}", a100.power_watts),
            bench::fmt_s(t_a100),
            format!("{:.2}", e_a100.energy_joules(t_a100) / 1e3),
            format!("{eff_a100:.2}"),
            "6.10".into(),
        ],
        &w,
    );
    println!(
        "\nenergy-efficiency ratio (CS-2 / A100), modeled times: {:.2}x   (paper: 2.2x)",
        efficiency_ratio(eff_cs2, eff_a100)
    );
    // Our CS-2 cycle model omits task-dispatch overheads and so runs ~3x
    // faster than the real machine; with the paper's own wall-clocks the
    // published ratio is recovered exactly:
    let eff_cs2_paper = e_cs2.gflop_per_watt(total_flops, 0.0823);
    let eff_a100_paper = e_a100.gflop_per_watt(total_flops, 16.8378);
    println!(
        "with the paper's wall-clocks: CS-2 {:.2} GFLOP/W, A100 {:.2} GFLOP/W, ratio {:.2}x",
        eff_cs2_paper,
        eff_a100_paper,
        efficiency_ratio(eff_cs2_paper, eff_a100_paper)
    );
    println!("(note: aggregate device power only, host and networking excluded — as in the paper)");
}
