//! **Table 3** — time distribution on the CS-2 between data movement and
//! computation.
//!
//! The paper measures this by running a modified binary with all flux
//! computation removed (communication only): 0.0199 s of 0.0823 s =
//! 24.18 % data movement. We reproduce the protocol exactly: the driver's
//! `compute_enabled = false` mode is the stripped binary; the split is
//! computed from the measured critical-path PE cycles of both runs.

use bench::{measure_dataflow, pressure_for_iteration, standard_problem, PAPER_ITERATIONS};
use perf_model::Cs2Model;
use tpfa_dataflow::DataflowFluxSimulator;
use wse_prof::Profile;
use wse_sim::trace::TraceSpec;

fn main() {
    let args = bench::CommonArgs::parse();
    println!("== Table 3: time distribution on the fabric (largest mesh) ==\n");

    let (nx, ny, nz) = (9, 9, 12);
    let full = measure_dataflow(nx, ny, nz, 2, true);
    let comm_only = measure_dataflow(nx, ny, nz, 2, false);

    // Communication-only run: its interior-PE cycles are the data-movement
    // time; the full run's cycles are the total.
    let comm = comm_only.interior_pe_per_iteration.comm_cycles;
    let total = full.interior_pe_per_iteration.cycles();

    println!(
        "Measured per-PE cycles per application (nz = {nz}): total {total}, \
         comm-only {comm}\n"
    );

    // Scale to the paper mesh and convert to seconds.
    let cs2 = Cs2Model::default();
    let scale = 246.0 / nz as f64;
    let to_s =
        |cycles: u64| cs2.time_seconds(cycles as f64 * scale / cs2.simd_width, PAPER_ITERATIONS);
    let t_comm = to_s(comm);
    let t_total = to_s(total);
    let t_compute = t_total - t_comm;

    let w = [16, 12, 14, 12, 14];
    bench::print_row(
        &[
            "".into(),
            "time [s]".into(),
            "percent [%]".into(),
            "paper [s]".into(),
            "paper [%]".into(),
        ],
        &w,
    );
    bench::print_sep(&w);
    bench::print_row(
        &[
            "Data movement".into(),
            bench::fmt_s(t_comm),
            format!("{:.2}", 100.0 * t_comm / t_total),
            "0.0199".into(),
            "24.18".into(),
        ],
        &w,
    );
    bench::print_row(
        &[
            "Computation".into(),
            bench::fmt_s(t_compute),
            format!("{:.2}", 100.0 * t_compute / t_total),
            "0.0624".into(),
            "75.82".into(),
        ],
        &w,
    );
    bench::print_row(
        &[
            "Total".into(),
            bench::fmt_s(t_total),
            "100.00".into(),
            "0.0823".into(),
            "100.00".into(),
        ],
        &w,
    );
    println!("\n(shape check: data movement is the minority share, computation dominates)");

    // Profile-derived breakdown: instead of the stripped comm-only binary,
    // run the *full* binary once with tracing on and let wse-prof attribute
    // the pacing PE's cycles to regions — the split must agree with the
    // counter-derived protocol above (the rel-err column quantifies it).
    let (mesh, fluid, trans) = standard_problem(nx, ny, nz, 42);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .trace(TraceSpec::ring(1 << 16))
        .build()
        .unwrap();
    sim.apply(&pressure_for_iteration(&mesh, 0))
        .expect("traced run failed");
    let trace = sim.trace().expect("tracing was enabled");
    let profile = Profile::from_trace(&trace);

    // Same paper-mesh scaling as above, applied to the attributed cycles.
    let scaled = |cycles: u64| (cycles as f64 * scale).round() as u64;
    let from_profile = cs2.breakdown_from_cycles(
        scaled(profile.pacing_compute_cycles()),
        scaled(profile.pacing_comm_cycles()),
        1,
        PAPER_ITERATIONS,
    );
    let from_counters =
        cs2.breakdown_from_cycles(scaled(total - comm), scaled(comm), 1, PAPER_ITERATIONS);

    println!("\n== profile-derived vs counter-derived breakdown ==\n");
    let w2 = [16, 14, 14, 12];
    bench::print_row(
        &[
            "".into(),
            "profile [s]".into(),
            "counter [s]".into(),
            "rel err [%]".into(),
        ],
        &w2,
    );
    bench::print_sep(&w2);
    let rel = |a: f64, b: f64| {
        if b == 0.0 {
            0.0
        } else {
            100.0 * (a - b).abs() / b
        }
    };
    for (label, p, c) in [
        ("Data movement", from_profile.comm_s, from_counters.comm_s),
        (
            "Computation",
            from_profile.compute_s,
            from_counters.compute_s,
        ),
        ("Total", from_profile.total_s, from_counters.total_s),
    ] {
        bench::print_row(
            &[
                label.into(),
                bench::fmt_s(p),
                bench::fmt_s(c),
                format!("{:.2}", rel(p, c)),
            ],
            &w2,
        );
    }
    println!(
        "\n(profile attribution: {:.1}% of pacing-PE cycles in halo-exchange fabric I/O)",
        100.0 * from_profile.comm_fraction()
    );

    // `--profile out.json [--trace-cap N]`: export the full attribution +
    // critical path of the traced run above as JSON.
    if let Some(req) = &args.profile {
        bench::export_profile(&sim, req);
    }

    // `--faults <seed> [--recovery <policy>]`: one faulted demonstration
    // run (never part of the measured tables above).
    let (fx, fy, fz) = (12, 12, 8);
    bench::run_faulted_demo(&args, fx, fy, fz);
}
