//! **Table 3** — time distribution on the CS-2 between data movement and
//! computation.
//!
//! The paper measures this by running a modified binary with all flux
//! computation removed (communication only): 0.0199 s of 0.0823 s =
//! 24.18 % data movement. We reproduce the protocol exactly: the driver's
//! `compute_enabled = false` mode is the stripped binary; the split is
//! computed from the measured critical-path PE cycles of both runs.

use bench::{measure_dataflow, PAPER_ITERATIONS};
use perf_model::Cs2Model;

fn main() {
    println!("== Table 3: time distribution on the fabric (largest mesh) ==\n");

    let (nx, ny, nz) = (9, 9, 12);
    let full = measure_dataflow(nx, ny, nz, 2, true);
    let comm_only = measure_dataflow(nx, ny, nz, 2, false);

    // Communication-only run: its interior-PE cycles are the data-movement
    // time; the full run's cycles are the total.
    let comm = comm_only.interior_pe_per_iteration.comm_cycles;
    let total = full.interior_pe_per_iteration.cycles();

    println!(
        "Measured per-PE cycles per application (nz = {nz}): total {total}, \
         comm-only {comm}\n"
    );

    // Scale to the paper mesh and convert to seconds.
    let cs2 = Cs2Model::default();
    let scale = 246.0 / nz as f64;
    let to_s =
        |cycles: u64| cs2.time_seconds(cycles as f64 * scale / cs2.simd_width, PAPER_ITERATIONS);
    let t_comm = to_s(comm);
    let t_total = to_s(total);
    let t_compute = t_total - t_comm;

    let w = [16, 12, 14, 12, 14];
    bench::print_row(
        &[
            "".into(),
            "time [s]".into(),
            "percent [%]".into(),
            "paper [s]".into(),
            "paper [%]".into(),
        ],
        &w,
    );
    bench::print_sep(&w);
    bench::print_row(
        &[
            "Data movement".into(),
            bench::fmt_s(t_comm),
            format!("{:.2}", 100.0 * t_comm / t_total),
            "0.0199".into(),
            "24.18".into(),
        ],
        &w,
    );
    bench::print_row(
        &[
            "Computation".into(),
            bench::fmt_s(t_compute),
            format!("{:.2}", 100.0 * t_compute / t_total),
            "0.0624".into(),
            "75.82".into(),
        ],
        &w,
    );
    bench::print_row(
        &[
            "Total".into(),
            bench::fmt_s(t_total),
            "100.00".into(),
            "0.0823".into(),
            "100.00".into(),
        ],
        &w,
    );
    println!("\n(shape check: data movement is the minority share, computation dominates)");
}
