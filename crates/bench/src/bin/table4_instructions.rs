//! **Table 4** — instruction and memory-access counts for one mesh cell on
//! the fabric, *measured* by the simulator's DSD instruction counters.
//!
//! Paper: 60 FMUL, 40 FSUB, 10 FNEG, 10 FADD, 10 FMA, 16 FMOV per cell;
//! 406 loads+stores; 16 fabric loads; 140 FLOPs/cell; arithmetic intensity
//! 0.0862 FLOP/B (memory) and 2.1875 FLOP/B (fabric).

use bench::measure_dataflow;

fn main() {
    println!("== Table 4: per-cell instruction and memory access counts ==\n");
    let nz = 16;
    let m = measure_dataflow(7, 7, nz, 1, true);
    let c = &m.interior_pe_per_iteration;
    let nz = nz as u64;

    let per_cell = |v: u64| v / nz;
    let rows: [(&str, u64, u64, &str, &str); 6] = [
        ("FMUL", per_cell(c.fmul), 60, "2 loads, 1 store", "0"),
        ("FSUB", per_cell(c.fsub), 40, "2 loads, 1 store", "0"),
        ("FNEG", per_cell(c.fneg), 10, "1 load, 1 store", "0"),
        ("FADD", per_cell(c.fadd), 10, "2 loads, 1 store", "0"),
        ("FMA", per_cell(c.fma), 10, "3 loads, 1 store", "0"),
        ("FMOV", per_cell(c.fmov_in), 16, "1 store", "1 load"),
    ];

    let w = [10, 10, 10, 20, 14];
    bench::print_row(
        &[
            "op".into(),
            "measured".into(),
            "paper".into(),
            "mem traffic".into(),
            "fabric".into(),
        ],
        &w,
    );
    bench::print_sep(&w);
    let mut all_match = true;
    for (op, got, paper, mem, fab) in rows {
        all_match &= got == paper;
        bench::print_row(
            &[
                op.into(),
                got.to_string(),
                paper.to_string(),
                mem.into(),
                fab.into(),
            ],
            &w,
        );
    }

    println!();
    let flops = c.flops() / nz;
    let mem_access = (c.mem_loads + c.mem_stores) / nz;
    let fabric_loads = c.fabric_loads / nz;
    println!("FLOPs per cell:            {flops}  (paper: 140)");
    println!("loads+stores per cell:     {mem_access}  (paper: 406)");
    println!("fabric loads per cell:     {fabric_loads}  (paper: 16)");
    println!(
        "arithmetic intensity mem:  {:.4} FLOP/B  (paper: 0.0862)",
        c.memory_intensity()
    );
    println!(
        "arithmetic intensity fab:  {:.4} FLOP/B  (paper: 2.1875)",
        c.fabric_intensity()
    );
    println!(
        "\nall instruction counts match the paper: {}",
        if all_match && flops == 140 && mem_access == 406 && fabric_loads == 16 {
            "YES"
        } else {
            "NO"
        }
    );
}
