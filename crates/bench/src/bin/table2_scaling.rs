//! **Table 2** — weak-scaling experiment: grow the X-Y extent at constant
//! Nz = 246 and report throughput [Gcell/s], CS-2 time and A100 time for
//! 1000 applications.
//!
//! The CS-2 column comes from the cycle model (fed with simulator-measured
//! per-PE counters, which depend only on Nz); the A100 column from the
//! bandwidth roofline. A *functional* weak-scaling sweep at laboratory
//! scale is run first to demonstrate the property on the real simulator:
//! the critical-path PE's cycle count stays constant as the fabric grows.

use bench::{measure_dataflow_with, PAPER_ITERATIONS};
use perf_model::{A100Model, Cs2Model};

/// The paper's Table 2 rows: (Nx, Ny, Nz, paper CS-2 s, paper A100 s,
/// paper Gcell/s).
const PAPER_ROWS: [(usize, usize, usize, f64, f64, f64); 6] = [
    (200, 200, 246, 0.0813, 0.9040, 121.01),
    (400, 400, 246, 0.0817, 3.2649, 481.43),
    (600, 600, 246, 0.0821, 7.2440, 1078.79),
    (750, 600, 246, 0.0821, 9.6825, 1347.21),
    (750, 800, 246, 0.0822, 13.2407, 1794.01),
    (750, 950, 246, 0.0823, 16.8378, 2227.38),
];

fn main() {
    // The shared flag family (`--shards N [--threads M]`, `--trace`,
    // `--profile`, ...); counters — and thus every modeled number — are
    // bit-identical across engines.
    let args = bench::CommonArgs::parse();
    let execution = args.execution;
    println!("== Table 2: weak scaling (Nz = 246, 1000 applications) ==");
    println!("(fabric engine: {})\n", args.execution_label());

    // ---- functional demonstration on the simulator ----------------------
    println!("Functional weak scaling on the fabric simulator (nz = 8):");
    let w = [10, 14, 22];
    bench::print_row(
        &[
            "fabric".into(),
            "cells".into(),
            "interior-PE cycles/app".into(),
        ],
        &w,
    );
    bench::print_sep(&w);
    let mut first_cycles = None;
    for n in [4usize, 8, 12, 16] {
        let m = measure_dataflow_with(n, n, 8, 1, true, execution);
        let cyc = m.interior_pe_per_iteration.cycles();
        bench::print_row(
            &[
                format!("{n}x{n}"),
                format!("{}", m.num_cells),
                format!("{cyc}"),
            ],
            &w,
        );
        match first_cycles {
            None => first_cycles = Some(cyc),
            Some(c) => assert_eq!(
                c, cyc,
                "per-PE work must be independent of the fabric extent"
            ),
        }
    }
    println!("(constant cycles/app across fabric sizes = near-perfect weak scaling)\n");

    // ---- paper-scale table ----------------------------------------------
    let a100 = A100Model::default();
    let meas = measure_dataflow_with(9, 9, 12, 1, true, execution);
    let per_iter_nz12 = meas.interior_pe_per_iteration.cycles() as f64;

    let w = [6, 6, 6, 14, 12, 12, 12, 12, 12];
    bench::print_row(
        &[
            "Nx".into(),
            "Ny".into(),
            "Nz".into(),
            "cells".into(),
            "Gcell/s".into(),
            "CS-2 [s]".into(),
            "paper".into(),
            "A100 [s]".into(),
            "paper".into(),
        ],
        &w,
    );
    bench::print_sep(&w);
    for (nx, ny, nz, p_cs2, p_a100, _p_thr) in PAPER_ROWS {
        let cs2 = Cs2Model {
            fabric_cols: nx,
            fabric_rows: ny,
            ..Cs2Model::default()
        };
        let per_iter = per_iter_nz12 * nz as f64 / 12.0;
        let t_cs2 = cs2.time_seconds(per_iter / cs2.simd_width, PAPER_ITERATIONS);
        let cells = nx * ny * nz;
        let thr = cs2.throughput_gcell_per_s(cells, t_cs2, PAPER_ITERATIONS);
        let t_a100 = a100.time_seconds(cells, PAPER_ITERATIONS);
        bench::print_row(
            &[
                nx.to_string(),
                ny.to_string(),
                nz.to_string(),
                cells.to_string(),
                format!("{thr:.2}"),
                bench::fmt_s(t_cs2),
                bench::fmt_s(p_cs2),
                bench::fmt_s(t_a100),
                bench::fmt_s(p_a100),
            ],
            &w,
        );
    }
    println!("\n(shape checks: CS-2 time ~constant, A100 time ~linear in cells,");
    println!(" throughput grows ~linearly with the fabric area — as in the paper)");

    // `--trace out.json [--trace-cap N]`: traced run of the largest
    // functional fabric above; the per-shard summary lines diagnose load
    // imbalance across the sharded engine's partition.
    if let Some(req) = &args.trace {
        bench::run_traced(16, 16, 8, 1, execution, req);
    }

    // `--profile out.json [--trace-cap N]`: profiled run of the same
    // fabric — which PEs, colors and links bound the makespan.
    if let Some(req) = &args.profile {
        bench::run_profiled(16, 16, 8, 1, execution, req);
    }

    // `--faults <seed> [--recovery <policy>]`: one faulted demonstration
    // run (never part of the measured tables above).
    let (fx, fy, fz) = (16, 16, 8);
    bench::run_faulted_demo(&args, fx, fy, fz);

    // `--checkpoint <path>` / `--resume <path>`: kill/restore of a
    // mid-application fabric state, resumed bit-identically.
    bench::run_checkpoint_demo(&args, fx, fy, fz);

    // `--metrics <path>`: one instrumented demonstration run, exported as
    // Prometheus text (never part of the measured tables).
    bench::run_metered_demo(&args, fx, fy, fz);
}
