//! Compares two `BENCH_<rev>.json` reports (see `perf_harness`).
//!
//! ```text
//! cargo run --release --bin perf_diff -- BASELINE.json CANDIDATE.json \
//!     [--threshold pct] [--strict] [--deterministic]
//! ```
//!
//! Prints the per-metric deltas and flags changes beyond the threshold
//! (default 10%) in each metric's worse direction. Report-only by default —
//! exits 0 even with regressions, so CI can surface the diff without
//! blocking merges on noisy shared runners; `--strict` exits 1 instead.
//!
//! `--deterministic` restricts the comparison to the simulated-cycle
//! metrics (everything except the `wall_clock_s/`, `events_per_s/`, and
//! `peak_rss_mb/` families — the last is machine-sized: allocator and
//! page-size dependent). The rest are exact functions of the program —
//! not of the machine — so the threshold drops to 0.00% and *any* change
//! in *any* direction counts as a regression, including `info` entries
//! and metrics missing from the candidate. CI runs this with `--strict`:
//! an engine optimization can never silently change simulated semantics.
//!
//! The `speedup/` and `compiled_vs_hand/` families are
//! **deterministic-adjacent**: ratios of two same-process (interleaved)
//! throughput measurements, so machine noise largely cancels but does not
//! vanish. In `--deterministic` mode they stay in the comparison with a
//! generous worse-direction tolerance ([`RATIO_TOLERANCE_PCT`]) instead
//! of the exact-match rule — the gates that keep the sharded engine from
//! falling behind sequential, and compiled routing from falling behind
//! the hand tables it replaced, at the levels the committed baseline
//! achieved.

use wse_prof::{bench_diff, BenchReport};

/// Worse-direction tolerance for the ratio families (`speedup/`,
/// `compiled_vs_hand/`) in `--deterministic` mode (see the module docs).
const RATIO_TOLERANCE_PCT: f64 = 25.0;

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading bench report {path}: {e}"));
    BenchReport::from_json(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [a_path, b_path] = positional.as_slice() else {
        eprintln!("usage: perf_diff BASELINE.json CANDIDATE.json [--threshold pct] [--strict]");
        std::process::exit(2);
    };
    let threshold = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(10.0);
    let strict = args.iter().any(|a| a == "--strict");
    let deterministic = args.iter().any(|a| a == "--deterministic");

    let mut a = load(a_path);
    let mut b = load(b_path);
    if deterministic {
        let is_machine = |name: &str| {
            name.starts_with("wall_clock_s/")
                || name.starts_with("events_per_s/")
                || name.starts_with("peak_rss_mb/")
        };
        a.entries.retain(|e| !is_machine(&e.name));
        b.entries.retain(|e| !is_machine(&e.name));
    }
    println!("baseline:  {} (rev {})", a_path, a.rev);
    println!("candidate: {} (rev {})\n", b_path, b.rev);
    let mut diff = bench_diff(&a, &b, if deterministic { 0.0 } else { threshold });
    if deterministic {
        for line in &mut diff.lines {
            if line.name.starts_with("speedup/") || line.name.starts_with("compiled_vs_hand/") {
                // Deterministic-adjacent ratio: blocking, but only on a
                // substantial move in the worse (lower) direction.
                line.regressed = line.delta_pct < -RATIO_TOLERANCE_PCT;
            } else {
                // Deterministic metrics admit no direction and no tolerance.
                line.regressed = line.delta_pct != 0.0;
            }
        }
    }
    print!("{diff}");

    let failed = diff.has_regressions() || (deterministic && !diff.missing_in_b.is_empty());
    if strict && failed {
        std::process::exit(1);
    }
}
