//! Compares two `BENCH_<rev>.json` reports (see `perf_harness`).
//!
//! ```text
//! cargo run --release --bin perf_diff -- BASELINE.json CANDIDATE.json \
//!     [--threshold pct] [--strict]
//! ```
//!
//! Prints the per-metric deltas and flags changes beyond the threshold
//! (default 10%) in each metric's worse direction. Report-only by default —
//! exits 0 even with regressions, so CI can surface the diff without
//! blocking merges on noisy shared runners; `--strict` exits 1 instead.

use wse_prof::{bench_diff, BenchReport};

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading bench report {path}: {e}"));
    BenchReport::from_json(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [a_path, b_path] = positional.as_slice() else {
        eprintln!("usage: perf_diff BASELINE.json CANDIDATE.json [--threshold pct] [--strict]");
        std::process::exit(2);
    };
    let threshold = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(10.0);
    let strict = args.iter().any(|a| a == "--strict");

    let a = load(a_path);
    let b = load(b_path);
    println!("baseline:  {} (rev {})", a_path, a.rev);
    println!("candidate: {} (rev {})\n", b_path, b.rev);
    let diff = bench_diff(&a, &b, threshold);
    print!("{diff}");

    if strict && diff.has_regressions() {
        std::process::exit(1);
    }
}
