//! **Serve harness** — scripted exercise of the multi-tenant simulation
//! job server (`wse-serve`): submit → preempt → resume → verify, then a
//! repeat submission that must hit the compiled-layout cache.
//!
//! The script asserts the serving contract end to end:
//!
//! * a job preempted mid-run parks as a complete fabric checkpoint and,
//!   once resumed, finishes with a residual **bit-identical** to a direct
//!   (serverless) run of the same problem;
//! * a second job naming the same [`ProblemSpec`] reports
//!   `cache_hit = true` and a lower setup time than the compiling first
//!   job (the transmissibility assembly is the dominant host-side cost);
//! * the bounded queue rejects the submission past its capacity with the
//!   typed [`wse_serve::SubmitError::QueueFull`].
//!
//! Usage: `serve [--apps N] [--shards N [--threads M]] [--metrics out.prom]`.
//! With `--metrics` the server runs with a live telemetry hub and the
//! `serve_*`/`fabric_*`/`driver_*` series are written out as Prometheus
//! text on exit. Exit code 0 iff every assertion holds.

use bench::pressure_for_iteration;
use tpfa_dataflow::DataflowFluxSimulator;
use wse_serve::{JobServer, JobSpec, JobState, ProblemSpec, ServerConfig};

const NX: usize = 12;
const NY: usize = 12;
const NZ: usize = 6;

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let common = bench::CommonArgs::from_slice(&raw).unwrap_or_else(|why| {
        eprintln!("error: {why}");
        std::process::exit(2);
    });
    let apps = flag_value(&raw, "--apps").unwrap_or(4) as usize;
    let problem = ProblemSpec {
        nx: NX,
        ny: NY,
        nz: NZ,
        perm_seed: 42,
    };
    let mut spec = JobSpec::new(problem, apps);
    spec.execution = common.execution;
    // Small chunks so preemption lands promptly mid-application.
    spec.checkpoint_every = Some(1024);

    println!(
        "== serve: {NX}x{NY}x{NZ}, {apps} applications per job, engine {} ==\n",
        common.execution_label()
    );
    let hub = bench::metrics_hub(&common);
    let server = JobServer::start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        metrics: hub.clone(),
    });

    // ---- submit → preempt → resume → verify -----------------------------
    let id = server.submit(spec.clone()).expect("empty queue accepts");
    println!("submitted {id}");
    // Preempt once the worker is demonstrably mid-run (fall through if the
    // job outraces the poll — the verification below holds either way).
    loop {
        let s = server.status(id).expect("job exists");
        match s.state {
            JobState::Running if s.events > 0 => {
                server.preempt(id);
                break;
            }
            JobState::Done | JobState::Failed(_) => break,
            _ => std::thread::yield_now(),
        }
    }
    let parked = server.wait(id).expect("job exists");
    if parked.state == JobState::Checkpointed {
        println!(
            "preempted {id}: parked at {} events, {}/{} applications, \
             {} checkpoint(s) captured",
            parked.events, parked.applications_done, parked.applications_total, parked.checkpoints
        );
        assert!(server.resume(id), "a parked job accepts resume");
        println!("resumed {id}");
    } else {
        println!("note: {id} finished before the preempt landed (tiny run)");
    }
    let done = server.wait(id).expect("job exists");
    assert_eq!(done.state, JobState::Done, "resumed job must finish");
    let served = server.result(id).expect("done job has a residual");

    // Direct (serverless) control: same problem, same pressure stream.
    let (mesh, fluid, trans) = bench::standard_problem(NX, NY, NZ, 42);
    let mut direct = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .execution(common.execution)
        .build()
        .expect("serve problem is always valid");
    let mut control = Vec::new();
    for i in 0..apps {
        control = direct
            .apply(&pressure_for_iteration(&mesh, i))
            .expect("direct run failed");
    }
    assert!(
        served
            .iter()
            .zip(&control)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "served residual must be bit-identical to the direct run"
    );
    println!(
        "verified: served residual bit-identical to the direct run \
         ({} cells, {} events)\n",
        served.len(),
        done.events
    );

    // ---- compiled-layout cache ------------------------------------------
    let first = server.status(id).expect("job exists");
    let id2 = server.submit(spec).expect("queue has room");
    let second = server.wait(id2).expect("job exists");
    assert_eq!(second.state, JobState::Done);
    assert_eq!(first.cache_hit, Some(false), "first job compiles");
    assert_eq!(second.cache_hit, Some(true), "repeat submission hits");
    let (miss, hit) = (
        first.setup_nanos.expect("measured"),
        second.setup_nanos.expect("measured"),
    );
    assert!(
        hit < miss,
        "cache hit must be cheaper than the compile ({hit} ns vs {miss} ns)"
    );
    println!(
        "compiled-layout cache ({} entry):",
        server.cached_problems()
    );
    let w = [8, 12, 14, 10, 12, 12];
    bench::print_row(
        &[
            "job".into(),
            "cache_hit".into(),
            "setup [µs]".into(),
            "progress".into(),
            "hops".into(),
            "stalls".into(),
        ],
        &w,
    );
    bench::print_sep(&w);
    for (label, s) in [("first", &first), ("repeat", &second)] {
        bench::print_row(
            &[
                label.into(),
                format!("{:?}", s.cache_hit == Some(true)),
                format!("{:.1}", s.setup_nanos.unwrap() as f64 / 1_000.0),
                format!("{:.0}%", s.progress * 100.0),
                format!("{}", s.stats.fabric_hops),
                format!("{}", s.stats.flow_stalls),
            ],
            &w,
        );
    }
    assert_eq!(first.progress, 1.0, "a done job reports progress 1.0");
    assert!(
        second.stats.fabric_hops > 0,
        "a finished job carries cumulative fabric stats"
    );

    // ---- bounded queue ---------------------------------------------------
    // Occupy both workers with long jobs so fillers stay queued, then
    // submit past the capacity.
    let mut blocker = JobSpec::new(problem, 1_000);
    blocker.checkpoint_every = Some(1024);
    let blockers: Vec<_> = (0..2)
        .map(|_| server.submit(blocker.clone()).expect("queue has room"))
        .collect();
    while !blockers.iter().all(|&b| {
        matches!(
            server.status(b).expect("job exists").state,
            JobState::Running
        )
    }) {
        std::thread::yield_now();
    }
    let filler = JobSpec::new(problem, 1);
    let mut fillers = Vec::new();
    let overflow = loop {
        match server.submit(filler.clone()) {
            Ok(fid) => fillers.push(fid),
            Err(e) => break e,
        }
    };
    assert!(
        matches!(overflow, wse_serve::SubmitError::QueueFull { .. }),
        "overflow must be the typed rejection, got: {overflow}"
    );
    println!(
        "\nbounded queue: {} queued fillers behind 2 busy workers, then \
         typed rejection: {overflow}",
        fillers.len()
    );
    for fid in fillers.into_iter().chain(blockers) {
        server.cancel(fid);
    }

    server.shutdown();
    bench::export_metrics(&common, &hub);
    println!("\nserve contract upheld: preempt/resume bit-identity, cache hit, bounded queue.");
}
