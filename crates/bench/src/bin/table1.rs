//! **Table 1** — wall-clock for 1000 applications of Algorithm 1 on the
//! 750 × 994 × 246 mesh: Dataflow/CSL vs GPU/RAJA vs GPU/CUDA.
//!
//! Two layers are reported:
//! 1. *Measured, laboratory scale*: real wall-clock of our Rust
//!    implementations (serial reference, RAJA-like, CUDA-like, and the
//!    functional fabric simulation) on a mesh that fits in RAM, with
//!    average and standard deviation over repeated runs — the paper's
//!    avg/S.D. protocol.
//! 2. *Modeled, paper scale*: the CS-2 and A100 machine models fed with
//!    counters measured from the simulators, next to the paper's numbers.

use bench::{
    measure_dataflow, measure_dataflow_with, pressure_for_iteration, standard_problem,
    PAPER_ITERATIONS,
};
use fv_core::residual::assemble_flux_residual;
use gpu_ref::problem::{GpuFluxProblem, GpuModel};
use perf_model::{A100Model, Cs2Model};
use std::time::Instant;

fn stats_of(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let avg = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - avg) * (s - avg)).sum::<f64>() / n;
    (avg, var.sqrt())
}

fn main() {
    // The shared flag family (`--shards N [--threads M]`, `--trace`,
    // `--profile`, ...) selects the fabric engine and optional exports.
    let args = bench::CommonArgs::parse();
    let execution = args.execution;
    println!("== Table 1: time measurement, 1000 applications of Algorithm 1 ==");
    println!("(fabric engine: {})\n", args.execution_label());

    // ---- layer 1: measured at laboratory scale --------------------------
    let (nx, ny, nz) = (24, 24, 12);
    let apps = 20;
    let repeats = 5;
    let (mesh, fluid, trans) = standard_problem(nx, ny, nz, 42);
    println!(
        "Measured (Rust, {}x{}x{} mesh, {} applications, {} repeats):",
        nx, ny, nz, apps, repeats
    );

    // serial reference
    let mut serial_t = Vec::new();
    let mut r = vec![0.0_f32; mesh.num_cells()];
    for _ in 0..repeats {
        let t0 = Instant::now();
        for i in 0..apps {
            let p = pressure_for_iteration(&mesh, i);
            assemble_flux_residual(&mesh, &fluid, &trans, &p, &mut r);
        }
        serial_t.push(t0.elapsed().as_secs_f64());
    }

    // GPU-style models
    let mut gpu = GpuFluxProblem::new(&mesh, &fluid, &trans);
    let mut raja_t = Vec::new();
    let mut cuda_t = Vec::new();
    for model in [GpuModel::Raja, GpuModel::Cuda] {
        for _ in 0..repeats {
            let t0 = Instant::now();
            for i in 0..apps {
                let p = pressure_for_iteration(&mesh, i);
                gpu.apply(model, &p);
            }
            let dt = t0.elapsed().as_secs_f64();
            match model {
                GpuModel::Raja => raja_t.push(dt),
                GpuModel::Cuda => cuda_t.push(dt),
            }
        }
    }

    // functional fabric simulation (wall-clock of the *simulation*, shown
    // for completeness; CS-2 time comes from the cycle model below)
    let mut sim_t = Vec::new();
    for _ in 0..repeats.min(2) {
        let t0 = Instant::now();
        let _ = measure_dataflow_with(nx, ny, nz, apps.min(3), true, execution);
        sim_t.push(t0.elapsed().as_secs_f64());
    }

    let w = [22, 12, 12];
    bench::print_row(&["impl".into(), "avg [s]".into(), "S.D. [s]".into()], &w);
    bench::print_sep(&w);
    for (name, samples) in [
        ("Serial/Rust", &serial_t),
        ("GPU-like/RAJA", &raja_t),
        ("GPU-like/CUDA", &cuda_t),
        ("Fabric sim (host)", &sim_t),
    ] {
        let (avg, sd) = stats_of(samples);
        bench::print_row(&[name.into(), format!("{avg:.4}"), format!("{sd:.5}")], &w);
    }

    // ---- layer 2: modeled at paper scale --------------------------------
    println!("\nModeled at paper scale (750x994x246, 1000 applications):");
    let meas = measure_dataflow(9, 9, 12, 2, true);
    let cs2 = Cs2Model::default();
    // counters measured at nz=12; the cycle model is linear in nz — rescale
    let per_iter = meas.interior_pe_per_iteration.cycles() as f64 * (246.0 / 12.0);
    let t_cs2 = cs2.time_seconds(per_iter / cs2.simd_width, PAPER_ITERATIONS);
    let a100 = A100Model::default();
    let paper_cells = 750 * 994 * 246;
    let t_raja = a100.time_seconds(paper_cells, PAPER_ITERATIONS);
    // the paper's CUDA kernel is 13% faster than its RAJA kernel
    let t_cuda = t_raja * 14.6573 / 16.8378;

    let w = [16, 14, 14, 12];
    bench::print_row(
        &[
            "arch/lang".into(),
            "model [s]".into(),
            "paper [s]".into(),
            "speedup".into(),
        ],
        &w,
    );
    bench::print_sep(&w);
    bench::print_row(
        &[
            "Dataflow/CSL".into(),
            bench::fmt_s(t_cs2),
            "0.0823".into(),
            "1.0x".into(),
        ],
        &w,
    );
    bench::print_row(
        &[
            "GPU/RAJA".into(),
            bench::fmt_s(t_raja),
            "16.8378".into(),
            format!("{:.0}x", t_raja / t_cs2),
        ],
        &w,
    );
    bench::print_row(
        &[
            "GPU/CUDA".into(),
            bench::fmt_s(t_cuda),
            "14.6573".into(),
            format!("{:.0}x", t_cuda / t_cs2),
        ],
        &w,
    );
    println!(
        "\npaper speedup (RAJA vs CSL): 204x; modeled: {:.0}x",
        t_raja / t_cs2
    );

    // `--trace out.json [--trace-cap N]`: rerun one traced application at
    // laboratory scale on the selected engine and export Chrome JSON + a
    // load summary.
    if let Some(req) = &args.trace {
        bench::run_traced(nx, ny, nz, 1, execution, req);
    }

    // `--profile out.json [--trace-cap N]`: same rerun, but analyzed —
    // per-region cycle attribution plus the recovered critical path.
    if let Some(req) = &args.profile {
        bench::run_profiled(nx, ny, nz, 1, execution, req);
    }

    // `--faults <seed> [--recovery <policy>]`: one faulted demonstration
    // run (never part of the measured tables above).
    bench::run_faulted_demo(&args, nx, ny, nz);

    // `--checkpoint <path>` / `--resume <path>`: kill/restore of a
    // mid-application fabric state, resumed bit-identically.
    bench::run_checkpoint_demo(&args, nx, ny, nz);

    // `--metrics <path>`: one instrumented demonstration run, exported as
    // Prometheus text (never part of the measured tables).
    bench::run_metered_demo(&args, nx, ny, nz);
}
