//! **Figure 8** — roofline models for the CS-2 (top panel: memory + fabric
//! ceilings) and the A100 (bottom panel), with the FV flux kernel placed on
//! both.
//!
//! Prints plot-ready log-log series (arithmetic intensity, attainable
//! FLOP/s) for every ceiling, plus the kernel dots: the CS-2 kernel's two
//! dots use arithmetic intensities *measured* by the simulator's counters;
//! the achieved FLOP rates come from the machine models.

use bench::{measure_dataflow, PAPER_ITERATIONS, PAPER_MESH};
use perf_model::{A100Model, Cs2Model, Roofline, RooflinePoint};

fn main() {
    println!("== Figure 8: rooflines (log-log series + kernel dots) ==\n");

    // Measured kernel characterization.
    let meas = measure_dataflow(9, 9, 12, 1, true);
    let c = &meas.interior_pe_per_iteration;
    let ai_mem = c.memory_intensity();
    let ai_fab = c.fabric_intensity();

    // ---- CS-2 panel ------------------------------------------------------
    let cs2 = Cs2Model::default();
    let roof_cs2 = Roofline::new("CS-2", cs2.peak_flops())
        .with_bandwidth("memory", cs2.memory_bandwidth())
        .with_bandwidth("fabric", cs2.fabric_bandwidth());

    let per_iter = c.cycles() as f64 * 246.0 / 12.0;
    let t_cs2 = cs2.time_seconds(per_iter / cs2.simd_width, PAPER_ITERATIONS);
    let (px, py, pz) = PAPER_MESH;
    let total_flops = 140.0 * (px * py * pz) as f64 * PAPER_ITERATIONS as f64;
    let achieved = total_flops / t_cs2;

    println!("# CS-2 panel (peak {:.1} TFLOP/s)", cs2.peak_flops() / 1e12);
    for label in ["memory", "fabric"] {
        println!("## ceiling: {label}");
        for (ai, f) in roof_cs2.series(label, 0.01, 100.0, 13) {
            println!("{ai:10.4}  {:14.4e}", f);
        }
    }
    let mem_point = RooflinePoint {
        label: "FV flux (memory)".into(),
        intensity: ai_mem,
        achieved_flops: achieved,
        ceiling: "memory".into(),
    };
    let fab_point = RooflinePoint {
        label: "FV flux (fabric)".into(),
        intensity: ai_fab,
        achieved_flops: achieved,
        ceiling: "fabric".into(),
    };
    println!("## kernel dots");
    for p in [&mem_point, &fab_point] {
        println!(
            "{:22} AI {:8.4} FLOP/B   achieved {:9.2} TFLOP/s   {}-bound   ({:.0}% of roof)",
            p.label,
            p.intensity,
            p.achieved_flops / 1e12,
            if roof_cs2.is_bandwidth_bound(&p.ceiling, p.intensity) {
                "bandwidth"
            } else {
                "compute"
            },
            100.0 * roof_cs2.efficiency(p),
        );
    }
    println!(
        "paper: AI 0.0862 (memory, bandwidth-bound) / 2.1875 (fabric, compute-bound), \
         311.85 TFLOP/s achieved\n"
    );

    // ---- A100 panel -------------------------------------------------------
    let a100 = A100Model::default();
    let roof_a100 =
        Roofline::new("A100", a100.peak_flops).with_bandwidth("HBM", a100.mem_bandwidth);
    println!("# A100 panel (peak {:.1} TFLOP/s)", a100.peak_flops / 1e12);
    println!("## ceiling: HBM");
    for (ai, f) in roof_a100.series("HBM", 0.1, 100.0, 13) {
        println!("{ai:10.4}  {:14.4e}", f);
    }
    let gpu_point = RooflinePoint {
        label: "FV flux (RAJA)".into(),
        intensity: a100.profiled_intensity,
        achieved_flops: a100.roofline_ceiling() * a100.bandwidth_efficiency,
        ceiling: "HBM".into(),
    };
    println!("## kernel dot");
    println!(
        "{:22} AI {:8.4} FLOP/B   achieved {:9.2} GFLOP/s   {}-bound   ({:.0}% of roof)",
        gpu_point.label,
        gpu_point.intensity,
        gpu_point.achieved_flops / 1e9,
        if roof_a100.is_bandwidth_bound("HBM", gpu_point.intensity) {
            "memory"
        } else {
            "compute"
        },
        100.0 * roof_a100.efficiency(&gpu_point),
    );
    println!("paper: AI 2.11 FLOP/B, 6012 GFLOP/s, memory-bound at 76% of the roof");
}
