//! The perf-regression harness: measures the simulator's host-side
//! performance and the profiler's cycle-level figures on fixed workloads,
//! and writes a schema-versioned `BENCH_<rev>.json` for `perf-diff`.
//!
//! ```text
//! cargo run --release --bin perf_harness -- [rev] [--out path] [--update-baseline]
//! ```
//!
//! `rev` (default `unversioned`) names the revision in the report and the
//! default output file. Wall-clock entries are medians of several repeats —
//! still noisy on shared CI machines, which is why `perf-diff` is a
//! report-only gate with a generous threshold. `--update-baseline`
//! additionally rewrites the committed `BENCH_baseline.json` with this
//! run's numbers (`just bench-baseline`) — do this only deliberately, on
//! an idle machine, after an intentional performance change.

use std::time::Instant;

use bench::{
    peak_rss_mb, pressure_for_iteration, standard_problem, PAPER_ITERATIONS, PAPER_MESH_XY,
    PAPER_SMOKE_NZ,
};
use perf_model::Cs2Model;
use tpfa_dataflow::DataflowFluxSimulator;
use wse_prof::{bucket_name, critical_path, BenchReport, Profile, PROFILE_BUCKETS};
use wse_sim::fabric::Execution;
use wse_sim::trace::TraceSpec;

const WALL_NZ: usize = 6;
const WALL_N: usize = 64;
const WALL_REPEATS: usize = 5;
const PROF_N: usize = 16;
const PROF_NZ: usize = 6;

/// One engine's wall-clock measurement plus the deterministic cycle-level
/// observables of the measured workload.
struct WallMeasurement {
    /// Median wall-clock seconds of one `apply` (after one warm-up).
    wall_s: f64,
    /// Events per second of the median run.
    events_per_s: f64,
    /// Events per `apply` — an exact function of the program, identical
    /// across engines (the differential invariant, surfaced as a metric).
    events: u64,
    /// Final fabric time of the last `apply`, in simulated cycles.
    final_time: u64,
    /// Delivery cycles spent queued behind busy CEs, summed over PEs.
    queue_wait_cycles: u64,
    /// Per-shard fabric-hop split under the measured 4-shard partition.
    shard_hops: Vec<u64>,
}

fn measure_wall(execution: Execution, hand_routes: bool) -> WallMeasurement {
    let (mesh, fluid, trans) = standard_problem(WALL_N, WALL_N, WALL_NZ, 2);
    let p = pressure_for_iteration(&mesh, 0);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .hand_routes(hand_routes)
        .execution(execution)
        .build()
        .unwrap();
    sim.apply(&p).expect("warm-up failed");
    let mut times = Vec::with_capacity(WALL_REPEATS);
    let mut events = 0u64;
    let mut final_time = 0u64;
    for _ in 0..WALL_REPEATS {
        let t0 = Instant::now();
        sim.apply(&p).expect("measured run failed");
        times.push(t0.elapsed().as_secs_f64());
        let report = sim.last_run().expect("run recorded");
        events = report.events;
        final_time = report.final_time;
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    WallMeasurement {
        wall_s: median,
        events_per_s: events as f64 / median,
        events,
        final_time,
        queue_wait_cycles: sim.queue_wait_cycles(),
        shard_hops: sim.shard_stats(4).iter().map(|s| s.fabric_hops).collect(),
    }
}

/// Compiled-pattern vs hand-derived routing, measured as interleaved
/// A/B pairs on the same problem in the same process: repeat i of the
/// compiled simulator is immediately followed by repeat i of the hand
/// one, so thermal/frequency/cache drift hits both sides equally and
/// the throughput *ratio* is trustworthy even on a noisy host.
/// Returns `(compiled_events_per_s, hand_events_per_s, events)`.
fn measure_compiled_vs_hand() -> (f64, f64, u64) {
    let (mesh, fluid, trans) = standard_problem(WALL_N, WALL_N, WALL_NZ, 2);
    let p = pressure_for_iteration(&mesh, 0);
    let build = |hand: bool| {
        DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .hand_routes(hand)
            .build()
            .unwrap()
    };
    let mut compiled = build(false);
    let mut hand = build(true);
    compiled.apply(&p).expect("compiled warm-up failed");
    hand.apply(&p).expect("hand warm-up failed");
    let mut t_compiled = Vec::with_capacity(WALL_REPEATS);
    let mut t_hand = Vec::with_capacity(WALL_REPEATS);
    for _ in 0..WALL_REPEATS {
        let t0 = Instant::now();
        compiled.apply(&p).expect("compiled run failed");
        t_compiled.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        hand.apply(&p).expect("hand run failed");
        t_hand.push(t0.elapsed().as_secs_f64());
    }
    let events = compiled.last_run().expect("run recorded").events;
    assert_eq!(events, hand.last_run().expect("run recorded").events);
    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let e = events as f64;
    (e / median(t_compiled), e / median(t_hand), events)
}

/// One measured apply on the paper mesh's 746×989 PE footprint — the run
/// the SPMD arena representation exists for. Single-shot (no warm-up
/// median: the point is that it *completes*, and a second 35-second
/// apply would double the harness runtime for noise reduction the
/// generous wall-clock threshold doesn't need).
fn measure_paper_mesh(report: &mut BenchReport) {
    let (nx, ny) = PAPER_MESH_XY;
    let (mesh, fluid, trans) = standard_problem(nx, ny, PAPER_SMOKE_NZ, 2);
    let p = pressure_for_iteration(&mesh, 0);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .build()
        .expect("paper-mesh problem must build");
    let t0 = Instant::now();
    sim.apply(&p).expect("paper-mesh apply failed");
    let wall_s = t0.elapsed().as_secs_f64();
    let run = sim.last_run().expect("run recorded");
    println!(
        "  paper-mesh {nx}x{ny}x{PAPER_SMOKE_NZ}: {wall_s:.1} s/apply, {} events, {} classes",
        run.events,
        sim.eq_classes()
    );
    report.push(
        "wall_clock_s/paper_mesh/sequential",
        wall_s,
        "s",
        "lower-better",
    );
    report.push(
        "events_per_s/paper_mesh/sequential",
        run.events as f64 / wall_s,
        "events/s",
        "higher-better",
    );
    // Deterministic observables of the paper-scale program: exact, so the
    // blocking deterministic gate pins them bit-for-bit.
    report.push(
        "events/paper_mesh/sequential",
        run.events as f64,
        "events",
        "info",
    );
    report.push(
        "final_time/paper_mesh/sequential",
        run.final_time as f64,
        "cycles",
        "info",
    );
    report.push(
        "eq_classes/paper_mesh",
        sim.eq_classes() as f64,
        "classes",
        "info",
    );
    // Process high-water RSS. The paper-mesh fabric dwarfs every other
    // allocation in the harness, so VmHWM is its peak footprint — the
    // O(PEs × state words) number the arena layout bounds. Machine-sized
    // (allocator, page size), so excluded from the deterministic gate
    // alongside wall-clock.
    if let Some(mb) = peak_rss_mb() {
        println!("  paper-mesh peak RSS: {mb:.0} MiB (VmHWM)");
        report.push("peak_rss_mb/paper_mesh", mb, "MiB", "lower-better");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rev = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "unversioned".to_string());
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("BENCH_{rev}.json"));

    let mut report = BenchReport::new(&rev);

    // Host-side wall-clock: the simulator as a program, both engines.
    println!("== perf harness ({WALL_N}x{WALL_N}x{WALL_NZ} wall-clock, {PROF_N}x{PROF_N}x{PROF_NZ} profile) ==");
    let mut throughputs = Vec::new();
    let mut seq_compiled: Option<(f64, u64)> = None;
    // "4x2" = 4 shards × up to 2 workers. The worker request is capped at
    // the host's parallelism: spinning more lookahead workers than cores
    // only adds scheduling overhead, and on a single-core host the engine's
    // lone-worker schedule (no clock gossip, no mailbox handoff) is the
    // honest best case being measured.
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get().min(2));
    for (label, execution) in [
        ("sequential", Execution::Sequential),
        ("sharded-4x2", Execution::Sharded { shards: 4, threads }),
    ] {
        let m = measure_wall(execution, false);
        println!(
            "  {label}: {:.4} s/apply, {:.0} events/s",
            m.wall_s, m.events_per_s
        );
        report.push(
            &format!("wall_clock_s/{WALL_N}x{WALL_N}/{label}"),
            m.wall_s,
            "s",
            "lower-better",
        );
        report.push(
            &format!("events_per_s/{WALL_N}x{WALL_N}/{label}"),
            m.events_per_s,
            "events/s",
            "higher-better",
        );
        // Cycle-level observables of the measured workload: exact functions
        // of the program, bit-identical across engines. The deterministic
        // perf-diff gate flags *any* drift in them — per engine label, so a
        // sharded-only semantic change cannot hide behind the sequential
        // numbers.
        report.push(
            &format!("events/{WALL_N}x{WALL_N}/{label}"),
            m.events as f64,
            "events",
            "info",
        );
        report.push(
            &format!("final_time/{WALL_N}x{WALL_N}/{label}"),
            m.final_time as f64,
            "cycles",
            "info",
        );
        report.push(
            &format!("queue_wait_cycles/{WALL_N}x{WALL_N}/{label}"),
            m.queue_wait_cycles as f64,
            "cycles",
            "info",
        );
        for (k, hops) in m.shard_hops.iter().enumerate() {
            report.push(
                &format!("shard_hops/{WALL_N}x{WALL_N}/{label}/shard{k}"),
                *hops as f64,
                "hops",
                "info",
            );
        }
        throughputs.push(m.events_per_s);
        if label == "sequential" {
            seq_compiled = Some((m.events_per_s, m.events));
        }
    }
    // The seq-vs-sharded gap as one deterministic-adjacent ratio: both
    // throughputs come from the same process moments apart, so machine
    // noise largely cancels and `perf_diff --deterministic --strict` can
    // block on it (with a generous worse-direction tolerance) without the
    // flakiness of raw wall-clock gates.
    let speedup = throughputs[1] / throughputs[0];
    println!("  speedup (sharded-4x2 / sequential): {speedup:.3}×");
    report.push(
        &format!("speedup/{WALL_N}x{WALL_N}/sharded-4x2_vs_sequential"),
        speedup,
        "ratio",
        "higher-better",
    );

    // Differential probe for the stencil compiler: the compiled TPFA route
    // pattern (the default path above) against the hand-derived tables it
    // replaced, same sequential engine. The event counts are bit-identical
    // by construction (wse-stencil's equivalence suite pins this), so the
    // deterministic `events` entry flags any drift in what the compiler
    // emits. The two throughputs are measured INTERLEAVED — repeat i of
    // the compiled sim immediately followed by repeat i of the hand sim,
    // same process, same moment — so machine drift cancels out of their
    // ratio. A historical lesson baked into the harness shape: measuring
    // them minutes apart once showed a phantom 30% "dispatch overhead"
    // that was really first-measurement warm-up (see DESIGN.md).
    let (_, compiled_events) = seq_compiled.expect("sequential engine was measured above");
    let (compiled_eps, hand_eps, pair_events) = measure_compiled_vs_hand();
    assert_eq!(
        compiled_events, pair_events,
        "compiled and hand-derived TPFA routes must replay the same event stream"
    );
    let compiled_vs_hand = compiled_eps / hand_eps;
    println!(
        "  compiled-tpfa: {compiled_eps:.0} events/s (hand routes: {hand_eps:.0} events/s, ratio {compiled_vs_hand:.3})"
    );
    report.push(
        &format!("events_per_s/{WALL_N}x{WALL_N}/compiled-tpfa"),
        compiled_eps,
        "events/s",
        "higher-better",
    );
    report.push(
        &format!("events/{WALL_N}x{WALL_N}/compiled-tpfa"),
        compiled_events as f64,
        "events",
        "info",
    );
    report.push(
        &format!("events_per_s/{WALL_N}x{WALL_N}/hand-tpfa"),
        hand_eps,
        "events/s",
        "info",
    );
    // Deterministic-adjacent ratio (like `speedup/`): compiled routing
    // must not fall behind the hand tables it replaced. Blocking in
    // `perf_diff --deterministic --strict` with a worse-direction
    // tolerance, gated at the achieved level via the committed baseline.
    report.push(
        &format!("compiled_vs_hand/{WALL_N}x{WALL_N}"),
        compiled_vs_hand,
        "ratio",
        "higher-better",
    );

    // Cycle-level figures from the profiler: deterministic (simulated
    // cycles, not wall-clock), so these regress only when the kernels or
    // the fabric model change — tight signals, still report-only.
    let (mesh, fluid, trans) = standard_problem(PROF_N, PROF_N, PROF_NZ, 7);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .trace(TraceSpec::ring(8192))
        .build()
        .unwrap();
    sim.apply(&pressure_for_iteration(&mesh, 3))
        .expect("profiled run failed");
    let trace = sim.trace().expect("tracing was enabled");
    let profile = Profile::from_trace(&trace);
    let cp = critical_path(&trace, 1).expect("run has tasks");
    let grid = format!("{PROF_N}x{PROF_N}");

    report.push(
        &format!("critical_path/{grid}/makespan_cycles"),
        cp.makespan as f64,
        "cycles",
        "lower-better",
    );
    report.push(
        &format!("critical_path/{grid}/task_cycles"),
        cp.task_cycles as f64,
        "cycles",
        "info",
    );
    report.push(
        &format!("critical_path/{grid}/hop_cycles"),
        cp.hop_cycles as f64,
        "cycles",
        "info",
    );
    report.push(
        &format!("critical_path/{grid}/steps"),
        cp.steps.len() as f64,
        "steps",
        "info",
    );
    report.push(
        &format!("attribution/{grid}/pacing_pe_cycles"),
        profile.max_pe_counters.cycles() as f64,
        "cycles",
        "lower-better",
    );
    for i in 0..PROFILE_BUCKETS {
        report.push(
            &format!("attribution/{grid}/share/{}", bucket_name(i)),
            profile.share(i),
            "fraction",
            "info",
        );
    }
    // The modeled full-scale wall-clock these cycles imply (Table 1's CS-2
    // figure, profile-derived). Demoted to `info` now that the paper mesh
    // is *measured* below: the model remains a useful cross-check against
    // the hardware figure, but the number the harness optimizes is the
    // measured `wall_clock_s/paper_mesh/*` family.
    let cs2 = Cs2Model::default();
    let scale = 246.0 / PROF_NZ as f64;
    let modeled = cs2.breakdown_from_cycles(
        (profile.pacing_compute_cycles() as f64 * scale).round() as u64,
        (profile.pacing_comm_cycles() as f64 * scale).round() as u64,
        1,
        PAPER_ITERATIONS,
    );
    report.push("modeled/paper_mesh/total_s", modeled.total_s, "s", "info");
    report.push(
        "modeled/paper_mesh/comm_fraction",
        modeled.comm_fraction(),
        "fraction",
        "info",
    );

    // The measured paper-scale run (the point of the SPMD arena work):
    // one full apply on the 746×989 PE footprint, wall-clock and peak
    // RSS, plus its deterministic event/time/class observables.
    measure_paper_mesh(&mut report);

    println!(
        "  profile: makespan {} cycles, pacing PE {} cycles, modeled paper-mesh {:.4} s",
        cp.makespan,
        profile.max_pe_counters.cycles(),
        modeled.total_s
    );
    std::fs::write(&out, report.to_json())
        .unwrap_or_else(|e| panic!("writing bench report to {out}: {e}"));
    println!(
        "bench report written to {out} ({} entries)",
        report.entries.len()
    );
    if args.iter().any(|a| a == "--update-baseline") {
        std::fs::write("BENCH_baseline.json", report.to_json())
            .unwrap_or_else(|e| panic!("rewriting BENCH_baseline.json: {e}"));
        println!("BENCH_baseline.json updated (rev {rev})");
    }
}
