//! The perf-regression harness: measures the simulator's host-side
//! performance and the profiler's cycle-level figures on fixed workloads,
//! and writes a schema-versioned `BENCH_<rev>.json` for `perf-diff`.
//!
//! ```text
//! cargo run --release --bin perf_harness -- [rev] [--out path] [--update-baseline]
//! ```
//!
//! `rev` (default `unversioned`) names the revision in the report and the
//! default output file. Wall-clock entries are medians of several repeats —
//! still noisy on shared CI machines, which is why `perf-diff` is a
//! report-only gate with a generous threshold. `--update-baseline`
//! additionally rewrites the committed `BENCH_baseline.json` with this
//! run's numbers (`just bench-baseline`) — do this only deliberately, on
//! an idle machine, after an intentional performance change.

use std::time::Instant;

use bench::{pressure_for_iteration, standard_problem, PAPER_ITERATIONS};
use perf_model::Cs2Model;
use tpfa_dataflow::DataflowFluxSimulator;
use wse_prof::{bucket_name, critical_path, BenchReport, Profile, PROFILE_BUCKETS};
use wse_sim::fabric::Execution;
use wse_sim::trace::TraceSpec;

const WALL_NZ: usize = 6;
const WALL_N: usize = 64;
const WALL_REPEATS: usize = 5;
const PROF_N: usize = 16;
const PROF_NZ: usize = 6;

/// Median wall-clock seconds of one `apply` over `WALL_REPEATS` runs (after
/// one warm-up), plus the events/s of the last run.
fn measure_wall(execution: Execution) -> (f64, f64) {
    let (mesh, fluid, trans) = standard_problem(WALL_N, WALL_N, WALL_NZ, 2);
    let p = pressure_for_iteration(&mesh, 0);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .execution(execution)
        .build()
        .unwrap();
    sim.apply(&p).expect("warm-up failed");
    let mut times = Vec::with_capacity(WALL_REPEATS);
    let mut events = 0u64;
    for _ in 0..WALL_REPEATS {
        let t0 = Instant::now();
        sim.apply(&p).expect("measured run failed");
        times.push(t0.elapsed().as_secs_f64());
        events = sim.last_run().expect("run recorded").events;
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    (median, events as f64 / median)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rev = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "unversioned".to_string());
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("BENCH_{rev}.json"));

    let mut report = BenchReport::new(&rev);

    // Host-side wall-clock: the simulator as a program, both engines.
    println!("== perf harness ({WALL_N}x{WALL_N}x{WALL_NZ} wall-clock, {PROF_N}x{PROF_N}x{PROF_NZ} profile) ==");
    for (label, execution) in [
        ("sequential", Execution::Sequential),
        (
            "sharded-4x2",
            Execution::Sharded {
                shards: 4,
                threads: 2,
            },
        ),
    ] {
        let (wall_s, events_per_s) = measure_wall(execution);
        println!("  {label}: {wall_s:.4} s/apply, {events_per_s:.0} events/s");
        report.push(
            &format!("wall_clock_s/{WALL_N}x{WALL_N}/{label}"),
            wall_s,
            "s",
            "lower-better",
        );
        report.push(
            &format!("events_per_s/{WALL_N}x{WALL_N}/{label}"),
            events_per_s,
            "events/s",
            "higher-better",
        );
    }

    // Cycle-level figures from the profiler: deterministic (simulated
    // cycles, not wall-clock), so these regress only when the kernels or
    // the fabric model change — tight signals, still report-only.
    let (mesh, fluid, trans) = standard_problem(PROF_N, PROF_N, PROF_NZ, 7);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .trace(TraceSpec::ring(8192))
        .build()
        .unwrap();
    sim.apply(&pressure_for_iteration(&mesh, 3))
        .expect("profiled run failed");
    let trace = sim.trace().expect("tracing was enabled");
    let profile = Profile::from_trace(&trace);
    let cp = critical_path(&trace, 1).expect("run has tasks");
    let grid = format!("{PROF_N}x{PROF_N}");

    report.push(
        &format!("critical_path/{grid}/makespan_cycles"),
        cp.makespan as f64,
        "cycles",
        "lower-better",
    );
    report.push(
        &format!("critical_path/{grid}/task_cycles"),
        cp.task_cycles as f64,
        "cycles",
        "info",
    );
    report.push(
        &format!("critical_path/{grid}/hop_cycles"),
        cp.hop_cycles as f64,
        "cycles",
        "info",
    );
    report.push(
        &format!("critical_path/{grid}/steps"),
        cp.steps.len() as f64,
        "steps",
        "info",
    );
    report.push(
        &format!("attribution/{grid}/pacing_pe_cycles"),
        profile.max_pe_counters.cycles() as f64,
        "cycles",
        "lower-better",
    );
    for i in 0..PROFILE_BUCKETS {
        report.push(
            &format!("attribution/{grid}/share/{}", bucket_name(i)),
            profile.share(i),
            "fraction",
            "info",
        );
    }
    // The modeled full-scale wall-clock these cycles imply (Table 1's CS-2
    // figure, profile-derived): the single number the paper optimizes.
    let cs2 = Cs2Model::default();
    let scale = 246.0 / PROF_NZ as f64;
    let modeled = cs2.breakdown_from_cycles(
        (profile.pacing_compute_cycles() as f64 * scale).round() as u64,
        (profile.pacing_comm_cycles() as f64 * scale).round() as u64,
        1,
        PAPER_ITERATIONS,
    );
    report.push(
        "modeled/paper_mesh/total_s",
        modeled.total_s,
        "s",
        "lower-better",
    );
    report.push(
        "modeled/paper_mesh/comm_fraction",
        modeled.comm_fraction(),
        "fraction",
        "info",
    );

    println!(
        "  profile: makespan {} cycles, pacing PE {} cycles, modeled paper-mesh {:.4} s",
        cp.makespan,
        profile.max_pe_counters.cycles(),
        modeled.total_s
    );
    std::fs::write(&out, report.to_json())
        .unwrap_or_else(|e| panic!("writing bench report to {out}: {e}"));
    println!(
        "bench report written to {out} ({} entries)",
        report.entries.len()
    );
    if args.iter().any(|a| a == "--update-baseline") {
        std::fs::write("BENCH_baseline.json", report.to_json())
            .unwrap_or_else(|e| panic!("rewriting BENCH_baseline.json: {e}"));
        println!("BENCH_baseline.json updated (rev {rev})");
    }
}
