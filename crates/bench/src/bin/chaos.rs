//! **Chaos harness** — randomized seeded fault schedules against the fabric
//! simulator, asserting the recovery contract on every run:
//!
//! * a run that returns `Ok` without degradation is **bit-identical** to the
//!   fault-free residual;
//! * a degraded run's valid PEs are bit-identical to the fault-free
//!   residual on those columns;
//! * everything else is a **typed** [`FabricError::Fault`]-family error —
//!   never silently wrong data;
//! * per seed and policy, `Execution::Sequential` and `Execution::Sharded`
//!   reach the **same outcome** with the same fault log.
//!
//! Usage: `chaos [--schedules N] [--seed S0] [--shards N [--threads M]]
//! [--report out.json]`. With `--shards`, the harness still runs *both*
//! engines per schedule (the differential assertion needs them); the flag
//! pins the sharded geometry being differenced. Without it, schedules
//! rotate through a sweep of shard grids (1×, 2×2, 3×3 and an
//! asymmetric 4×1) so the conservative-lookahead protocol is chaos-tested
//! across boundary layouts — fault plans force per-hop routing, and halt
//! faults exercise the no-deadlock guarantee when a whole shard goes
//! quiet. Exit code 0 iff every schedule upholds every invariant.
//!
//! Every failed run's JSON report line carries a **flight-recorder tail**
//! (`"flight": [...]`): the last [`FLIGHT_TAIL`] fault-log events before
//! the typed error, rendered through the same bounded drop-oldest ring
//! ([`wse_metrics::FlightRecorder`]) the job server attaches to failures.
//!
//! A **kill/restore sweep** follows the fault schedules: each run is
//! checkpointed mid-application at a seeded event count
//! ([`wse_serve::Checkpoint`], the full binary codec), the live simulator
//! is dropped, the bytes are restored into a freshly built one, and the
//! run finishes — the residual, per-PE counters, aggregate stats and
//! accumulated [`RunReport`] must be bit-identical to an uninterrupted
//! run, on both engines, with fast-forwarding on and off.

use bench::{pressure_for_iteration, standard_problem};
use tpfa_dataflow::{DataflowFluxSimulator, Recovered, RecoveryPolicy};
use wse_metrics::FlightRecorder;
use wse_sim::fabric::{Execution, FabricError};
use wse_sim::fault::FaultPlan;
use wse_sim::geometry::FabricDims;

const NX: usize = 8;
const NY: usize = 8;
const NZ: usize = 6;
/// Injection window: wide enough to hit every phase of the 2-step cardinal
/// + 3-phase diagonal exchange of one application.
const HORIZON: u64 = 400;
const FAULTS_PER_SCHEDULE: usize = 3;
/// Flight-recorder depth for the failure tails in the JSON report: a
/// bounded drop-oldest ring (`wse_metrics::FlightRecorder`), so a noisy
/// schedule still yields exactly the last few fault events before death.
const FLIGHT_TAIL: usize = 8;

/// Outcome of one (schedule, policy, engine) run, reduced to comparable
/// form.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    /// Clean residual (bit-comparable), attempts used.
    Clean { residual: Vec<f32>, attempts: u32 },
    /// Degraded residual with validity map.
    Degraded {
        residual: Vec<f32>,
        valid: Vec<bool>,
    },
    /// Typed error, reduced to its rendered form (site, time, class).
    Error { message: String },
}

/// The last [`FLIGHT_TAIL`] fault-log events of a finished run, rendered
/// through a bounded drop-oldest ring — the same flight-recorder shape the
/// job server attaches to failures ([`wse_serve::JobServer::failure_of`]).
fn flight_tail(sim: &DataflowFluxSimulator) -> Vec<String> {
    let mut ring = FlightRecorder::new(FLIGHT_TAIL);
    for ev in sim.fault_log() {
        ring.push(format!(
            "t={} pe=({},{}) {:?} detail={}{}",
            ev.time,
            ev.pe.col,
            ev.pe.row,
            ev.class,
            ev.detail,
            if ev.benign { " (benign)" } else { "" }
        ));
    }
    ring.to_vec()
}

fn run_one(
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    execution: Execution,
    pressure: &[f32],
) -> (Outcome, usize, Vec<String>) {
    let (mesh, fluid, trans) = standard_problem(NX, NY, NZ, 42);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .execution(execution)
        .fault_plan(plan.clone())
        .recovery(policy)
        .build()
        .expect("chaos problem must pass builder validation");
    let outcome = match sim.apply_recovering(pressure) {
        Ok(Recovered {
            residual,
            valid,
            degraded: true,
            ..
        }) => Outcome::Degraded { residual, valid },
        Ok(r) => Outcome::Clean {
            residual: r.residual,
            attempts: r.attempts,
        },
        Err(e) => {
            assert!(
                matches!(e, FabricError::Fault { .. }),
                "fault schedules must fail through the typed Fault error, got: {e}"
            );
            Outcome::Error {
                message: e.to_string(),
            }
        }
    };
    (outcome, sim.fault_log().len(), flight_tail(&sim))
}

fn check_invariants(seed: u64, policy: RecoveryPolicy, outcome: &Outcome, baseline: &[f32]) {
    match outcome {
        Outcome::Clean { residual, .. } => {
            assert_eq!(
                residual.as_slice(),
                baseline,
                "seed {seed} {policy:?}: clean run must be bit-identical to fault-free"
            );
        }
        Outcome::Degraded { residual, valid } => {
            assert_eq!(valid.len(), NX * NY);
            for (pe, &ok) in valid.iter().enumerate() {
                if !ok {
                    continue;
                }
                let (x, y) = (pe % NX, pe / NX);
                for z in 0..NZ {
                    let i = (z * NY + y) * NX + x;
                    assert_eq!(
                        residual[i].to_bits(),
                        baseline[i].to_bits(),
                        "seed {seed}: degraded run marked PE ({x},{y}) valid but \
                         cell {i} differs from the fault-free residual"
                    );
                }
            }
        }
        Outcome::Error { .. } => {}
    }
}

/// One measured end state of a (possibly interrupted) single-application
/// run, reduced to bit-comparable form.
#[derive(Debug, PartialEq)]
struct EndState {
    residual_bits: Vec<u32>,
    stats: wse_sim::stats::FabricStats,
    report: wse_sim::fabric::RunReport,
}

/// Runs one application, killed at `kill_at` events: the mid-application
/// state makes the full serialize → drop → deserialize → restore journey
/// into a **freshly built** simulator, which then finishes the run.
/// `kill_at = None` is the uninterrupted control.
fn kill_restore_one(
    execution: Execution,
    fast_forward: bool,
    kill_at: Option<u64>,
    pressure: &[f32],
) -> EndState {
    let (mesh, fluid, trans) = standard_problem(NX, NY, NZ, 42);
    let build = || {
        DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .execution(execution)
            .fast_forward(fast_forward)
            .build()
            .expect("chaos problem must pass builder validation")
    };
    let mut sim = build();
    let residual = match kill_at {
        None => sim.apply(pressure).expect("uninterrupted run failed"),
        Some(limit) => {
            sim.begin_apply(pressure);
            let step = sim.step_events(limit).expect("stepped run failed");
            if !step.complete {
                // The kill: only the serialized bytes survive.
                let bytes = wse_serve::Checkpoint::capture(&sim).encode();
                drop(sim);
                sim = build();
                wse_serve::Checkpoint::decode(&bytes)
                    .expect("own checkpoint must decode")
                    .restore_into(&mut sim)
                    .expect("restore into an identically built simulator");
            }
            sim.finish_apply().expect("resumed run failed")
        }
    };
    EndState {
        residual_bits: residual.iter().map(|v| v.to_bits()).collect(),
        stats: sim.stats(),
        report: sim.last_run().expect("run just finished"),
    }
}

/// The kill/restore sweep: seeded mid-application kill points on every
/// engine × fast-forward combination, each asserted bit-identical to the
/// uninterrupted control. Returns the number of cycles exercised.
fn kill_restore_sweep(
    kills: usize,
    seed0: u64,
    sharded: Execution,
    pressure: &[f32],
    report_lines: &mut Vec<String>,
) -> usize {
    let combos = [
        (Execution::Sequential, true),
        (Execution::Sequential, false),
        (sharded, true),
        (sharded, false),
    ];
    // Uninterrupted control per combo (engines agree, but comparing each
    // combo to its own control keeps the assertion self-contained).
    let controls: Vec<EndState> = combos
        .iter()
        .map(|&(e, ff)| kill_restore_one(e, ff, None, pressure))
        .collect();
    let total_events = controls[0].report.events;
    for w in 1..controls.len() {
        assert_eq!(
            controls[0], controls[w],
            "uninterrupted engines/fast-forward modes must agree"
        );
    }
    for k in 0..kills {
        let seed = seed0 + k as u64;
        // Seeded kill point, spread over the middle of the run.
        let kill_at = 1 + seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) % (3 * total_events / 4);
        let (execution, ff) = combos[k % combos.len()];
        let killed = kill_restore_one(execution, ff, Some(kill_at), pressure);
        assert_eq!(
            killed,
            controls[k % combos.len()],
            "seed {seed}: kill at {kill_at} events on {:?}/ff={ff} must \
             restore bit-identically",
            execution
        );
        report_lines.push(format!(
            "{{\"kill_seed\":{seed},\"kill_at\":{kill_at},\"engine\":\"{}\",\
             \"fast_forward\":{ff},\"bit_identical\":true}}",
            bench::execution_label(execution)
        ));
    }
    kills
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let common = bench::CommonArgs::from_slice(&raw).unwrap_or_else(|why| {
        eprintln!("error: {why}");
        std::process::exit(2);
    });
    let schedules = flag_value(&raw, "--schedules").unwrap_or(50) as usize;
    let seed0 = flag_value(&raw, "--seed").unwrap_or(1);
    let report_path = raw
        .iter()
        .position(|a| a == "--report")
        .and_then(|i| raw.get(i + 1))
        .cloned();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));
    // One pinned geometry with --shards, otherwise a rotating sweep of
    // shard grids so every boundary layout gets chaos coverage.
    let geometries: Vec<Execution> = match common.execution {
        Execution::Sharded { .. } => vec![common.execution],
        Execution::Sequential => vec![
            Execution::Sharded { shards: 4, threads },
            Execution::Sharded { shards: 1, threads },
            Execution::Sharded { shards: 9, threads },
            Execution::Sharded { shards: 2, threads },
        ],
    };
    let sharded = geometries[0];

    println!(
        "== chaos: {schedules} randomized fault schedules on {NX}x{NY}x{NZ} \
         (seeds {seed0}..{}) ==",
        seed0 + schedules as u64 - 1
    );
    println!(
        "(differencing sequential vs {}; {FAULTS_PER_SCHEDULE} faults per schedule, \
         horizon {HORIZON} cycles)\n",
        if geometries.len() == 1 {
            bench::execution_label(sharded)
        } else {
            format!(
                "a rotating sweep of {} sharded geometries",
                geometries.len()
            )
        }
    );

    // Fault-free baseline, once per engine (they are asserted identical —
    // the repo's standing differential invariant).
    let (mesh, _, _) = standard_problem(NX, NY, NZ, 42);
    let pressure = pressure_for_iteration(&mesh, 0);
    let dims = FabricDims::new(NX, NY);
    let (base_seq, _, _) = run_one(
        &FaultPlan::new(),
        RecoveryPolicy::Fail,
        Execution::Sequential,
        &pressure,
    );
    let (base_shard, _, _) = run_one(&FaultPlan::new(), RecoveryPolicy::Fail, sharded, &pressure);
    assert_eq!(base_seq, base_shard, "fault-free engines must agree");
    let baseline = match &base_seq {
        Outcome::Clean { residual, .. } => residual.clone(),
        other => panic!("fault-free run must be clean, got {other:?}"),
    };

    let policies = [
        RecoveryPolicy::Fail,
        RecoveryPolicy::Retry {
            max_attempts: 3,
            backoff: 64,
        },
        RecoveryPolicy::Degrade,
    ];
    let mut tally = [[0usize; 3]; 3]; // [policy][clean, degraded, error]
    let mut report_lines = Vec::new();
    let mut failure_tails = 0usize;
    for s in 0..schedules {
        let seed = seed0 + s as u64;
        let geometry = geometries[s % geometries.len()];
        let plan = FaultPlan::randomized(seed, dims, HORIZON, FAULTS_PER_SCHEDULE);
        for (pi, &policy) in policies.iter().enumerate() {
            let (seq, seq_faults, seq_flight) =
                run_one(&plan, policy, Execution::Sequential, &pressure);
            let (par, par_faults, par_flight) = run_one(&plan, policy, geometry, &pressure);
            assert_eq!(
                seq, par,
                "seed {seed} {policy:?}: engines disagree on the outcome"
            );
            assert_eq!(
                seq_faults, par_faults,
                "seed {seed} {policy:?}: engines disagree on the fault log"
            );
            assert_eq!(
                seq_flight, par_flight,
                "seed {seed} {policy:?}: engines disagree on the flight tail"
            );
            check_invariants(seed, policy, &seq, &baseline);
            let (label, slot) = match &seq {
                Outcome::Clean { attempts, .. } => (format!("clean(attempts={attempts})"), 0usize),
                Outcome::Degraded { valid, .. } => {
                    let invalid = valid.iter().filter(|v| !**v).count();
                    (format!("degraded(invalid_pes={invalid})"), 1)
                }
                Outcome::Error { message } => (format!("error({message})"), 2),
            };
            tally[pi][slot] += 1;
            // Failures travel with their flight-recorder tail: the last
            // FLIGHT_TAIL fault events leading up to the typed error.
            let flight_json = if matches!(seq, Outcome::Error { .. }) {
                assert!(
                    !seq_flight.is_empty(),
                    "seed {seed} {policy:?}: a failed run must carry a \
                     non-empty flight tail"
                );
                failure_tails += 1;
                let quoted: Vec<String> = seq_flight
                    .iter()
                    .map(|line| format!("\"{}\"", line.replace('\\', "\\\\").replace('"', "\\\"")))
                    .collect();
                format!(",\"flight\":[{}]", quoted.join(","))
            } else {
                String::new()
            };
            report_lines.push(format!(
                "{{\"seed\":{seed},\"policy\":{pi},\"outcome\":\"{label}\",\
                 \"fault_events\":{seq_faults}{flight_json}}}"
            ));
        }
    }

    let w = [18, 8, 10, 8];
    bench::print_row(
        &[
            "policy".into(),
            "clean".into(),
            "degraded".into(),
            "error".into(),
        ],
        &w,
    );
    bench::print_sep(&w);
    for (pi, name) in ["fail", "retry:3:64", "degrade"].iter().enumerate() {
        bench::print_row(
            &[
                (*name).into(),
                tally[pi][0].to_string(),
                tally[pi][1].to_string(),
                tally[pi][2].to_string(),
            ],
            &w,
        );
    }
    println!(
        "\nall {} runs upheld the contract: clean ⇒ bit-identical, degraded ⇒ \
         valid PEs bit-identical, otherwise a typed fault error; engines agree.",
        schedules * policies.len() * 2
    );
    println!(
        "{failure_tails} failure(s) carry a flight-recorder tail \
         (last ≤{FLIGHT_TAIL} fault events) in the report."
    );

    // ---- kill/restore sweep ---------------------------------------------
    let kills = (schedules / 2).clamp(4, 16);
    println!(
        "\n== kill/restore: {kills} seeded mid-application checkpoints \
         (sequential + {}, fast-forward on/off) ==",
        bench::execution_label(sharded)
    );
    kill_restore_sweep(kills, seed0, sharded, &pressure, &mut report_lines);
    println!(
        "all {kills} kill/restore cycles finished bit-identically to their \
         uninterrupted controls (residual, counters, stats, report)."
    );

    if let Some(path) = report_path {
        let json = format!("[\n{}\n]\n", report_lines.join(",\n"));
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing report to {path}: {e}"));
        println!("report written to {path}");
    }
}
