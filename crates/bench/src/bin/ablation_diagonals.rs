//! **Ablation (§5.2.2)** — cost of the diagonal communication pattern.
//!
//! The paper implements the diagonal exchange although "this is not
//! mandatory for evaluating the mathematical scheme", to prepare for
//! higher-accuracy schemes. This ablation quantifies what it costs: wavelet
//! traffic, per-PE communication cycles, and the modeled share of
//! full-scale wall-clock, with diagonals on vs off.

use bench::{pressure_for_iteration, standard_problem, PAPER_ITERATIONS};
use fv_core::fields::PermeabilityField;
use fv_core::trans::{StencilKind, Transmissibilities};
use perf_model::Cs2Model;
use tpfa_dataflow::DataflowFluxSimulator;

fn measure(diagonals: bool) -> (u64, u64, u64) {
    let (mesh, fluid, trans_full) = standard_problem(9, 9, 12, 42);
    // The builder rejects a cardinal-only fabric fed diagonal
    // transmissibilities (their fluxes would be silently dropped), so the
    // OFF arm pairs the ablated exchange with the matching cardinal
    // stencil. The counters compared here depend only on the exchange
    // pattern and nz, not on the transmissibility values.
    let trans_cardinal;
    let trans = if diagonals {
        &trans_full
    } else {
        let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.4, 42);
        trans_cardinal = Transmissibilities::tpfa(&mesh, &perm, StencilKind::Cardinal);
        &trans_cardinal
    };
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(trans)
        .diagonals_enabled(diagonals)
        .build()
        .unwrap();
    sim.apply(&pressure_for_iteration(&mesh, 0)).unwrap();
    let c = sim.pe_counters(4, 4);
    (c.fabric_loads, c.comm_cycles, c.cycles())
}

fn main() {
    println!("== Ablation: diagonal exchange on/off (interior PE, nz = 12) ==\n");
    let (loads_on, comm_on, total_on) = measure(true);
    let (loads_off, comm_off, total_off) = measure(false);

    let w = [26, 14, 14, 10];
    bench::print_row(
        &[
            "".into(),
            "diagonals ON".into(),
            "diagonals OFF".into(),
            "ratio".into(),
        ],
        &w,
    );
    bench::print_sep(&w);
    for (label, a, b) in [
        ("fabric loads / iteration", loads_on, loads_off),
        ("comm cycles / iteration", comm_on, comm_off),
        ("total cycles / iteration", total_on, total_off),
    ] {
        bench::print_row(
            &[
                label.into(),
                a.to_string(),
                b.to_string(),
                format!("{:.2}x", a as f64 / b as f64),
            ],
            &w,
        );
    }

    // Separate the two effects: extra data movement vs the four extra
    // face-flux computations the diagonal faces bring with them.
    let comm_delta = comm_on - comm_off;
    let compute_delta = (total_on - comm_on) - (total_off - comm_off);
    println!(
        "\nbreakdown of the extra {} cycles: {} communication (+100%), {} computation \
         (the 4 diagonal faces)",
        total_on - total_off,
        comm_delta,
        compute_delta
    );

    // full-scale wall-clock impact (Nz = 246)
    let cs2 = Cs2Model::default();
    let scale = 246.0 / 12.0;
    let t =
        |cycles: u64| cs2.time_seconds(cycles as f64 * scale / cs2.simd_width, PAPER_ITERATIONS);
    println!(
        "modeled full-scale time (750x994x246, 1000 apps): {} s with diagonals, {} s without",
        bench::fmt_s(t(total_on)),
        bench::fmt_s(t(total_off))
    );
    println!(
        "-> pure communication overhead of the diagonal pattern: {:.1}% of total wall-clock",
        100.0 * comm_delta as f64 / total_on as f64
    );
    println!("   (the rest of the difference is the diagonal faces' useful flux work)");
}
