//! **top** — a live ASCII dashboard over the job server's progress
//! streams ([`wse_serve::JobServer::subscribe`]) and `serve_*` telemetry.
//!
//! Submits a small batch of jobs to a local [`wse_serve::JobServer`] and
//! renders one progress bar per job at chunk granularity — percent
//! complete, applications done, deterministic event/fabric-time
//! coordinates, and a wall-clock ETA — plus a server footer (queue depth,
//! busy workers, completed jobs, cache hits, route equivalence classes,
//! region fast-forward jumps) read straight from the live
//! [`wse_metrics::MetricsHub`]. The screen redraws in place via ANSI
//! cursor movement; pass `--plain` to append frames instead (useful when
//! piping to a file).
//!
//! Usage: `top [--jobs N] [--apps N] [--shards N [--threads M]]
//! [--metrics out.prom] [--plain]`. Exits 0 once every job settles; with
//! `--metrics` the final hub contents are written as Prometheus text.

use std::sync::mpsc;
use std::time::Duration;

use wse_serve::{JobServer, JobSpec, JobState, ProblemSpec, ProgressUpdate, ServerConfig};
use wse_sim::fabric::Execution;

const NX: usize = 16;
const NY: usize = 16;
const NZ: usize = 6;
const BAR: usize = 24;

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// One rendered dashboard line: `job 3 [#####---] 42.0% apps 1/4 ...`.
fn render_line(idx: usize, apps_total: usize, u: &ProgressUpdate, state: &str) -> String {
    let filled = ((u.progress * BAR as f64).round() as usize).min(BAR);
    let bar = format!("{}{}", "#".repeat(filled), "-".repeat(BAR - filled));
    let eta = match u.eta_seconds {
        Some(s) if s > 0.005 => format!("eta {s:6.2}s"),
        _ => "eta      -".to_string(),
    };
    format!(
        "job {idx:<2} [{bar}] {:6.1}%  apps {:>2}/{apps_total:<2}  ev {:>9}  t {:>8}  {eta}  {state}",
        u.progress * 100.0,
        u.applications_done,
        u.events,
        u.fabric_time,
    )
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let common = bench::CommonArgs::from_slice(&raw).unwrap_or_else(|why| {
        eprintln!("error: {why}");
        std::process::exit(2);
    });
    let jobs = flag_value(&raw, "--jobs").unwrap_or(4) as usize;
    let apps = flag_value(&raw, "--apps").unwrap_or(6) as usize;
    let plain = raw.iter().any(|a| a == "--plain");

    // The dashboard needs a live hub regardless of --metrics; the flag
    // only controls whether the final snapshot is written out.
    let hub = wse_metrics::MetricsHub::new_live();
    let server = JobServer::start(ServerConfig {
        workers: 2,
        queue_capacity: jobs.max(8),
        metrics: hub.clone(),
    });
    println!(
        "== top: {jobs} jobs x {apps} applications on {NX}x{NY}x{NZ}, engine {} ==\n",
        common.execution_label()
    );

    // Fan every per-job subscription into one channel the render loop can
    // drain without blocking on any single job.
    let (tx, rx) = mpsc::channel::<(usize, ProgressUpdate)>();
    let mut ids = Vec::new();
    for j in 0..jobs {
        let problem = ProblemSpec {
            nx: NX,
            ny: NY,
            nz: NZ,
            // Two jobs per seed so the compiled-problem cache gets hits.
            perm_seed: 42 + (j / 2) as u64,
        };
        let mut spec = JobSpec::new(problem, apps);
        spec.execution = common.execution;
        spec.checkpoint_every = Some(2048); // chunked => frequent updates
        let id = server.submit(spec).expect("queue sized for the batch");
        let sub = server.subscribe(id).expect("job just submitted");
        let tx = tx.clone();
        std::thread::spawn(move || {
            for update in sub {
                if tx.send((j, update)).is_err() {
                    break;
                }
            }
        });
        ids.push(id);
    }
    drop(tx);

    let queue_depth = hub.gauge("serve_queue_depth", "", &[]);
    let busy = hub.gauge("serve_workers_busy", "", &[]);
    let done_ctr = hub.counter("serve_jobs_done_total", "", &[]);
    let hits = hub.counter("serve_cache_hits_total", "", &[]);
    // Fabric-level series carry an `engine` label; mirror the driver's
    // label construction so the handles alias the worker-registered ones.
    let engine = match common.execution {
        Execution::Sequential => "sequential".to_string(),
        Execution::Sharded { shards, .. } => format!("sharded{shards}"),
    };
    let fabric_label: &[(&str, &str)] = &[("engine", &engine)];
    let eq_classes = hub.gauge("fabric_eq_classes", "", fabric_label);
    let region_ff = hub.counter("fabric_region_ff_jumps_total", "", fabric_label);

    let mut latest: Vec<Option<ProgressUpdate>> = vec![None; jobs];
    let mut frame_lines = 0usize;
    let mut open = jobs;
    loop {
        // Drain everything pending, then redraw once.
        loop {
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok((j, update)) => latest[j] = Some(update),
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    open = 0;
                    break;
                }
            }
        }
        if !plain && frame_lines > 0 {
            print!("\x1b[{frame_lines}A");
        }
        let clear = if plain { "" } else { "\x1b[2K" };
        frame_lines = 0;
        for (j, slot) in latest.iter().enumerate() {
            let state = match server.status(ids[j]).map(|s| s.state) {
                Some(JobState::Queued) => "queued",
                Some(JobState::Running) => "running",
                Some(JobState::Done) => "done",
                Some(JobState::Checkpointed) => "parked",
                Some(JobState::Failed(_)) => "FAILED",
                None => "?",
            };
            let line = match slot {
                Some(u) => render_line(j, apps, u, state),
                None => format!("job {j:<2} [{}] waiting...", "-".repeat(BAR)),
            };
            println!("{clear}{line}");
            frame_lines += 1;
        }
        println!(
            "{clear}\nqueue {:.0}  busy {:.0}  done {}/{jobs}  cache hits {}  eq-classes {:.0}  region-ff {}",
            queue_depth.get(),
            busy.get(),
            done_ctr.get(),
            hits.get(),
            eq_classes.get(),
            region_ff.get()
        );
        frame_lines += 2;
        if open == 0 {
            break;
        }
    }

    for &id in &ids {
        let fin = server.wait(id).expect("job exists");
        assert_eq!(fin.state, JobState::Done, "dashboard jobs must finish");
        assert_eq!(fin.progress, 1.0, "settled jobs report progress 1.0");
    }
    server.shutdown();
    bench::export_metrics(&common, &hub);
    println!("\nall {jobs} jobs done; every subscriber stream closed cleanly.");
}
