//! Shared workload generators and reporting helpers for the benchmark
//! harness.
//!
//! Every table/figure of the paper's evaluation has a generator binary in
//! `src/bin/` (see `DESIGN.md` for the experiment index) and the criterion
//! microbenches in `benches/` measure the real Rust kernels at laboratory
//! scale.

use fv_core::eos::Fluid;
use fv_core::fields::PermeabilityField;
use fv_core::mesh::{CartesianMesh3, Extents, Spacing};
use fv_core::state::FlowState;
use fv_core::trans::{StencilKind, Transmissibilities};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_prof::{critical_path, profile_json, Profile};
use wse_sim::fabric::Execution;
use wse_sim::stats::OpCounters;
use wse_sim::trace::{chrome_trace_json, TraceSummary};

pub mod cli;

pub use cli::CommonArgs;
pub use wse_sim::trace::{
    profile_request_from_arg_slice, profile_request_from_args, trace_request_from_arg_slice,
    trace_request_from_args, ProfileRequest, TraceRequest,
};

/// The paper's production mesh (750 × 994 × 246 = 183 393 000 cells).
pub const PAPER_MESH: (usize, usize, usize) = (750, 994, 246);

/// The paper mesh's interior xy footprint, one PE per cell column — the
/// fabric the *measured* paper-scale runs instantiate (737,794 PEs).
pub const PAPER_MESH_XY: (usize, usize) = (746, 989);

/// Truncated z extent for the measured paper-scale smoke: enough for a
/// real vertical exchange (the column kernel touches z±1), small enough
/// that one apply finishes in CI.
pub const PAPER_SMOKE_NZ: usize = 2;

/// Peak resident set of this process in MiB, read from
/// `/proc/self/status` `VmHWM` — the figure `/usr/bin/time -v` reports
/// as "Maximum resident set size". `None` off Linux.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Applications of Algorithm 1 in the paper's timing runs.
pub const PAPER_ITERATIONS: usize = 1000;

/// The standard synthetic workload: heterogeneous log-normal permeability
/// on a uniform Cartesian mesh with a water-like fluid — the stand-in for
/// the paper's proprietary geomodel (see DESIGN.md, substitution table).
pub fn standard_problem(
    nx: usize,
    ny: usize,
    nz: usize,
    seed: u64,
) -> (CartesianMesh3, Fluid, Transmissibilities) {
    let mesh = CartesianMesh3::new(Extents::new(nx, ny, nz), Spacing::new(10.0, 10.0, 4.0));
    let fluid = Fluid::water_like();
    let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.4, seed);
    let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
    (mesh, fluid, trans)
}

/// A fresh pressure vector for iteration `i` (the paper applies Algorithm 1
/// "with a different pressure vector at every call").
pub fn pressure_for_iteration(mesh: &CartesianMesh3, i: usize) -> Vec<f32> {
    FlowState::<f32>::varied(mesh, 1.0e7, 1.2e7, i as u64)
        .pressure()
        .to_vec()
}

/// Result of a measured dataflow run at laboratory scale.
pub struct DataflowMeasurement {
    /// Per-iteration counters of the critical-path (interior) PE.
    pub interior_pe_per_iteration: OpCounters,
    /// Aggregate counters over the whole fabric and run.
    pub fabric_total: OpCounters,
    /// Iterations measured.
    pub iterations: usize,
    /// Cells in the mesh.
    pub num_cells: usize,
    /// Column height.
    pub nz: usize,
}

/// Parses `--shards N [--threads M]` from a benchmark binary's argument
/// list into a fabric [`Execution`]. No `--shards` (or `--shards 0`/`1`
/// with no threads) keeps the sequential reference engine; `--threads`
/// defaults to the shard count, capped at the available cores.
pub fn execution_from_arg_slice(args: &[String]) -> Execution {
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    match value_of("--shards") {
        None | Some(0) => Execution::Sequential,
        Some(shards) => {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            let threads = value_of("--threads").unwrap_or_else(|| shards.min(cores));
            Execution::Sharded { shards, threads }
        }
    }
}

/// [`execution_from_arg_slice`] over the process's own CLI arguments.
pub fn execution_from_args() -> Execution {
    let args: Vec<String> = std::env::args().skip(1).collect();
    execution_from_arg_slice(&args)
}

/// Human-readable engine label for benchmark headers.
pub fn execution_label(execution: Execution) -> String {
    match execution {
        Execution::Sequential => "sequential".into(),
        Execution::Sharded { shards, threads } => {
            format!("sharded ({shards} shards, {threads} threads)")
        }
    }
}

/// Runs the dataflow simulator for `iterations` applications on an
/// `nx × ny × nz` standard problem and extracts the measured counters.
///
/// `compute` = false gives the paper's Table-3 communication-only variant.
pub fn measure_dataflow(
    nx: usize,
    ny: usize,
    nz: usize,
    iterations: usize,
    compute: bool,
) -> DataflowMeasurement {
    measure_dataflow_with(nx, ny, nz, iterations, compute, Execution::Sequential)
}

/// [`measure_dataflow`] with an explicit fabric engine. Counters are
/// bit-identical across engines; only the host wall-clock changes.
pub fn measure_dataflow_with(
    nx: usize,
    ny: usize,
    nz: usize,
    iterations: usize,
    compute: bool,
    execution: Execution,
) -> DataflowMeasurement {
    assert!(nx >= 3 && ny >= 3, "need an interior PE to measure");
    let (mesh, fluid, trans) = standard_problem(nx, ny, nz, 42);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .compute_enabled(compute)
        .execution(execution)
        .build()
        .expect("standard problem is always valid");
    sim.apply_many(iterations, |i| pressure_for_iteration(&mesh, i))
        .expect("dataflow run failed");
    let interior = *sim.pe_counters(nx / 2, ny / 2);
    let mut per_iter = OpCounters::default();
    // scale down to one iteration (counts are exactly linear in iterations)
    let scale = |v: u64| v / iterations as u64;
    per_iter.fmul = scale(interior.fmul);
    per_iter.fsub = scale(interior.fsub);
    per_iter.fadd = scale(interior.fadd);
    per_iter.fma = scale(interior.fma);
    per_iter.fneg = scale(interior.fneg);
    per_iter.fmov_in = scale(interior.fmov_in);
    per_iter.fmov_out = scale(interior.fmov_out);
    per_iter.mem_loads = scale(interior.mem_loads);
    per_iter.mem_stores = scale(interior.mem_stores);
    per_iter.fabric_loads = scale(interior.fabric_loads);
    per_iter.fabric_stores = scale(interior.fabric_stores);
    per_iter.eos_evals = scale(interior.eos_evals);
    per_iter.compute_cycles = scale(interior.compute_cycles);
    per_iter.comm_cycles = scale(interior.comm_cycles);
    DataflowMeasurement {
        interior_pe_per_iteration: per_iter,
        fabric_total: sim.stats().total,
        iterations,
        num_cells: mesh.num_cells(),
        nz,
    }
}

/// Honors the shared `--faults <seed>` / `--recovery <policy>` flags: runs
/// one application of the standard problem with the requested seeded fault
/// plan and recovery policy on the selected engine, and prints the outcome
/// (clean, recovered, degraded, or the typed failure). A no-op when
/// `--faults` was not given, so generators can call it unconditionally.
pub fn run_faulted_demo(args: &CommonArgs, nx: usize, ny: usize, nz: usize) {
    let Some(seed) = args.fault_seed else { return };
    let (mesh, fluid, trans) = standard_problem(nx, ny, nz, 42);
    let plan = args.fault_plan(wse_sim::geometry::FabricDims::new(nx, ny), 400, 3);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .execution(args.execution)
        .fault_plan(plan)
        .recovery(args.recovery)
        .build()
        .expect("standard problem is always valid");
    println!(
        "\n-- fault injection: --faults {seed} ({:?} recovery, {}x{} fabric) --",
        args.recovery, nx, ny
    );
    match sim.apply_recovering(&pressure_for_iteration(&mesh, 0)) {
        Ok(r) if r.degraded => {
            let valid = r.valid.iter().filter(|&&v| v).count();
            println!(
                "degraded result: {valid}/{} PEs valid, {} fault event(s) logged",
                r.valid.len(),
                r.faults.len()
            );
        }
        Ok(r) if r.attempts > 1 => println!(
            "recovered bit-identically on attempt {} (+{} modeled backoff cycles)",
            r.attempts, r.backoff_cycles
        ),
        Ok(_) => println!("no fault disturbed the run within its horizon; result is clean"),
        Err(e) => println!("typed failure: {e}"),
    }
}

/// Honors the shared `--checkpoint <path>` / `--resume <path>` flags on
/// the standard problem, a no-op when neither was given.
///
/// * `--checkpoint <path>`: runs one application about half-way with the
///   stepped driver API, serializes the mid-application fabric state to
///   `path` ([`wse_serve::Checkpoint`]), and abandons the run — the "kill"
///   half of a kill/restore cycle.
/// * `--resume <path>`: reads `path`, restores it into a freshly built
///   simulator on the selected engine (checkpoints are engine-portable),
///   finishes the interrupted application, and asserts the residual is
///   **bit-identical** to an uninterrupted run.
///
/// Both flags together (same path) perform the full cycle in one
/// invocation; across two invocations they script a real kill/restore.
pub fn run_checkpoint_demo(args: &CommonArgs, nx: usize, ny: usize, nz: usize) {
    use wse_serve::Checkpoint;
    if args.checkpoint.is_none() && args.resume.is_none() {
        return;
    }
    let (mesh, fluid, trans) = standard_problem(nx, ny, nz, 42);
    let build = || {
        DataflowFluxSimulator::builder(&mesh)
            .fluid(&fluid)
            .transmissibilities(&trans)
            .execution(args.execution)
            .build()
            .expect("standard problem is always valid")
    };
    let mut reference = build();
    let baseline = reference
        .apply(&pressure_for_iteration(&mesh, 0))
        .expect("reference run failed");
    let total_events = reference.last_run().expect("reference just ran").events;

    if let Some(path) = &args.checkpoint {
        let mut sim = build();
        sim.begin_apply(&pressure_for_iteration(&mesh, 0));
        let step = sim
            .step_events(total_events / 2)
            .expect("stepped run failed");
        assert!(!step.complete, "half the events cannot finish the run");
        Checkpoint::capture(&sim)
            .write_file(path)
            .unwrap_or_else(|e| panic!("writing checkpoint to {path}: {e}"));
        println!(
            "\n-- checkpoint: mid-application state ({} of {total_events} events, \
             {nx}x{ny}x{nz}, {}) written to {path} --",
            step.events,
            args.execution_label()
        );
        println!("   resume with --resume {path} (any engine) to finish bit-identically");
    }

    if let Some(path) = &args.resume {
        let ck = Checkpoint::read_file(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let mut sim = build();
        ck.restore_into(&mut sim)
            .unwrap_or_else(|e| panic!("restoring {path}: {e}"));
        println!(
            "\n-- resume: restored {path} on {} --",
            args.execution_label()
        );
        let residual = if sim.in_flight() {
            sim.finish_apply().expect("resumed run failed")
        } else {
            sim.apply(&pressure_for_iteration(&mesh, 0))
                .expect("post-restore run failed")
        };
        assert!(
            residual
                .iter()
                .zip(&baseline)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "resumed run must be bit-identical to the uninterrupted one"
        );
        println!(
            "   finished {} events total; residual bit-identical to the \
             uninterrupted run ({} cells)",
            sim.last_run().expect("resumed run just finished").events,
            residual.len()
        );
    }
}

/// Exports a simulator's recorded trace as Chrome `trace_event` JSON to
/// `req.path` and prints the compact summary (per-shard load timelines,
/// per-color wavelet histogram, hottest PEs) plus the drop count.
///
/// Call after the measured run, on a simulator built with
/// `.trace(req.spec())` on its builder. Panics if the simulator
/// was not built with tracing enabled (a harness bug, not user input).
pub fn export_trace(sim: &DataflowFluxSimulator, req: &TraceRequest) {
    let trace = sim
        .trace()
        .expect("export_trace called on an untraced simulator");
    std::fs::write(&req.path, chrome_trace_json(&trace))
        .unwrap_or_else(|e| panic!("writing trace to {}: {e}", req.path));
    println!();
    print!("{}", TraceSummary::from_trace(&trace, 5));
    println!(
        "trace written to {} ({} events, {} dropped; open in Perfetto / chrome://tracing)",
        req.path,
        trace.events.len(),
        trace.dropped
    );
    if trace.dropped > 0 {
        println!(
            "  note: rings overflowed (drop-oldest); rerun with a larger --trace-cap \
             for a complete trace"
        );
    }
}

/// Runs `iterations` applications of Algorithm 1 on an `nx × ny × nz`
/// standard problem with tracing on, then exports the trace via
/// [`export_trace`]. The common tail of every benchmark binary's `--trace`
/// handling.
pub fn run_traced(
    nx: usize,
    ny: usize,
    nz: usize,
    iterations: usize,
    execution: Execution,
    req: &TraceRequest,
) {
    let (mesh, fluid, trans) = standard_problem(nx, ny, nz, 42);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .execution(execution)
        .trace(req.spec())
        .build()
        .expect("standard problem is always valid");
    sim.apply_many(iterations, |i| pressure_for_iteration(&mesh, i))
        .expect("traced run failed");
    export_trace(&sim, req);
}

/// Profiles a simulator's recorded trace: prints the per-region cycle
/// attribution and the recovered critical path, and writes the combined
/// JSON document to `req.path`.
///
/// Call after the measured run, on a simulator built with
/// `.trace(req.spec())` on its builder. Panics if the simulator
/// was not built with tracing enabled (a harness bug, not user input).
/// Returns the profile for callers that post-process it (Table 3's
/// profile-derived breakdown).
pub fn export_profile(sim: &DataflowFluxSimulator, req: &ProfileRequest) -> Profile {
    let trace = sim
        .trace()
        .expect("export_profile called on an untraced simulator");
    let profile = Profile::from_trace(&trace);
    let path = critical_path(&trace, 1);
    println!();
    print!("{profile}");
    if let Some(cp) = &path {
        print!("{cp}");
    }
    std::fs::write(&req.path, profile_json(&profile, path.as_ref()))
        .unwrap_or_else(|e| panic!("writing profile to {}: {e}", req.path));
    println!(
        "profile written to {} ({} events analyzed, {} dropped)",
        req.path,
        trace.events.len(),
        trace.dropped
    );
    if trace.dropped > 0 {
        println!(
            "  note: rings overflowed (drop-oldest); attribution covers the retained \
             tail only — rerun with a larger --trace-cap for full coverage"
        );
    }
    profile
}

/// Runs `iterations` applications of Algorithm 1 on an `nx × ny × nz`
/// standard problem with tracing on, then profiles it via
/// [`export_profile`]. The common tail of every benchmark binary's
/// `--profile` handling.
pub fn run_profiled(
    nx: usize,
    ny: usize,
    nz: usize,
    iterations: usize,
    execution: Execution,
    req: &ProfileRequest,
) -> Profile {
    let (mesh, fluid, trans) = standard_problem(nx, ny, nz, 42);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .execution(execution)
        .trace(req.spec())
        .build()
        .expect("standard problem is always valid");
    sim.apply_many(iterations, |i| pressure_for_iteration(&mesh, i))
        .expect("profiled run failed");
    export_profile(&sim, req)
}

/// The telemetry hub the shared `--metrics <path>` flag requests: live
/// when the flag was given, [`wse_metrics::MetricsHub::Null`] (every probe
/// a no-op) otherwise. Pass the result to `.metrics(...)` on simulator
/// builders or [`wse_serve::ServerConfig::metrics`], then write it out
/// with [`export_metrics`].
pub fn metrics_hub(args: &CommonArgs) -> wse_metrics::MetricsHub {
    if args.metrics.is_some() {
        wse_metrics::MetricsHub::new_live()
    } else {
        wse_metrics::MetricsHub::Null
    }
}

/// Honors the shared `--metrics <path>` flag: writes `hub`'s Prometheus
/// text exposition to the requested path. A no-op when the flag was not
/// given (or the hub is null — nothing was ever recorded).
pub fn export_metrics(args: &CommonArgs, hub: &wse_metrics::MetricsHub) {
    let Some(path) = &args.metrics else { return };
    if !hub.is_live() {
        return;
    }
    let text = hub.prometheus_text();
    std::fs::write(path, &text).unwrap_or_else(|e| panic!("writing metrics to {path}: {e}"));
    println!(
        "\nmetrics written to {path} ({} samples, Prometheus text format)",
        hub.snapshot().len()
    );
}

/// Honors `--metrics <path>` for the table binaries: reruns one
/// instrumented application on the selected engine with a live hub and
/// writes the Prometheus exposition. Never part of the measured tables —
/// a separate demonstration run, like [`run_faulted_demo`]. A no-op when
/// the flag was not given.
pub fn run_metered_demo(args: &CommonArgs, nx: usize, ny: usize, nz: usize) {
    if args.metrics.is_none() {
        return;
    }
    let hub = metrics_hub(args);
    let (mesh, fluid, trans) = standard_problem(nx, ny, nz, 42);
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .execution(args.execution)
        .metrics(hub.clone())
        .build()
        .expect("metered demo problem must pass builder validation");
    sim.apply(&pressure_for_iteration(&mesh, 0))
        .expect("metered demo run failed");
    export_metrics(args, &hub);
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Prints a separator line.
pub fn print_sep(widths: &[usize]) {
    let total: usize = widths.iter().map(|w| w + 2).sum();
    println!("{}", "-".repeat(total));
}

/// Formats seconds with 4 decimal places (the paper's table precision).
pub fn fmt_s(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_problem_is_reproducible() {
        let (m1, _, t1) = standard_problem(4, 4, 3, 7);
        let (m2, _, t2) = standard_problem(4, 4, 3, 7);
        assert_eq!(m1.num_cells(), m2.num_cells());
        assert_eq!(t1.as_slice(), t2.as_slice());
    }

    #[test]
    fn pressure_vectors_differ_per_iteration() {
        let (mesh, _, _) = standard_problem(4, 4, 3, 7);
        assert_ne!(
            pressure_for_iteration(&mesh, 0),
            pressure_for_iteration(&mesh, 1)
        );
    }

    #[test]
    fn measured_interior_pe_matches_table_4() {
        let m = measure_dataflow(5, 5, 4, 2, true);
        let c = &m.interior_pe_per_iteration;
        let nz = m.nz as u64;
        assert_eq!(c.fmul, 60 * nz);
        assert_eq!(c.fsub, 40 * nz);
        assert_eq!(c.fneg, 10 * nz);
        assert_eq!(c.fadd, 10 * nz);
        assert_eq!(c.fma, 10 * nz);
        assert_eq!(c.fmov_in, 16 * nz);
        assert_eq!(c.flops(), 140 * nz);
        assert_eq!(c.mem_loads + c.mem_stores, 406 * nz);
    }

    #[test]
    fn measured_counts_match_analytic_cycle_model() {
        // the perf-model analytic counts must agree with simulation
        let m = measure_dataflow(5, 5, 6, 1, true);
        let analytic = perf_model::TpfaCycleModel::new(6);
        let c = &m.interior_pe_per_iteration;
        assert_eq!(c.compute_cycles, analytic.compute_cycles());
        assert_eq!(c.comm_cycles, analytic.comm_cycles());
    }

    #[test]
    fn comm_only_variant_has_zero_flops() {
        let m = measure_dataflow(4, 4, 3, 1, false);
        assert_eq!(m.fabric_total.flops(), 0);
        assert!(m.fabric_total.fabric_loads > 0);
    }

    #[test]
    fn execution_args_parse_shards_and_threads() {
        let to_args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        assert_eq!(
            execution_from_arg_slice(&to_args("")),
            Execution::Sequential
        );
        assert_eq!(
            execution_from_arg_slice(&to_args("--shards 0")),
            Execution::Sequential
        );
        assert_eq!(
            execution_from_arg_slice(&to_args("--shards 4 --threads 2")),
            Execution::Sharded {
                shards: 4,
                threads: 2
            }
        );
        match execution_from_arg_slice(&to_args("--shards 4")) {
            Execution::Sharded { shards: 4, threads } => assert!((1..=4).contains(&threads)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sharded_measurement_matches_sequential_counters() {
        let seq = measure_dataflow(5, 5, 4, 1, true);
        let par = measure_dataflow_with(
            5,
            5,
            4,
            1,
            true,
            Execution::Sharded {
                shards: 4,
                threads: 2,
            },
        );
        assert_eq!(seq.interior_pe_per_iteration, par.interior_pe_per_iteration);
        assert_eq!(seq.fabric_total, par.fabric_total);
    }
}
