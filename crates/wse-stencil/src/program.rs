//! The workload-generic PE program: a compiled [`CommPattern`] plus a
//! [`StencilKernel`] makes a complete [`PeProgram`] that runs on both
//! fabric engines and flows through fault, trace, checkpoint and
//! metrics layers unchanged.
//!
//! The program owns the protocol skeleton — launch on the pattern's
//! start color, halo exchange, per-stream completion callbacks, a
//! once-per-step finish hook, the progress counter the fault watchdog
//! reads, and checkpoint serialization. The kernel owns the math: what
//! to allocate, what to send, and what to compute when streams land.

use crate::exchange::{ColumnExchange, ExchangeEvent};
use crate::pattern::CommPattern;
use std::sync::Arc;
use wse_sim::dsd::Dsd;
use wse_sim::memory::MemRange;
use wse_sim::pe::{PeContext, PeProgram};
use wse_sim::trace::TraceRegion;
use wse_sim::wavelet::Wavelet;

/// Receive-buffer layout a kernel hands back from
/// [`StencilKernel::init`]: `recv[q][stream]`, each range `nz` words.
pub struct KernelLayout {
    /// Receive buffers per quantity per stream.
    pub recv: Vec<Vec<MemRange>>,
}

/// The compute half of a compiled stencil program.
///
/// Methods are called single-threaded per PE in a fixed order: `init`
/// once at load; then per step `on_start` (return the send views),
/// `on_stream_complete` for each arriving stream, and
/// `on_step_complete` exactly once when every expected stream has
/// arrived *and* every outgoing cardinal send has left (safe to
/// overwrite send buffers).
pub trait StencilKernel: Send {
    /// Allocates PE memory and returns the receive-buffer layout
    /// (`streams` buffers per quantity, `nz` words each).
    fn init(&mut self, ctx: &mut PeContext, streams: usize) -> KernelLayout;

    /// Starts one step: local (vertical) faces, then return the send
    /// views — one `nz`-element view per quantity.
    fn on_start(&mut self, ctx: &mut PeContext) -> Vec<Dsd>;

    /// Stream `stream` has fully arrived; `recv` addresses its buffers.
    fn on_stream_complete(&mut self, ctx: &mut PeContext, stream: usize, exchange: &ColumnExchange);

    /// Every expected stream arrived and every cardinal send left.
    fn on_step_complete(&mut self, ctx: &mut PeContext);

    /// Kernel-private dynamic state for checkpointing (PE memory is
    /// snapshotted separately by the fabric).
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`StencilKernel::save_state`].
    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(format!("{} unexpected kernel state bytes", state.len()))
        }
    }
}

/// The generic per-PE program: compiled pattern + kernel.
pub struct StencilPeProgram {
    nz: usize,
    pattern: Arc<CommPattern>,
    kernel: Box<dyn StencilKernel>,
    exchange: Option<ColumnExchange>,
    /// Completed steps — the progress counter read by the host-side
    /// fault watchdog.
    steps_done: u64,
    /// Whether the current step has been counted. Starts true (nothing
    /// in flight); cleared at the top of each step.
    step_counted: bool,
    /// Whether the finish hook has run for the current step.
    step_finished: bool,
}

impl StencilPeProgram {
    /// Creates the program for columns of `nz` cells.
    pub fn new(nz: usize, pattern: Arc<CommPattern>, kernel: Box<dyn StencilKernel>) -> Self {
        Self {
            nz,
            pattern,
            kernel,
            exchange: None,
            steps_done: 0,
            step_counted: true,
            step_finished: true,
        }
    }

    /// The compiled pattern this program runs.
    pub fn pattern(&self) -> &CommPattern {
        &self.pattern
    }

    fn exchange(&mut self) -> &mut ColumnExchange {
        self.exchange.as_mut().expect("init not run")
    }

    fn start_step(&mut self, ctx: &mut PeContext) {
        self.step_counted = false;
        self.step_finished = false;
        ctx.region_begin(TraceRegion::FluxCompute);
        let views = self.kernel.on_start(ctx);
        ctx.region_end(TraceRegion::FluxCompute);
        ctx.region_begin(TraceRegion::HaloExchange);
        self.exchange().begin(ctx, &views);
        ctx.region_end(TraceRegion::HaloExchange);
    }

    /// Bumps the progress counter and fires the finish hook when the
    /// step is done. Called at the end of every handler so both advance
    /// the moment the last expected stream arrives (including the
    /// degenerate 1×1 fabric where the exchange is complete immediately
    /// after `start_step`).
    fn note_progress(&mut self, ctx: &mut PeContext) {
        let Some(ex) = self.exchange.as_ref() else {
            return;
        };
        if !self.step_counted && ex.is_complete() {
            self.steps_done += 1;
            self.step_counted = true;
        }
        if !self.step_finished && ex.is_complete() && ex.all_sent() {
            self.step_finished = true;
            ctx.region_begin(TraceRegion::FluxCompute);
            self.kernel.on_step_complete(ctx);
            ctx.region_end(TraceRegion::FluxCompute);
        }
    }
}

impl PeProgram for StencilPeProgram {
    fn init(&mut self, ctx: &mut PeContext) {
        let layout = self.kernel.init(ctx, self.pattern.streams);
        let mut exchange = ColumnExchange::new(self.nz, self.pattern.clone(), layout.recv);
        exchange.configure(ctx);
        self.exchange = Some(exchange);
    }

    fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
        if w.color == self.pattern.start {
            self.start_step(ctx);
            self.note_progress(ctx);
            return;
        }
        ctx.region_begin(TraceRegion::HaloExchange);
        let event = self.exchange().on_data(ctx, w);
        ctx.region_end(TraceRegion::HaloExchange);
        match event {
            ExchangeEvent::Stored => {}
            ExchangeEvent::StreamComplete(stream) => {
                let ex = self.exchange.take().expect("init not run");
                ctx.region_begin(TraceRegion::FluxCompute);
                self.kernel.on_stream_complete(ctx, stream, &ex);
                ctx.region_end(TraceRegion::FluxCompute);
                self.exchange = Some(ex);
            }
            ExchangeEvent::NotMine => panic!(
                "PE ({}, {}): wavelet on unexpected color {}",
                ctx.coord.col,
                ctx.coord.row,
                w.color.id()
            ),
        }
        self.note_progress(ctx);
    }

    fn on_control(&mut self, ctx: &mut PeContext, w: Wavelet) {
        ctx.region_begin(TraceRegion::HaloExchange);
        self.exchange().on_control(ctx, w);
        ctx.region_end(TraceRegion::HaloExchange);
        self.note_progress(ctx);
    }

    fn progress(&self) -> Option<u64> {
        Some(self.steps_done)
    }

    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.steps_done.to_le_bytes());
        out.push(self.step_counted as u8);
        out.push(self.step_finished as u8);
        match &self.exchange {
            None => out.push(0),
            Some(ex) => {
                out.push(1);
                let (recv_count, sent, send_views) = ex.dynamic_state();
                out.extend_from_slice(&(recv_count.len() as u64).to_le_bytes());
                for c in recv_count {
                    out.extend_from_slice(&(c as u64).to_le_bytes());
                }
                out.extend_from_slice(&(sent.len() as u64).to_le_bytes());
                for s in sent {
                    out.push(s as u8);
                }
                out.extend_from_slice(&(send_views.len() as u64).to_le_bytes());
                for v in send_views {
                    out.extend_from_slice(&(v.base as u64).to_le_bytes());
                    out.extend_from_slice(&(v.len as u64).to_le_bytes());
                    out.extend_from_slice(&(v.stride as u64).to_le_bytes());
                }
            }
        }
        let kernel = self.kernel.save_state();
        out.extend_from_slice(&(kernel.len() as u64).to_le_bytes());
        out.extend_from_slice(&kernel);
        out
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        let mut cur = StateCursor::new(state);
        self.steps_done = cur.u64()?;
        self.step_counted = cur.u8()? != 0;
        self.step_finished = cur.u8()? != 0;
        let has_exchange = cur.u8()? != 0;
        if has_exchange {
            let n_streams = cur.u64()? as usize;
            if n_streams > 64 {
                return Err(format!("implausible stream count {n_streams}"));
            }
            let mut recv_count = vec![0usize; n_streams];
            for c in &mut recv_count {
                *c = cur.u64()? as usize;
            }
            let n_sent = cur.u64()? as usize;
            if n_sent > 64 {
                return Err(format!("implausible cardinal lane count {n_sent}"));
            }
            let mut sent = vec![false; n_sent];
            for s in &mut sent {
                *s = cur.u8()? != 0;
            }
            let n_views = cur.u64()? as usize;
            if n_views > 64 {
                return Err(format!("implausible send-view count {n_views}"));
            }
            let mut send_views = Vec::with_capacity(n_views);
            for _ in 0..n_views {
                let base = cur.u64()? as usize;
                let len = cur.u64()? as usize;
                let stride = cur.u64()? as usize;
                if stride == 0 {
                    return Err("send view with zero stride".to_string());
                }
                send_views.push(Dsd::strided(base, len, stride));
            }
            let ex = self
                .exchange
                .as_mut()
                .ok_or("saved state has exchange but program is uninitialized")?;
            ex.restore_dynamic_state(recv_count, sent, send_views)?;
        } else if self.exchange.is_some() {
            return Err("saved state predates init but program is initialized".to_string());
        }
        let n_kernel = cur.u64()? as usize;
        let kernel = cur.take(n_kernel)?.to_vec();
        self.kernel.load_state(&kernel)?;
        cur.finish()
    }
}

/// Little-endian byte-slice reader for [`StencilPeProgram::load_state`].
pub(crate) struct StateCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateCursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(format!(
                "truncated program state: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ));
        };
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn finish(self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes in program state",
                self.bytes.len() - self.pos
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::spec::StencilSpec;

    struct NullKernel;

    impl StencilKernel for NullKernel {
        fn init(&mut self, ctx: &mut PeContext, streams: usize) -> KernelLayout {
            let nz = 4;
            let recv = (0..streams).map(|_| ctx.alloc(nz)).collect();
            let _send = ctx.alloc(nz);
            KernelLayout { recv: vec![recv] }
        }

        fn on_start(&mut self, _ctx: &mut PeContext) -> Vec<Dsd> {
            vec![Dsd::contiguous(0, 4)]
        }

        fn on_stream_complete(
            &mut self,
            _ctx: &mut PeContext,
            _stream: usize,
            _exchange: &ColumnExchange,
        ) {
        }

        fn on_step_complete(&mut self, _ctx: &mut PeContext) {}
    }

    #[test]
    fn fresh_program_reports_zero_progress() {
        let pattern = Arc::new(compile(&StencilSpec::laplace7(1.0, 1.0)).unwrap().pattern);
        let p = StencilPeProgram::new(4, pattern, Box::new(NullKernel));
        assert_eq!(p.progress(), Some(0));
    }

    #[test]
    fn state_round_trips_before_init() {
        let pattern = Arc::new(compile(&StencilSpec::laplace7(1.0, 1.0)).unwrap().pattern);
        let p = StencilPeProgram::new(4, pattern.clone(), Box::new(NullKernel));
        let bytes = p.save_state();
        let mut q = StencilPeProgram::new(4, pattern, Box::new(NullKernel));
        q.load_state(&bytes).unwrap();
        assert_eq!(q.progress(), Some(0));
    }

    #[test]
    fn truncated_state_is_rejected() {
        let pattern = Arc::new(compile(&StencilSpec::laplace7(1.0, 1.0)).unwrap().pattern);
        let p = StencilPeProgram::new(4, pattern.clone(), Box::new(NullKernel));
        let bytes = p.save_state();
        let mut q = StencilPeProgram::new(4, pattern, Box::new(NullKernel));
        assert!(q.load_state(&bytes[..bytes.len() - 1]).is_err());
    }
}
