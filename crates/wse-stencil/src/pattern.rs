//! Compiled communication artifacts: color lanes and per-PE route
//! programs.
//!
//! A [`CommPattern`] is the pure-data output of [`crate::compile`]: for
//! every in-plane stream of the spec it records either a *cardinal lane*
//! (one switchable color implementing the paper's Fig. 6 two-step
//! hand-over) or a *diagonal lane* (a family of `phases` static colors
//! implementing the Fig. 5 source → intermediary → receiver relay).
//! [`CommPattern::route_program`] renders the per-PE router
//! configuration — the artifact that is uploaded to each router at
//! `Fabric::load` time.

use std::collections::HashSet;
use wse_sim::geometry::{Direction, FabricDims, PeCoord};
use wse_sim::route::{ColorConfig, DirMask, RouterPosition};
use wse_sim::wavelet::Color;

/// One switchable cardinal exchange color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardinalLane {
    /// The color.
    pub color: Color,
    /// Data movement direction (send side).
    pub send_dir: Direction,
    /// Stream index (into the spec's offsets / the receive buffers).
    pub stream: usize,
    /// The delivered neighbor's offset `(dx, dy)`.
    pub offset: (i32, i32),
}

impl CardinalLane {
    /// Coordinate along the movement axis.
    fn axis_pos(&self, c: PeCoord) -> usize {
        match self.send_dir {
            Direction::East | Direction::West => c.col,
            _ => c.row,
        }
    }

    /// Axis extent on the fabric.
    fn axis_len(&self, dims: FabricDims) -> usize {
        match self.send_dir {
            Direction::East | Direction::West => dims.cols,
            _ => dims.rows,
        }
    }

    /// True if PE `c` sends in step 1 (the *Sending* initial position).
    ///
    /// The trailing-edge PE (the one with no upstream neighbor to hand it
    /// the channel) must always be a first-sender: for eastward movement
    /// that is column 0 (even parity); for westward movement it is column
    /// `cols − 1`, whose parity depends on the fabric width.
    pub fn is_first_sender(&self, dims: FabricDims, c: PeCoord) -> bool {
        let pos = self.axis_pos(c);
        let trailing: usize = match self.send_dir {
            Direction::East | Direction::South => 0,
            _ => self.axis_len(dims) - 1,
        };
        pos % 2 == trailing % 2
    }

    /// True if PE `c` will receive a column on this lane (the delivered
    /// neighbor exists on the fabric).
    pub fn has_sender(&self, dims: FabricDims, c: PeCoord) -> bool {
        in_bounds(dims, c, self.offset)
    }

    /// The router configuration at PE `c` (Fig. 6's two switch positions;
    /// first-senders start in Sending).
    ///
    /// The trailing-edge PE (no upstream neighbor on this lane) never
    /// receives on it, so its route is a *fixed* Sending position: control
    /// wavelets leave its switch state untouched, which is what makes the
    /// per-iteration toggle count even on every router and returns the
    /// whole fabric to its initial configuration after the two steps. (On
    /// the real CS-2 the reserved boundary-PE layer plays this role.)
    pub fn router_config(&self, dims: FabricDims, c: PeCoord) -> ColorConfig {
        let sending = RouterPosition::new(
            DirMask::single(Direction::Ramp),
            DirMask::single(self.send_dir),
        );
        let receiving = RouterPosition::new(
            DirMask::single(self.send_dir.arrival_side()),
            DirMask::single(Direction::Ramp),
        );
        if !self.has_sender(dims, c) {
            return ColorConfig::fixed(sending);
        }
        let initial = if self.is_first_sender(dims, c) { 0 } else { 1 };
        ColorConfig::switchable(sending, receiving, initial)
    }
}

/// One diagonal family: two legs and a rotating phase coloring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagonalLane {
    /// First-leg output direction (at the source).
    pub leg1: Direction,
    /// Second-leg output direction (at the intermediary).
    pub leg2: Direction,
    /// Stream index (into the spec's offsets / the receive buffers).
    pub stream: usize,
    /// The delivered neighbor's offset `(dx, dy)`.
    pub offset: (i32, i32),
    /// Base color id (`phases` consecutive colors).
    pub base_color: u8,
    /// Number of phase colors in this family.
    pub phases: u8,
    /// Key uses `x + y` (true) or `x − y` (false).
    pub key_sum: bool,
    /// Key increment per hop along the path (+1 or −1).
    pub key_step: i64,
}

impl DiagonalLane {
    /// The phase key of a PE for this family.
    pub fn key(&self, c: PeCoord) -> i64 {
        if self.key_sum {
            c.col as i64 + c.row as i64
        } else {
            c.col as i64 - c.row as i64
        }
    }

    fn phase_color(&self, key: i64) -> Color {
        let phase = key.rem_euclid(self.phases as i64) as u8;
        Color::new(self.base_color + phase)
    }

    /// The color a PE *sources* (sends its own column on) for this family.
    pub fn source_color(&self, c: PeCoord) -> Color {
        self.phase_color(self.key(c))
    }

    /// The color on which a PE *receives* this family's stream (the data
    /// of its delivered neighbor): the stream sourced two hops upstream.
    pub fn receive_color(&self, c: PeCoord) -> Color {
        self.phase_color(self.key(c) - 2 * self.key_step)
    }

    /// The color this PE forwards as an intermediary.
    pub fn intermediary_color(&self, c: PeCoord) -> Color {
        self.phase_color(self.key(c) - self.key_step)
    }

    /// The three router configurations of this family's colors at PE `c`:
    /// `(color, config)` pairs for source, intermediary and receiver
    /// roles.
    pub fn router_configs(&self, c: PeCoord) -> [(Color, ColorConfig); 3] {
        let source = (
            self.source_color(c),
            ColorConfig::fixed(RouterPosition::new(
                DirMask::single(Direction::Ramp),
                DirMask::single(self.leg1),
            )),
        );
        let inter = (
            self.intermediary_color(c),
            ColorConfig::fixed(RouterPosition::new(
                DirMask::single(self.leg1.arrival_side()),
                DirMask::single(self.leg2),
            )),
        );
        let recv = (
            self.receive_color(c),
            ColorConfig::fixed(RouterPosition::new(
                DirMask::single(self.leg2.arrival_side()),
                DirMask::single(Direction::Ramp),
            )),
        );
        [source, inter, recv]
    }

    /// True if PE `c` will actually receive this family's stream (the
    /// diagonal source exists on the fabric).
    pub fn has_sender(&self, dims: FabricDims, c: PeCoord) -> bool {
        in_bounds(dims, c, self.offset)
    }
}

fn in_bounds(dims: FabricDims, c: PeCoord, offset: (i32, i32)) -> bool {
    let col = c.col as i64 + offset.0 as i64;
    let row = c.row as i64 + offset.1 as i64;
    col >= 0 && row >= 0 && col < dims.cols as i64 && row < dims.rows as i64
}

/// The per-PE router program: the `(color, config)` pairs installed at
/// `Fabric::load`. `Eq`/`Hash` make programs the unit of SPMD equivalence
/// classes — two PEs with equal programs configure identical route tables,
/// which the fabric deduplicates into one shared `Arc` per class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouteProgram(pub Vec<(Color, ColorConfig)>);

/// The compiled communication pattern of one stencil.
#[derive(Debug, Clone, PartialEq)]
pub struct CommPattern {
    /// Host-launch / local activation color (never routed).
    pub start: Color,
    /// Same-length columns sent per stream per step.
    pub quantities: usize,
    /// Switchable cardinal lanes, in injection order.
    pub cardinals: Vec<CardinalLane>,
    /// Static diagonal families, in injection order.
    pub diagonals: Vec<DiagonalLane>,
    /// Number of receive streams (the spec's offset count; diagonal
    /// ablation keeps the original stream indexing).
    pub streams: usize,
    /// Colors reserved for host-side reduction trees, after `start`.
    pub reduction: Vec<Color>,
}

impl CommPattern {
    /// Total colors the pattern occupies (lanes + start + reduction).
    pub fn colors_used(&self) -> usize {
        self.cardinals.len()
            + self
                .diagonals
                .iter()
                .map(|d| d.phases as usize)
                .sum::<usize>()
            + 1
            + self.reduction.len()
    }

    /// The cardinal-only ablation of this pattern (the paper's §5.2.2
    /// baseline): diagonal lanes dropped, stream indexing preserved.
    pub fn without_diagonals(&self) -> Self {
        Self {
            start: self.start,
            quantities: self.quantities,
            cardinals: self.cardinals.clone(),
            diagonals: Vec::new(),
            streams: self.streams,
            reduction: self.reduction.clone(),
        }
    }

    /// The stream delivered on `color` at PE `c`, or `None` for colors
    /// that never deliver data there (sources, intermediaries, start).
    pub fn delivered_stream(&self, c: PeCoord, color: Color) -> Option<usize> {
        for lane in &self.cardinals {
            if lane.color == color {
                return Some(lane.stream);
            }
        }
        for lane in &self.diagonals {
            if lane.receive_color(c) == color {
                return Some(lane.stream);
            }
        }
        None
    }

    /// Renders the router program of PE `c`: every lane's configuration
    /// in canonical order (cardinals, then each diagonal family's
    /// source / intermediary / receiver roles).
    pub fn route_program(&self, dims: FabricDims, c: PeCoord) -> RouteProgram {
        let mut out = Vec::with_capacity(self.cardinals.len() + 3 * self.diagonals.len());
        for lane in &self.cardinals {
            out.push((lane.color, lane.router_config(dims, c)));
        }
        for lane in &self.diagonals {
            out.extend(lane.router_configs(c));
        }
        RouteProgram(out)
    }

    /// The number of distinct per-PE route programs this pattern renders
    /// on a `dims` fabric — the predicted SPMD *equivalence-class* count.
    /// Programs differ only where the fabric edge reshapes a lane (edge
    /// PEs, corners, and the diagonal families' boundary roles), so the
    /// count is O(1) in the grid size once both extents clear the
    /// pattern's reach — exactly what `Fabric::eq_classes()` reports after
    /// route deduplication at `load`.
    pub fn eq_classes(&self, dims: FabricDims) -> usize {
        let mut seen = HashSet::new();
        for c in dims.iter() {
            seen.insert(self.route_program(dims, c));
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::spec::StencilSpec;

    #[test]
    fn diagonal_roles_are_distinct_per_pe() {
        let pattern = compile(&StencilSpec::tpfa()).unwrap().pattern;
        let dims = FabricDims::new(7, 5);
        for c in dims.iter() {
            for lane in &pattern.diagonals {
                let s = lane.source_color(c);
                let i = lane.intermediary_color(c);
                let r = lane.receive_color(c);
                assert_ne!(s, i, "{c:?}");
                assert_ne!(s, r, "{c:?}");
                assert_ne!(i, r, "{c:?}");
            }
        }
    }

    #[test]
    fn diagonal_relay_chains_hop_by_hop() {
        // For every family: the PE one leg1-hop from the source forwards
        // the source's color, and the corner PE receives it.
        let pattern = compile(&StencilSpec::tpfa()).unwrap().pattern;
        let dims = FabricDims::new(12, 12);
        let src = PeCoord::new(5, 5);
        for lane in &pattern.diagonals {
            let color = lane.source_color(src);
            let inter = dims.neighbor(src, lane.leg1).unwrap();
            let recv = dims.neighbor(inter, lane.leg2).unwrap();
            assert_eq!(lane.intermediary_color(inter), color, "{lane:?}");
            assert_eq!(lane.receive_color(recv), color, "{lane:?}");
            // the receiver sees the source as its `offset` neighbor
            assert_eq!(
                (src.col as i64, src.row as i64),
                (
                    recv.col as i64 + lane.offset.0 as i64,
                    recv.row as i64 + lane.offset.1 as i64
                ),
                "{lane:?}"
            );
        }
    }

    #[test]
    fn cardinal_first_senders_alternate_and_cover_trailing_edges() {
        let pattern = compile(&StencilSpec::tpfa()).unwrap().pattern;
        for dims in [FabricDims::new(4, 5), FabricDims::new(5, 4)] {
            for lane in &pattern.cardinals {
                let trailing = match lane.send_dir {
                    Direction::East => PeCoord::new(0, 1),
                    Direction::West => PeCoord::new(dims.cols - 1, 1),
                    Direction::South => PeCoord::new(1, 0),
                    Direction::North => PeCoord::new(1, dims.rows - 1),
                    Direction::Ramp => unreachable!(),
                };
                assert!(lane.is_first_sender(dims, trailing), "{lane:?} {dims:?}");
                let a = lane.is_first_sender(dims, PeCoord::new(1, 1));
                let b = lane.is_first_sender(
                    dims,
                    match lane.send_dir {
                        Direction::East | Direction::West => PeCoord::new(2, 1),
                        _ => PeCoord::new(1, 2),
                    },
                );
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn route_program_covers_every_lane_color_once() {
        let pattern = compile(&StencilSpec::tpfa()).unwrap().pattern;
        let dims = FabricDims::new(6, 6);
        let prog = pattern.route_program(dims, PeCoord::new(3, 2));
        let mut colors: Vec<u8> = prog.0.iter().map(|(c, _)| c.id()).collect();
        colors.sort_unstable();
        colors.dedup();
        // 4 cardinal + 4 families × 3 roles, all distinct colors
        assert_eq!(colors.len(), 16);
        assert!(!colors.contains(&pattern.start.id()));
    }

    #[test]
    fn ablation_drops_diagonals_but_keeps_streams() {
        let pattern = compile(&StencilSpec::tpfa()).unwrap().pattern;
        let ab = pattern.without_diagonals();
        assert_eq!(ab.streams, 8);
        assert!(ab.diagonals.is_empty());
        assert_eq!(ab.cardinals, pattern.cardinals);
    }

    #[test]
    fn eq_classes_are_constant_once_the_grid_clears_the_pattern_reach() {
        // The SPMD payoff: TPFA's class count saturates at a grid-size-
        // independent constant — interior / edge / corner variants only.
        let pattern = compile(&StencilSpec::tpfa()).unwrap().pattern;
        let at_8 = pattern.eq_classes(FabricDims::new(8, 8));
        for dims in [
            FabricDims::new(16, 16),
            FabricDims::new(32, 8),
            FabricDims::new(8, 32),
            FabricDims::new(64, 64),
        ] {
            assert_eq!(pattern.eq_classes(dims), at_8, "{dims:?}");
        }
        // Sanity: far fewer classes than PEs at scale (the diagonal
        // families' phase coloring and the cardinal sender parity make
        // programs *periodic*, so the class count saturates instead of
        // growing with the grid), and two period-aligned interior PEs
        // share one program while a corner does not.
        assert!(at_8 * 8 < 64 * 64, "expected O(1) classes, got {at_8}");
        let dims = FabricDims::new(16, 16);
        let interior = pattern.route_program(dims, PeCoord::new(7, 7));
        assert_eq!(pattern.route_program(dims, PeCoord::new(13, 13)), interior);
        assert_ne!(pattern.route_program(dims, PeCoord::new(0, 0)), interior);
    }
}
