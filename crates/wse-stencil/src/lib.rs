//! # wse-stencil — the stencil→route compiler
//!
//! One declarative IR for many workloads: a [`StencilSpec`] names the
//! in-plane neighbor offsets, per-face quantities/weights, diagonal
//! phases, halo radius and reserved reduction colors of a stencil
//! computation, and [`compile`] turns it into everything that used to
//! be hand-derived per workload:
//!
//! * a **color assignment** within the fabric's routable budget
//!   ([`wse_sim::MAX_COLORS`]),
//! * per-PE **[`RouteProgram`]s** — switchable cardinal channels plus
//!   static diagonal source/intermediary/receiver relays,
//! * an **exchange schedule** ([`ColumnExchange`]) owning the protocol
//!   state of one halo exchange per step, and
//! * a **generic PE program** ([`StencilPeProgram`]) that pairs the
//!   compiled pattern with a [`StencilKernel`] and runs on both fabric
//!   engines, flowing through fault, trace, checkpoint and metrics
//!   layers unchanged.
//!
//! Compilation is pure data→data with typed diagnostics
//! ([`CompileError`]) — no panics on bad specs.
//!
//! ## A minimal spec
//!
//! ```
//! use wse_stencil::{compile, OffsetSpec, StencilSpec};
//!
//! // One quantity exchanged with the east and west neighbors.
//! let spec = StencilSpec::new(
//!     "pair",
//!     1,
//!     vec![OffsetSpec::new(1, 0), OffsetSpec::new(-1, 0)],
//! );
//! let compiled = compile(&spec).expect("a well-formed spec compiles");
//!
//! // Two cardinal lanes on colors 0 and 1, launch color right after.
//! assert_eq!(compiled.pattern.cardinals.len(), 2);
//! assert_eq!(compiled.pattern.start.id(), 2);
//!
//! // Bad specs come back as typed diagnostics, never panics:
//! let bad = StencilSpec::new("far", 1, vec![OffsetSpec::new(2, 0)]);
//! assert!(compile(&bad).is_err());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod compile;
pub mod exchange;
pub mod pattern;
pub mod program;
pub mod spec;

pub use compile::{compile, CompiledStencil};
pub use exchange::{ColumnExchange, ExchangeEvent};
pub use pattern::{CardinalLane, CommPattern, DiagonalLane, RouteProgram};
pub use program::{KernelLayout, StencilKernel, StencilPeProgram};
pub use spec::{CompileError, OffsetSpec, StencilSpec};
