//! The stencil→route compiler: [`StencilSpec`] in, [`CompiledStencil`]
//! out. Pure data→data, no panics — every rejection is a typed
//! [`CompileError`] naming the offending spec fragment.
//!
//! ## Emission rules
//!
//! Colors are assigned in a canonical order so that the compiled TPFA
//! pattern is *identical* to the hand-derived tables of the paper
//! reproduction (§5.2, Figs. 5–6):
//!
//! 1. **Cardinal lanes** in send-direction order E, W, S, N (one
//!    switchable color each, skipping directions whose delivered offset
//!    the spec does not request);
//! 2. **Diagonal families** in delivered-corner order NW, NE, SE, SW
//!    (`phases` consecutive static colors each);
//! 3. the **start** color (host launch, never routed);
//! 4. any **reduction** colors the spec reserves.
//!
//! For a corner offset the two legs are ordered by the sign of
//! `dx·dy`: positive → horizontal leg first (NW travels E then S, SE
//! travels W then N), negative → vertical leg first. The family's phase
//! key is `x + y` when both legs increment it in the same sense
//! (legs ⊆ {E, S} or {W, N}) and `x − y` otherwise, with the key step
//! taken from leg 1 — exactly the four families of the paper's Fig. 5.

use crate::pattern::{CardinalLane, CommPattern, DiagonalLane};
use crate::spec::{CompileError, StencilSpec};
use wse_sim::geometry::Direction;
use wse_sim::wavelet::{Color, MAX_COLORS};

/// A compiled stencil: the spec it came from plus the communication
/// pattern the fabric runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStencil {
    /// The source spec (kernels read per-face weights back from it; the
    /// driver hashes it into the checkpoint spec hash).
    pub spec: StencilSpec,
    /// The emitted color lanes and route tables.
    pub pattern: CommPattern,
}

/// Compiles a spec into its communication pattern.
///
/// # Errors
///
/// Returns a [`CompileError`] naming the offending fragment when the
/// spec is malformed or exceeds the fabric's color budget.
pub fn compile(spec: &StencilSpec) -> Result<CompiledStencil, CompileError> {
    validate(spec)?;

    let mut next_color: usize = 0;
    let mut cardinals = Vec::new();
    // Canonical cardinal emission order: send dirs E, W, S, N — i.e.
    // delivered offsets W, E, N, S.
    for (send_dir, delivered) in [
        (Direction::East, (-1, 0)),
        (Direction::West, (1, 0)),
        (Direction::South, (0, -1)),
        (Direction::North, (0, 1)),
    ] {
        if let Some(stream) = find_offset(spec, delivered) {
            cardinals.push(CardinalLane {
                color: Color::new(next_color as u8),
                send_dir,
                stream,
                offset: delivered,
            });
            next_color += 1;
        }
    }

    let mut diagonals = Vec::new();
    // Canonical family emission order: delivered corners NW, NE, SE, SW.
    for delivered in [(-1, -1), (1, -1), (1, 1), (-1, 1)] {
        let Some(stream) = find_offset(spec, delivered) else {
            continue;
        };
        let (leg1, leg2) = corner_legs(delivered);
        let key_sum = matches!(
            (leg1, leg2),
            (Direction::East, Direction::South) | (Direction::West, Direction::North)
        );
        let key_step = key_step_of(leg1, key_sum);
        diagonals.push(DiagonalLane {
            leg1,
            leg2,
            stream,
            offset: delivered,
            base_color: next_color as u8,
            phases: spec.phases as u8,
            key_sum,
            key_step,
        });
        next_color += spec.phases as usize;
    }

    let start = next_color;
    let needed = start + 1 + spec.reduction_colors as usize;
    if needed > MAX_COLORS {
        return Err(CompileError::ColorBudgetExceeded {
            needed,
            budget: MAX_COLORS,
        });
    }
    let reduction: Vec<Color> = (0..spec.reduction_colors as usize)
        .map(|i| Color::new((start + 1 + i) as u8))
        .collect();

    Ok(CompiledStencil {
        spec: spec.clone(),
        pattern: CommPattern {
            start: Color::new(start as u8),
            quantities: spec.quantities,
            cardinals,
            diagonals,
            streams: spec.offsets.len(),
            reduction,
        },
    })
}

fn validate(spec: &StencilSpec) -> Result<(), CompileError> {
    if spec.quantities == 0 {
        return Err(CompileError::ZeroQuantities {
            name: spec.name.clone(),
        });
    }
    if spec.halo_radius != 1 {
        return Err(CompileError::UnsupportedHaloRadius {
            halo_radius: spec.halo_radius,
        });
    }
    for (i, o) in spec.offsets.iter().enumerate() {
        if (o.dx, o.dy) == (0, 0) {
            return Err(CompileError::ZeroOffset { index: i });
        }
        let r = spec.halo_radius as i64;
        if (o.dx as i64).abs() > r || (o.dy as i64).abs() > r {
            return Err(CompileError::OffsetOutsideHaloRadius {
                offset: (o.dx, o.dy),
                halo_radius: spec.halo_radius,
            });
        }
        if let Some(j) = spec.offsets[..i]
            .iter()
            .position(|p| (p.dx, p.dy) == (o.dx, o.dy))
        {
            return Err(CompileError::DuplicateOffset {
                offset: (o.dx, o.dy),
                indices: (j, i),
            });
        }
        if !o.is_cardinal() && spec.phases < 3 {
            return Err(CompileError::PhaseCycle {
                phases: spec.phases,
                offset: (o.dx, o.dy),
            });
        }
    }
    Ok(())
}

fn find_offset(spec: &StencilSpec, offset: (i32, i32)) -> Option<usize> {
    spec.offsets.iter().position(|o| (o.dx, o.dy) == offset)
}

/// Leg order for a delivered corner offset: data travels `(−dx, −dy)`;
/// `dx·dy > 0` routes the horizontal leg first.
fn corner_legs(delivered: (i32, i32)) -> (Direction, Direction) {
    let (dx, dy) = delivered;
    let h = if -dx > 0 {
        Direction::East
    } else {
        Direction::West
    };
    let v = if -dy > 0 {
        Direction::South
    } else {
        Direction::North
    };
    if dx * dy > 0 {
        (h, v)
    } else {
        (v, h)
    }
}

/// Key increment per hop of `leg` under the chosen key function.
fn key_step_of(leg: Direction, key_sum: bool) -> i64 {
    match (leg, key_sum) {
        // x + y: East and South increment, West and North decrement.
        (Direction::East, true) | (Direction::South, true) => 1,
        (Direction::West, true) | (Direction::North, true) => -1,
        // x − y: East and North increment, West and South decrement.
        (Direction::East, false) | (Direction::North, false) => 1,
        (Direction::West, false) | (Direction::South, false) => -1,
        (Direction::Ramp, _) => unreachable!("Ramp is never a relay leg"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OffsetSpec;

    #[test]
    fn tpfa_reproduces_the_hand_derived_color_table() {
        let c = compile(&StencilSpec::tpfa()).unwrap();
        let p = &c.pattern;
        // cardinals: E, W, S, N on colors 0–3
        let dirs: Vec<Direction> = p.cardinals.iter().map(|l| l.send_dir).collect();
        assert_eq!(
            dirs,
            [
                Direction::East,
                Direction::West,
                Direction::South,
                Direction::North
            ]
        );
        let ids: Vec<u8> = p.cardinals.iter().map(|l| l.color.id()).collect();
        assert_eq!(ids, [0, 1, 2, 3]);
        // diagonal families on bases 4, 7, 10, 13 with the Fig. 5 legs
        let fams: Vec<(u8, Direction, Direction, bool, i64)> = p
            .diagonals
            .iter()
            .map(|l| (l.base_color, l.leg1, l.leg2, l.key_sum, l.key_step))
            .collect();
        assert_eq!(
            fams,
            [
                (4, Direction::East, Direction::South, true, 1),
                (7, Direction::South, Direction::West, false, -1),
                (10, Direction::West, Direction::North, true, -1),
                (13, Direction::North, Direction::East, false, 1),
            ]
        );
        assert_eq!(p.start.id(), 16);
        assert_eq!(p.streams, 8);
        assert_eq!(p.quantities, 2);
        assert_eq!(p.colors_used(), 17);
    }

    #[test]
    fn laplace7_packs_colors_tightly() {
        let c = compile(&StencilSpec::laplace7(1.0, 1.0)).unwrap();
        assert_eq!(c.pattern.cardinals.len(), 4);
        assert!(c.pattern.diagonals.is_empty());
        assert_eq!(c.pattern.start.id(), 4);
        assert_eq!(c.pattern.colors_used(), 5);
    }

    #[test]
    fn wave_occupies_the_same_colors_as_tpfa() {
        let c = compile(&StencilSpec::wave(1.0, 1.0, 0.5)).unwrap();
        assert_eq!(c.pattern.start.id(), 16);
        assert_eq!(c.pattern.quantities, 1);
    }

    #[test]
    fn reduction_colors_follow_start() {
        let mut spec = StencilSpec::laplace7(1.0, 1.0);
        spec.reduction_colors = 2;
        let c = compile(&spec).unwrap();
        let ids: Vec<u8> = c.pattern.reduction.iter().map(|c| c.id()).collect();
        assert_eq!(ids, [5, 6]);
        assert_eq!(c.pattern.colors_used(), 7);
    }

    #[test]
    fn rejects_malformed_specs_with_typed_diagnostics() {
        let mut s = StencilSpec::tpfa();
        s.quantities = 0;
        assert!(matches!(
            compile(&s),
            Err(CompileError::ZeroQuantities { .. })
        ));

        let s = StencilSpec::new("z", 1, vec![OffsetSpec::new(0, 0)]);
        assert_eq!(compile(&s), Err(CompileError::ZeroOffset { index: 0 }));

        let s = StencilSpec::new("far", 1, vec![OffsetSpec::new(2, 0)]);
        assert_eq!(
            compile(&s),
            Err(CompileError::OffsetOutsideHaloRadius {
                offset: (2, 0),
                halo_radius: 1
            })
        );

        let mut s = StencilSpec::tpfa();
        s.halo_radius = 2;
        assert_eq!(
            compile(&s),
            Err(CompileError::UnsupportedHaloRadius { halo_radius: 2 })
        );

        let s = StencilSpec::new("dup", 1, vec![OffsetSpec::new(1, 0), OffsetSpec::new(1, 0)]);
        assert_eq!(
            compile(&s),
            Err(CompileError::DuplicateOffset {
                offset: (1, 0),
                indices: (0, 1)
            })
        );

        let mut s = StencilSpec::tpfa();
        s.phases = 2;
        assert!(matches!(compile(&s), Err(CompileError::PhaseCycle { .. })));

        let mut s = StencilSpec::tpfa();
        s.reduction_colors = 12;
        assert_eq!(
            compile(&s),
            Err(CompileError::ColorBudgetExceeded {
                needed: 29,
                budget: 24
            })
        );
    }

    #[test]
    fn phase_count_scales_the_color_footprint() {
        let mut s = StencilSpec::tpfa();
        s.phases = 4;
        let c = compile(&s).unwrap();
        assert_eq!(c.pattern.start.id(), 4 + 4 * 4);
        assert_eq!(c.pattern.colors_used(), 21);
        s.phases = 5;
        assert_eq!(
            compile(&s),
            Err(CompileError::ColorBudgetExceeded {
                needed: 25,
                budget: 24
            })
        );
    }
}
