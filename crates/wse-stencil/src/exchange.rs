//! The compiled exchange schedule: per-PE protocol state driving one
//! halo exchange per step over a [`CommPattern`].
//!
//! An exchange moves `quantities` same-length columns from every PE to
//! each in-plane neighbor the pattern routes. The engine owns the
//! protocol state (receive cursors, sent flags, expectations) and the
//! receive-buffer addressing; the host program provides the send views
//! and reacts to [`ExchangeEvent::StreamComplete`].
//!
//! Injection order is part of the compiled schedule and is canonical:
//! diagonal sources first (static routes, everyone sources
//! immediately), then the cardinal first-senders; late cardinal lanes
//! fire on the Fig. 6 control hand-over.

use crate::pattern::{CardinalLane, CommPattern};
use std::sync::Arc;
use wse_sim::dsd::Dsd;
use wse_sim::memory::MemRange;
use wse_sim::pe::PeContext;
use wse_sim::wavelet::{Color, Wavelet, MAX_COLORS};

/// What happened when a data wavelet was absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeEvent {
    /// Stored; the stream is still incomplete.
    Stored,
    /// This wavelet completed the given receive stream.
    StreamComplete(usize),
    /// The wavelet's color does not belong to this exchange.
    NotMine,
}

/// The per-PE exchange engine for one compiled pattern.
pub struct ColumnExchange {
    nz: usize,
    pattern: Arc<CommPattern>,
    /// `recv[q][stream]`: receive buffer for quantity `q` from stream
    /// `stream`.
    recv: Vec<Vec<MemRange>>,
    /// Send views, one per quantity (set each iteration via `begin`).
    send_views: Vec<Dsd>,
    recv_count: Vec<usize>,
    expected: Vec<bool>,
    sent: Vec<bool>,
    color_stream: [Option<u8>; MAX_COLORS],
}

impl ColumnExchange {
    /// Creates the engine for columns of `nz` cells over `pattern`, with
    /// the given receive buffers (`recv[q][stream]`, each of `nz` words).
    pub fn new(nz: usize, pattern: Arc<CommPattern>, recv: Vec<Vec<MemRange>>) -> Self {
        assert!(pattern.quantities >= 1);
        assert_eq!(recv.len(), pattern.quantities);
        for per_q in &recv {
            assert_eq!(per_q.len(), pattern.streams, "one buffer per stream");
            for r in per_q {
                assert!(r.len >= nz, "receive buffer too small");
            }
        }
        let streams = pattern.streams;
        let n_cardinal = pattern.cardinals.len();
        Self {
            nz,
            send_views: Vec::with_capacity(pattern.quantities),
            pattern,
            recv,
            recv_count: vec![0; streams],
            expected: vec![false; streams],
            sent: vec![false; n_cardinal],
            color_stream: [None; MAX_COLORS],
        }
    }

    /// The pattern this engine runs.
    pub fn pattern(&self) -> &CommPattern {
        &self.pattern
    }

    /// Installs the router configuration on this PE (call from `init`).
    pub fn configure(&mut self, ctx: &mut PeContext) {
        let pattern = self.pattern.clone();
        for lane in &pattern.cardinals {
            ctx.configure_color(lane.color, lane.router_config(ctx.dims, ctx.coord));
            self.expected[lane.stream] = lane.has_sender(ctx.dims, ctx.coord);
            self.color_stream[lane.color.index()] = Some(lane.stream as u8);
        }
        for lane in &pattern.diagonals {
            for (color, cfg) in lane.router_configs(ctx.coord) {
                ctx.configure_color(color, cfg);
            }
            self.expected[lane.stream] = lane.has_sender(ctx.dims, ctx.coord);
            self.color_stream[lane.receive_color(ctx.coord).index()] = Some(lane.stream as u8);
        }
    }

    /// Starts an iteration: resets cursors and injects the outgoing
    /// streams in the compiled schedule order. `send_views` holds one
    /// `nz`-element view per quantity, sent in order on every stream.
    pub fn begin(&mut self, ctx: &mut PeContext, send_views: &[Dsd]) {
        assert_eq!(send_views.len(), self.pattern.quantities);
        for v in send_views {
            assert_eq!(v.len, self.nz);
        }
        self.recv_count.fill(0);
        self.sent.fill(false);
        self.send_views.clear();
        self.send_views.extend_from_slice(send_views);

        let pattern = self.pattern.clone();
        // Diagonal streams: static routes, everyone sources immediately.
        for lane in &pattern.diagonals {
            let color = lane.source_color(ctx.coord);
            self.send_streams(ctx, color);
        }
        // Cardinal streams: first-senders now, the rest on hand-over.
        for (idx, lane) in pattern.cardinals.iter().enumerate() {
            if lane.is_first_sender(ctx.dims, ctx.coord) {
                self.send_cardinal(ctx, lane, idx);
            }
        }
    }

    fn send_streams(&mut self, ctx: &mut PeContext, color: Color) {
        for v in &self.send_views {
            ctx.send_vector(color, *v);
        }
    }

    fn send_cardinal(&mut self, ctx: &mut PeContext, lane: &CardinalLane, idx: usize) {
        if self.sent[idx] {
            return;
        }
        self.sent[idx] = true;
        self.send_streams(ctx, lane.color);
        ctx.send_control(lane.color, 0);
    }

    /// Handles a data wavelet. Stores it (with FMOV accounting) and
    /// reports whether a stream completed.
    pub fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) -> ExchangeEvent {
        let Some(stream) = self.color_stream[w.color.index()] else {
            return ExchangeEvent::NotMine;
        };
        let stream = stream as usize;
        let cursor = self.recv_count[stream];
        let total = self.pattern.quantities * self.nz;
        debug_assert!(
            cursor < total,
            "stream overflow on stream {stream} at PE ({}, {})",
            ctx.coord.col,
            ctx.coord.row
        );
        let q = cursor / self.nz;
        let offset = cursor % self.nz;
        let addr = self.recv[q][stream].at(offset);
        ctx.recv_store(addr, w.as_f32());
        self.recv_count[stream] = cursor + 1;
        if self.recv_count[stream] == total {
            ExchangeEvent::StreamComplete(stream)
        } else {
            ExchangeEvent::Stored
        }
    }

    /// Handles a control wavelet: our router already flipped to Sending;
    /// if this lane has not been sent yet, do it now (Fig. 6 hand-over).
    pub fn on_control(&mut self, ctx: &mut PeContext, w: Wavelet) {
        let pattern = self.pattern.clone();
        if let Some((idx, lane)) = pattern
            .cardinals
            .iter()
            .enumerate()
            .find(|(_, lane)| lane.color == w.color)
        {
            self.send_cardinal(ctx, lane, idx);
        }
    }

    /// True once this PE has sent on every cardinal lane (its own
    /// columns have been safely copied to the fabric). Programs that
    /// *overwrite* their send buffers at the end of an iteration (e.g.
    /// the wave time update) must wait for this in addition to
    /// [`ColumnExchange::is_complete`], or late hand-over sends would
    /// ship updated values — a write-after-read hazard.
    pub fn all_sent(&self) -> bool {
        self.sent.iter().all(|&s| s)
    }

    /// True once every expected stream has fully arrived.
    pub fn is_complete(&self) -> bool {
        let total = self.pattern.quantities * self.nz;
        self.expected
            .iter()
            .zip(&self.recv_count)
            .all(|(&exp, &cnt)| !exp || cnt == total)
    }

    /// Dynamic protocol state for checkpointing, as `(recv_count, sent,
    /// send_views)`. The static configuration (expectations, color map,
    /// receive buffers) is rebuilt by `configure` and is not included.
    pub fn dynamic_state(&self) -> (Vec<usize>, Vec<bool>, Vec<Dsd>) {
        (
            self.recv_count.clone(),
            self.sent.clone(),
            self.send_views.clone(),
        )
    }

    /// Restores protocol state captured by
    /// [`ColumnExchange::dynamic_state`] on a freshly configured engine.
    /// Rejects shape mismatches, cursors past the stream length and send
    /// views that do not match this exchange's geometry.
    pub fn restore_dynamic_state(
        &mut self,
        recv_count: Vec<usize>,
        sent: Vec<bool>,
        send_views: Vec<Dsd>,
    ) -> Result<(), String> {
        if recv_count.len() != self.recv_count.len() {
            return Err(format!(
                "{} receive cursors for {} streams",
                recv_count.len(),
                self.recv_count.len()
            ));
        }
        if sent.len() != self.sent.len() {
            return Err(format!(
                "{} sent flags for {} cardinal lanes",
                sent.len(),
                self.sent.len()
            ));
        }
        let total = self.pattern.quantities * self.nz;
        for (stream, &cnt) in recv_count.iter().enumerate() {
            if cnt > total {
                return Err(format!(
                    "receive cursor {cnt} on stream {stream} exceeds stream length {total}"
                ));
            }
        }
        if !send_views.is_empty() {
            if send_views.len() != self.pattern.quantities {
                return Err(format!(
                    "{} send views for {} quantities",
                    send_views.len(),
                    self.pattern.quantities
                ));
            }
            for v in &send_views {
                if v.len != self.nz {
                    return Err(format!("send view length {} != nz {}", v.len, self.nz));
                }
            }
        }
        self.recv_count = recv_count;
        self.sent = sent;
        self.send_views = send_views;
        Ok(())
    }

    /// Whether a stream is expected (its sender exists on the fabric).
    pub fn expects(&self, stream: usize) -> bool {
        self.expected[stream]
    }

    /// Receive buffer of quantity `q` from `stream`, as a DSD view.
    pub fn recv_view(&self, q: usize, stream: usize) -> Dsd {
        let r = self.recv[q][stream];
        Dsd::contiguous(r.offset, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::spec::StencilSpec;

    fn ranges(n: usize, count: usize, start: usize) -> Vec<MemRange> {
        (0..count)
            .map(|i| MemRange {
                offset: start + i * n,
                len: n,
            })
            .collect()
    }

    fn tpfa_pattern() -> Arc<CommPattern> {
        Arc::new(compile(&StencilSpec::tpfa()).unwrap().pattern)
    }

    #[test]
    fn completion_tracking() {
        let p = tpfa_pattern();
        let mut ex = ColumnExchange::new(4, p, vec![ranges(4, 8, 0), ranges(4, 8, 100)]);
        assert!(ex.is_complete(), "nothing expected yet");
        ex.expected[3] = true;
        assert!(!ex.is_complete());
        ex.recv_count[3] = 8;
        assert!(ex.is_complete());
        assert!(ex.expects(3));
        assert!(!ex.expects(2));
    }

    #[test]
    fn recv_view_addresses_the_right_buffer() {
        let p = tpfa_pattern();
        let ex = ColumnExchange::new(4, p, vec![ranges(4, 8, 0), ranges(4, 8, 100)]);
        let v = ex.recv_view(1, 2);
        assert_eq!(v.base, 108);
        assert_eq!(v.len, 4);
    }

    #[test]
    fn restore_rejects_shape_mismatches() {
        let p = tpfa_pattern();
        let mut ex = ColumnExchange::new(4, p, vec![ranges(4, 8, 0), ranges(4, 8, 100)]);
        assert!(ex
            .restore_dynamic_state(vec![0; 7], vec![false; 4], Vec::new())
            .is_err());
        assert!(ex
            .restore_dynamic_state(vec![0; 8], vec![false; 3], Vec::new())
            .is_err());
        assert!(ex
            .restore_dynamic_state(vec![9; 8], vec![false; 4], Vec::new())
            .is_err());
        assert!(ex
            .restore_dynamic_state(vec![8; 8], vec![true; 4], Vec::new())
            .is_ok());
    }

    #[test]
    #[should_panic]
    fn undersized_receive_buffer_rejected() {
        let p = tpfa_pattern();
        let _ = ColumnExchange::new(8, p, vec![ranges(4, 8, 0), ranges(4, 8, 100)]);
    }
}
