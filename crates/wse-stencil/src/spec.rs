//! The declarative stencil IR: [`StencilSpec`] and its validation
//! diagnostics.
//!
//! A spec names *what* a workload exchanges — which in-plane neighbors,
//! how many same-length columns per neighbor, how many diagonal phases —
//! and the compiler ([`crate::compile`]) decides *how*: which of the
//! fabric's `MAX_COLORS` routable colors carry each stream, what every
//! PE's router does, and in which order streams are injected.

use std::fmt;

/// One in-plane neighbor offset `(dx, dy)` with an optional per-face
/// weight.
///
/// `dx` grows eastward (fabric columns), `dy` grows southward (fabric
/// rows) — the North neighbor is `(0, -1)`. The weight is carried
/// through compilation untouched; kernels that want per-face constants
/// (e.g. a Laplacian) read it back from the compiled spec, and it is
/// covered by [`StencilSpec::content_bytes`] so two workloads differing
/// only in weights hash differently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffsetSpec {
    /// Eastward offset of the neighbor whose column this stream delivers.
    pub dx: i32,
    /// Southward offset of the neighbor whose column this stream delivers.
    pub dy: i32,
    /// Per-face weight (default 1.0).
    pub weight: f32,
}

impl OffsetSpec {
    /// An offset with the default weight.
    pub fn new(dx: i32, dy: i32) -> Self {
        Self {
            dx,
            dy,
            weight: 1.0,
        }
    }

    /// An offset with an explicit per-face weight.
    pub fn weighted(dx: i32, dy: i32, weight: f32) -> Self {
        Self { dx, dy, weight }
    }

    /// True when the offset is axis-aligned (one of `dx`, `dy` is zero).
    pub fn is_cardinal(&self) -> bool {
        self.dx == 0 || self.dy == 0
    }
}

/// A declarative description of an in-plane halo-exchange stencil.
///
/// The Z direction is deliberately absent: columns live in PE memory, so
/// vertical faces never touch the fabric (the paper's cell-based
/// mapping) — kernels handle them locally.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilSpec {
    /// Workload name (diagnostics, hashing, CLI selection).
    pub name: String,
    /// Same-length columns sent per stream per step (e.g. TPFA sends
    /// pressure and density: 2).
    pub quantities: usize,
    /// In-plane neighbor offsets, one receive stream each. Order is
    /// significant: stream `k` of the compiled pattern is `offsets[k]`.
    pub offsets: Vec<OffsetSpec>,
    /// Chebyshev halo radius the offsets must fit in (only 1 is
    /// routable today).
    pub halo_radius: u32,
    /// Number of phase colors per diagonal family (the paper's rotating
    /// 3-phase coloring; must be ≥ 3 when corner offsets are present).
    pub phases: u32,
    /// Colors reserved after the start color for host-side reduction
    /// trees (dot products); compiled but not yet routed.
    pub reduction_colors: u32,
}

impl StencilSpec {
    /// A minimal spec with the canonical defaults (`halo_radius` 1,
    /// `phases` 3, no reduction colors).
    pub fn new(name: impl Into<String>, quantities: usize, offsets: Vec<OffsetSpec>) -> Self {
        Self {
            name: name.into(),
            quantities,
            offsets,
            halo_radius: 1,
            phases: 3,
            reduction_colors: 0,
        }
    }

    /// The paper's 10-face TPFA stencil: all eight in-plane neighbors in
    /// canonical face order, two quantities (pressure, density).
    pub fn tpfa() -> Self {
        Self::new("tpfa", 2, Self::full_ring(1.0))
    }

    /// A 7-point Laplacian: the four cardinal neighbors, one quantity,
    /// with per-face weights `(wx, wy)` (the two vertical faces are
    /// local to the PE and carry `wz` in the kernel).
    pub fn laplace7(wx: f32, wy: f32) -> Self {
        Self::new(
            "laplace7",
            1,
            vec![
                OffsetSpec::weighted(1, 0, wx),
                OffsetSpec::weighted(-1, 0, wx),
                OffsetSpec::weighted(0, -1, wy),
                OffsetSpec::weighted(0, 1, wy),
            ],
        )
    }

    /// The seismic-wave 10-neighbor stencil: full in-plane ring, one
    /// quantity (the wavefield), per-face weights `(wx, wy, wd)` for
    /// cardinal-x, cardinal-y and diagonal coupling.
    pub fn wave(wx: f32, wy: f32, wd: f32) -> Self {
        let mut offsets = Self::full_ring(wd);
        offsets[0].weight = wx;
        offsets[1].weight = wx;
        offsets[2].weight = wy;
        offsets[3].weight = wy;
        Self::new("wave", 1, offsets)
    }

    /// The eight in-plane offsets in canonical face order (E, W, N, S,
    /// NE, NW, SE, SW), all with weight `w`.
    pub fn full_ring(w: f32) -> Vec<OffsetSpec> {
        vec![
            OffsetSpec::weighted(1, 0, w),
            OffsetSpec::weighted(-1, 0, w),
            OffsetSpec::weighted(0, -1, w),
            OffsetSpec::weighted(0, 1, w),
            OffsetSpec::weighted(1, -1, w),
            OffsetSpec::weighted(-1, -1, w),
            OffsetSpec::weighted(1, 1, w),
            OffsetSpec::weighted(-1, 1, w),
        ]
    }

    /// Canonical byte encoding of the spec for content hashing: name,
    /// quantities, halo radius, phases, reduction colors, then every
    /// offset with its weight bits. Two specs compare equal iff their
    /// bytes compare equal.
    pub fn content_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.name.len() as u64).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&(self.quantities as u64).to_le_bytes());
        out.extend_from_slice(&self.halo_radius.to_le_bytes());
        out.extend_from_slice(&self.phases.to_le_bytes());
        out.extend_from_slice(&self.reduction_colors.to_le_bytes());
        out.extend_from_slice(&(self.offsets.len() as u64).to_le_bytes());
        for o in &self.offsets {
            out.extend_from_slice(&o.dx.to_le_bytes());
            out.extend_from_slice(&o.dy.to_le_bytes());
            out.extend_from_slice(&o.weight.to_bits().to_le_bytes());
        }
        out
    }
}

/// A typed compilation diagnostic. Compilation never panics on a bad
/// spec; every rejection names the offending fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// `quantities` was zero — a stream must carry at least one column.
    ZeroQuantities {
        /// The spec's name.
        name: String,
    },
    /// An offset was `(0, 0)` — a PE cannot exchange with itself.
    ZeroOffset {
        /// Index of the offending offset.
        index: usize,
    },
    /// The same `(dx, dy)` appeared twice; streams would alias one
    /// receive buffer.
    DuplicateOffset {
        /// The repeated offset.
        offset: (i32, i32),
        /// Indices of the two occurrences.
        indices: (usize, usize),
    },
    /// An offset lies outside the spec's halo radius.
    OffsetOutsideHaloRadius {
        /// The offending offset.
        offset: (i32, i32),
        /// The spec's declared radius.
        halo_radius: u32,
    },
    /// Only radius-1 halos are routable today; larger radii need relay
    /// hops the route emitter does not yet generate.
    UnsupportedHaloRadius {
        /// The spec's declared radius.
        halo_radius: u32,
    },
    /// Fewer than three phases with corner offsets present: some PE
    /// would source and forward (or forward and receive) a family on
    /// the same color — a cycle in the role assignment.
    PhaseCycle {
        /// The spec's declared phase count.
        phases: u32,
        /// A corner offset requiring the 3-phase rotation.
        offset: (i32, i32),
    },
    /// The stencil needs more colors than the fabric routes.
    ColorBudgetExceeded {
        /// Colors the spec needs (lanes + start + reduction).
        needed: usize,
        /// The fabric's routable color budget (`MAX_COLORS`).
        budget: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ZeroQuantities { name } => {
                write!(f, "stencil {name:?}: quantities must be at least 1")
            }
            CompileError::ZeroOffset { index } => {
                write!(
                    f,
                    "offset #{index} is (0, 0): a PE cannot exchange with itself"
                )
            }
            CompileError::DuplicateOffset { offset, indices } => write!(
                f,
                "offset ({}, {}) appears at both #{} and #{}",
                offset.0, offset.1, indices.0, indices.1
            ),
            CompileError::OffsetOutsideHaloRadius {
                offset,
                halo_radius,
            } => write!(
                f,
                "offset ({}, {}) is outside the halo radius {halo_radius}",
                offset.0, offset.1
            ),
            CompileError::UnsupportedHaloRadius { halo_radius } => {
                write!(
                    f,
                    "halo radius {halo_radius} is not routable (only 1 is supported)"
                )
            }
            CompileError::PhaseCycle { phases, offset } => write!(
                f,
                "{phases} phase(s) with corner offset ({}, {}): diagonal roles need \
                 at least 3 phases to stay acyclic",
                offset.0, offset.1
            ),
            CompileError::ColorBudgetExceeded { needed, budget } => {
                write!(
                    f,
                    "stencil needs {needed} colors but the fabric routes {budget}"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_specs_have_expected_shapes() {
        let t = StencilSpec::tpfa();
        assert_eq!(t.quantities, 2);
        assert_eq!(t.offsets.len(), 8);
        let l = StencilSpec::laplace7(0.25, 0.0625);
        assert_eq!(l.offsets.len(), 4);
        assert!(l.offsets.iter().all(|o| o.is_cardinal()));
        let w = StencilSpec::wave(1.0, 2.0, 0.5);
        assert_eq!(w.offsets[0].weight, 1.0);
        assert_eq!(w.offsets[3].weight, 2.0);
        assert_eq!(w.offsets[7].weight, 0.5);
    }

    #[test]
    fn content_bytes_distinguish_specs() {
        assert_eq!(
            StencilSpec::tpfa().content_bytes(),
            StencilSpec::tpfa().content_bytes()
        );
        assert_ne!(
            StencilSpec::tpfa().content_bytes(),
            StencilSpec::laplace7(1.0, 1.0).content_bytes()
        );
        // weights are content
        assert_ne!(
            StencilSpec::laplace7(1.0, 1.0).content_bytes(),
            StencilSpec::laplace7(2.0, 1.0).content_bytes()
        );
    }

    #[test]
    fn diagnostics_render() {
        let e = CompileError::OffsetOutsideHaloRadius {
            offset: (2, 0),
            halo_radius: 1,
        };
        assert!(e.to_string().contains("(2, 0)"));
        let e = CompileError::ColorBudgetExceeded {
            needed: 30,
            budget: 24,
        };
        assert!(e.to_string().contains("30"));
    }
}
