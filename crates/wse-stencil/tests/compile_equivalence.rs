//! Differential suite: the compiler-emitted TPFA communication pattern must
//! be observationally *bit-identical* to the hand-derived one it replaced.
//!
//! Every test builds the same ten-point TPFA problem twice — once with
//! `builder.hand_routes(true)` (the original hand-written color tables and
//! route programs in `tpfa_dataflow::colors`) and once through the default
//! compiled path (`wse_stencil::compile` on `StencilSpec::tpfa()`) — and
//! demands equality at increasing levels of strictness:
//!
//! 1. residual vectors, compared bit-for-bit (`f32::to_bits`);
//! 2. [`FabricStats`] — instruction mix, fabric loads, critical path;
//! 3. the full sorted per-PE trace event stream (every task activation,
//!    wavelet hop, DSD op and router switch, with timestamps);
//! 4. checkpoint interchange: a snapshot taken from a hand-routed simulator
//!    restores into a compiled-routed one (and vice versa), because the
//!    route provenance is deliberately excluded from the spec hash.
//!
//! The matrix covers Sequential vs `Sharded {1, 4, 9}` engines, each with
//! static-route fast-forwarding on and off.

use fv_core::eos::Fluid;
use fv_core::fields::PermeabilityField;
use fv_core::mesh::{CartesianMesh3, Extents, Spacing};
use fv_core::state::FlowState;
use fv_core::trans::{StencilKind, Transmissibilities};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_sim::fabric::Execution;
use wse_sim::stats::FabricStats;
use wse_sim::trace::TraceSpec;

const NX: usize = 12;
const NY: usize = 12;
const NZ: usize = 5;

struct Problem {
    mesh: CartesianMesh3,
    fluid: Fluid,
    trans: Transmissibilities,
    pressure: Vec<f32>,
}

fn problem() -> Problem {
    let mesh = CartesianMesh3::new(Extents::new(NX, NY, NZ), Spacing::new(10.0, 10.0, 4.0));
    let fluid = Fluid::water_like();
    let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.4, 11);
    let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
    let pressure = FlowState::<f32>::varied(&mesh, 1.0e7, 1.2e7, 5)
        .pressure()
        .to_vec();
    Problem {
        mesh,
        fluid,
        trans,
        pressure,
    }
}

fn build(
    p: &Problem,
    hand: bool,
    execution: Execution,
    fast_forward: bool,
    trace: TraceSpec,
) -> DataflowFluxSimulator {
    DataflowFluxSimulator::builder(&p.mesh)
        .fluid(&p.fluid)
        .transmissibilities(&p.trans)
        .hand_routes(hand)
        .execution(execution)
        .fast_forward(fast_forward)
        .trace(trace)
        .build()
        .expect("build failed")
}

fn assert_bits_equal(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: cell {i} diverged ({x} vs {y})"
        );
    }
}

fn engines() -> Vec<Execution> {
    vec![
        Execution::Sequential,
        Execution::Sharded {
            shards: 1,
            threads: 1,
        },
        Execution::Sharded {
            shards: 4,
            threads: 2,
        },
        Execution::Sharded {
            shards: 9,
            threads: 3,
        },
    ]
}

#[test]
fn residuals_and_stats_match_hand_routes_across_engines_and_fast_forward() {
    let p = problem();
    let mut reference: Option<(Vec<f32>, FabricStats)> = None;
    for execution in engines() {
        for ff in [false, true] {
            let mut hand = build(&p, true, execution, ff, TraceSpec::OFF);
            let mut compiled = build(&p, false, execution, ff, TraceSpec::OFF);
            let r_hand = hand.apply(&p.pressure).expect("hand run failed");
            let r_comp = compiled.apply(&p.pressure).expect("compiled run failed");
            let label = format!("{execution:?} ff={ff}");
            assert_bits_equal(&r_hand, &r_comp, &label);
            assert_eq!(
                hand.stats(),
                compiled.stats(),
                "{label}: FabricStats diverged"
            );
            // Every engine/fast-forward combination must also agree with the
            // first one, so all eight runs pin a single answer.
            match &reference {
                None => reference = Some((r_comp, compiled.stats())),
                Some((r_ref, s_ref)) => {
                    assert_bits_equal(r_ref, &r_comp, &format!("{label} vs reference"));
                    assert_eq!(s_ref, &compiled.stats(), "{label}: stats vs reference");
                }
            }
        }
    }
}

#[test]
fn sorted_trace_streams_are_bit_identical() {
    let p = problem();
    for (execution, shards) in [
        (Execution::Sequential, None),
        (
            Execution::Sharded {
                shards: 4,
                threads: 2,
            },
            Some(4),
        ),
    ] {
        let mut hand = build(&p, true, execution, true, TraceSpec::ring(8192));
        let mut compiled = build(&p, false, execution, true, TraceSpec::ring(8192));
        hand.apply(&p.pressure).expect("hand run failed");
        compiled.apply(&p.pressure).expect("compiled run failed");
        let (t_hand, t_comp) = match shards {
            None => (hand.trace().unwrap(), compiled.trace().unwrap()),
            Some(n) => (
                hand.trace_with_shards(n).unwrap(),
                compiled.trace_with_shards(n).unwrap(),
            ),
        };
        assert_eq!(t_hand.dropped, 0, "ring must hold the full run");
        assert_eq!(t_comp.dropped, 0, "ring must hold the full run");
        assert!(
            t_hand.events.len() > 10_000,
            "expected a substantial trace, got {} events",
            t_hand.events.len()
        );
        assert_eq!(
            t_hand.events, t_comp.events,
            "{execution:?}: sorted trace stream diverged between hand and compiled routes"
        );
    }
}

#[test]
fn spec_hash_ignores_route_provenance() {
    let p = problem();
    let hand = build(&p, true, Execution::Sequential, true, TraceSpec::OFF);
    let compiled = build(&p, false, Execution::Sequential, true, TraceSpec::OFF);
    assert_eq!(
        hand.spec_hash(),
        compiled.spec_hash(),
        "hand vs compiled routes describe the same problem; their checkpoints must interchange"
    );
}

#[test]
fn checkpoints_interchange_between_hand_and_compiled_routes() {
    let p = problem();
    // Advance a hand-routed simulator two applications, snapshot it, restore
    // into a compiled-routed one (and the reverse), then run one more
    // application on all four and demand bit-identical residuals.
    let mut hand = build(&p, true, Execution::Sequential, true, TraceSpec::OFF);
    let mut compiled = build(
        &p,
        false,
        Execution::Sharded {
            shards: 4,
            threads: 2,
        },
        true,
        TraceSpec::OFF,
    );
    for _ in 0..2 {
        hand.apply(&p.pressure).expect("hand run failed");
        compiled.apply(&p.pressure).expect("compiled run failed");
    }
    let snap_hand = hand.snapshot();
    let snap_comp = compiled.snapshot();

    let mut comp_from_hand = build(&p, false, Execution::Sequential, false, TraceSpec::OFF);
    comp_from_hand
        .restore_snapshot(&snap_hand)
        .expect("hand snapshot must restore into a compiled-routed simulator");
    let mut hand_from_comp = build(&p, true, Execution::Sequential, false, TraceSpec::OFF);
    hand_from_comp
        .restore_snapshot(&snap_comp)
        .expect("compiled snapshot must restore into a hand-routed simulator");
    assert_eq!(comp_from_hand.applications(), 2);
    assert_eq!(hand_from_comp.applications(), 2);

    let r_hand = hand.apply(&p.pressure).expect("hand run failed");
    let r_comp = compiled.apply(&p.pressure).expect("compiled run failed");
    let r_cfh = comp_from_hand.apply(&p.pressure).expect("restored run");
    let r_hfc = hand_from_comp.apply(&p.pressure).expect("restored run");
    assert_bits_equal(&r_hand, &r_comp, "hand vs compiled post-restore");
    assert_bits_equal(&r_hand, &r_cfh, "compiled-from-hand-snapshot");
    assert_bits_equal(&r_hand, &r_hfc, "hand-from-compiled-snapshot");
}
