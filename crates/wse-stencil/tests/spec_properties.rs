//! Property-based tests of the stencil compiler: for *any* spec — including
//! malformed ones — `compile` must either return a pattern satisfying the
//! routing invariants or a typed [`CompileError`], never panic.
//!
//! Run under the workspace's deterministic proptest shim (fixed per-test
//! seed, no shrinking).

use proptest::prelude::*;
use wse_sim::geometry::{FabricDims, PeCoord};
use wse_sim::wavelet::{Color, MAX_COLORS};
use wse_stencil::{compile, CompileError, OffsetSpec, StencilSpec};

/// Arbitrary offset in the Chebyshev ball of radius 2 (radius-2 offsets are
/// rejected by the compiler today, which is part of what we test), with a
/// finite weight.
fn offset() -> impl Strategy<Value = OffsetSpec> {
    (-2i32..3, -2i32..3, -4.0f32..4.0).prop_map(|(dx, dy, w)| OffsetSpec::weighted(dx, dy, w))
}

fn spec() -> impl Strategy<Value = StencilSpec> {
    (
        0usize..4,
        proptest::collection::vec(offset(), 0..10),
        0u32..3,
        0u32..5,
        0u32..13,
    )
        .prop_map(|(quantities, offsets, halo, phases, reduction)| {
            let mut s = StencilSpec::new("prop", quantities, offsets);
            s.halo_radius = halo;
            s.phases = phases;
            s.reduction_colors = reduction;
            s
        })
}

/// Checks every invariant a compiled pattern must satisfy for the fabric to
/// route it: color budget, color uniqueness, stream indexing, delivery.
fn assert_pattern_invariants(spec: &StencilSpec) {
    let compiled = match compile(spec) {
        Ok(c) => c,
        Err(_) => return, // typed rejection is always acceptable
    };
    let p = &compiled.pattern;

    // Budget: everything fits in the router's physical color space.
    assert!(
        p.colors_used() <= MAX_COLORS,
        "compiled pattern exceeds MAX_COLORS: {}",
        p.colors_used()
    );

    // Uniqueness: no two lanes (or phases, or reserved colors) share a color.
    let mut seen = std::collections::BTreeSet::new();
    let mut claim = |c: u8, what: &str| {
        assert!(
            (c as usize) < MAX_COLORS,
            "{what} color {c} out of hardware range"
        );
        assert!(seen.insert(c), "{what} color {c} assigned twice");
    };
    for lane in &p.cardinals {
        claim(lane.color.id(), "cardinal");
    }
    for lane in &p.diagonals {
        for phase in 0..lane.phases {
            claim(lane.base_color + phase, "diagonal phase");
        }
    }
    claim(p.start.id(), "start");
    for c in &p.reduction {
        claim(c.id(), "reduction");
    }

    // Stream indexing: stream k is exactly offsets[k], each exactly once.
    assert_eq!(p.streams, spec.offsets.len());
    let mut streams: Vec<Option<(i32, i32)>> = vec![None; p.streams];
    for lane in &p.cardinals {
        assert!(streams[lane.stream].replace(lane.offset).is_none());
    }
    for lane in &p.diagonals {
        assert!(streams[lane.stream].replace(lane.offset).is_none());
    }
    for (k, entry) in streams.iter().enumerate() {
        let (dx, dy) = entry.expect("every stream must have a lane");
        assert_eq!((dx, dy), (spec.offsets[k].dx, spec.offsets[k].dy));
    }

    // Delivery: on an interior PE of a 5×5 fabric, every stream's data
    // arrives on some color, and that color maps back to the same stream.
    let dims = FabricDims::new(5, 5);
    let c = PeCoord::new(2, 2);
    let mut delivered = std::collections::BTreeSet::new();
    for color_idx in 0..MAX_COLORS {
        if let Some(s) = p.delivered_stream(c, Color::new(color_idx as u8)) {
            assert!(delivered.insert(s), "stream {s} delivered on two colors");
        }
    }
    assert_eq!(
        delivered.len(),
        p.streams,
        "interior PE must receive every stream"
    );

    // Route programs render without panicking on every PE.
    for y in 0..5 {
        for x in 0..5 {
            let _ = p.route_program(dims, PeCoord::new(x, y));
        }
    }
}

proptest! {
    #[test]
    fn compile_never_panics_and_valid_patterns_hold_invariants(s in spec()) {
        assert_pattern_invariants(&s);
    }

    #[test]
    fn rejections_are_the_documented_diagnostics(s in spec()) {
        if let Err(e) = compile(&s) {
            // Every rejection is one of the typed diagnostics, and the
            // diagnosis is consistent with the spec that produced it.
            match &e {
                CompileError::ZeroQuantities { name } => {
                    prop_assert_eq!(s.quantities, 0);
                    prop_assert_eq!(name.as_str(), s.name.as_str());
                }
                CompileError::ZeroOffset { index } => {
                    let o = &s.offsets[*index];
                    prop_assert_eq!((o.dx, o.dy), (0, 0));
                }
                CompileError::DuplicateOffset { offset, indices } => {
                    let (i, j) = *indices;
                    prop_assert!(i < j);
                    let (a, b) = (&s.offsets[i], &s.offsets[j]);
                    prop_assert_eq!((a.dx, a.dy), *offset);
                    prop_assert_eq!((b.dx, b.dy), *offset);
                }
                CompileError::OffsetOutsideHaloRadius { offset, halo_radius } => {
                    let cheb = offset.0.unsigned_abs().max(offset.1.unsigned_abs());
                    prop_assert!(cheb > *halo_radius);
                    prop_assert_eq!(*halo_radius, s.halo_radius);
                }
                CompileError::UnsupportedHaloRadius { halo_radius } => {
                    prop_assert_ne!(*halo_radius, 1);
                    prop_assert_eq!(*halo_radius, s.halo_radius);
                }
                CompileError::PhaseCycle { phases, offset } => {
                    prop_assert!(*phases < 3);
                    prop_assert!(offset.0 != 0 && offset.1 != 0);
                }
                CompileError::ColorBudgetExceeded { needed, budget } => {
                    prop_assert!(needed > budget);
                    prop_assert_eq!(*budget, MAX_COLORS);
                }
            }
            // Diagnostics render a non-empty human-readable message.
            prop_assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn compilation_is_deterministic(s in spec()) {
        let a = compile(&s);
        let b = compile(&s);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.pattern, y.pattern),
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "compile(spec) flip-flopped between Ok and Err"),
        }
    }
}

#[test]
fn canonical_specs_compile() {
    for s in [
        StencilSpec::tpfa(),
        StencilSpec::laplace7(1.0, 1.0),
        StencilSpec::wave(1.0, 1.0, 0.5),
    ] {
        let compiled = compile(&s).expect("canonical spec must compile");
        assert_pattern_invariants(&s);
        assert!(compiled.pattern.colors_used() <= MAX_COLORS);
    }
}
