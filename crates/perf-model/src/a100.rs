//! NVIDIA A100 timing model for the reference kernels.
//!
//! The paper's Nsight analysis (§7.2) shows the RAJA kernel is
//! **memory-bound**: arithmetic intensity 2.11 FLOP/B, 76 % of the
//! attainable roofline, ~48 % occupancy. A memory-bound kernel's wall-clock
//! is DRAM traffic over sustained bandwidth, which is how this model
//! computes time. The per-cell DRAM traffic parameter defaults to a cache
//! model of the 11-point gather (each cell's own loads are compulsory; the
//! ten neighbor pressure reads mostly hit in L2 except across tile
//! boundaries), calibrated against the paper's measured 16.84 s for 1000
//! applications on 183 M cells.

use serde::{Deserialize, Serialize};

/// A100 hardware + kernel-characterization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct A100Model {
    /// Peak f32 throughput [FLOP/s] (19.5 TFLOP/s).
    pub peak_flops: f64,
    /// HBM2 bandwidth [B/s] (1555 GB/s for the 40 GB SXM part).
    pub mem_bandwidth: f64,
    /// Sustained fraction of peak bandwidth the kernel achieves (the
    /// paper's kernel reaches 76 % of its roofline).
    pub bandwidth_efficiency: f64,
    /// DRAM traffic per cell per application [bytes]; see module docs.
    pub bytes_per_cell: f64,
    /// FLOPs per cell per application (Table 4: 140 for the flux kernel;
    /// Nsight additionally counts the EOS/exp expansions, captured by the
    /// reported arithmetic intensity instead).
    pub flops_per_cell: f64,
    /// Arithmetic intensity reported by profiling [FLOP/B] (paper: 2.11).
    pub profiled_intensity: f64,
    /// Board power under load [W] ("the A100 runs consume a peak of
    /// 250 W").
    pub power_watts: f64,
}

impl Default for A100Model {
    fn default() -> Self {
        Self {
            peak_flops: 19.5e12,
            mem_bandwidth: 1.555e12,
            bandwidth_efficiency: 0.76,
            // 11-point gather: own pressure + residual + 10 transmissibility
            // values are compulsory (12 words = 48 B); neighbor pressure
            // reads add ~15 words of L2-miss overhead per cell on the
            // paper's tile sizes and mesh aspect → ≈ 108.5 B/cell, which
            // reproduces the measured 16.84 s within 1 %.
            bytes_per_cell: 108.5,
            flops_per_cell: 140.0,
            profiled_intensity: 2.11,
            power_watts: 250.0,
        }
    }
}

impl A100Model {
    /// Sustained DRAM bandwidth [B/s].
    pub fn sustained_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.bandwidth_efficiency
    }

    /// Wall-clock seconds for `iterations` applications on `num_cells`
    /// cells: the max of the bandwidth and compute rooflines (this kernel
    /// is always bandwidth-bound on an A100).
    pub fn time_seconds(&self, num_cells: usize, iterations: usize) -> f64 {
        let n = num_cells as f64 * iterations as f64;
        let t_mem = n * self.bytes_per_cell / self.sustained_bandwidth();
        let t_cmp = n * self.flops_per_cell / self.peak_flops;
        t_mem.max(t_cmp)
    }

    /// True if the kernel is memory-bound under this model.
    pub fn is_memory_bound(&self) -> bool {
        self.bytes_per_cell / self.sustained_bandwidth() > self.flops_per_cell / self.peak_flops
    }

    /// Effective FLOP rate of the flux kernel [FLOP/s].
    pub fn achieved_flops(&self, num_cells: usize, iterations: usize) -> f64 {
        let n = num_cells as f64 * iterations as f64;
        n * self.flops_per_cell / self.time_seconds(num_cells, iterations)
    }

    /// The attainable performance at the profiled arithmetic intensity
    /// (the roofline ceiling the paper reports 76 % of).
    pub fn roofline_ceiling(&self) -> f64 {
        (self.profiled_intensity * self.mem_bandwidth).min(self.peak_flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_CELLS: usize = 750 * 994 * 246;

    #[test]
    fn reproduces_table_1_gpu_time_within_ten_percent() {
        // Paper Table 1: RAJA 16.84 s (avg) for 1000 applications.
        let m = A100Model::default();
        let t = m.time_seconds(PAPER_CELLS, 1000);
        assert!(
            (t - 16.84).abs() / 16.84 < 0.10,
            "modeled A100 time {t} s vs paper 16.84 s"
        );
    }

    #[test]
    fn kernel_is_memory_bound() {
        assert!(A100Model::default().is_memory_bound());
    }

    #[test]
    fn scaling_is_linear_in_cells() {
        // Table 2's A100 column grows linearly with the cell count.
        let m = A100Model::default();
        let t1 = m.time_seconds(200 * 200 * 246, 1000);
        let t2 = m.time_seconds(400 * 400 * 246, 1000);
        assert!((t2 / t1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn table_2_smallest_mesh_time_shape() {
        // Paper: 0.9040 s for 200×200×246 (1000 applications).
        let m = A100Model::default();
        let t = m.time_seconds(200 * 200 * 246, 1000);
        assert!((t - 0.904).abs() / 0.904 < 0.35, "modeled {t}");
    }

    #[test]
    fn roofline_ceiling_is_bandwidth_limited() {
        let m = A100Model::default();
        // at AI 2.11 the ceiling sits well under fp32 peak
        assert!(m.roofline_ceiling() < m.peak_flops);
        assert!((m.roofline_ceiling() - 2.11 * 1.555e12).abs() < 1e9);
    }

    #[test]
    fn achieved_flops_is_effective_rate() {
        let m = A100Model::default();
        let f = m.achieved_flops(PAPER_CELLS, 1000);
        // ≈ 1.5 TFLOP/s effective on the 140-FLOP/cell accounting
        assert!(f > 1.0e12 && f < 3.0e12, "{f}");
    }
}
