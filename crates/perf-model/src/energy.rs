//! Energy-efficiency accounting (paper §7.2).
//!
//! "When steady state is reached during the experiments, the CS-2 consumes
//! an average 23 kW of power. This corresponds to 13.67 GFLOP/W ... the
//! A100 runs consume a peak of 250 W under the same workload. The dataflow
//! implementation achieves a 2.2× energy efficiency with respect to the
//! reference implementation in aggregate and without considering the host
//! or the networking equipment."

use serde::{Deserialize, Serialize};

/// Power × time → efficiency for one machine/workload pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Steady-state power [W].
    pub power_watts: f64,
}

impl EnergyModel {
    /// Creates the model.
    pub fn new(power_watts: f64) -> Self {
        assert!(power_watts > 0.0);
        Self { power_watts }
    }

    /// Energy for a run [J].
    pub fn energy_joules(&self, time_s: f64) -> f64 {
        self.power_watts * time_s
    }

    /// Efficiency in GFLOP/W for a workload of `total_flops` completed in
    /// `time_s` (i.e. FLOP/s per watt).
    pub fn gflop_per_watt(&self, total_flops: f64, time_s: f64) -> f64 {
        total_flops / time_s / self.power_watts / 1.0e9
    }
}

/// Ratio of two efficiencies (the paper's "2.2× energy efficiency").
pub fn efficiency_ratio(a: f64, b: f64) -> f64 {
    a / b
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's workload: 140 FLOP/cell × 183 393 000 cells × 1000.
    const PAPER_FLOPS: f64 = 140.0 * 183_393_000.0 * 1000.0;

    #[test]
    fn cs2_matches_papers_gflop_per_watt() {
        // 311.85 TFLOP/s at 23 kW → 13.67 GFLOP/W (using the paper's own
        // wall-clock of 0.0823 s).
        let m = EnergyModel::new(23.0e3);
        let eff = m.gflop_per_watt(PAPER_FLOPS, 0.0823);
        assert!((eff - 13.67).abs() < 0.15, "CS-2 efficiency {eff}");
    }

    #[test]
    fn a100_vs_cs2_ratio_is_about_2_2x() {
        let cs2 = EnergyModel::new(23.0e3).gflop_per_watt(PAPER_FLOPS, 0.0823);
        let a100 = EnergyModel::new(250.0).gflop_per_watt(PAPER_FLOPS, 16.8378);
        let ratio = efficiency_ratio(cs2, a100);
        assert!(
            (ratio - 2.2).abs() < 0.1,
            "paper: 2.2× energy efficiency; model: {ratio}"
        );
    }

    #[test]
    fn energy_scales_with_time() {
        let m = EnergyModel::new(100.0);
        assert_eq!(m.energy_joules(2.0), 200.0);
        assert_eq!(m.energy_joules(0.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_power_rejected() {
        let _ = EnergyModel::new(0.0);
    }
}
