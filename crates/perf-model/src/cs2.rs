//! CS-2 wafer-scale engine timing model.
//!
//! The WSE executes one vector element per cycle per instruction stream
//! ("no matter how long the input and output arrays are, the throughput of
//! the instruction will be constant", paper §5.3.3), every PE runs the same
//! SPMD program on its own column, and the fabric delivers wavelets at one
//! hop per cycle. Wall-clock for `n` applications is therefore set by the
//! critical-path PE's cycle count — which depends only on `Nz`, *not* on
//! the fabric extent. That is exactly why the paper observes near-perfect
//! weak scaling (Table 2: 0.0813 s → 0.0823 s while the cell count grows
//! 18.6×); the small residual growth is the launch/drain wavefront crossing
//! the fabric, modeled here as one hop per fabric row+column.

use serde::{Deserialize, Serialize};
use wse_sim::stats::OpCounters;

/// CS-2 hardware parameters (published values as defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cs2Model {
    /// PE clock frequency [Hz]. WSE-2 runs at 850 MHz.
    pub clock_hz: f64,
    /// Fabric columns in use (max 750 on CS-2, paper §7.1).
    pub fabric_cols: usize,
    /// Fabric rows in use (max 994).
    pub fabric_rows: usize,
    /// SIMD lanes per PE at f32 ("up to 2 in single precision", §5.3.3).
    pub simd_width: f64,
    /// Per-PE memory bandwidth [bytes/cycle]: the DSD engine feeds both
    /// SIMD lanes with 2 loads + 1 store of 4 B each per lane.
    pub mem_bytes_per_cycle: f64,
    /// Per-PE fabric injection/ejection bandwidth [bytes/cycle]: one 32-bit
    /// wavelet per cycle.
    pub fabric_bytes_per_cycle: f64,
    /// Steady-state power draw [W] ("the CS-2 consumes an average 23 kW").
    pub power_watts: f64,
}

impl Default for Cs2Model {
    fn default() -> Self {
        Self {
            clock_hz: 850.0e6,
            fabric_cols: 750,
            fabric_rows: 994,
            simd_width: 2.0,
            mem_bytes_per_cycle: 24.0,
            fabric_bytes_per_cycle: 4.0,
            power_watts: 23.0e3,
        }
    }
}

impl Cs2Model {
    /// Number of PEs in use.
    pub fn num_pes(&self) -> usize {
        self.fabric_cols * self.fabric_rows
    }

    /// Peak f32 throughput [FLOP/s]: every PE retires one FMA (2 FLOPs) per
    /// SIMD lane per cycle.
    pub fn peak_flops(&self) -> f64 {
        self.num_pes() as f64 * self.clock_hz * self.simd_width * 2.0
    }

    /// Aggregate PE-memory bandwidth [B/s].
    pub fn memory_bandwidth(&self) -> f64 {
        self.num_pes() as f64 * self.clock_hz * self.mem_bytes_per_cycle
    }

    /// Aggregate fabric ejection bandwidth [B/s].
    pub fn fabric_bandwidth(&self) -> f64 {
        self.num_pes() as f64 * self.clock_hz * self.fabric_bytes_per_cycle
    }

    /// Wall-clock for `iterations` applications given the critical-path
    /// PE's per-iteration cycles, including the launch wavefront (one hop
    /// per fabric row + column per iteration).
    pub fn time_seconds(&self, per_iteration_pe_cycles: f64, iterations: usize) -> f64 {
        let wavefront = (self.fabric_cols + self.fabric_rows) as f64;
        (per_iteration_pe_cycles + wavefront) * iterations as f64 / self.clock_hz
    }

    /// Wall-clock from *measured* per-PE counters (the simulator's
    /// critical-path PE over `measured_iterations`), extrapolated to
    /// `iterations` applications.
    pub fn time_from_counters(
        &self,
        max_pe: &OpCounters,
        measured_iterations: usize,
        iterations: usize,
    ) -> f64 {
        assert!(measured_iterations > 0);
        let per_iter = max_pe.cycles() as f64 / measured_iterations as f64;
        self.time_seconds(per_iter / self.simd_width, iterations)
    }

    /// Throughput in Gigacells per second (Table 2's metric).
    pub fn throughput_gcell_per_s(&self, num_cells: usize, time_s: f64, iterations: usize) -> f64 {
        num_cells as f64 * iterations as f64 / time_s / 1.0e9
    }

    /// Wall-clock from a raw critical-path-PE cycle count measured over
    /// `measured_iterations`, extrapolated to `iterations` applications —
    /// the profile-driven sibling of [`Cs2Model::time_from_counters`]: feed
    /// it cycles a profiler attributed from a trace instead of aggregate
    /// counters.
    pub fn time_from_cycles(
        &self,
        cycles: u64,
        measured_iterations: usize,
        iterations: usize,
    ) -> f64 {
        assert!(measured_iterations > 0);
        let per_iter = cycles as f64 / measured_iterations as f64;
        self.time_seconds(per_iter / self.simd_width, iterations)
    }

    /// Table-3-style compute/communication/total wall-clock split from a
    /// cycle breakdown of the critical-path PE (e.g. per-region cycles
    /// attributed by `wse-prof`). Mirrors the counter-derived method used by
    /// `table3_breakdown`: communication time is modeled from the
    /// communication cycles alone, computation is the remainder of the total.
    pub fn breakdown_from_cycles(
        &self,
        compute_cycles: u64,
        comm_cycles: u64,
        measured_iterations: usize,
        iterations: usize,
    ) -> BreakdownSeconds {
        let total_s = self.time_from_cycles(
            compute_cycles + comm_cycles,
            measured_iterations,
            iterations,
        );
        let comm_s = self.time_from_cycles(comm_cycles, measured_iterations, iterations);
        BreakdownSeconds {
            compute_s: total_s - comm_s,
            comm_s,
            total_s,
        }
    }
}

/// A compute/communication/total wall-clock split (Table 3's three rows),
/// produced by [`Cs2Model::breakdown_from_cycles`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakdownSeconds {
    /// Seconds attributed to computation.
    pub compute_s: f64,
    /// Seconds attributed to data movement.
    pub comm_s: f64,
    /// Total seconds.
    pub total_s: f64,
}

impl BreakdownSeconds {
    /// Fraction of time spent moving data (Table 3's percentage column).
    pub fn comm_fraction(&self) -> f64 {
        if self.total_s > 0.0 {
            self.comm_s / self.total_s
        } else {
            0.0
        }
    }
}

/// Analytic per-PE cycle counts of the TPFA program, derived from the
/// kernel structure and *verified against the simulator's measured
/// counters* (see the crate tests and `bench`): per Z cell the kernel runs
/// 13 vector instructions per face × 10 faces, the EOS costs 4
/// cycles/element over `nz + 2` ghosted elements, and communication moves
/// 16 wavelets out and 16 in per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TpfaCycleModel {
    /// Column height.
    pub nz: usize,
}

impl TpfaCycleModel {
    /// Model for a column of `nz` cells.
    pub fn new(nz: usize) -> Self {
        assert!(nz >= 1);
        Self { nz }
    }

    /// Compute cycles per iteration on an interior PE (raw instruction
    /// issue; divide by the SIMD width for wall-cycles).
    pub fn compute_cycles(&self) -> u64 {
        (13 * 10 * self.nz + 4 * (self.nz + 2)) as u64
    }

    /// Communication cycles per iteration on an interior PE.
    pub fn comm_cycles(&self) -> u64 {
        (16 * self.nz + 16 * self.nz) as u64
    }

    /// Total per-iteration cycles.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles() + self.comm_cycles()
    }

    /// Fraction of time in data movement (Table 3's split).
    pub fn comm_fraction(&self) -> f64 {
        self.comm_cycles() as f64 / self.total_cycles() as f64
    }

    /// FLOPs per cell (Table 4: 140).
    pub fn flops_per_cell(&self) -> u64 {
        140
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_published_hardware() {
        let m = Cs2Model::default();
        assert_eq!(m.num_pes(), 745_500);
        // peak ≈ 2.53 PFLOP/s at f32 (2 lanes × FMA)
        assert!((m.peak_flops() / 1e15 - 2.535).abs() < 0.01);
        assert_eq!(m.power_watts, 23.0e3);
        // the flux kernel must sit below both of its ceilings: memory ridge
        // above its memory AI (bandwidth-bound), fabric ridge below its
        // fabric AI (compute-bound) — the paper's Figure 8 placements.
        let mem_ridge = m.peak_flops() / m.memory_bandwidth();
        let fab_ridge = m.peak_flops() / m.fabric_bandwidth();
        assert!(mem_ridge > 0.0862, "memory: bandwidth-bound");
        assert!(fab_ridge < 2.1875, "fabric: compute-bound");
    }

    #[test]
    fn weak_scaling_is_near_perfect() {
        // Time depends on Nz and the wavefront, not on the cell count:
        // growing the fabric from 200×200 to 750×950 changes wall-clock by
        // under 2 % (the paper's Table 2 shows 0.0813 → 0.0823, 1.2 %).
        let cycles = TpfaCycleModel::new(246).total_cycles() as f64 / 2.0;
        let small = Cs2Model {
            fabric_cols: 200,
            fabric_rows: 200,
            ..Cs2Model::default()
        };
        let large = Cs2Model {
            fabric_cols: 750,
            fabric_rows: 950,
            ..Cs2Model::default()
        };
        let t_small = small.time_seconds(cycles, 1000);
        let t_large = large.time_seconds(cycles, 1000);
        let growth = t_large / t_small - 1.0;
        assert!(growth > 0.0, "larger fabric is slightly slower");
        // cells grew 17.8×; time must grow by only a few percent
        assert!(growth < 0.08, "growth {growth} must stay tiny");
    }

    #[test]
    fn full_scale_time_matches_papers_order_of_magnitude() {
        // Paper Table 1: 0.0823 s for 1000 applications at 750×994×246. Our
        // first-principles model must land in the same decade (the paper's
        // binary includes task-dispatch overheads we do not model).
        let m = Cs2Model::default();
        let cyc = TpfaCycleModel::new(246);
        let t = m.time_seconds(cyc.total_cycles() as f64 / m.simd_width, 1000);
        assert!(t > 0.01 && t < 0.3, "modeled CS-2 time {t} s");
    }

    #[test]
    fn comm_fraction_matches_table_3_shape() {
        // Paper Table 3: 24.18 % data movement. Our count-based split gives
        // 32/(32+134) ≈ 19 % — same minority-communication shape.
        let f = TpfaCycleModel::new(246).comm_fraction();
        assert!(f > 0.10 && f < 0.35, "comm fraction {f}");
    }

    #[test]
    fn throughput_metric() {
        let m = Cs2Model::default();
        let g = m.throughput_gcell_per_s(183_393_000, 0.0823, 1000);
        // paper Table 2 reports 2227.38 Gcell/s for this row
        assert!((g - 2228.4).abs() < 10.0, "throughput {g}");
    }

    #[test]
    fn time_from_counters_extrapolates_linearly() {
        let m = Cs2Model::default();
        let c = OpCounters {
            compute_cycles: 10_000,
            comm_cycles: 2_000,
            ..OpCounters::default()
        };
        let t1 = m.time_from_counters(&c, 4, 1000);
        let t2 = m.time_from_counters(&c, 4, 2000);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_from_cycles_is_consistent_with_time_from_counters() {
        let m = Cs2Model::default();
        let c = OpCounters {
            compute_cycles: 10_000,
            comm_cycles: 2_000,
            ..OpCounters::default()
        };
        let b = m.breakdown_from_cycles(c.compute_cycles, c.comm_cycles, 4, 1000);
        let t = m.time_from_counters(&c, 4, 1000);
        assert!(
            (b.total_s - t).abs() < 1e-15,
            "same total as the counter path"
        );
        assert!((b.compute_s + b.comm_s - b.total_s).abs() < 1e-15);
        assert!(b.comm_fraction() > 0.0 && b.comm_fraction() < 1.0);
    }

    #[test]
    fn analytic_counts_scale_with_nz() {
        let a = TpfaCycleModel::new(100);
        let b = TpfaCycleModel::new(200);
        assert!(b.compute_cycles() > 2 * a.compute_cycles() - 100);
        assert_eq!(b.comm_cycles(), 2 * a.comm_cycles());
        assert_eq!(a.flops_per_cell(), 140);
    }
}
