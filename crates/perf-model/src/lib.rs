//! # perf-model — machine models for the paper's full-scale evaluation
//!
//! The functional simulators (`wse-sim`, `gpu-ref`) execute the kernels at
//! laboratory scale and *measure* per-cell instruction and traffic counts.
//! This crate turns those counts into the full-scale wall-clock, roofline
//! and energy numbers of the paper's evaluation (750 × 994 × 246 cells —
//! 183 M cells that no CI machine can hold functionally):
//!
//! * [`cs2`] — the CS-2 timing model: per-PE cycle counts × the WSE-2
//!   clock, plus a launch-wavefront term; reproduces Tables 1–3's CS-2
//!   columns and the near-perfect weak scaling;
//! * [`a100`] — the A100 timing model: a bandwidth-bound roofline over HBM
//!   traffic per cell; reproduces Tables 1–2's GPU columns;
//! * [`roofline`] — generic roofline construction (Figure 8, both panels);
//! * [`energy`] — steady-state power × time → GFLOP/W (§7.2's 13.67
//!   GFLOP/W and 2.2× energy-efficiency claims).
//!
//! Every hardware constant is a documented public parameter with the
//! published value as default; nothing is asserted about *our* kernels that
//! is not measured by the simulators first.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod a100;
pub mod cs2;
pub mod energy;
pub mod roofline;

pub use a100::A100Model;
pub use cs2::{BreakdownSeconds, Cs2Model, TpfaCycleModel};
pub use energy::EnergyModel;
pub use roofline::{Roofline, RooflinePoint};
