//! Roofline model construction (paper §7.3, Figure 8).
//!
//! "The Roofline model provides a visual representation of a code's
//! performance with relative to a machine's peak performance." Figure 8
//! has two panels: the CS-2 (with *two* bandwidth ceilings — PE memory and
//! fabric) and the A100 (HBM ceiling). This module produces the ceilings
//! and the kernel dots; the `bench` crate prints them as plot-ready series.

use serde::{Deserialize, Serialize};

/// One bandwidth ceiling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthCeiling {
    /// Label ("memory", "fabric", "HBM").
    pub label: String,
    /// Bandwidth [B/s].
    pub bytes_per_s: f64,
}

/// A machine roofline: one compute ceiling, one or more bandwidth slopes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Machine name for the figure.
    pub machine: String,
    /// Peak compute [FLOP/s].
    pub peak_flops: f64,
    /// Bandwidth ceilings.
    pub bandwidths: Vec<BandwidthCeiling>,
}

/// A kernel placed on a roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Label ("FV flux (memory)", …).
    pub label: String,
    /// Arithmetic intensity [FLOP/B] with respect to one ceiling.
    pub intensity: f64,
    /// Achieved performance [FLOP/s].
    pub achieved_flops: f64,
    /// Which ceiling the intensity refers to.
    pub ceiling: String,
}

impl Roofline {
    /// Builds a roofline.
    pub fn new(machine: impl Into<String>, peak_flops: f64) -> Self {
        assert!(peak_flops > 0.0);
        Self {
            machine: machine.into(),
            peak_flops,
            bandwidths: Vec::new(),
        }
    }

    /// Adds a bandwidth ceiling.
    pub fn with_bandwidth(mut self, label: impl Into<String>, bytes_per_s: f64) -> Self {
        assert!(bytes_per_s > 0.0);
        self.bandwidths.push(BandwidthCeiling {
            label: label.into(),
            bytes_per_s,
        });
        self
    }

    /// Attainable FLOP/s at arithmetic intensity `ai` under the ceiling
    /// named `label` (plus the compute roof).
    pub fn attainable(&self, label: &str, ai: f64) -> f64 {
        let bw = self
            .bandwidths
            .iter()
            .find(|b| b.label == label)
            .unwrap_or_else(|| panic!("no ceiling named {label}"))
            .bytes_per_s;
        (ai * bw).min(self.peak_flops)
    }

    /// The ridge intensity of a ceiling: where the slope meets the roof.
    pub fn ridge(&self, label: &str) -> f64 {
        let bw = self
            .bandwidths
            .iter()
            .find(|b| b.label == label)
            .unwrap_or_else(|| panic!("no ceiling named {label}"))
            .bytes_per_s;
        self.peak_flops / bw
    }

    /// True if a kernel at `ai` under `label` is bandwidth-bound.
    pub fn is_bandwidth_bound(&self, label: &str, ai: f64) -> bool {
        ai < self.ridge(label)
    }

    /// Fraction of the attainable roof a kernel achieves.
    pub fn efficiency(&self, point: &RooflinePoint) -> f64 {
        point.achieved_flops / self.attainable(&point.ceiling, point.intensity)
    }

    /// Log-spaced `(ai, attainable)` series for plotting one ceiling, from
    /// `ai_min` to `ai_max` with `n` samples.
    pub fn series(&self, label: &str, ai_min: f64, ai_max: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(ai_min > 0.0 && ai_max > ai_min && n >= 2);
        let l0 = ai_min.ln();
        let l1 = ai_max.ln();
        (0..n)
            .map(|i| {
                let ai = (l0 + (l1 - l0) * i as f64 / (n - 1) as f64).exp();
                (ai, self.attainable(label, ai))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs2() -> Roofline {
        // defaults from Cs2Model: 745500 PEs × 850 MHz, 2 lanes × FMA peak,
        // 24 B/cycle memory port, 4 B/cycle fabric port
        let pes = 745_500.0 * 850.0e6;
        Roofline::new("CS-2", pes * 4.0)
            .with_bandwidth("memory", pes * 24.0)
            .with_bandwidth("fabric", pes * 4.0)
    }

    #[test]
    fn cs2_flux_kernel_is_memory_bound_and_fabric_compute_bound() {
        // Paper §7.3: "Our dataflow implementation is bandwidth-bound for
        // memory access and compute-bound for fabric access."
        let r = cs2();
        assert!(r.is_bandwidth_bound("memory", 0.0862));
        assert!(!r.is_bandwidth_bound("fabric", 2.1875));
    }

    #[test]
    fn attainable_clamps_to_peak() {
        let r = cs2();
        assert_eq!(r.attainable("fabric", 1000.0), r.peak_flops);
        let low = r.attainable("memory", 0.01);
        assert!(low < r.peak_flops);
        assert!((low - 0.01 * 745_500.0 * 850.0e6 * 24.0).abs() < 1.0);
    }

    #[test]
    fn ridge_separates_regimes() {
        let r = cs2();
        let ridge = r.ridge("memory");
        assert!(r.is_bandwidth_bound("memory", ridge * 0.99));
        assert!(!r.is_bandwidth_bound("memory", ridge * 1.01));
    }

    #[test]
    fn efficiency_of_a_point() {
        let r = Roofline::new("toy", 100.0).with_bandwidth("mem", 10.0);
        let p = RooflinePoint {
            label: "k".into(),
            intensity: 2.0,
            achieved_flops: 15.0,
            ceiling: "mem".into(),
        };
        assert!((r.efficiency(&p) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn series_is_monotonic_and_log_spaced() {
        let r = cs2();
        let s = r.series("memory", 0.01, 100.0, 20);
        assert_eq!(s.len(), 20);
        assert!((s[0].0 - 0.01).abs() < 1e-12);
        assert!((s[19].0 - 100.0).abs() < 1e-9);
        for w in s.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    #[should_panic]
    fn unknown_ceiling_panics() {
        let _ = cs2().attainable("l2", 1.0);
    }
}
