//! # fv-core — finite-volume substrate for compressible single-phase Darcy flow
//!
//! This crate implements the physics and numerics that the paper
//! *"Massively Distributed Finite-Volume Flux Computation"* (SC 2023) builds
//! on: a 3D Cartesian mesh, Two-Point Flux Approximation (TPFA)
//! transmissibilities, a slightly-compressible equation of state, single-point
//! upwinding, and the cell-based flux/residual assembly of the paper's
//! Algorithm 1. It also provides the implicit (backward-Euler) residual of the
//! paper's Eq. (2), a matrix-free flux operator, and Krylov/Newton solvers —
//! the extension sketched in the paper's §8 ("Discussions").
//!
//! The serial kernels in [`residual`] are the *ground truth* against which the
//! dataflow implementation (`tpfa-dataflow` on `wse-sim`) and the GPU-style
//! reference implementations (`gpu-ref`) are validated.
//!
//! ## Governing equations (paper §3)
//!
//! Darcy's law and mass balance:
//!
//! ```text
//! u = -(κ/μ) (∇p − ρ g)                          (1a)
//! ∂/∂t (φ ρ) + ∇·(ρ u) = 0                       (1b)
//! ```
//!
//! discretized with a low-order FV scheme and backward Euler:
//!
//! ```text
//! V_K (φ_K^{n+1} ρ_K^{n+1} − φ_K^n ρ_K^n)/Δt + Σ_{L∈adj(K)} F_KL^{n+1} = 0   (2)
//! ```
//!
//! with the TPFA + single-point-upwind flux
//!
//! ```text
//! F_KL = Υ_KL · λ_upw · ΔΦ_KL                    (3a)
//! ΔΦ_KL = p_K − p_L + ρ_avg g (z_K − z_L)        (3b, sign-corrected)
//! λ_upw = ρ_K/μ  if ΔΦ_KL > 0 else ρ_L/μ         (4)
//! ρ_K   = ρ_ref exp(c_f (p_K − p_ref))           (5)
//! ```
//!
//! The paper's printed (3b) has `p_L − p_K`, which contradicts its own
//! upwinding rule (4) and mass balance (2); we use the standard
//! outflow-positive convention — see [`flux`] for the full justification.
//! Cell `z` coordinates are *elevations* (increasing upward).
//!
//! ## Quick start
//!
//! ```
//! use fv_core::prelude::*;
//!
//! let mesh = CartesianMesh3::new(Extents::new(8, 8, 4), Spacing::uniform(10.0));
//! let fluid = Fluid::water_like();
//! let perm = PermeabilityField::uniform(&mesh, 1e-13);
//! let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
//! let state = FlowState::hydrostatic(&mesh, &fluid, 20.0e6);
//! let mut residual = vec![0.0_f64; mesh.num_cells()];
//! assemble_flux_residual(&mesh, &fluid, &trans, state.pressure(), &mut residual);
//! // interior fluxes cancel: a uniform-pressure, gravity-free field has zero residual
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]
// Numeric kernels below walk several same-length slices by index; zipped
// iterator chains obscure the stencil structure there.
#![allow(clippy::needless_range_loop)]

pub mod eos;
pub mod fields;
pub mod flux;
pub mod linalg;
pub mod mesh;
pub mod operator;
pub mod real;
pub mod residual;
pub mod solver;
pub mod source;
pub mod state;
pub mod trans;
pub mod twophase;
pub mod umesh;
pub mod validate;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::eos::Fluid;
    pub use crate::fields::{CellField, PermeabilityField};
    pub use crate::flux::{face_flux, FaceFlux};
    pub use crate::mesh::{CartesianMesh3, CellIdx, Extents, Neighbor, Spacing, NEIGHBOR_COUNT};
    pub use crate::operator::FluxOperator;
    pub use crate::real::Real;
    pub use crate::residual::{
        assemble_flux_residual, assemble_flux_residual_facewise, assemble_implicit_residual,
    };
    pub use crate::solver::{cg::ConjugateGradient, newton::NewtonSolver};
    pub use crate::state::FlowState;
    pub use crate::trans::{StencilKind, Transmissibilities};
}

pub use prelude::*;
