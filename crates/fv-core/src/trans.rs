//! TPFA transmissibilities `Υ_KL` (paper Eq. 3a).
//!
//! The transmissibility is "a coefficient accounting for the geometry of the
//! cells and their permeability". We use the standard two-point construction:
//! the harmonic mean of the two half-cell transmissibilities
//! `α_K = κ_K · A / (d/2)` across each face.
//!
//! For the four in-plane **diagonal** connections the paper computes real
//! fluxes too ("to prepare the communication pattern for either
//! higher-accuracy schemes or more intricate meshes") without specifying
//! their geometric coefficient; we use the same harmonic construction with
//! the center-to-center diagonal distance and an effective face area scaled
//! by a configurable `diagonal_weight` (default ¼ — small enough to act as a
//! stencil-enrichment correction, large enough to exercise the code path).

use crate::fields::PermeabilityField;
use crate::mesh::{CartesianMesh3, Neighbor, ALL_NEIGHBORS, NEIGHBOR_COUNT};
use crate::real::Real;
use serde::{Deserialize, Serialize};

/// Which connections carry a (nonzero) transmissibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StencilKind {
    /// Only the six cardinal faces (the classic 7-point TPFA stencil).
    /// Diagonal slots are present but zero, so kernels always run the
    /// 10-face loop — exactly what the paper's comm-pattern needs.
    Cardinal,
    /// All ten faces, diagonals included (the paper's configuration).
    TenPoint,
}

/// Default effective-area weight for diagonal connections.
pub const DEFAULT_DIAGONAL_WEIGHT: f64 = 0.25;

/// Per-cell transmissibilities for all ten faces, stored contiguously:
/// `t[cell * 10 + face]` with `face` in canonical [`Neighbor`] order.
/// Boundary faces hold `0` (no-flow), so kernels need no branch.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmissibilities {
    values: Vec<f64>,
    kind: StencilKind,
}

impl Transmissibilities {
    /// Builds TPFA transmissibilities for `mesh` and permeability `perm`.
    pub fn tpfa(mesh: &CartesianMesh3, perm: &PermeabilityField, kind: StencilKind) -> Self {
        Self::tpfa_with_diagonal_weight(mesh, perm, kind, DEFAULT_DIAGONAL_WEIGHT)
    }

    /// As [`Transmissibilities::tpfa`] with an explicit diagonal area weight.
    pub fn tpfa_with_diagonal_weight(
        mesh: &CartesianMesh3,
        perm: &PermeabilityField,
        kind: StencilKind,
        diagonal_weight: f64,
    ) -> Self {
        assert!(diagonal_weight >= 0.0);
        let s = mesh.spacing();
        let mut values = vec![0.0; mesh.num_cells() * NEIGHBOR_COUNT];
        for (i, c) in mesh.cells() {
            for nb in ALL_NEIGHBORS {
                if nb.is_diagonal() && kind == StencilKind::Cardinal {
                    continue;
                }
                let Some(l) = mesh.neighbor(c, nb) else {
                    continue; // no-flow boundary: stays 0
                };
                let j = mesh.linear_idx(l);
                // Face geometry: area and center-to-center distance.
                let (area, dist) = match nb {
                    Neighbor::East | Neighbor::West => (s.dy * s.dz, s.dx),
                    Neighbor::North | Neighbor::South => (s.dx * s.dz, s.dy),
                    Neighbor::Up | Neighbor::Down => (s.dx * s.dy, s.dz),
                    _ => {
                        let d = (s.dx * s.dx + s.dy * s.dy).sqrt();
                        ((s.dx * s.dy).sqrt() * s.dz * diagonal_weight, d)
                    }
                };
                let half = |kappa: f64| kappa * area / (0.5 * dist);
                let a_k = half(perm.kappa(i));
                let a_l = half(perm.kappa(j));
                values[i * NEIGHBOR_COUNT + nb.face_index()] = harmonic(a_k, a_l);
            }
        }
        Self { values, kind }
    }

    /// Transmissibility of cell `idx`'s face `nb` (0 on boundaries and on
    /// diagonal faces of a [`StencilKind::Cardinal`] stencil).
    #[inline]
    pub fn t(&self, idx: usize, nb: Neighbor) -> f64 {
        self.values[idx * NEIGHBOR_COUNT + nb.face_index()]
    }

    /// All ten transmissibilities of cell `idx` in canonical face order.
    #[inline]
    pub fn cell(&self, idx: usize) -> &[f64] {
        &self.values[idx * NEIGHBOR_COUNT..(idx + 1) * NEIGHBOR_COUNT]
    }

    /// The stencil kind this set was built with.
    #[inline]
    pub fn kind(&self) -> StencilKind {
        self.kind
    }

    /// Raw contiguous storage (`num_cells × 10`).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Copy of the storage cast to working precision `R` — the layout the
    /// flat-array GPU kernels and the fabric loader consume.
    pub fn to_vec_cast<R: Real>(&self) -> Vec<R> {
        self.values.iter().map(|&v| R::from_f64(v)).collect()
    }
}

/// Harmonic mean of two half-transmissibilities: `ab/(a+b)`, 0 if either is 0.
#[inline]
pub fn harmonic(a: f64, b: f64) -> f64 {
    if a + b == 0.0 {
        0.0
    } else {
        a * b / (a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{CellIdx, Extents, Spacing};

    fn mesh() -> CartesianMesh3 {
        CartesianMesh3::new(Extents::new(4, 4, 3), Spacing::new(1.0, 2.0, 4.0))
    }

    #[test]
    fn symmetric_across_each_face() {
        let m = mesh();
        let k = PermeabilityField::log_normal(&m, 1e-13, 0.4, 11);
        let t = Transmissibilities::tpfa(&m, &k, StencilKind::TenPoint);
        for (i, c) in m.cells() {
            for nb in ALL_NEIGHBORS {
                if let Some(l) = m.neighbor(c, nb) {
                    let j = m.linear_idx(l);
                    let forward = t.t(i, nb);
                    let backward = t.t(j, nb.opposite());
                    assert!(
                        (forward - backward).abs() <= 1e-15 * forward.abs().max(1.0),
                        "Υ_KL must equal Υ_LK"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_faces_are_zero() {
        let m = mesh();
        let k = PermeabilityField::uniform(&m, 1e-12);
        let t = Transmissibilities::tpfa(&m, &k, StencilKind::TenPoint);
        let corner = m.linear(0, 0, 0);
        assert_eq!(t.t(corner, Neighbor::West), 0.0);
        assert_eq!(t.t(corner, Neighbor::North), 0.0);
        assert_eq!(t.t(corner, Neighbor::Down), 0.0);
        assert_eq!(t.t(corner, Neighbor::NorthWest), 0.0);
        assert!(t.t(corner, Neighbor::East) > 0.0);
    }

    #[test]
    fn homogeneous_cardinal_value_matches_hand_computation() {
        let m = mesh();
        let kappa = 2e-13;
        let k = PermeabilityField::uniform(&m, kappa);
        let t = Transmissibilities::tpfa(&m, &k, StencilKind::TenPoint);
        let i = m.linear(1, 1, 1);
        // East face: area dy*dz = 8, distance dx = 1; half = κ*8/0.5 = 16κ;
        // harmonic of equal halves = half/2 = 8κ.
        let expect = 8.0 * kappa;
        assert!((t.t(i, Neighbor::East) - expect).abs() < 1e-25);
        // Up face: area dx*dy = 2, distance dz = 4; half = κ*2/2 = κ; harm = κ/2.
        assert!((t.t(i, Neighbor::Up) - 0.5 * kappa).abs() < 1e-25);
    }

    #[test]
    fn cardinal_stencil_zeroes_diagonals() {
        let m = mesh();
        let k = PermeabilityField::uniform(&m, 1e-12);
        let t = Transmissibilities::tpfa(&m, &k, StencilKind::Cardinal);
        let i = m.linear(1, 1, 1);
        for nb in ALL_NEIGHBORS {
            if nb.is_diagonal() {
                assert_eq!(t.t(i, nb), 0.0);
            } else {
                assert!(t.t(i, nb) > 0.0);
            }
        }
        assert_eq!(t.kind(), StencilKind::Cardinal);
    }

    #[test]
    fn ten_point_has_positive_diagonals_in_interior() {
        let m = mesh();
        let k = PermeabilityField::uniform(&m, 1e-12);
        let t = Transmissibilities::tpfa(&m, &k, StencilKind::TenPoint);
        let i = m.linear(1, 1, 1);
        for nb in ALL_NEIGHBORS {
            assert!(t.t(i, nb) > 0.0, "{nb:?} should be interior");
        }
    }

    #[test]
    fn zero_diagonal_weight_matches_cardinal_on_diagonals() {
        let m = mesh();
        let k = PermeabilityField::uniform(&m, 1e-12);
        let t = Transmissibilities::tpfa_with_diagonal_weight(&m, &k, StencilKind::TenPoint, 0.0);
        let i = m.linear(1, 1, 1);
        assert_eq!(t.t(i, Neighbor::NorthEast), 0.0);
    }

    #[test]
    fn harmonic_mean_properties() {
        assert_eq!(harmonic(0.0, 0.0), 0.0);
        assert_eq!(harmonic(2.0, 2.0), 1.0);
        assert!((harmonic(1.0, 3.0) - 0.75).abs() < 1e-15);
        // dominated by the smaller value
        assert!(harmonic(1e-20, 1.0) < 2e-20);
    }

    #[test]
    fn heterogeneity_reduces_transmissibility_below_arithmetic_mean() {
        let m = mesh();
        let k = PermeabilityField::layered(&m, &[1e-12, 1e-15]);
        let t = Transmissibilities::tpfa(&m, &k, StencilKind::TenPoint);
        let i = m.linear(1, 1, 0);
        let up = t.t(i, Neighbor::Up);
        // harmonic mean across the layer interface must be < arithmetic mean
        let s = m.spacing();
        let area = s.dx * s.dy;
        let half = |kappa: f64| kappa * area / (0.5 * s.dz);
        let arithmetic = 0.5 * (half(1e-12) + half(1e-15)) / 2.0;
        assert!(up < arithmetic);
    }

    #[test]
    fn cast_preserves_layout() {
        let m = mesh();
        let k = PermeabilityField::uniform(&m, 1e-12);
        let t = Transmissibilities::tpfa(&m, &k, StencilKind::TenPoint);
        let f32s: Vec<f32> = t.to_vec_cast();
        assert_eq!(f32s.len(), m.num_cells() * NEIGHBOR_COUNT);
        let i = m.linear(2, 2, 1);
        for nb in ALL_NEIGHBORS {
            assert_eq!(
                f32s[i * NEIGHBOR_COUNT + nb.face_index()],
                t.t(i, nb) as f32
            );
        }
        let _ = CellIdx::new(0, 0, 0);
    }
}
