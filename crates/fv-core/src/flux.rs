//! The TPFA face flux (paper Eqs. 3–4) — the inner kernel of the whole work.
//!
//! This module transcribes the paper's discrete flux:
//!
//! ```text
//! F_KL  = Υ_KL · λ_upw · ΔΦ_KL                   (3a)
//! ΔΦ_KL = p_K − p_L + ρ_avg · g · (z_K − z_L)    (3b, sign-corrected)
//! λ_upw = ρ_K/μ  if ΔΦ_KL > 0, else ρ_L/μ        (4)
//! ```
//!
//! **Sign note.** The paper's Eq. (3b) prints `ΔΦ = p_L − p_K + ρ g (z_L −
//! z_K)`, but its Eq. (4) upwinds on `ρ_K` when `ΔΦ > 0` and its Eq. (2)
//! adds `+Σ F_KL` to the accumulation term — both of which are only
//! physically consistent (upstream mobility, mass conserved, diffusion
//! dissipative) if `ΔΦ` is the *K-to-L* driving force. We therefore use the
//! standard outflow-positive convention above (the one reference simulators
//! like GEOS use) and treat the printed (3b) as a sign typo. The operation
//! count is unchanged.
//!
//! Every implementation in the workspace — the serial reference below, the
//! RAJA-like and CUDA-like GPU models, and the DSD-vectorized fabric kernel —
//! computes **exactly this expression**, so they can be cross-validated
//! bit-for-bit at equal precision.
//!
//! Operation count: one face flux costs 14 FLOPs in the fabric decomposition
//! of the paper's Table 4 (6 FMUL + 4 FSUB + 1 FADD + 1 FMA + 1 FNEG, with
//! FMA counting 2). The scalar form below is algebraically identical; the
//! instruction-exact decomposition lives in the fabric kernel where it is
//! *measured*, not assumed.

use crate::eos::Fluid;
use crate::real::Real;

/// Result of one face-flux evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaceFlux<R> {
    /// The mass flux `F_KL` (positive = residual contribution to cell K).
    pub flux: R,
    /// The potential difference `ΔΦ_KL` (useful for upwind diagnostics).
    pub pot_diff: R,
}

/// Evaluates the TPFA face flux `F_KL` between cells K and L.
///
/// * `trans` — transmissibility `Υ_KL`
/// * `p_k`, `p_l` — cell pressures
/// * `rho_k`, `rho_l` — cell densities (already evaluated via Eq. 5)
/// * `g_dz` — `g · (z_K − z_L)`, the gravity head between cell centers
///   (z is elevation, increasing upward)
/// * `inv_mu` — `1/μ` (the paper's viscosity is constant; its reciprocal is
///   precomputed so the kernel multiplies instead of divides, exactly as the
///   fabric implementation does)
#[inline(always)]
pub fn face_flux<R: Real>(
    trans: R,
    p_k: R,
    p_l: R,
    rho_k: R,
    rho_l: R,
    g_dz: R,
    inv_mu: R,
) -> FaceFlux<R> {
    let rho_avg = (rho_k + rho_l) * R::HALF;
    let pot_diff = (p_k - p_l) + rho_avg * g_dz;
    let rho_upw = if pot_diff > R::ZERO { rho_k } else { rho_l };
    let lambda = rho_upw * inv_mu;
    FaceFlux {
        flux: trans * lambda * pot_diff,
        pot_diff,
    }
}

/// Convenience wrapper evaluating densities from pressures via the EOS
/// (Eq. 5) before calling [`face_flux`] — matches Algorithm 1 line
/// "Evaluate densities in K and L using Eq. 5".
#[inline]
pub fn face_flux_from_pressure<R: Real>(
    fluid: &Fluid,
    trans: R,
    p_k: R,
    p_l: R,
    g_dz: R,
) -> FaceFlux<R> {
    let rho_k = fluid.density(p_k);
    let rho_l = fluid.density(p_l);
    let inv_mu = R::ONE / R::from_f64(fluid.viscosity);
    face_flux(trans, p_k, p_l, rho_k, rho_l, g_dz, inv_mu)
}

/// Analytic partial derivatives of `F_KL` with respect to `p_K` and `p_L`,
/// holding the upwind direction fixed (the standard "frozen upwind" Jacobian
/// used by implicit FV simulators). Powers the Newton solver (paper §8
/// extension: matrix-free implicit operator).
#[inline]
pub fn face_flux_derivatives<R: Real>(
    fluid: &Fluid,
    trans: R,
    p_k: R,
    p_l: R,
    g_dz: R,
) -> (R, R, R) {
    let rho_k = fluid.density(p_k);
    let rho_l = fluid.density(p_l);
    let drho_k = fluid.d_density_dp(p_k);
    let drho_l = fluid.d_density_dp(p_l);
    let inv_mu = R::ONE / R::from_f64(fluid.viscosity);

    let rho_avg = (rho_k + rho_l) * R::HALF;
    let pot_diff = (p_k - p_l) + rho_avg * g_dz;
    let upwind_k = pot_diff > R::ZERO;
    let rho_upw = if upwind_k { rho_k } else { rho_l };
    let lambda = rho_upw * inv_mu;
    let flux = trans * lambda * pot_diff;

    // dΔΦ/dp_K = 1 + ½ dρ_K/dp · g·dz ;  dΔΦ/dp_L = −1 + ½ dρ_L/dp · g·dz
    let dphi_dpk = R::ONE + R::HALF * drho_k * g_dz;
    let dphi_dpl = -R::ONE + R::HALF * drho_l * g_dz;
    // dλ/dp upwind-sided
    let (dlam_dpk, dlam_dpl) = if upwind_k {
        (drho_k * inv_mu, R::ZERO)
    } else {
        (R::ZERO, drho_l * inv_mu)
    };
    let df_dpk = trans * (dlam_dpk * pot_diff + lambda * dphi_dpk);
    let df_dpl = trans * (dlam_dpl * pot_diff + lambda * dphi_dpl);
    (flux, df_dpk, df_dpl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fluid() -> Fluid {
        Fluid::water_like()
    }

    #[test]
    fn zero_pressure_difference_no_gravity_gives_zero_flux() {
        let f = face_flux_from_pressure(&fluid(), 1.0e-12_f64, 10.0e6, 10.0e6, 0.0);
        assert_eq!(f.flux, 0.0);
        assert_eq!(f.pot_diff, 0.0);
    }

    #[test]
    fn flux_is_antisymmetric() {
        // F_KL == −F_LK: swap (p_k, rho_k) with (p_l, rho_l) and negate g·dz.
        let fl = fluid();
        let (pk, pl) = (10.0e6_f64, 11.0e6);
        let gdz = fl.gravity * 5.0;
        let fwd = face_flux_from_pressure(&fl, 2e-12, pk, pl, gdz);
        let bwd = face_flux_from_pressure(&fl, 2e-12, pl, pk, -gdz);
        assert!(
            (fwd.flux + bwd.flux).abs() <= 1e-12 * fwd.flux.abs().max(1.0),
            "fwd={} bwd={}",
            fwd.flux,
            bwd.flux
        );
    }

    #[test]
    fn upwind_density_follows_potential_sign() {
        let fl = fluid().without_gravity();
        let inv_mu = 1.0 / fl.viscosity;
        let (rho_k, rho_l) = (900.0_f64, 1100.0);
        // ΔΦ = p_k − p_l > 0 → flow K→L → upwind is K → ρ_K
        let f = face_flux(1.0, 2.0e6, 1.0e6, rho_k, rho_l, 0.0, inv_mu);
        assert!((f.flux - 1.0 * rho_k * inv_mu * 1.0e6).abs() < 1e-3);
        // ΔΦ < 0 → flow L→K → upwind is L → ρ_L
        let g = face_flux(1.0, 1.0e6, 2.0e6, rho_k, rho_l, 0.0, inv_mu);
        assert!((g.flux - 1.0 * rho_l * inv_mu * (-1.0e6)).abs() < 1e-3);
    }

    #[test]
    fn flux_scales_linearly_with_transmissibility() {
        let fl = fluid();
        let a = face_flux_from_pressure(&fl, 1e-12_f64, 10.0e6, 12.0e6, 0.0);
        let b = face_flux_from_pressure(&fl, 3e-12_f64, 10.0e6, 12.0e6, 0.0);
        assert!((b.flux / a.flux - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gravity_head_enters_potential() {
        let fl = fluid();
        // equal pressures, cells stacked vertically: ΔΦ = ρ_avg g dz ≠ 0
        let gdz = fl.gravity * 10.0; // z_L − z_K = 10 m
        let f = face_flux_from_pressure(&fl, 1e-12_f64, 10.0e6, 10.0e6, gdz);
        assert!(f.pot_diff > 0.0);
        assert!(f.flux > 0.0);
    }

    #[test]
    fn zero_transmissibility_means_no_flow() {
        let f = face_flux_from_pressure(&fluid(), 0.0_f64, 1.0e6, 9.0e6, 3.0);
        assert_eq!(f.flux, 0.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let fl = Fluid::co2_like();
        let (pk, pl) = (15.0e6_f64, 15.4e6);
        let gdz = fl.gravity * -3.0;
        let t = 2.5e-12;
        let (f0, dfk, dfl) = face_flux_derivatives(&fl, t, pk, pl, gdz);
        assert_eq!(f0, face_flux_from_pressure(&fl, t, pk, pl, gdz).flux);
        let h = 10.0; // Pa
        let f_pk = face_flux_from_pressure(&fl, t, pk + h, pl, gdz).flux;
        let f_mk = face_flux_from_pressure(&fl, t, pk - h, pl, gdz).flux;
        let fd_k = (f_pk - f_mk) / (2.0 * h);
        assert!(
            (fd_k - dfk).abs() / dfk.abs().max(1e-30) < 1e-5,
            "{fd_k} vs {dfk}"
        );
        let f_pl = face_flux_from_pressure(&fl, t, pk, pl + h, gdz).flux;
        let f_ml = face_flux_from_pressure(&fl, t, pk, pl - h, gdz).flux;
        let fd_l = (f_pl - f_ml) / (2.0 * h);
        assert!(
            (fd_l - dfl).abs() / dfl.abs().max(1e-30) < 1e-5,
            "{fd_l} vs {dfl}"
        );
    }

    #[test]
    fn f32_matches_f64_to_single_precision() {
        let fl = fluid();
        let f64v = face_flux_from_pressure(&fl, 1e-12_f64, 10.0e6, 10.5e6, fl.gravity * 2.0);
        let f32v = face_flux_from_pressure(
            &fl,
            1e-12_f32,
            10.0e6_f32,
            10.5e6_f32,
            (fl.gravity * 2.0) as f32,
        );
        let rel = ((f32v.flux as f64) - f64v.flux).abs() / f64v.flux.abs();
        assert!(rel < 1e-4, "relative error {rel}");
    }
}
