//! Cross-implementation validation helpers.
//!
//! The paper states "we compare and validate the numerical results produced
//! by the CS-2 to those produced by the reference implementations" (§7.1);
//! these helpers are the workspace's machinery for that comparison.

use crate::real::Real;

/// Maximum absolute element-wise difference.
pub fn max_abs_diff<R: Real>(a: &[R], b: &[R]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x.to_f64() - y.to_f64()).abs())
        .fold(0.0, f64::max)
}

/// Relative L2 difference `‖a − b‖₂ / max(‖a‖₂, ε)`.
pub fn rel_l2_diff<R: Real>(a: &[R], b: &[R]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut num = 0.0_f64;
    let mut den = 0.0_f64;
    for (&x, &y) in a.iter().zip(b) {
        let xf = x.to_f64();
        let yf = y.to_f64();
        num += (xf - yf) * (xf - yf);
        den += xf * xf;
    }
    num.sqrt() / den.sqrt().max(1e-300)
}

/// Mixed-precision comparison: `b` (e.g. `f32` fabric output) against the
/// `f64` reference `a`, normalized by the reference's max magnitude.
pub fn rel_max_diff_vs_reference<R: Real>(reference: &[f64], result: &[R]) -> f64 {
    assert_eq!(reference.len(), result.len(), "length mismatch");
    let scale = reference
        .iter()
        .map(|v| v.abs())
        .fold(0.0_f64, f64::max)
        .max(1e-300);
    reference
        .iter()
        .zip(result)
        .map(|(&r, &x)| (r - x.to_f64()).abs())
        .fold(0.0, f64::max)
        / scale
}

/// Outcome of a validation, with a human-readable summary for the harness
/// binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Validation {
    /// Which comparison this is (e.g. "dataflow vs serial").
    pub label: String,
    /// Relative max-norm difference.
    pub rel_max: f64,
    /// Tolerance used.
    pub tolerance: f64,
}

impl Validation {
    /// Compares `result` against `reference`, recording the outcome.
    pub fn compare<R: Real>(
        label: impl Into<String>,
        reference: &[f64],
        result: &[R],
        tolerance: f64,
    ) -> Self {
        Self {
            label: label.into(),
            rel_max: rel_max_diff_vs_reference(reference, result),
            tolerance,
        }
    }

    /// True if within tolerance.
    pub fn passed(&self) -> bool {
        self.rel_max <= self.tolerance
    }
}

impl std::fmt::Display for Validation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: rel max diff {:.3e} (tol {:.1e}) — {}",
            self.label,
            self.rel_max,
            self.tolerance,
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_zero_diff() {
        let a = [1.0_f64, -2.0, 3.0];
        assert_eq!(max_abs_diff(&a, &a), 0.0);
        assert_eq!(rel_l2_diff(&a, &a), 0.0);
    }

    #[test]
    fn max_abs_diff_finds_worst_element() {
        let a = [1.0_f64, 2.0, 3.0];
        let b = [1.0_f64, 2.5, 3.1];
        assert!((max_abs_diff(&a, &b) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn rel_l2_is_scale_invariant() {
        let a = [1.0_f64, 2.0];
        let b = [1.1_f64, 2.2];
        let a10: Vec<f64> = a.iter().map(|v| v * 10.0).collect();
        let b10: Vec<f64> = b.iter().map(|v| v * 10.0).collect();
        assert!((rel_l2_diff(&a, &b) - rel_l2_diff(&a10, &b10)).abs() < 1e-15);
    }

    #[test]
    fn mixed_precision_comparison() {
        let reference = [1.0e6_f64, -2.0e6, 0.5e6];
        let result: Vec<f32> = reference.iter().map(|&v| v as f32).collect();
        assert!(rel_max_diff_vs_reference(&reference, &result) < 1e-7);
    }

    #[test]
    fn validation_display_and_pass() {
        let v = Validation::compare("x vs y", &[1.0, 2.0], &[1.0_f32, 2.0], 1e-6);
        assert!(v.passed());
        let s = format!("{v}");
        assert!(s.contains("PASS"));
        let w = Validation::compare("x vs y", &[1.0, 2.0], &[1.5_f32, 2.0], 1e-6);
        assert!(!w.passed());
        assert!(format!("{w}").contains("FAIL"));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = max_abs_diff(&[1.0_f64], &[1.0, 2.0]);
    }
}
