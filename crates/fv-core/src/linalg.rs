//! Small dense-vector kernels used by the Krylov and Newton solvers.
//!
//! Kept deliberately allocation-free: every operation writes into
//! caller-provided storage, following the "reuse workhorse buffers" guidance
//! for hot HPC loops.

use crate::real::Real;

/// Dot product `xᵀy`.
#[inline]
pub fn dot<R: Real>(x: &[R], y: &[R]) -> R {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2<R: Real>(x: &[R]) -> R {
    dot(x, x).sqrt()
}

/// Max norm `‖x‖_∞`.
#[inline]
pub fn norm_inf<R: Real>(x: &[R]) -> R {
    x.iter().fold(R::ZERO, |m, &v| m.max(v.abs()))
}

/// `y ← a·x + y`.
#[inline]
pub fn axpy<R: Real>(a: R, x: &[R], y: &mut [R]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y ← x + b·y` (the CG direction update).
#[inline]
pub fn xpby<R: Real>(x: &[R], b: R, y: &mut [R]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi + b * *yi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale<R: Real>(a: R, x: &mut [R]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// `y ← x`.
#[inline]
pub fn copy<R: Real>(x: &[R], y: &mut [R]) {
    debug_assert_eq!(x.len(), y.len());
    y.copy_from_slice(x);
}

/// `x ← 0`.
#[inline]
pub fn zero<R: Real>(x: &mut [R]) {
    for xi in x.iter_mut() {
        *xi = R::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0_f64, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&[1.0_f64, -7.0, 3.0]), 7.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0_f64, 2.0, 3.0];
        let mut y = [10.0_f64, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn xpby_is_cg_direction_update() {
        let r = [1.0_f64, 1.0];
        let mut p = [4.0_f64, 2.0];
        xpby(&r, 0.5, &mut p);
        assert_eq!(p, [3.0, 2.0]);
    }

    #[test]
    fn scale_copy_zero() {
        let mut x = [2.0_f32, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, [1.0, -2.0]);
        let mut y = [0.0_f32; 2];
        copy(&x, &mut y);
        assert_eq!(y, x);
        zero(&mut y);
        assert_eq!(y, [0.0, 0.0]);
    }

    #[test]
    fn empty_vectors_are_fine() {
        let e: [f64; 0] = [];
        assert_eq!(dot(&e, &e), 0.0);
        assert_eq!(norm2(&e), 0.0);
        assert_eq!(norm_inf(&e), 0.0);
    }
}
