//! Serial reference assembly of the flux residual — the paper's Algorithm 1 —
//! plus the full implicit residual of Eq. (2).
//!
//! [`assemble_flux_residual`] is the **ground truth** for the entire
//! workspace: the dataflow implementation and both GPU-style references are
//! validated against it.

use crate::eos::Fluid;
use crate::flux::face_flux;
use crate::mesh::{CartesianMesh3, Neighbor, ALL_NEIGHBORS};
use crate::real::Real;
use crate::source::SourceTerm;
use crate::trans::Transmissibilities;

/// Gravity head `g · (z_K − z_L)` for a given neighbor direction on a uniform
/// grid (z = elevation, increasing upward): `−g·dz` toward the upper
/// neighbor, `+g·dz` toward the lower one, `0` in-plane.
#[inline]
pub fn gravity_head<R: Real>(fluid: &Fluid, mesh: &CartesianMesh3, nb: Neighbor) -> R {
    match nb {
        Neighbor::Up => R::from_f64(-fluid.gravity * mesh.spacing().dz),
        Neighbor::Down => R::from_f64(fluid.gravity * mesh.spacing().dz),
        _ => R::ZERO,
    }
}

/// Algorithm 1, cell-based: sweeps cells in the outer loop and the ten
/// neighbors of each cell in the inner loop, incrementing the local residual
/// `(r_flux)_K += F_KL`. `residual` is zeroed first (the algorithm's
/// `r_flux := 0` line).
pub fn assemble_flux_residual<R: Real>(
    mesh: &CartesianMesh3,
    fluid: &Fluid,
    trans: &Transmissibilities,
    pressure: &[R],
    residual: &mut [R],
) {
    assert_eq!(pressure.len(), mesh.num_cells());
    assert_eq!(residual.len(), mesh.num_cells());
    let inv_mu = R::ONE / R::from_f64(fluid.viscosity);
    residual.iter_mut().for_each(|r| *r = R::ZERO);

    for (i, c) in mesh.cells() {
        let p_k = pressure[i];
        let rho_k = fluid.density(p_k);
        let mut acc = R::ZERO;
        for nb in ALL_NEIGHBORS {
            let Some(l) = mesh.neighbor(c, nb) else {
                continue;
            };
            let j = mesh.linear_idx(l);
            let t = R::from_f64(trans.t(i, nb));
            let p_l = pressure[j];
            let rho_l = fluid.density(p_l);
            let g_dz = gravity_head(fluid, mesh, nb);
            acc += face_flux(t, p_k, p_l, rho_k, rho_l, g_dz, inv_mu).flux;
        }
        residual[i] = acc;
    }
}

/// Algorithm 1, face-based: every interior connection is visited exactly
/// once and scattered to both cells using flux antisymmetry
/// (`F_LK = −F_KL`). Produces the same residual as the cell-based sweep up
/// to floating-point reassociation — a useful independent cross-check of the
/// cell-based kernels (the paper's Figure 3 contrasts the two mappings).
pub fn assemble_flux_residual_facewise<R: Real>(
    mesh: &CartesianMesh3,
    fluid: &Fluid,
    trans: &Transmissibilities,
    pressure: &[R],
    residual: &mut [R],
) {
    assert_eq!(pressure.len(), mesh.num_cells());
    assert_eq!(residual.len(), mesh.num_cells());
    let inv_mu = R::ONE / R::from_f64(fluid.viscosity);
    residual.iter_mut().for_each(|r| *r = R::ZERO);

    // One orientation per connection family.
    const FORWARD: [Neighbor; 5] = [
        Neighbor::East,
        Neighbor::South,
        Neighbor::Up,
        Neighbor::SouthEast,
        Neighbor::NorthEast,
    ];
    for (i, c) in mesh.cells() {
        let p_k = pressure[i];
        let rho_k = fluid.density(p_k);
        for nb in FORWARD {
            let Some(l) = mesh.neighbor(c, nb) else {
                continue;
            };
            let j = mesh.linear_idx(l);
            let t = R::from_f64(trans.t(i, nb));
            let p_l = pressure[j];
            let rho_l = fluid.density(p_l);
            let g_dz = gravity_head(fluid, mesh, nb);
            let f = face_flux(t, p_k, p_l, rho_k, rho_l, g_dz, inv_mu).flux;
            residual[i] += f;
            residual[j] -= f;
        }
    }
}

/// Parameters of the accumulation term of Eq. (2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccumulationParams<R> {
    /// Reference porosity `φ_ref` (uniform).
    pub phi_ref: R,
    /// Rock compressibility `c_r` [1/Pa] in `φ(p) = φ_ref (1 + c_r (p−p_ref))`.
    pub rock_compressibility: R,
    /// Time-step size `Δt` [s].
    pub dt: R,
}

/// Full implicit residual of Eq. (2):
///
/// ```text
/// r_K = V_K (φ_K^{n+1} ρ_K^{n+1} − φ_K^n ρ_K^n)/Δt + Σ_L F_KL^{n+1} − q_K
/// ```
///
/// where `q_K` collects well/source mass rates. The paper's kernel study
/// "neglect[s] the accumulation term"; this full version backs the implicit
/// time-stepping extension (§8) exercised by the CO₂-injection example.
#[allow(clippy::too_many_arguments)]
pub fn assemble_implicit_residual<R: Real>(
    mesh: &CartesianMesh3,
    fluid: &Fluid,
    trans: &Transmissibilities,
    acc: AccumulationParams<R>,
    p_new: &[R],
    p_old: &[R],
    sources: &[SourceTerm],
    residual: &mut [R],
) {
    assemble_flux_residual(mesh, fluid, trans, p_new, residual);
    let vol = R::from_f64(mesh.cell_volume());
    let inv_dt = R::ONE / acc.dt;
    for i in 0..mesh.num_cells() {
        let mass_new = fluid.porosity(acc.phi_ref, acc.rock_compressibility, p_new[i])
            * fluid.density(p_new[i]);
        let mass_old = fluid.porosity(acc.phi_ref, acc.rock_compressibility, p_old[i])
            * fluid.density(p_old[i]);
        residual[i] += vol * (mass_new - mass_old) * inv_dt;
    }
    for s in sources {
        residual[s.cell] -= R::from_f64(s.mass_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::PermeabilityField;
    use crate::mesh::{Extents, Spacing};
    use crate::state::FlowState;
    use crate::trans::StencilKind;

    fn setup() -> (CartesianMesh3, Fluid, Transmissibilities) {
        let mesh = CartesianMesh3::new(Extents::new(5, 4, 3), Spacing::new(2.0, 3.0, 1.5));
        let fluid = Fluid::water_like();
        let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.3, 5);
        let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
        (mesh, fluid, trans)
    }

    #[test]
    fn uniform_pressure_without_gravity_is_equilibrium() {
        let (mesh, fluid, trans) = setup();
        let fluid = fluid.without_gravity();
        let state = FlowState::<f64>::uniform(&mesh, 20.0e6);
        let mut r = vec![0.0; mesh.num_cells()];
        assemble_flux_residual(&mesh, &fluid, &trans, state.pressure(), &mut r);
        assert!(
            r.iter().all(|&v| v == 0.0),
            "uniform field must be stationary"
        );
    }

    #[test]
    fn global_conservation_interior_fluxes_cancel() {
        let (mesh, fluid, trans) = setup();
        let state = FlowState::<f64>::varied(&mesh, 10.0e6, 12.0e6, 3);
        let mut r = vec![0.0; mesh.num_cells()];
        assemble_flux_residual(&mesh, &fluid, &trans, state.pressure(), &mut r);
        let total: f64 = r.iter().sum();
        let scale: f64 = r.iter().map(|v| v.abs()).sum::<f64>().max(1e-30);
        assert!(
            total.abs() / scale < 1e-12,
            "interior fluxes must cancel: total={total}, scale={scale}"
        );
    }

    #[test]
    fn cellwise_and_facewise_agree() {
        let (mesh, fluid, trans) = setup();
        let state = FlowState::<f64>::varied(&mesh, 10.0e6, 12.0e6, 9);
        let mut a = vec![0.0; mesh.num_cells()];
        let mut b = vec![0.0; mesh.num_cells()];
        assemble_flux_residual(&mesh, &fluid, &trans, state.pressure(), &mut a);
        assemble_flux_residual_facewise(&mesh, &fluid, &trans, state.pressure(), &mut b);
        for i in 0..a.len() {
            let tol = 1e-10 * a[i].abs().max(1e-20);
            assert!((a[i] - b[i]).abs() <= tol, "cell {i}: {} vs {}", a[i], b[i]);
        }
    }

    #[test]
    fn pressure_gradient_drives_flow_downhill() {
        // p increases with x; the low-pressure cell receives inflow, which
        // with the outflow-positive convention is a *negative* residual.
        let mesh = CartesianMesh3::new(Extents::new(2, 1, 1), Spacing::uniform(1.0));
        let fluid = Fluid::water_like().without_gravity();
        let perm = PermeabilityField::uniform(&mesh, 1e-12);
        let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
        let p = vec![1.0e6_f64, 2.0e6];
        let mut r = vec![0.0; 2];
        assemble_flux_residual(&mesh, &fluid, &trans, &p, &mut r);
        // For cell 0: ΔΦ = p0 − p1 < 0 → inflow → negative residual.
        assert!(r[0] < 0.0);
        // The high-pressure cell loses mass: positive residual.
        assert!(r[1] > 0.0);
        assert!((r[0] + r[1]).abs() < 1e-12 * r[1].abs());
    }

    #[test]
    fn hydrostatic_state_is_near_equilibrium() {
        let (mesh, fluid, trans) = setup();
        let state = FlowState::<f64>::hydrostatic(&mesh, &fluid, 10.0e6);
        let mut r = vec![0.0; mesh.num_cells()];
        assemble_flux_residual(&mesh, &fluid, &trans, state.pressure(), &mut r);
        // compare to a strongly out-of-equilibrium field
        let pulse = FlowState::<f64>::gaussian_pulse(&mesh, 10.0e6, 1.0e6, 1.5);
        let mut rp = vec![0.0; mesh.num_cells()];
        assemble_flux_residual(&mesh, &fluid, &trans, pulse.pressure(), &mut rp);
        let n = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(
            n(&r) < 1e-3 * n(&rp),
            "hydrostatic residual {} should be tiny vs pulse residual {}",
            n(&r),
            n(&rp)
        );
    }

    #[test]
    fn cardinal_stencil_ignores_diagonal_pressure() {
        // With a Cardinal stencil, changing a diagonal neighbor's pressure
        // must not change a cell's residual.
        let mesh = CartesianMesh3::new(Extents::new(3, 3, 1), Spacing::uniform(1.0));
        let fluid = Fluid::water_like().without_gravity();
        let perm = PermeabilityField::uniform(&mesh, 1e-12);
        let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::Cardinal);
        let center = mesh.linear(1, 1, 0);
        let diag = mesh.linear(0, 0, 0);
        let mut p = vec![1.0e6_f64; mesh.num_cells()];
        let mut r1 = vec![0.0; mesh.num_cells()];
        assemble_flux_residual(&mesh, &fluid, &trans, &p, &mut r1);
        p[diag] = 5.0e6;
        let mut r2 = vec![0.0; mesh.num_cells()];
        assemble_flux_residual(&mesh, &fluid, &trans, &p, &mut r2);
        assert_eq!(r1[center], r2[center]);
    }

    #[test]
    fn ten_point_stencil_sees_diagonal_pressure() {
        let mesh = CartesianMesh3::new(Extents::new(3, 3, 1), Spacing::uniform(1.0));
        let fluid = Fluid::water_like().without_gravity();
        let perm = PermeabilityField::uniform(&mesh, 1e-12);
        let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
        let center = mesh.linear(1, 1, 0);
        let diag = mesh.linear(0, 0, 0);
        let mut p = vec![1.0e6_f64; mesh.num_cells()];
        let mut r1 = vec![0.0; mesh.num_cells()];
        assemble_flux_residual(&mesh, &fluid, &trans, &p, &mut r1);
        p[diag] = 5.0e6;
        let mut r2 = vec![0.0; mesh.num_cells()];
        assemble_flux_residual(&mesh, &fluid, &trans, &p, &mut r2);
        assert_ne!(r1[center], r2[center]);
    }

    #[test]
    fn implicit_residual_reduces_to_flux_when_steady() {
        let (mesh, fluid, trans) = setup();
        let p = FlowState::<f64>::varied(&mesh, 10.0e6, 11.0e6, 1);
        let acc = AccumulationParams {
            phi_ref: 0.2,
            rock_compressibility: 1e-9,
            dt: 86400.0,
        };
        let mut r_imp = vec![0.0; mesh.num_cells()];
        // p_new == p_old → accumulation vanishes
        assemble_implicit_residual(
            &mesh,
            &fluid,
            &trans,
            acc,
            p.pressure(),
            p.pressure(),
            &[],
            &mut r_imp,
        );
        let mut r_flux = vec![0.0; mesh.num_cells()];
        assemble_flux_residual(&mesh, &fluid, &trans, p.pressure(), &mut r_flux);
        for i in 0..r_imp.len() {
            assert_eq!(r_imp[i], r_flux[i]);
        }
    }

    #[test]
    fn accumulation_term_signs() {
        // Pressure rise over the step stores mass: positive accumulation.
        let (mesh, fluid, trans) = setup();
        let fluid = fluid.without_gravity();
        let p_old = FlowState::<f64>::uniform(&mesh, 10.0e6);
        let p_new = FlowState::<f64>::uniform(&mesh, 10.1e6);
        let acc = AccumulationParams {
            phi_ref: 0.2,
            rock_compressibility: 1e-9,
            dt: 3600.0,
        };
        let mut r = vec![0.0; mesh.num_cells()];
        assemble_implicit_residual(
            &mesh,
            &fluid,
            &trans,
            acc,
            p_new.pressure(),
            p_old.pressure(),
            &[],
            &mut r,
        );
        assert!(r.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn sources_subtract_mass_rate() {
        let (mesh, fluid, trans) = setup();
        let fluid = fluid.without_gravity();
        let p = FlowState::<f64>::uniform(&mesh, 10.0e6);
        let acc = AccumulationParams {
            phi_ref: 0.2,
            rock_compressibility: 1e-9,
            dt: 3600.0,
        };
        let src = [SourceTerm {
            cell: 7,
            mass_rate: 2.5,
        }];
        let mut r = vec![0.0; mesh.num_cells()];
        assemble_implicit_residual(
            &mesh,
            &fluid,
            &trans,
            acc,
            p.pressure(),
            p.pressure(),
            &src,
            &mut r,
        );
        assert_eq!(r[7], -2.5);
        assert!(r.iter().enumerate().all(|(i, &v)| i == 7 || v == 0.0));
    }

    #[test]
    fn f32_assembly_tracks_f64_reference() {
        let (mesh, fluid, trans) = setup();
        let s64 = FlowState::<f64>::gaussian_pulse(&mesh, 10.0e6, 1.0e6, 2.0);
        let s32 = FlowState::<f32>::from_pressure(s64.pressure_field().cast());
        let mut r64 = vec![0.0_f64; mesh.num_cells()];
        let mut r32 = vec![0.0_f32; mesh.num_cells()];
        assemble_flux_residual(&mesh, &fluid, &trans, s64.pressure(), &mut r64);
        assemble_flux_residual(&mesh, &fluid, &trans, s32.pressure(), &mut r32);
        let scale = r64.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
        for i in 0..r64.len() {
            assert!(
                (r64[i] - r32[i] as f64).abs() < 2e-3 * scale,
                "cell {i}: f64={} f32={}",
                r64[i],
                r32[i]
            );
        }
    }
}
