//! Fluid equation of state (paper Eq. 5) and mobility.
//!
//! The paper models supercritical CO₂ injection with a *slightly
//! compressible* single-phase fluid: density depends exponentially on
//! pressure, viscosity is constant, porosity depends linearly on pressure.

use crate::real::Real;
use serde::{Deserialize, Serialize};

/// Fluid properties for the slightly-compressible single-phase model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fluid {
    /// Reference density `ρ_ref` [kg/m³].
    pub rho_ref: f64,
    /// Reference pressure `p_ref` [Pa].
    pub p_ref: f64,
    /// Fluid compressibility `c_f` [1/Pa].
    pub compressibility: f64,
    /// Constant dynamic viscosity `μ` [Pa·s].
    pub viscosity: f64,
    /// Gravitational acceleration `g` [m/s²] (signed along +z; the paper's
    /// Eq. 3b multiplies `g (z_L − z_K)`).
    pub gravity: f64,
}

impl Fluid {
    /// Water-like fluid at reservoir conditions — a convenient default for
    /// examples and tests.
    pub fn water_like() -> Self {
        Self {
            rho_ref: 1000.0,
            p_ref: 10.0e6,
            compressibility: 4.5e-10,
            viscosity: 1.0e-3,
            gravity: 9.81,
        }
    }

    /// Supercritical-CO₂-like fluid — the paper's motivating application
    /// (geologic carbon storage).
    pub fn co2_like() -> Self {
        Self {
            rho_ref: 700.0,
            p_ref: 15.0e6,
            compressibility: 1.0e-8,
            viscosity: 6.0e-5,
            gravity: 9.81,
        }
    }

    /// Same fluid with gravity switched off (useful for conservation tests:
    /// a uniform pressure field then yields an exactly zero flux residual).
    pub fn without_gravity(mut self) -> Self {
        self.gravity = 0.0;
        self
    }

    /// Density at pressure `p` (Eq. 5): `ρ = ρ_ref · exp(c_f (p − p_ref))`.
    #[inline]
    pub fn density<R: Real>(&self, p: R) -> R {
        let cf = R::from_f64(self.compressibility);
        let pref = R::from_f64(self.p_ref);
        let rref = R::from_f64(self.rho_ref);
        rref * (cf * (p - pref)).exp()
    }

    /// Analytic derivative `dρ/dp = c_f · ρ(p)` — used by the Newton solver.
    #[inline]
    pub fn d_density_dp<R: Real>(&self, p: R) -> R {
        R::from_f64(self.compressibility) * self.density(p)
    }

    /// Mobility of the fluid evaluated in a cell: `ρ/μ` (Eq. 4 numerator).
    #[inline]
    pub fn mobility<R: Real>(&self, rho: R) -> R {
        rho / R::from_f64(self.viscosity)
    }

    /// Porosity model `φ(p) = φ_ref (1 + c_r (p − p_ref))` — linear in
    /// pressure per the paper ("the porosity and the density depend linearly
    /// on pressure"; density is in fact exponential via Eq. 5, porosity is
    /// linear). Used only by the accumulation term of Eq. (2).
    #[inline]
    pub fn porosity<R: Real>(&self, phi_ref: R, rock_compressibility: R, p: R) -> R {
        let pref = R::from_f64(self.p_ref);
        phi_ref * (R::ONE + rock_compressibility * (p - pref))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_at_reference_pressure_is_reference_density() {
        let f = Fluid::water_like();
        let rho: f64 = f.density(f.p_ref);
        assert!((rho - f.rho_ref).abs() < 1e-12);
    }

    #[test]
    fn density_is_monotonic_in_pressure() {
        let f = Fluid::co2_like();
        let mut last = 0.0_f64;
        for i in 0..100 {
            let p = 5.0e6 + i as f64 * 1.0e5;
            let rho = f.density(p);
            assert!(rho > last, "density must increase with pressure");
            last = rho;
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let f = Fluid::co2_like();
        let p = 16.0e6_f64;
        let h = 1.0;
        let fd = (f.density(p + h) - f.density(p - h)) / (2.0 * h);
        let an = f.d_density_dp(p);
        assert!((fd - an).abs() / an.abs() < 1e-6, "fd={fd} an={an}");
    }

    #[test]
    fn mobility_is_density_over_viscosity() {
        let f = Fluid::water_like();
        let rho: f64 = 998.0;
        assert!((f.mobility(rho) - rho / f.viscosity).abs() < 1e-9);
    }

    #[test]
    fn f32_and_f64_density_agree() {
        let f = Fluid::water_like();
        let p = 12.0e6;
        let d64: f64 = f.density(p);
        let d32: f32 = f.density(p as f32);
        assert!((d64 - d32 as f64).abs() / d64 < 1e-5);
    }

    #[test]
    fn porosity_linear_model() {
        let f = Fluid::water_like();
        let phi: f64 = f.porosity(0.2, 1.0e-9, f.p_ref + 1.0e6);
        assert!((phi - 0.2 * (1.0 + 1.0e-3)).abs() < 1e-12);
    }

    #[test]
    fn without_gravity_zeroes_g() {
        assert_eq!(Fluid::water_like().without_gravity().gravity, 0.0);
    }
}
