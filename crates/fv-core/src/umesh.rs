//! General (unstructured) mesh support — the paper's §9 future work:
//! "Future work includes supporting arbitrary mesh topologies ... to enable
//! porting of a broader range of FV applications."
//!
//! A TPFA discretization only needs, per interior face, the two cell ids
//! and a transmissibility, plus per-cell volumes and elevations — so an
//! unstructured mesh here is exactly that face list. [`assemble_flux_residual_unstructured`]
//! sweeps it face-wise; the structured [`crate::mesh::CartesianMesh3`]
//! converts losslessly via [`UnstructuredMesh::from_cartesian`], which the
//! tests use to prove exact equivalence with the structured assembly.

use crate::eos::Fluid;
use crate::flux::face_flux;
use crate::mesh::{CartesianMesh3, ALL_NEIGHBORS};
use crate::real::Real;
use crate::trans::Transmissibilities;
use serde::{Deserialize, Serialize};

/// One interior connection between two cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Face {
    /// "K" cell index.
    pub left: usize,
    /// "L" cell index.
    pub right: usize,
    /// Transmissibility `Υ_KL` (≥ 0).
    pub trans: f64,
}

/// An arbitrary-topology TPFA mesh: cells with volumes and elevations,
/// connected by an explicit face list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnstructuredMesh {
    volumes: Vec<f64>,
    elevations: Vec<f64>,
    faces: Vec<Face>,
    /// CSR adjacency: for each cell, the faces it participates in.
    adj_offsets: Vec<usize>,
    adj_faces: Vec<usize>,
}

impl UnstructuredMesh {
    /// Builds a mesh from cell volumes, cell elevations and a face list.
    pub fn new(volumes: Vec<f64>, elevations: Vec<f64>, faces: Vec<Face>) -> Self {
        let n = volumes.len();
        assert!(n > 0, "mesh needs at least one cell");
        assert_eq!(elevations.len(), n, "one elevation per cell");
        assert!(volumes.iter().all(|&v| v > 0.0), "volumes must be positive");
        for (i, f) in faces.iter().enumerate() {
            assert!(f.left < n && f.right < n, "face {i} indexes out of range");
            assert_ne!(f.left, f.right, "face {i} connects a cell to itself");
            assert!(f.trans >= 0.0, "face {i} has negative transmissibility");
        }
        // CSR adjacency
        let mut counts = vec![0usize; n + 1];
        for f in &faces {
            counts[f.left + 1] += 1;
            counts[f.right + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let adj_offsets = counts.clone();
        let mut cursor = counts;
        let mut adj_faces = vec![0usize; faces.len() * 2];
        for (fi, f) in faces.iter().enumerate() {
            adj_faces[cursor[f.left]] = fi;
            cursor[f.left] += 1;
            adj_faces[cursor[f.right]] = fi;
            cursor[f.right] += 1;
        }
        Self {
            volumes,
            elevations,
            faces,
            adj_offsets,
            adj_faces,
        }
    }

    /// Converts a Cartesian mesh + transmissibility set into the general
    /// representation (each connection once, `left < right` orientation by
    /// the structured sweep order).
    pub fn from_cartesian(mesh: &CartesianMesh3, trans: &Transmissibilities) -> Self {
        let mut faces = Vec::with_capacity(mesh.num_interior_faces(true));
        for (i, c) in mesh.cells() {
            for nb in ALL_NEIGHBORS {
                if let Some(l) = mesh.neighbor(c, nb) {
                    let j = mesh.linear_idx(l);
                    if j > i {
                        faces.push(Face {
                            left: i,
                            right: j,
                            trans: trans.t(i, nb),
                        });
                    }
                }
            }
        }
        let volumes = vec![mesh.cell_volume(); mesh.num_cells()];
        let elevations: Vec<f64> = (0..mesh.num_cells())
            .map(|i| mesh.elevation(mesh.structured(i).z))
            .collect();
        Self::new(volumes, elevations, faces)
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.volumes.len()
    }

    /// Number of interior faces.
    pub fn num_faces(&self) -> usize {
        self.faces.len()
    }

    /// The face list.
    pub fn faces(&self) -> &[Face] {
        &self.faces
    }

    /// Cell volume.
    pub fn volume(&self, cell: usize) -> f64 {
        self.volumes[cell]
    }

    /// Cell elevation (for the gravity head).
    pub fn elevation(&self, cell: usize) -> f64 {
        self.elevations[cell]
    }

    /// Face indices incident to `cell` (CSR adjacency).
    pub fn cell_faces(&self, cell: usize) -> &[usize] {
        &self.adj_faces[self.adj_offsets[cell]..self.adj_offsets[cell + 1]]
    }

    /// Degree (number of connections) of a cell.
    pub fn degree(&self, cell: usize) -> usize {
        self.cell_faces(cell).len()
    }
}

/// Face-wise flux-residual assembly on an arbitrary mesh (Algorithm 1's
/// unstructured variant the paper's §3 mentions: "Algorithm 1 can be
/// applied to unstructured meshes").
pub fn assemble_flux_residual_unstructured<R: Real>(
    mesh: &UnstructuredMesh,
    fluid: &Fluid,
    pressure: &[R],
    residual: &mut [R],
) {
    assert_eq!(pressure.len(), mesh.num_cells());
    assert_eq!(residual.len(), mesh.num_cells());
    let inv_mu = R::ONE / R::from_f64(fluid.viscosity);
    let g = fluid.gravity;
    residual.iter_mut().for_each(|r| *r = R::ZERO);
    for f in mesh.faces() {
        let (k, l) = (f.left, f.right);
        let p_k = pressure[k];
        let p_l = pressure[l];
        let rho_k = fluid.density(p_k);
        let rho_l = fluid.density(p_l);
        let g_dz = R::from_f64(g * (mesh.elevation(k) - mesh.elevation(l)));
        let flux = face_flux(R::from_f64(f.trans), p_k, p_l, rho_k, rho_l, g_dz, inv_mu).flux;
        residual[k] += flux;
        residual[l] -= flux;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::PermeabilityField;
    use crate::mesh::{Extents, Spacing};
    use crate::state::FlowState;
    use crate::trans::StencilKind;

    fn cartesian_problem() -> (CartesianMesh3, Fluid, Transmissibilities) {
        let mesh = CartesianMesh3::new(Extents::new(5, 4, 3), Spacing::new(3.0, 5.0, 2.0));
        let fluid = Fluid::water_like();
        let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.4, 31);
        let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
        (mesh, fluid, trans)
    }

    #[test]
    fn conversion_counts_each_connection_once() {
        let (mesh, _, trans) = cartesian_problem();
        let u = UnstructuredMesh::from_cartesian(&mesh, &trans);
        assert_eq!(u.num_cells(), mesh.num_cells());
        assert_eq!(u.num_faces(), mesh.num_interior_faces(true));
        // interior cell has 10 connections
        let interior = mesh.linear(2, 2, 1);
        assert_eq!(u.degree(interior), 10);
        // corner has 4
        assert_eq!(u.degree(mesh.linear(0, 0, 0)), 4);
    }

    #[test]
    fn unstructured_assembly_matches_structured_exactly() {
        let (mesh, fluid, trans) = cartesian_problem();
        let u = UnstructuredMesh::from_cartesian(&mesh, &trans);
        let p = FlowState::<f64>::varied(&mesh, 1.0e7, 1.3e7, 5);
        let mut structured = vec![0.0_f64; mesh.num_cells()];
        crate::residual::assemble_flux_residual_facewise(
            &mesh,
            &fluid,
            &trans,
            p.pressure(),
            &mut structured,
        );
        let mut general = vec![0.0_f64; mesh.num_cells()];
        assemble_flux_residual_unstructured(&u, &fluid, p.pressure(), &mut general);
        let scale = structured.iter().map(|v| v.abs()).fold(1e-300, f64::max);
        for i in 0..structured.len() {
            assert!(
                (structured[i] - general[i]).abs() <= 1e-10 * scale,
                "cell {i}: {} vs {}",
                structured[i],
                general[i]
            );
        }
    }

    #[test]
    fn gravity_heads_come_from_elevations() {
        let (mesh, fluid, trans) = cartesian_problem();
        let u = UnstructuredMesh::from_cartesian(&mesh, &trans);
        // hydrostatic state must be near-equilibrium on the general mesh too
        let p = FlowState::<f64>::hydrostatic(&mesh, &fluid, 2.0e7);
        let mut r = vec![0.0_f64; u.num_cells()];
        assemble_flux_residual_unstructured(&u, &fluid, p.pressure(), &mut r);
        let pulse = FlowState::<f64>::gaussian_pulse(&mesh, 2.0e7, 1.0e6, 2.0);
        let mut rp = vec![0.0_f64; u.num_cells()];
        assemble_flux_residual_unstructured(&u, &fluid, pulse.pressure(), &mut rp);
        let n = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(n(&r) < 1e-3 * n(&rp));
    }

    #[test]
    fn hand_built_triangle_mesh() {
        // three cells in a ring — a topology no Cartesian mesh has
        let u = UnstructuredMesh::new(
            vec![1.0, 2.0, 1.5],
            vec![0.0, 0.0, 1.0],
            vec![
                Face {
                    left: 0,
                    right: 1,
                    trans: 1e-12,
                },
                Face {
                    left: 1,
                    right: 2,
                    trans: 2e-12,
                },
                Face {
                    left: 2,
                    right: 0,
                    trans: 3e-12,
                },
            ],
        );
        assert_eq!(u.degree(0), 2);
        assert_eq!(u.degree(1), 2);
        assert_eq!(u.degree(2), 2);
        let fluid = Fluid::water_like().without_gravity();
        let p = vec![1.0e7_f64, 1.2e7, 0.9e7];
        let mut r = vec![0.0_f64; 3];
        assemble_flux_residual_unstructured(&u, &fluid, &p, &mut r);
        // conservation on the ring
        let total: f64 = r.iter().sum();
        assert!(total.abs() < 1e-12 * r.iter().map(|v| v.abs()).sum::<f64>());
        // highest-pressure cell loses mass
        assert!(r[1] > 0.0);
    }

    #[test]
    fn conservation_on_general_meshes() {
        let (mesh, fluid, trans) = cartesian_problem();
        let u = UnstructuredMesh::from_cartesian(&mesh, &trans);
        let p = FlowState::<f64>::varied(&mesh, 1.0e7, 1.5e7, 9);
        let mut r = vec![0.0_f64; u.num_cells()];
        assemble_flux_residual_unstructured(&u, &fluid, p.pressure(), &mut r);
        let total: f64 = r.iter().sum();
        let scale: f64 = r.iter().map(|v| v.abs()).sum();
        assert!(total.abs() < 1e-12 * scale);
    }

    #[test]
    fn cell_faces_csr_is_consistent() {
        let (mesh, _, trans) = cartesian_problem();
        let u = UnstructuredMesh::from_cartesian(&mesh, &trans);
        // every face appears exactly twice in the CSR lists
        let mut seen = vec![0usize; u.num_faces()];
        for c in 0..u.num_cells() {
            for &fi in u.cell_faces(c) {
                let f = u.faces()[fi];
                assert!(f.left == c || f.right == c);
                seen[fi] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 2));
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let _ = UnstructuredMesh::new(
            vec![1.0, 1.0],
            vec![0.0, 0.0],
            vec![Face {
                left: 0,
                right: 0,
                trans: 1.0,
            }],
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_face_rejected() {
        let _ = UnstructuredMesh::new(
            vec![1.0, 1.0],
            vec![0.0, 0.0],
            vec![Face {
                left: 0,
                right: 5,
                trans: 1.0,
            }],
        );
    }

    #[test]
    fn accessors() {
        let u = UnstructuredMesh::new(
            vec![2.0, 3.0],
            vec![0.5, 1.5],
            vec![Face {
                left: 0,
                right: 1,
                trans: 1e-12,
            }],
        );
        assert_eq!(u.volume(1), 3.0);
        assert_eq!(u.elevation(0), 0.5);
        assert_eq!(u.num_faces(), 1);
    }
}
