//! Iterative solvers on matrix-free operators — the paper's §8 extension
//! ("developing nonlinear and linear solvers ... can broaden the scope of FV
//! applications").
//!
//! * [`cg`] — preconditioned conjugate gradients for the SPD Picard operator;
//! * [`bicgstab`] — BiCGSTAB for the nonsymmetric frozen-upwind Jacobian;
//! * [`newton`] — a Newton–Krylov loop for the implicit residual of Eq. (2).

pub mod bicgstab;
pub mod cg;
pub mod newton;

use crate::real::Real;

/// Why an iterative solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Residual tolerance reached.
    Converged,
    /// Iteration budget exhausted.
    MaxIterations,
    /// A breakdown scalar (e.g. `ρ` in BiCGSTAB) vanished.
    Breakdown,
}

/// Outcome of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveReport<R> {
    /// Why iteration stopped.
    pub reason: StopReason,
    /// Iterations performed.
    pub iterations: usize,
    /// Final (preconditioned, where applicable) residual norm.
    pub residual_norm: R,
}

impl<R: Real> SolveReport<R> {
    /// True if the solve converged.
    pub fn converged(&self) -> bool {
        self.reason == StopReason::Converged
    }
}
