//! Preconditioned conjugate gradients on a matrix-free SPD operator.

use crate::linalg::{axpy, copy, dot, norm2, xpby, zero};
use crate::operator::LinearOperator;
use crate::real::Real;
use crate::solver::{SolveReport, StopReason};

/// Conjugate-gradient solver with optional Jacobi preconditioning.
///
/// All work buffers are owned by the solver and reused across solves, so a
/// time-stepping loop performs no per-solve allocation.
pub struct ConjugateGradient<R> {
    max_iterations: usize,
    rel_tolerance: R,
    /// Inverse diagonal for Jacobi preconditioning (empty = identity).
    inv_diag: Vec<R>,
    r: Vec<R>,
    z: Vec<R>,
    p: Vec<R>,
    ap: Vec<R>,
}

impl<R: Real> ConjugateGradient<R> {
    /// Creates a solver for systems of dimension `n`.
    pub fn new(n: usize, max_iterations: usize, rel_tolerance: R) -> Self {
        assert!(max_iterations > 0);
        assert!(rel_tolerance > R::ZERO);
        Self {
            max_iterations,
            rel_tolerance,
            inv_diag: Vec::new(),
            r: vec![R::ZERO; n],
            z: vec![R::ZERO; n],
            p: vec![R::ZERO; n],
            ap: vec![R::ZERO; n],
        }
    }

    /// Enables Jacobi (diagonal) preconditioning with the operator diagonal.
    pub fn with_jacobi(mut self, diagonal: &[R]) -> Self {
        assert_eq!(diagonal.len(), self.r.len());
        self.inv_diag = diagonal
            .iter()
            .map(|&d| {
                assert!(d > R::ZERO, "Jacobi needs a positive diagonal");
                R::ONE / d
            })
            .collect();
        self
    }

    /// Solves `A x = b`, starting from the provided `x` (initial guess) and
    /// overwriting it with the solution.
    pub fn solve<A: LinearOperator<R>>(&mut self, a: &A, b: &[R], x: &mut [R]) -> SolveReport<R> {
        let n = self.r.len();
        assert_eq!(a.dim(), n);
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);

        // r = b − A x
        a.apply(x, &mut self.r);
        for i in 0..n {
            self.r[i] = b[i] - self.r[i];
        }
        let b_norm = norm2(b);
        let target = if b_norm == R::ZERO {
            self.rel_tolerance
        } else {
            self.rel_tolerance * b_norm
        };
        if norm2(&self.r) <= target {
            return SolveReport {
                reason: StopReason::Converged,
                iterations: 0,
                residual_norm: norm2(&self.r),
            };
        }

        self.precondition();
        copy(&self.z, &mut self.p);
        let mut rz = dot(&self.r, &self.z);

        for it in 1..=self.max_iterations {
            a.apply(&self.p, &mut self.ap);
            let p_ap = dot(&self.p, &self.ap);
            if p_ap <= R::ZERO {
                return SolveReport {
                    reason: StopReason::Breakdown,
                    iterations: it,
                    residual_norm: norm2(&self.r),
                };
            }
            let alpha = rz / p_ap;
            axpy(alpha, &self.p, x);
            axpy(-alpha, &self.ap, &mut self.r);
            let res = norm2(&self.r);
            if res <= target {
                return SolveReport {
                    reason: StopReason::Converged,
                    iterations: it,
                    residual_norm: res,
                };
            }
            self.precondition();
            let rz_new = dot(&self.r, &self.z);
            let beta = rz_new / rz;
            rz = rz_new;
            xpby(&self.z, beta, &mut self.p);
        }
        SolveReport {
            reason: StopReason::MaxIterations,
            iterations: self.max_iterations,
            residual_norm: norm2(&self.r),
        }
    }

    /// `z ← M⁻¹ r` (Jacobi or identity).
    fn precondition(&mut self) {
        if self.inv_diag.is_empty() {
            copy(&self.r, &mut self.z);
        } else {
            for i in 0..self.r.len() {
                self.z[i] = self.r[i] * self.inv_diag[i];
            }
        }
        let _ = &mut self.ap; // buffers all live in self
    }
}

/// Convenience: zero the initial guess then solve.
pub fn solve_from_zero<R: Real, A: LinearOperator<R>>(
    cg: &mut ConjugateGradient<R>,
    a: &A,
    b: &[R],
    x: &mut [R],
) -> SolveReport<R> {
    zero(x);
    cg.solve(a, b, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense SPD test operator.
    struct Dense {
        a: Vec<Vec<f64>>,
    }
    impl LinearOperator<f64> for Dense {
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            for (i, row) in self.a.iter().enumerate() {
                y[i] = row.iter().zip(x).map(|(&aij, &xj)| aij * xj).sum();
            }
        }
        fn dim(&self) -> usize {
            self.a.len()
        }
    }

    fn spd_tridiag(n: usize) -> Dense {
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            a[i][i] = 2.5;
            if i > 0 {
                a[i][i - 1] = -1.0;
            }
            if i + 1 < n {
                a[i][i + 1] = -1.0;
            }
        }
        Dense { a }
    }

    #[test]
    fn solves_tridiagonal_system() {
        let n = 40;
        let op = spd_tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut b = vec![0.0; n];
        op.apply(&x_true, &mut b);
        let mut cg = ConjugateGradient::new(n, 200, 1e-12);
        let mut x = vec![0.0; n];
        let rep = cg.solve(&op, &b, &mut x);
        assert!(rep.converged(), "{rep:?}");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn jacobi_preconditioning_reduces_iterations() {
        // badly scaled diagonal
        let n = 50;
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            a[i][i] = if i % 2 == 0 { 100.0 } else { 1.0 };
            if i > 0 {
                a[i][i - 1] = -0.3;
                a[i - 1][i] = -0.3;
            }
        }
        let op = Dense { a: a.clone() };
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let mut plain = ConjugateGradient::new(n, 500, 1e-10);
        let mut x1 = vec![0.0; n];
        let r1 = plain.solve(&op, &b, &mut x1);
        let diag: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
        let mut pre = ConjugateGradient::new(n, 500, 1e-10).with_jacobi(&diag);
        let mut x2 = vec![0.0; n];
        let r2 = pre.solve(&op, &b, &mut x2);
        assert!(r1.converged() && r2.converged());
        assert!(
            r2.iterations <= r1.iterations,
            "jacobi {} > plain {}",
            r2.iterations,
            r1.iterations
        );
        for i in 0..n {
            assert!((x1[i] - x2[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let n = 10;
        let op = spd_tridiag(n);
        let b = vec![0.0; n];
        let mut cg = ConjugateGradient::new(n, 10, 1e-10);
        let mut x = vec![0.0; n];
        let rep = solve_from_zero(&mut cg, &op, &b, &mut x);
        assert!(rep.converged());
        assert_eq!(rep.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn respects_iteration_budget() {
        let n = 60;
        let op = spd_tridiag(n);
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut cg = ConjugateGradient::new(n, 2, 1e-14);
        let mut x = vec![0.0; n];
        let rep = cg.solve(&op, &b, &mut x);
        assert_eq!(rep.reason, StopReason::MaxIterations);
        assert_eq!(rep.iterations, 2);
    }

    #[test]
    fn warm_start_converges_in_zero_iterations() {
        let n = 20;
        let op = spd_tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut b = vec![0.0; n];
        op.apply(&x_true, &mut b);
        let mut cg = ConjugateGradient::new(n, 100, 1e-10);
        let mut x = x_true.clone();
        let rep = cg.solve(&op, &b, &mut x);
        assert!(rep.converged());
        assert_eq!(rep.iterations, 0);
    }
}
