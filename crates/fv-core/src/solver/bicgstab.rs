//! BiCGSTAB for the nonsymmetric frozen-upwind Jacobian systems arising in
//! the Newton loop.

use crate::linalg::{copy, dot, norm2, zero};
use crate::operator::LinearOperator;
use crate::real::Real;
use crate::solver::{SolveReport, StopReason};

/// Van der Vorst's BiCGSTAB with reusable work buffers.
pub struct BiCgStab<R> {
    max_iterations: usize,
    rel_tolerance: R,
    r: Vec<R>,
    r0: Vec<R>,
    p: Vec<R>,
    v: Vec<R>,
    s: Vec<R>,
    t: Vec<R>,
}

impl<R: Real> BiCgStab<R> {
    /// Creates a solver for systems of dimension `n`.
    pub fn new(n: usize, max_iterations: usize, rel_tolerance: R) -> Self {
        assert!(max_iterations > 0);
        assert!(rel_tolerance > R::ZERO);
        Self {
            max_iterations,
            rel_tolerance,
            r: vec![R::ZERO; n],
            r0: vec![R::ZERO; n],
            p: vec![R::ZERO; n],
            v: vec![R::ZERO; n],
            s: vec![R::ZERO; n],
            t: vec![R::ZERO; n],
        }
    }

    /// Solves `A x = b` in place, starting from the initial guess in `x`.
    pub fn solve<A: LinearOperator<R>>(&mut self, a: &A, b: &[R], x: &mut [R]) -> SolveReport<R> {
        let n = self.r.len();
        assert_eq!(a.dim(), n);
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);

        a.apply(x, &mut self.r);
        for i in 0..n {
            self.r[i] = b[i] - self.r[i];
        }
        let b_norm = norm2(b);
        let target = if b_norm == R::ZERO {
            self.rel_tolerance
        } else {
            self.rel_tolerance * b_norm
        };
        let mut res = norm2(&self.r);
        if res <= target {
            return SolveReport {
                reason: StopReason::Converged,
                iterations: 0,
                residual_norm: res,
            };
        }
        copy(&self.r, &mut self.r0);
        zero(&mut self.p);
        zero(&mut self.v);
        let mut rho = R::ONE;
        let mut alpha = R::ONE;
        let mut omega = R::ONE;

        for it in 1..=self.max_iterations {
            let rho_new = dot(&self.r0, &self.r);
            if rho_new.abs() == R::ZERO {
                return SolveReport {
                    reason: StopReason::Breakdown,
                    iterations: it,
                    residual_norm: res,
                };
            }
            let beta = (rho_new / rho) * (alpha / omega);
            rho = rho_new;
            // p = r + beta (p − omega v)
            for i in 0..n {
                self.p[i] = self.r[i] + beta * (self.p[i] - omega * self.v[i]);
            }
            a.apply(&self.p, &mut self.v);
            let r0v = dot(&self.r0, &self.v);
            if r0v.abs() == R::ZERO {
                return SolveReport {
                    reason: StopReason::Breakdown,
                    iterations: it,
                    residual_norm: res,
                };
            }
            alpha = rho / r0v;
            // s = r − alpha v
            for i in 0..n {
                self.s[i] = self.r[i] - alpha * self.v[i];
            }
            let s_norm = norm2(&self.s);
            if s_norm <= target {
                for i in 0..n {
                    x[i] += alpha * self.p[i];
                }
                return SolveReport {
                    reason: StopReason::Converged,
                    iterations: it,
                    residual_norm: s_norm,
                };
            }
            a.apply(&self.s, &mut self.t);
            let tt = dot(&self.t, &self.t);
            if tt == R::ZERO {
                return SolveReport {
                    reason: StopReason::Breakdown,
                    iterations: it,
                    residual_norm: s_norm,
                };
            }
            omega = dot(&self.t, &self.s) / tt;
            for i in 0..n {
                x[i] += alpha * self.p[i] + omega * self.s[i];
                self.r[i] = self.s[i] - omega * self.t[i];
            }
            res = norm2(&self.r);
            if res <= target {
                return SolveReport {
                    reason: StopReason::Converged,
                    iterations: it,
                    residual_norm: res,
                };
            }
            if omega.abs() == R::ZERO {
                return SolveReport {
                    reason: StopReason::Breakdown,
                    iterations: it,
                    residual_norm: res,
                };
            }
        }
        SolveReport {
            reason: StopReason::MaxIterations,
            iterations: self.max_iterations,
            residual_norm: res,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dense {
        a: Vec<Vec<f64>>,
    }
    impl LinearOperator<f64> for Dense {
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            for (i, row) in self.a.iter().enumerate() {
                y[i] = row.iter().zip(x).map(|(&aij, &xj)| aij * xj).sum();
            }
        }
        fn dim(&self) -> usize {
            self.a.len()
        }
    }

    /// Nonsymmetric diagonally dominant operator — the kind upwinding makes.
    fn upwindish(n: usize) -> Dense {
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            a[i][i] = 3.0;
            if i > 0 {
                a[i][i - 1] = -1.5; // strong upwind side
            }
            if i + 1 < n {
                a[i][i + 1] = -0.5; // weak downwind side
            }
        }
        Dense { a }
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let n = 50;
        let op = upwindish(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.3).cos()).collect();
        let mut b = vec![0.0; n];
        op.apply(&x_true, &mut b);
        let mut solver = BiCgStab::new(n, 300, 1e-12);
        let mut x = vec![0.0; n];
        let rep = solver.solve(&op, &b, &mut x);
        assert!(rep.converged(), "{rep:?}");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-7, "i={i}");
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let n = 8;
        let op = upwindish(n);
        let mut solver = BiCgStab::new(n, 10, 1e-10);
        let mut x = vec![0.0; n];
        let rep = solver.solve(&op, &vec![0.0; n], &mut x);
        assert!(rep.converged());
        assert_eq!(rep.iterations, 0);
    }

    #[test]
    fn iteration_budget_respected() {
        let n = 64;
        let op = upwindish(n);
        let b: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let mut solver = BiCgStab::new(n, 1, 1e-15);
        let mut x = vec![0.0; n];
        let rep = solver.solve(&op, &b, &mut x);
        assert!(matches!(
            rep.reason,
            StopReason::MaxIterations | StopReason::Converged
        ));
        assert!(rep.iterations <= 1);
    }

    #[test]
    fn identity_system_converges_fast() {
        let n = 12;
        let mut a = vec![vec![0.0; n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let op = Dense { a };
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut solver = BiCgStab::new(n, 10, 1e-12);
        let mut x = vec![0.0; n];
        let rep = solver.solve(&op, &b, &mut x);
        assert!(rep.converged());
        for i in 0..n {
            assert!((x[i] - b[i]).abs() < 1e-10);
        }
    }
}
