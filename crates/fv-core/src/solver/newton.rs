//! Newton–Krylov solver for the implicit residual of Eq. (2).
//!
//! Each Newton step linearizes the residual with the frozen-upwind Jacobian
//! ([`crate::operator::JacobianOperator`]) and solves the correction system
//! matrix-free with BiCGSTAB — one full backward-Euler time step of the
//! compressible single-phase model.

use crate::eos::Fluid;
use crate::linalg::norm_inf;
use crate::mesh::CartesianMesh3;
use crate::operator::JacobianOperator;
use crate::real::Real;
use crate::residual::{assemble_implicit_residual, AccumulationParams};
use crate::solver::bicgstab::BiCgStab;
use crate::solver::{SolveReport, StopReason};
use crate::source::SourceTerm;
use crate::trans::Transmissibilities;

/// Configuration for the Newton loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonConfig<R> {
    /// Maximum Newton iterations per time step.
    pub max_iterations: usize,
    /// Converged when `‖r‖_∞` falls below this absolute tolerance [kg/s].
    pub abs_tolerance: R,
    /// Inner linear-solver iteration cap.
    pub linear_max_iterations: usize,
    /// Inner linear-solver relative tolerance.
    pub linear_rel_tolerance: R,
}

impl<R: Real> Default for NewtonConfig<R> {
    fn default() -> Self {
        Self {
            max_iterations: 12,
            abs_tolerance: R::from_f64(1e-9),
            linear_max_iterations: 400,
            linear_rel_tolerance: R::from_f64(1e-8),
        }
    }
}

/// Result of one implicit time step.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonReport<R> {
    /// Newton iterations used.
    pub iterations: usize,
    /// Final `‖r‖_∞`.
    pub residual_norm: R,
    /// Whether Newton converged.
    pub converged: bool,
    /// Report of the last inner linear solve.
    pub last_linear: Option<SolveReport<R>>,
}

/// Newton–Krylov driver owning its work buffers.
pub struct NewtonSolver<R> {
    config: NewtonConfig<R>,
    residual: Vec<R>,
    rhs: Vec<R>,
    delta: Vec<R>,
    linear: BiCgStab<R>,
}

impl<R: Real> NewtonSolver<R> {
    /// Creates a solver for meshes with `n` cells.
    pub fn new(n: usize, config: NewtonConfig<R>) -> Self {
        Self {
            config,
            residual: vec![R::ZERO; n],
            rhs: vec![R::ZERO; n],
            delta: vec![R::ZERO; n],
            linear: BiCgStab::new(n, config.linear_max_iterations, config.linear_rel_tolerance),
        }
    }

    /// Advances `pressure` by one backward-Euler step of size `acc.dt`,
    /// given the previous-step pressure `p_old` and source terms.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        mesh: &CartesianMesh3,
        fluid: &Fluid,
        trans: &Transmissibilities,
        acc: AccumulationParams<R>,
        p_old: &[R],
        sources: &[SourceTerm],
        pressure: &mut [R],
    ) -> NewtonReport<R> {
        let n = mesh.num_cells();
        assert_eq!(pressure.len(), n);
        assert_eq!(p_old.len(), n);

        let vol = R::from_f64(mesh.cell_volume());
        let mut last_linear = None;

        for it in 0..self.config.max_iterations {
            assemble_implicit_residual(
                mesh,
                fluid,
                trans,
                acc,
                pressure,
                p_old,
                sources,
                &mut self.residual,
            );
            let res = norm_inf(&self.residual);
            if res <= self.config.abs_tolerance {
                return NewtonReport {
                    iterations: it,
                    residual_norm: res,
                    converged: true,
                    last_linear,
                };
            }
            // Accumulation diagonal: V · d(φρ)/dp / Δt
            let diag: Vec<R> = (0..n)
                .map(|i| {
                    let p = pressure[i];
                    let phi = fluid.porosity(acc.phi_ref, acc.rock_compressibility, p);
                    let dphi = acc.phi_ref * acc.rock_compressibility;
                    let rho = fluid.density(p);
                    let drho = fluid.d_density_dp(p);
                    vol * (dphi * rho + phi * drho) / acc.dt
                })
                .collect();
            let jac = JacobianOperator::new(mesh, fluid, trans, pressure).with_diagonal(diag);
            // Solve J δ = −r
            for i in 0..n {
                self.rhs[i] = -self.residual[i];
            }
            crate::linalg::zero(&mut self.delta);
            let lin = self.linear.solve(&jac, &self.rhs, &mut self.delta);
            last_linear = Some(lin);
            if lin.reason == StopReason::Breakdown {
                return NewtonReport {
                    iterations: it + 1,
                    residual_norm: res,
                    converged: false,
                    last_linear,
                };
            }
            for i in 0..n {
                pressure[i] += self.delta[i];
            }
        }
        assemble_implicit_residual(
            mesh,
            fluid,
            trans,
            acc,
            pressure,
            p_old,
            sources,
            &mut self.residual,
        );
        let res = norm_inf(&self.residual);
        NewtonReport {
            iterations: self.config.max_iterations,
            residual_norm: res,
            converged: res <= self.config.abs_tolerance,
            last_linear,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::PermeabilityField;
    use crate::mesh::{CellIdx, Extents, Spacing};
    use crate::state::FlowState;
    use crate::trans::StencilKind;

    fn setup() -> (CartesianMesh3, Fluid, Transmissibilities) {
        let mesh = CartesianMesh3::new(Extents::new(6, 6, 3), Spacing::uniform(10.0));
        let fluid = Fluid::water_like().without_gravity();
        let perm = PermeabilityField::uniform(&mesh, 1e-13);
        let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
        (mesh, fluid, trans)
    }

    fn acc() -> AccumulationParams<f64> {
        AccumulationParams {
            phi_ref: 0.2,
            rock_compressibility: 1e-9,
            dt: 3600.0,
        }
    }

    #[test]
    fn equilibrium_needs_zero_iterations() {
        let (mesh, fluid, trans) = setup();
        let p0 = FlowState::<f64>::uniform(&mesh, 20.0e6);
        let mut p = p0.pressure().to_vec();
        let mut newton = NewtonSolver::new(mesh.num_cells(), NewtonConfig::default());
        let rep = newton.step(&mesh, &fluid, &trans, acc(), p0.pressure(), &[], &mut p);
        assert!(rep.converged);
        assert_eq!(rep.iterations, 0);
    }

    #[test]
    fn pulse_relaxes_toward_uniform_pressure() {
        let (mesh, fluid, trans) = setup();
        let p0 = FlowState::<f64>::gaussian_pulse(&mesh, 20.0e6, 0.5e6, 1.5);
        let mut p = p0.pressure().to_vec();
        let mut newton = NewtonSolver::new(
            mesh.num_cells(),
            NewtonConfig {
                abs_tolerance: 1e-10,
                ..NewtonConfig::default()
            },
        );
        let spread = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        let before = spread(&p);
        let mut p_old = p.clone();
        for _ in 0..5 {
            let rep = newton.step(&mesh, &fluid, &trans, acc(), &p_old, &[], &mut p);
            assert!(rep.converged, "{rep:?}");
            p_old.copy_from_slice(&p);
        }
        let after = spread(&p);
        assert!(
            after < 0.8 * before,
            "diffusion must smooth the pulse: {before} -> {after}"
        );
    }

    #[test]
    fn injection_raises_pressure() {
        let (mesh, fluid, trans) = setup();
        let p0 = FlowState::<f64>::uniform(&mesh, 20.0e6);
        let src = [SourceTerm::injector(&mesh, CellIdx::new(3, 3, 1), 0.5)];
        let mut p = p0.pressure().to_vec();
        let mut newton = NewtonSolver::new(mesh.num_cells(), NewtonConfig::default());
        let rep = newton.step(&mesh, &fluid, &trans, acc(), p0.pressure(), &src, &mut p);
        assert!(rep.converged, "{rep:?}");
        let well = mesh.linear(3, 3, 1);
        assert!(p[well] > 20.0e6, "well cell pressure must rise");
        let mean: f64 = p.iter().sum::<f64>() / p.len() as f64;
        assert!(mean > 20.0e6, "mass added must raise mean pressure");
        // peak at the well
        let max = p.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(p[well], max);
    }

    #[test]
    fn mass_balance_of_one_step() {
        // Total stored-mass change over a step equals injected mass.
        let (mesh, fluid, trans) = setup();
        let p0 = FlowState::<f64>::uniform(&mesh, 20.0e6);
        let rate = 0.25; // kg/s
        let src = [SourceTerm::injector(&mesh, CellIdx::new(2, 2, 1), rate)];
        let a = acc();
        let mut p = p0.pressure().to_vec();
        let mut newton = NewtonSolver::new(
            mesh.num_cells(),
            NewtonConfig {
                abs_tolerance: 1e-12,
                ..NewtonConfig::default()
            },
        );
        let rep = newton.step(&mesh, &fluid, &trans, a, p0.pressure(), &src, &mut p);
        assert!(rep.converged);
        let vol = mesh.cell_volume();
        let mass = |pv: &[f64]| -> f64 {
            pv.iter()
                .map(|&pi| {
                    vol * fluid.porosity(a.phi_ref, a.rock_compressibility, pi) * fluid.density(pi)
                })
                .sum()
        };
        let dm = mass(&p) - mass(p0.pressure());
        let injected = rate * a.dt;
        assert!(
            (dm - injected).abs() / injected < 1e-6,
            "Δm={dm}, injected={injected}"
        );
    }
}
