//! Minimal floating-point abstraction so every kernel can be instantiated at
//! `f32` (the precision the wafer-scale implementation uses — wavelets are
//! 32-bit) and at `f64` (the accuracy reference).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in all finite-volume kernels.
///
/// Implemented for `f32` and `f64`. The trait is deliberately tiny: just the
/// arithmetic the TPFA kernel needs (including `exp` for the equation of
/// state, Eq. 5) plus conversions for mixed-precision validation.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// One half.
    const HALF: Self;
    /// Two.
    const TWO: Self;

    /// Natural exponential.
    fn exp(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Maximum of two values.
    fn max(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from a cell count / index.
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
    /// Fused (or contracted) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const HALF: Self = 0.5;
    const TWO: Self = 2.0;

    #[inline(always)]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const HALF: Self = 0.5;
    const TWO: Self = 2.0;

    #[inline(always)]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<R: Real>() {
        assert_eq!(R::ZERO + R::ONE, R::ONE);
        assert_eq!(R::HALF + R::HALF, R::ONE);
        assert_eq!(R::TWO * R::HALF, R::ONE);
        assert!((R::ONE.exp().to_f64() - std::f64::consts::E).abs() < 1e-6);
        assert_eq!((-R::ONE).abs(), R::ONE);
        assert_eq!((R::TWO * R::TWO).sqrt(), R::TWO);
        assert_eq!(R::ONE.max(R::TWO), R::TWO);
        assert_eq!(R::ONE.min(R::TWO), R::ONE);
        assert_eq!(R::from_usize(3).to_f64(), 3.0);
        // mul_add(a, b) = self*a + b
        assert_eq!(R::TWO.mul_add(R::TWO, R::ONE).to_f64(), 5.0);
    }

    #[test]
    fn f32_satisfies_contract() {
        exercise::<f32>();
    }

    #[test]
    fn f64_satisfies_contract() {
        exercise::<f64>();
    }

    #[test]
    fn conversion_roundtrip() {
        let v = 1.5_f64;
        assert_eq!(f32::from_f64(v).to_f64(), 1.5);
        assert_eq!(f64::from_f64(v), 1.5);
    }
}
