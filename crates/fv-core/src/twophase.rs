//! Two-phase immiscible flow (water displacing CO₂/oil) on the TPFA
//! stencil — the multiphase capability the paper's reference simulator
//! GEOS provides ("GEOS uses a coupled finite element – finite volume
//! formulation to simulate thermal multiphase flow", §2), built here as an
//! IMPES scheme (IMplicit Pressure, Explicit Saturation) on top of the
//! single-phase machinery:
//!
//! 1. **Pressure**: `∇·(λ_t(S) κ ∇p) = q` with the total mobility frozen at
//!    the current saturation — an SPD system solved matrix-free by CG;
//! 2. **Saturation**: explicit upwind transport of the wetting phase with
//!    Buckley–Leverett fractional flow `f_w = λ_w / λ_t` and Corey-type
//!    relative permeabilities.
//!
//! Gravity and capillarity are neglected (the classic Buckley–Leverett
//! setting); both phases are incompressible.

use crate::mesh::{CartesianMesh3, Neighbor, ALL_NEIGHBORS};
use crate::operator::LinearOperator;
use crate::solver::cg::ConjugateGradient;
use crate::solver::SolveReport;
use crate::trans::Transmissibilities;
use serde::{Deserialize, Serialize};

/// Two-phase fluid and rock-interaction properties (Corey model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoPhaseFluid {
    /// Wetting-phase (water) viscosity [Pa·s].
    pub mu_w: f64,
    /// Non-wetting-phase viscosity [Pa·s].
    pub mu_n: f64,
    /// Connate (irreducible) water saturation.
    pub s_wc: f64,
    /// Residual non-wetting saturation.
    pub s_nr: f64,
    /// Corey exponent, wetting phase.
    pub n_w: f64,
    /// Corey exponent, non-wetting phase.
    pub n_n: f64,
}

impl TwoPhaseFluid {
    /// Water displacing supercritical CO₂ (favorable viscosity ratio).
    pub fn water_co2() -> Self {
        Self {
            mu_w: 5.0e-4,
            mu_n: 6.0e-5,
            s_wc: 0.15,
            s_nr: 0.10,
            n_w: 2.0,
            n_n: 2.0,
        }
    }

    /// Effective (normalized) saturation in `[0, 1]`.
    #[inline]
    pub fn effective_saturation(&self, s_w: f64) -> f64 {
        ((s_w - self.s_wc) / (1.0 - self.s_wc - self.s_nr)).clamp(0.0, 1.0)
    }

    /// Wetting relative permeability `k_rw = S_e^{n_w}`.
    #[inline]
    pub fn krw(&self, s_w: f64) -> f64 {
        self.effective_saturation(s_w).powf(self.n_w)
    }

    /// Non-wetting relative permeability `k_rn = (1 − S_e)^{n_n}`.
    #[inline]
    pub fn krn(&self, s_w: f64) -> f64 {
        (1.0 - self.effective_saturation(s_w)).powf(self.n_n)
    }

    /// Wetting mobility `λ_w = k_rw/μ_w`.
    #[inline]
    pub fn mobility_w(&self, s_w: f64) -> f64 {
        self.krw(s_w) / self.mu_w
    }

    /// Non-wetting mobility `λ_n = k_rn/μ_n`.
    #[inline]
    pub fn mobility_n(&self, s_w: f64) -> f64 {
        self.krn(s_w) / self.mu_n
    }

    /// Total mobility `λ_t = λ_w + λ_n` (strictly positive everywhere).
    #[inline]
    pub fn total_mobility(&self, s_w: f64) -> f64 {
        self.mobility_w(s_w) + self.mobility_n(s_w)
    }

    /// Buckley–Leverett fractional flow `f_w = λ_w / λ_t ∈ [0, 1]`.
    #[inline]
    pub fn fractional_flow(&self, s_w: f64) -> f64 {
        let w = self.mobility_w(s_w);
        w / (w + self.mobility_n(s_w))
    }

    /// Maximum mobile water saturation.
    #[inline]
    pub fn s_w_max(&self) -> f64 {
        1.0 - self.s_nr
    }
}

/// A constant-rate volumetric source for the IMPES scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VolumetricSource {
    /// Cell index.
    pub cell: usize,
    /// Total volumetric rate [m³/s]; positive injects.
    pub rate: f64,
    /// Water fraction of the injected stream (1.0 = pure water); ignored
    /// for producers, which produce at the local fractional flow.
    pub water_fraction: f64,
}

/// SPD pressure operator with total mobility frozen at the current
/// saturation: `(A p)_K = Σ_L Υ_KL λ_t,KL (p_K − p_L)` with the face
/// mobility taken as the arithmetic average (keeps symmetry).
struct TotalMobilityOperator {
    coeff: Vec<f64>,
    diag: Vec<f64>,
    n: usize,
    nx: usize,
    ny: usize,
    nz: usize,
}

impl TotalMobilityOperator {
    fn new(
        mesh: &CartesianMesh3,
        fluid: &TwoPhaseFluid,
        trans: &Transmissibilities,
        s_w: &[f64],
    ) -> Self {
        let n = mesh.num_cells();
        let mut coeff = vec![0.0; n * crate::mesh::NEIGHBOR_COUNT];
        for (i, c) in mesh.cells() {
            let lam_k = fluid.total_mobility(s_w[i]);
            for nb in ALL_NEIGHBORS {
                if let Some(l) = mesh.neighbor(c, nb) {
                    let j = mesh.linear_idx(l);
                    let lam = 0.5 * (lam_k + fluid.total_mobility(s_w[j]));
                    coeff[i * crate::mesh::NEIGHBOR_COUNT + nb.face_index()] = trans.t(i, nb) * lam;
                }
            }
        }
        Self {
            coeff,
            // tiny compressibility-like shift pins the constant mode
            diag: vec![1e-14; n],
            n,
            nx: mesh.nx(),
            ny: mesh.ny(),
            nz: mesh.nz(),
        }
    }

    fn neighbor_index(&self, i: usize, face: usize) -> Option<usize> {
        let x = i % self.nx;
        let y = (i / self.nx) % self.ny;
        let z = i / (self.nx * self.ny);
        let (dx, dy, dz) = Neighbor::from_face_index(face).offset();
        let xx = x as i64 + dx;
        let yy = y as i64 + dy;
        let zz = z as i64 + dz;
        if xx < 0
            || yy < 0
            || zz < 0
            || xx >= self.nx as i64
            || yy >= self.ny as i64
            || zz >= self.nz as i64
        {
            None
        } else {
            Some(((zz as usize * self.ny) + yy as usize) * self.nx + xx as usize)
        }
    }
}

impl LinearOperator<f64> for TotalMobilityOperator {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.n {
            let mut acc = self.diag[i] * x[i];
            for face in 0..crate::mesh::NEIGHBOR_COUNT {
                let c = self.coeff[i * crate::mesh::NEIGHBOR_COUNT + face];
                if c == 0.0 {
                    continue;
                }
                if let Some(j) = self.neighbor_index(i, face) {
                    acc += c * (x[i] - x[j]);
                }
            }
            y[i] = acc;
        }
    }
    fn dim(&self) -> usize {
        self.n
    }
}

/// Report of one IMPES step.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpesReport {
    /// Pressure-solve outcome.
    pub pressure_solve: SolveReport<f64>,
    /// Largest saturation change of the step.
    pub max_saturation_change: f64,
    /// Water volume injected minus produced this step [m³].
    pub net_water_in: f64,
}

/// The IMPES driver: owns the CG solver and work buffers.
pub struct ImpesSimulator {
    porosity: f64,
    cg: ConjugateGradient<f64>,
    rhs: Vec<f64>,
    flux_w: Vec<f64>,
}

impl ImpesSimulator {
    /// Creates a simulator for meshes of `n` cells with uniform `porosity`.
    pub fn new(n: usize, porosity: f64) -> Self {
        assert!(porosity > 0.0 && porosity < 1.0);
        Self {
            porosity,
            cg: ConjugateGradient::new(n, 4000, 1e-10),
            rhs: vec![0.0; n],
            flux_w: vec![0.0; n],
        }
    }

    /// Advances pressure and saturation by `dt`.
    ///
    /// `pressure` is solved in place (warm-started from its previous
    /// values); `s_w` is updated explicitly.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        mesh: &CartesianMesh3,
        fluid: &TwoPhaseFluid,
        trans: &Transmissibilities,
        sources: &[VolumetricSource],
        dt: f64,
        pressure: &mut [f64],
        s_w: &mut [f64],
    ) -> ImpesReport {
        let n = mesh.num_cells();
        assert_eq!(pressure.len(), n);
        assert_eq!(s_w.len(), n);

        // 1. implicit pressure with frozen total mobility
        let op = TotalMobilityOperator::new(mesh, fluid, trans, s_w);
        self.rhs.iter_mut().for_each(|v| *v = 0.0);
        for s in sources {
            self.rhs[s.cell] += s.rate;
        }
        let report = self.cg.solve(&op, &self.rhs, pressure);

        // 2. explicit upwind saturation transport
        self.flux_w.iter_mut().for_each(|v| *v = 0.0);
        for (i, c) in mesh.cells() {
            for nb in ALL_NEIGHBORS {
                let Some(l) = mesh.neighbor(c, nb) else {
                    continue;
                };
                let j = mesh.linear_idx(l);
                if j < i {
                    continue; // each face once
                }
                let lam = 0.5 * (fluid.total_mobility(s_w[i]) + fluid.total_mobility(s_w[j]));
                let q_t = trans.t(i, nb) * lam * (pressure[i] - pressure[j]);
                // upwind fractional flow by the sign of the total flux
                let f_w = if q_t > 0.0 {
                    fluid.fractional_flow(s_w[i])
                } else {
                    fluid.fractional_flow(s_w[j])
                };
                let q_w = f_w * q_t;
                self.flux_w[i] -= q_w;
                self.flux_w[j] += q_w;
            }
        }
        let mut net_water_in = 0.0;
        for s in sources {
            let water = if s.rate > 0.0 {
                s.rate * s.water_fraction
            } else {
                s.rate * fluid.fractional_flow(s_w[s.cell])
            };
            self.flux_w[s.cell] += water;
            net_water_in += water * dt;
        }
        let pv = self.porosity * mesh.cell_volume();
        let mut max_ds: f64 = 0.0;
        for i in 0..n {
            let ds = dt * self.flux_w[i] / pv;
            max_ds = max_ds.max(ds.abs());
            s_w[i] = (s_w[i] + ds).clamp(fluid.s_wc, fluid.s_w_max());
        }
        ImpesReport {
            pressure_solve: report,
            max_saturation_change: max_ds,
            net_water_in,
        }
    }

    /// A CFL-style stable time step estimate: limits the saturation change
    /// per step to `max_ds` given the strongest source.
    pub fn suggest_dt(
        &self,
        mesh: &CartesianMesh3,
        sources: &[VolumetricSource],
        max_ds: f64,
    ) -> f64 {
        let q_max = sources
            .iter()
            .map(|s| s.rate.abs())
            .fold(0.0_f64, f64::max)
            .max(1e-30);
        max_ds * self.porosity * mesh.cell_volume() / q_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::PermeabilityField;
    use crate::mesh::{Extents, Spacing};
    use crate::trans::StencilKind;

    fn problem() -> (CartesianMesh3, TwoPhaseFluid, Transmissibilities) {
        let mesh = CartesianMesh3::new(Extents::new(20, 1, 1), Spacing::uniform(5.0));
        let fluid = TwoPhaseFluid::water_co2();
        let perm = PermeabilityField::uniform(&mesh, 1e-13);
        let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::Cardinal);
        (mesh, fluid, trans)
    }

    #[test]
    fn corey_curves_have_expected_endpoints() {
        let f = TwoPhaseFluid::water_co2();
        assert_eq!(f.krw(f.s_wc), 0.0);
        assert_eq!(f.krn(f.s_w_max()), 0.0);
        assert!((f.krw(f.s_w_max()) - 1.0).abs() < 1e-12);
        assert!((f.krn(f.s_wc) - 1.0).abs() < 1e-12);
        // fractional flow endpoints
        assert_eq!(f.fractional_flow(f.s_wc), 0.0);
        assert!((f.fractional_flow(f.s_w_max()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_flow_is_monotonic() {
        let f = TwoPhaseFluid::water_co2();
        let mut last = -1.0;
        for i in 0..=100 {
            let s = f.s_wc + (f.s_w_max() - f.s_wc) * i as f64 / 100.0;
            let fw = f.fractional_flow(s);
            assert!(fw >= last - 1e-14, "f_w must be non-decreasing");
            assert!((0.0..=1.0).contains(&fw));
            last = fw;
        }
    }

    #[test]
    fn total_mobility_is_strictly_positive() {
        let f = TwoPhaseFluid::water_co2();
        for i in 0..=50 {
            let s = f.s_wc + (f.s_w_max() - f.s_wc) * i as f64 / 50.0;
            assert!(f.total_mobility(s) > 0.0);
        }
    }

    #[test]
    fn waterflood_front_advances_monotonically() {
        // 1D Buckley–Leverett: inject water at cell 0, produce at cell 19.
        let (mesh, fluid, trans) = problem();
        let n = mesh.num_cells();
        let sources = vec![
            VolumetricSource {
                cell: 0,
                rate: 2.0e-5,
                water_fraction: 1.0,
            },
            VolumetricSource {
                cell: n - 1,
                rate: -2.0e-5,
                water_fraction: 0.0,
            },
        ];
        let mut sim = ImpesSimulator::new(n, 0.2);
        let mut p = vec![1.0e7; n];
        let mut s = vec![fluid.s_wc; n];
        let dt = sim.suggest_dt(&mesh, &sources, 0.05);
        let mut front_positions = Vec::new();
        for step in 0..200 {
            let rep = sim.step(&mesh, &fluid, &trans, &sources, dt, &mut p, &mut s);
            assert!(rep.pressure_solve.converged(), "step {step}");
            // saturation stays in physical bounds
            for (i, &sv) in s.iter().enumerate() {
                assert!(
                    sv >= fluid.s_wc - 1e-12 && sv <= fluid.s_w_max() + 1e-12,
                    "step {step} cell {i}: s = {sv}"
                );
            }
            if step % 50 == 49 {
                // front = farthest cell above the midpoint saturation
                let mid = 0.5 * (fluid.s_wc + fluid.s_w_max());
                let front = s.iter().rposition(|&sv| sv > mid).unwrap_or(0);
                front_positions.push(front);
            }
        }
        // the front advances through the domain
        for w in front_positions.windows(2) {
            assert!(w[1] >= w[0], "front must not retreat: {front_positions:?}");
        }
        assert!(
            *front_positions.last().unwrap() >= 3,
            "front should have moved: {front_positions:?}"
        );
        // upstream cells are flooded, downstream still near connate
        assert!(s[0] > 0.8 * fluid.s_w_max());
        assert!(s[n - 1] < fluid.s_wc + 0.3);
    }

    #[test]
    fn water_volume_balance() {
        let (mesh, fluid, trans) = problem();
        let n = mesh.num_cells();
        let sources = vec![
            VolumetricSource {
                cell: 0,
                rate: 1.0e-5,
                water_fraction: 1.0,
            },
            VolumetricSource {
                cell: n - 1,
                rate: -1.0e-5,
                water_fraction: 0.0,
            },
        ];
        let mut sim = ImpesSimulator::new(n, 0.2);
        let mut p = vec![1.0e7; n];
        let mut s = vec![fluid.s_wc; n];
        let dt = sim.suggest_dt(&mesh, &sources, 0.02);
        let pv = 0.2 * mesh.cell_volume();
        let water = |s: &[f64]| -> f64 { s.iter().map(|&sv| sv * pv).sum() };
        let w0 = water(&s);
        let mut injected = 0.0;
        for _ in 0..50 {
            let rep = sim.step(&mesh, &fluid, &trans, &sources, dt, &mut p, &mut s);
            injected += rep.net_water_in;
        }
        let dw = water(&s) - w0;
        // producer takes almost no water early (fractional flow ≈ 0 at
        // connate saturation), so stored-water change ≈ injected
        assert!(
            (dw - injected).abs() <= 0.02 * injected.abs().max(1e-30),
            "Δwater {dw} vs injected {injected}"
        );
    }

    #[test]
    fn pressure_gradient_points_from_injector_to_producer() {
        let (mesh, fluid, trans) = problem();
        let n = mesh.num_cells();
        let sources = vec![
            VolumetricSource {
                cell: 0,
                rate: 1.0e-5,
                water_fraction: 1.0,
            },
            VolumetricSource {
                cell: n - 1,
                rate: -1.0e-5,
                water_fraction: 0.0,
            },
        ];
        let mut sim = ImpesSimulator::new(n, 0.2);
        let mut p = vec![0.0; n];
        let mut s = vec![fluid.s_wc; n];
        sim.step(&mesh, &fluid, &trans, &sources, 1.0, &mut p, &mut s);
        for i in 1..n {
            assert!(
                p[i] <= p[i - 1] + 1e-9,
                "pressure must decrease along the flood"
            );
        }
    }

    #[test]
    fn suggested_dt_limits_saturation_change() {
        let (mesh, fluid, trans) = problem();
        let n = mesh.num_cells();
        let sources = vec![VolumetricSource {
            cell: 0,
            rate: 5.0e-5,
            water_fraction: 1.0,
        }];
        let mut sim = ImpesSimulator::new(n, 0.2);
        let dt = sim.suggest_dt(&mesh, &sources, 0.04);
        let mut p = vec![1.0e7; n];
        let mut s = vec![fluid.s_wc; n];
        let rep = sim.step(&mesh, &fluid, &trans, &sources, dt, &mut p, &mut s);
        assert!(rep.max_saturation_change <= 0.04 + 1e-12);
    }
}
