//! Well / source terms for the injection scenarios.
//!
//! The paper's motivating application is CO₂ injection; the flux-kernel study
//! itself has no wells, but the implicit-solver extension (§8) and the
//! `co2_injection` example need a mass source.

use crate::mesh::{CartesianMesh3, CellIdx};
use serde::{Deserialize, Serialize};

/// A constant-rate mass source (positive = injection) in one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceTerm {
    /// Linear cell index of the perforated cell.
    pub cell: usize,
    /// Mass rate `q` [kg/s]; positive injects.
    pub mass_rate: f64,
}

impl SourceTerm {
    /// An injector at structured coordinates.
    pub fn injector(mesh: &CartesianMesh3, at: CellIdx, mass_rate: f64) -> Self {
        assert!(mass_rate >= 0.0, "injector rate must be non-negative");
        Self {
            cell: mesh.linear_idx(at),
            mass_rate,
        }
    }

    /// A producer at structured coordinates.
    pub fn producer(mesh: &CartesianMesh3, at: CellIdx, mass_rate: f64) -> Self {
        assert!(mass_rate >= 0.0, "producer rate must be non-negative");
        Self {
            cell: mesh.linear_idx(at),
            mass_rate: -mass_rate,
        }
    }

    /// A vertical injection well perforating every Z layer of column
    /// `(x, y)`, splitting `total_rate` equally.
    pub fn vertical_well(mesh: &CartesianMesh3, x: usize, y: usize, total_rate: f64) -> Vec<Self> {
        let per_layer = total_rate / mesh.nz() as f64;
        (0..mesh.nz())
            .map(|z| Self {
                cell: mesh.linear(x, y, z),
                mass_rate: per_layer,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Extents, Spacing};

    fn mesh() -> CartesianMesh3 {
        CartesianMesh3::new(Extents::new(4, 4, 3), Spacing::uniform(1.0))
    }

    #[test]
    fn injector_and_producer_signs() {
        let m = mesh();
        let inj = SourceTerm::injector(&m, CellIdx::new(1, 1, 0), 2.0);
        assert!(inj.mass_rate > 0.0);
        let prod = SourceTerm::producer(&m, CellIdx::new(2, 2, 1), 2.0);
        assert!(prod.mass_rate < 0.0);
        assert_eq!(inj.cell, m.linear(1, 1, 0));
    }

    #[test]
    fn vertical_well_splits_rate() {
        let m = mesh();
        let well = SourceTerm::vertical_well(&m, 2, 3, 6.0);
        assert_eq!(well.len(), 3);
        let total: f64 = well.iter().map(|s| s.mass_rate).sum();
        assert!((total - 6.0).abs() < 1e-12);
        for (z, s) in well.iter().enumerate() {
            assert_eq!(s.cell, m.linear(2, 3, z));
            assert!((s.mass_rate - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn negative_injector_rate_rejected() {
        let m = mesh();
        let _ = SourceTerm::injector(&m, CellIdx::new(0, 0, 0), -1.0);
    }
}
