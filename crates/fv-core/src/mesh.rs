//! 3D Cartesian mesh with the paper's memory layout and 10-face stencil.
//!
//! The paper (§5.1, §6) uses a Cartesian mesh of `Nx × Ny × Nz` cells with
//! the **X dimension innermost and the Z dimension outermost** in memory.
//! Each interior cell has flux connections to **10 neighbors**: the six
//! cardinal neighbors (±x, ±y, ±z) plus the four in-plane (X-Y) diagonal
//! neighbors, which the paper adds "to prepare the communication pattern for
//! either higher-accuracy schemes or more intricate meshes".

use serde::{Deserialize, Serialize};

/// Number of flux connections per interior cell (paper §5.1): four in-plane
/// cardinals, four in-plane diagonals, and top/bottom along Z.
pub const NEIGHBOR_COUNT: usize = 10;

/// Mesh extents in cells along each axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Extents {
    /// Number of cells along X (innermost in memory).
    pub nx: usize,
    /// Number of cells along Y.
    pub ny: usize,
    /// Number of cells along Z (outermost in memory; mapped to PE-local
    /// memory by the dataflow implementation).
    pub nz: usize,
}

impl Extents {
    /// Creates extents; every axis must be at least 1 cell.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx >= 1 && ny >= 1 && nz >= 1, "extents must be >= 1");
        Self { nx, ny, nz }
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// Uniform grid spacing (cell dimensions) in meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spacing {
    /// Cell size along X [m].
    pub dx: f64,
    /// Cell size along Y [m].
    pub dy: f64,
    /// Cell size along Z [m].
    pub dz: f64,
}

impl Spacing {
    /// Equal spacing on all three axes.
    pub fn uniform(h: f64) -> Self {
        assert!(h > 0.0, "spacing must be positive");
        Self {
            dx: h,
            dy: h,
            dz: h,
        }
    }

    /// Per-axis spacing.
    pub fn new(dx: f64, dy: f64, dz: f64) -> Self {
        assert!(dx > 0.0 && dy > 0.0 && dz > 0.0, "spacing must be positive");
        Self { dx, dy, dz }
    }
}

/// Structured cell coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellIdx {
    /// X coordinate (0-based).
    pub x: usize,
    /// Y coordinate (0-based).
    pub y: usize,
    /// Z coordinate (0-based).
    pub z: usize,
}

impl CellIdx {
    /// Creates a cell coordinate triple.
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        Self { x, y, z }
    }
}

/// One of the ten flux connections of a cell (paper §5.1 / §5.2).
///
/// The `face_index` ordering is the canonical face ordering used throughout
/// the workspace: transmissibility slot `t[k]` of a cell always refers to
/// `Neighbor::from_face_index(k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Neighbor {
    /// (+1, 0, 0) — in-plane cardinal.
    East = 0,
    /// (−1, 0, 0) — in-plane cardinal.
    West = 1,
    /// (0, −1, 0) — in-plane cardinal (paper's fabric "north" is −y).
    North = 2,
    /// (0, +1, 0) — in-plane cardinal.
    South = 3,
    /// (+1, −1, 0) — in-plane diagonal.
    NorthEast = 4,
    /// (−1, −1, 0) — in-plane diagonal.
    NorthWest = 5,
    /// (+1, +1, 0) — in-plane diagonal.
    SouthEast = 6,
    /// (−1, +1, 0) — in-plane diagonal.
    SouthWest = 7,
    /// (0, 0, +1) — along Z, same PE in the dataflow mapping.
    Up = 8,
    /// (0, 0, −1) — along Z, same PE in the dataflow mapping.
    Down = 9,
}

/// All ten neighbors in canonical face order.
pub const ALL_NEIGHBORS: [Neighbor; NEIGHBOR_COUNT] = [
    Neighbor::East,
    Neighbor::West,
    Neighbor::North,
    Neighbor::South,
    Neighbor::NorthEast,
    Neighbor::NorthWest,
    Neighbor::SouthEast,
    Neighbor::SouthWest,
    Neighbor::Up,
    Neighbor::Down,
];

/// The four in-plane cardinal neighbors (paper §5.2.1).
pub const CARDINAL_XY: [Neighbor; 4] = [
    Neighbor::East,
    Neighbor::West,
    Neighbor::North,
    Neighbor::South,
];

/// The four in-plane diagonal neighbors (paper §5.2.2).
pub const DIAGONAL_XY: [Neighbor; 4] = [
    Neighbor::NorthEast,
    Neighbor::NorthWest,
    Neighbor::SouthEast,
    Neighbor::SouthWest,
];

impl Neighbor {
    /// Canonical face index in `0..NEIGHBOR_COUNT`.
    #[inline]
    pub fn face_index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Neighbor::face_index`].
    #[inline]
    pub fn from_face_index(k: usize) -> Self {
        ALL_NEIGHBORS[k]
    }

    /// Structured offset `(dx, dy, dz)` of this neighbor.
    #[inline]
    pub fn offset(self) -> (i64, i64, i64) {
        match self {
            Neighbor::East => (1, 0, 0),
            Neighbor::West => (-1, 0, 0),
            Neighbor::North => (0, -1, 0),
            Neighbor::South => (0, 1, 0),
            Neighbor::NorthEast => (1, -1, 0),
            Neighbor::NorthWest => (-1, -1, 0),
            Neighbor::SouthEast => (1, 1, 0),
            Neighbor::SouthWest => (-1, 1, 0),
            Neighbor::Up => (0, 0, 1),
            Neighbor::Down => (0, 0, -1),
        }
    }

    /// The neighbor in the opposite direction; `n.opposite().opposite() == n`.
    #[inline]
    pub fn opposite(self) -> Self {
        match self {
            Neighbor::East => Neighbor::West,
            Neighbor::West => Neighbor::East,
            Neighbor::North => Neighbor::South,
            Neighbor::South => Neighbor::North,
            Neighbor::NorthEast => Neighbor::SouthWest,
            Neighbor::NorthWest => Neighbor::SouthEast,
            Neighbor::SouthEast => Neighbor::NorthWest,
            Neighbor::SouthWest => Neighbor::NorthEast,
            Neighbor::Up => Neighbor::Down,
            Neighbor::Down => Neighbor::Up,
        }
    }

    /// True for the four in-plane diagonal connections.
    #[inline]
    pub fn is_diagonal(self) -> bool {
        matches!(
            self,
            Neighbor::NorthEast | Neighbor::NorthWest | Neighbor::SouthEast | Neighbor::SouthWest
        )
    }

    /// True for the two Z connections, which stay inside one PE's memory in
    /// the dataflow mapping (no fabric traffic, paper §7.3).
    #[inline]
    pub fn is_vertical(self) -> bool {
        matches!(self, Neighbor::Up | Neighbor::Down)
    }
}

/// A 3D Cartesian mesh: extents, spacing, and indexing helpers.
///
/// Linear cell index layout matches the paper's GPU reference implementation
/// (§6): X innermost, Z outermost, i.e. `idx = (z·Ny + y)·Nx + x`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CartesianMesh3 {
    extents: Extents,
    spacing: Spacing,
}

impl CartesianMesh3 {
    /// Creates a mesh from extents and spacing.
    pub fn new(extents: Extents, spacing: Spacing) -> Self {
        Self { extents, spacing }
    }

    /// Mesh extents.
    #[inline]
    pub fn extents(&self) -> Extents {
        self.extents
    }

    /// Grid spacing.
    #[inline]
    pub fn spacing(&self) -> Spacing {
        self.spacing
    }

    /// Number of cells along X.
    #[inline]
    pub fn nx(&self) -> usize {
        self.extents.nx
    }

    /// Number of cells along Y.
    #[inline]
    pub fn ny(&self) -> usize {
        self.extents.ny
    }

    /// Number of cells along Z.
    #[inline]
    pub fn nz(&self) -> usize {
        self.extents.nz
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.extents.num_cells()
    }

    /// Cell volume `V_K = dx·dy·dz` [m³].
    #[inline]
    pub fn cell_volume(&self) -> f64 {
        self.spacing.dx * self.spacing.dy * self.spacing.dz
    }

    /// Linear index of cell `(x, y, z)` — X innermost, Z outermost.
    #[inline]
    pub fn linear(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.extents.nx && y < self.extents.ny && z < self.extents.nz);
        (z * self.extents.ny + y) * self.extents.nx + x
    }

    /// Linear index of a [`CellIdx`].
    #[inline]
    pub fn linear_idx(&self, c: CellIdx) -> usize {
        self.linear(c.x, c.y, c.z)
    }

    /// Structured coordinates of a linear index.
    #[inline]
    pub fn structured(&self, idx: usize) -> CellIdx {
        debug_assert!(idx < self.num_cells());
        let nx = self.extents.nx;
        let ny = self.extents.ny;
        let x = idx % nx;
        let y = (idx / nx) % ny;
        let z = idx / (nx * ny);
        CellIdx { x, y, z }
    }

    /// The neighbor cell of `(x, y, z)` in direction `n`, or `None` at the
    /// domain boundary (no-flow boundary condition, as in the paper).
    #[inline]
    pub fn neighbor(&self, c: CellIdx, n: Neighbor) -> Option<CellIdx> {
        let (dx, dy, dz) = n.offset();
        let x = c.x as i64 + dx;
        let y = c.y as i64 + dy;
        let z = c.z as i64 + dz;
        if x < 0
            || y < 0
            || z < 0
            || x >= self.extents.nx as i64
            || y >= self.extents.ny as i64
            || z >= self.extents.nz as i64
        {
            None
        } else {
            Some(CellIdx::new(x as usize, y as usize, z as usize))
        }
    }

    /// Linear index of the neighbor of `idx` in direction `n`, if interior.
    #[inline]
    pub fn neighbor_linear(&self, idx: usize, n: Neighbor) -> Option<usize> {
        self.neighbor(self.structured(idx), n)
            .map(|c| self.linear_idx(c))
    }

    /// Elevation (center Z coordinate, increasing upward) of a cell with Z
    /// index `z` [m]; layer 0 is the deepest.
    ///
    /// The gravity term of Eq. (3b) uses `z_K − z_L`; with a uniform grid this
    /// is `±dz` for vertical faces and `0` in-plane.
    #[inline]
    pub fn elevation(&self, z: usize) -> f64 {
        (z as f64 + 0.5) * self.spacing.dz
    }

    /// Cell center coordinates [m].
    #[inline]
    pub fn cell_center(&self, c: CellIdx) -> (f64, f64, f64) {
        (
            (c.x as f64 + 0.5) * self.spacing.dx,
            (c.y as f64 + 0.5) * self.spacing.dy,
            (c.z as f64 + 0.5) * self.spacing.dz,
        )
    }

    /// Iterates over all cells in linear-index order (x fastest).
    pub fn cells(&self) -> impl Iterator<Item = (usize, CellIdx)> + '_ {
        (0..self.num_cells()).map(move |i| (i, self.structured(i)))
    }

    /// Number of *interior* faces of the given stencil — each connection
    /// counted once. Useful for face-based assembly and conservation checks.
    pub fn num_interior_faces(&self, include_diagonals: bool) -> usize {
        let Extents { nx, ny, nz } = self.extents;
        let mut n = 0;
        n += (nx.saturating_sub(1)) * ny * nz; // x faces
        n += nx * (ny.saturating_sub(1)) * nz; // y faces
        n += nx * ny * (nz.saturating_sub(1)); // z faces
        if include_diagonals {
            // two diagonal families per X-Y plane: (+1,+1) and (+1,-1)
            n += (nx.saturating_sub(1)) * (ny.saturating_sub(1)) * nz * 2;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh_4x3x2() -> CartesianMesh3 {
        CartesianMesh3::new(Extents::new(4, 3, 2), Spacing::new(1.0, 2.0, 3.0))
    }

    #[test]
    fn linear_layout_is_x_innermost_z_outermost() {
        let m = mesh_4x3x2();
        assert_eq!(m.linear(0, 0, 0), 0);
        assert_eq!(m.linear(1, 0, 0), 1); // x innermost
        assert_eq!(m.linear(0, 1, 0), 4); // y strides by nx
        assert_eq!(m.linear(0, 0, 1), 12); // z strides by nx*ny
        assert_eq!(m.linear(3, 2, 1), 23);
        assert_eq!(m.num_cells(), 24);
    }

    #[test]
    fn structured_inverts_linear() {
        let m = mesh_4x3x2();
        for idx in 0..m.num_cells() {
            let c = m.structured(idx);
            assert_eq!(m.linear_idx(c), idx);
        }
    }

    #[test]
    fn neighbor_offsets_roundtrip_via_opposite() {
        for n in ALL_NEIGHBORS {
            assert_eq!(n.opposite().opposite(), n);
            let (dx, dy, dz) = n.offset();
            let (ox, oy, oz) = n.opposite().offset();
            assert_eq!((dx + ox, dy + oy, dz + oz), (0, 0, 0));
        }
    }

    #[test]
    fn face_index_roundtrip() {
        for (k, n) in ALL_NEIGHBORS.iter().enumerate() {
            assert_eq!(n.face_index(), k);
            assert_eq!(Neighbor::from_face_index(k), *n);
        }
    }

    #[test]
    fn interior_cell_has_ten_neighbors() {
        let m = CartesianMesh3::new(Extents::new(3, 3, 3), Spacing::uniform(1.0));
        let c = CellIdx::new(1, 1, 1);
        let found: Vec<_> = ALL_NEIGHBORS
            .iter()
            .filter_map(|&n| m.neighbor(c, n))
            .collect();
        assert_eq!(found.len(), NEIGHBOR_COUNT);
    }

    #[test]
    fn corner_cell_clips_at_boundary() {
        let m = CartesianMesh3::new(Extents::new(3, 3, 3), Spacing::uniform(1.0));
        let c = CellIdx::new(0, 0, 0);
        // From the (0,0,0) corner only East, South, SouthEast, Up survive.
        let found: Vec<_> = ALL_NEIGHBORS
            .iter()
            .filter(|&&n| m.neighbor(c, n).is_some())
            .copied()
            .collect();
        assert_eq!(
            found,
            vec![
                Neighbor::East,
                Neighbor::South,
                Neighbor::SouthEast,
                Neighbor::Up
            ]
        );
    }

    #[test]
    fn diagonal_and_vertical_classification() {
        assert!(Neighbor::NorthEast.is_diagonal());
        assert!(!Neighbor::East.is_diagonal());
        assert!(Neighbor::Up.is_vertical());
        assert!(!Neighbor::North.is_vertical());
        assert_eq!(ALL_NEIGHBORS.iter().filter(|n| n.is_diagonal()).count(), 4);
        assert_eq!(ALL_NEIGHBORS.iter().filter(|n| n.is_vertical()).count(), 2);
    }

    #[test]
    fn neighbor_symmetry_across_shared_face() {
        // If L is K's neighbor in direction n, then K is L's neighbor in
        // direction n.opposite().
        let m = mesh_4x3x2();
        for (_, c) in m.cells() {
            for n in ALL_NEIGHBORS {
                if let Some(l) = m.neighbor(c, n) {
                    assert_eq!(m.neighbor(l, n.opposite()), Some(c));
                }
            }
        }
    }

    #[test]
    fn elevation_uses_cell_centers() {
        let m = mesh_4x3x2();
        assert_eq!(m.elevation(0), 1.5);
        assert_eq!(m.elevation(1), 4.5);
    }

    #[test]
    fn interior_face_count_matches_enumeration() {
        let m = mesh_4x3x2();
        // count via neighbor enumeration, each face once (positive dirs only)
        let count = |diag: bool| {
            let mut n = 0;
            for (_, c) in m.cells() {
                for nb in ALL_NEIGHBORS {
                    let (dx, dy, dz) = nb.offset();
                    // Count only one orientation of each connection family.
                    let positive = (dx, dy, dz) == (1, 0, 0)
                        || (dx, dy, dz) == (0, 1, 0)
                        || (dx, dy, dz) == (0, 0, 1)
                        || (diag && ((dx, dy, dz) == (1, 1, 0) || (dx, dy, dz) == (1, -1, 0)));
                    if positive && m.neighbor(c, nb).is_some() {
                        n += 1;
                    }
                }
            }
            n
        };
        assert_eq!(m.num_interior_faces(false), count(false));
        assert_eq!(m.num_interior_faces(true), count(true));
    }

    #[test]
    fn cell_volume() {
        assert_eq!(mesh_4x3x2().cell_volume(), 6.0);
    }

    #[test]
    #[should_panic]
    fn zero_extent_rejected() {
        let _ = Extents::new(0, 1, 1);
    }
}
