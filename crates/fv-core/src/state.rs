//! Flow state: the pressure field and initial-condition constructors.
//!
//! The paper applies Algorithm 1 "1,000 times with a different pressure
//! vector at every call"; the constructors here generate the kinds of
//! pressure fields the driver cycles through.

use crate::eos::Fluid;
use crate::fields::CellField;
use crate::mesh::CartesianMesh3;
use crate::real::Real;

/// The primary unknown of the single-phase model: cell pressures.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowState<R> {
    pressure: CellField<R>,
}

impl<R: Real> FlowState<R> {
    /// Uniform pressure everywhere.
    pub fn uniform(mesh: &CartesianMesh3, p: f64) -> Self {
        Self {
            pressure: CellField::constant(mesh, R::from_f64(p)),
        }
    }

    /// Hydrostatic equilibrium: `p(z) = p_bottom − ρ_ref g (z − z_bottom)`,
    /// with `z` the cell-center *elevation* (layer 0 is the deepest).
    ///
    /// With an incompressible fluid this is the exact no-flow steady state;
    /// with slight compressibility it is very close, which makes it a good
    /// near-equilibrium initial condition.
    pub fn hydrostatic(mesh: &CartesianMesh3, fluid: &Fluid, p_bottom: f64) -> Self {
        let z_bottom = mesh.elevation(0);
        let pressure = CellField::from_fn(mesh, |c| {
            let z = mesh.elevation(c.z);
            R::from_f64(p_bottom - fluid.rho_ref * fluid.gravity * (z - z_bottom))
        });
        Self { pressure }
    }

    /// A Gaussian pressure pulse centered in the domain on top of a base
    /// pressure — mimics the near-well overpressure of an injection.
    pub fn gaussian_pulse(
        mesh: &CartesianMesh3,
        p_base: f64,
        amplitude: f64,
        radius_cells: f64,
    ) -> Self {
        assert!(radius_cells > 0.0);
        let (cx, cy, cz) = (
            mesh.nx() as f64 / 2.0,
            mesh.ny() as f64 / 2.0,
            mesh.nz() as f64 / 2.0,
        );
        let pressure = CellField::from_fn(mesh, |c| {
            let dx = c.x as f64 + 0.5 - cx;
            let dy = c.y as f64 + 0.5 - cy;
            let dz = c.z as f64 + 0.5 - cz;
            let r2 = (dx * dx + dy * dy + dz * dz) / (radius_cells * radius_cells);
            R::from_f64(p_base + amplitude * (-r2).exp())
        });
        Self { pressure }
    }

    /// A deterministic pseudo-random pressure field in `[p_min, p_max]`,
    /// seeded per iteration — the paper's driver feeds "a different pressure
    /// vector at every call", which this reproduces without RNG state.
    pub fn varied(mesh: &CartesianMesh3, p_min: f64, p_max: f64, iteration: u64) -> Self {
        assert!(p_max >= p_min);
        let pressure = CellField::from_fn(mesh, |c| {
            // SplitMix64-style hash of (cell, iteration) — cheap, portable,
            // identical on every implementation.
            let mut h = (c.x as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((c.y as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add((c.z as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
                .wrapping_add(iteration.wrapping_mul(0xD6E8_FEB8_6659_FD93));
            h ^= h >> 30;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 27;
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            R::from_f64(p_min + (p_max - p_min) * unit)
        });
        Self { pressure }
    }

    /// Wraps an existing pressure field.
    pub fn from_pressure(pressure: CellField<R>) -> Self {
        Self { pressure }
    }

    /// The pressure field.
    #[inline]
    pub fn pressure(&self) -> &[R] {
        self.pressure.as_slice()
    }

    /// Mutable pressure field.
    #[inline]
    pub fn pressure_mut(&mut self) -> &mut [R] {
        self.pressure.as_mut_slice()
    }

    /// The pressure as a [`CellField`].
    #[inline]
    pub fn pressure_field(&self) -> &CellField<R> {
        &self.pressure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Extents, Spacing};

    fn mesh() -> CartesianMesh3 {
        CartesianMesh3::new(Extents::new(6, 5, 4), Spacing::uniform(2.0))
    }

    #[test]
    fn uniform_state() {
        let s = FlowState::<f64>::uniform(&mesh(), 5.0e6);
        assert!(s.pressure().iter().all(|&p| p == 5.0e6));
    }

    #[test]
    fn hydrostatic_decreases_with_elevation() {
        let m = mesh();
        let f = Fluid::water_like();
        let s = FlowState::<f64>::hydrostatic(&m, &f, 10.0e6);
        let bottom = s.pressure()[m.linear(0, 0, 0)];
        let top = s.pressure()[m.linear(0, 0, m.nz() - 1)];
        assert_eq!(bottom, 10.0e6);
        let expect = 10.0e6 - f.rho_ref * f.gravity * (m.elevation(m.nz() - 1) - m.elevation(0));
        assert!((top - expect).abs() < 1e-6);
        assert!(top < bottom);
    }

    #[test]
    fn gaussian_pulse_peaks_at_center() {
        let m = mesh();
        let s = FlowState::<f64>::gaussian_pulse(&m, 1.0e6, 2.0e6, 2.0);
        let center = s.pressure()[m.linear(3, 2, 2)];
        let corner = s.pressure()[m.linear(0, 0, 0)];
        assert!(center > corner);
        assert!(center <= 3.0e6 + 1.0);
        assert!(corner >= 1.0e6);
    }

    #[test]
    fn varied_is_deterministic_and_iteration_dependent() {
        let m = mesh();
        let a = FlowState::<f64>::varied(&m, 1.0e6, 2.0e6, 7);
        let b = FlowState::<f64>::varied(&m, 1.0e6, 2.0e6, 7);
        let c = FlowState::<f64>::varied(&m, 1.0e6, 2.0e6, 8);
        assert_eq!(a.pressure(), b.pressure());
        assert_ne!(a.pressure(), c.pressure());
        assert!(a.pressure().iter().all(|&p| (1.0e6..=2.0e6).contains(&p)));
    }

    #[test]
    fn pressure_mut_is_writable() {
        let m = mesh();
        let mut s = FlowState::<f32>::uniform(&m, 1.0e6);
        s.pressure_mut()[0] = 9.9e6;
        assert_eq!(s.pressure()[0], 9.9e6);
        assert_eq!(s.pressure_field().len(), m.num_cells());
    }
}
