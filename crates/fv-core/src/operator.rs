//! Matrix-free operators built on the flux kernel.
//!
//! The paper's §8 notes that "the FV flux computation is naturally extendable
//! to a matrix-free FV operator for use in an iterative Krylov method which
//! would solve equation (2)". This module provides exactly that: linear
//! operators that apply the (linearized) flux stencil to a vector without
//! ever forming a matrix, so a Krylov solver only needs repeated flux sweeps.

use crate::eos::Fluid;
use crate::flux::face_flux_derivatives;
use crate::mesh::{CartesianMesh3, ALL_NEIGHBORS, NEIGHBOR_COUNT};
use crate::real::Real;
use crate::residual::{assemble_flux_residual, gravity_head};
use crate::trans::Transmissibilities;

/// A matrix-free linear operator `y = A x`.
pub trait LinearOperator<R: Real> {
    /// Applies the operator: `y ← A x`.
    fn apply(&self, x: &[R], y: &mut [R]);
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
}

/// The nonlinear flux-residual operator `r(p)` (Algorithm 1) with an
/// application counter — the "1,000 applications" driver of the paper's
/// evaluation calls through this.
pub struct FluxOperator<'a> {
    mesh: &'a CartesianMesh3,
    fluid: &'a Fluid,
    trans: &'a Transmissibilities,
    applications: std::cell::Cell<usize>,
}

impl<'a> FluxOperator<'a> {
    /// Creates the operator over borrowed problem data.
    pub fn new(mesh: &'a CartesianMesh3, fluid: &'a Fluid, trans: &'a Transmissibilities) -> Self {
        Self {
            mesh,
            fluid,
            trans,
            applications: std::cell::Cell::new(0),
        }
    }

    /// Evaluates `r ← r_flux(p)`.
    pub fn residual<R: Real>(&self, pressure: &[R], residual: &mut [R]) {
        self.applications.set(self.applications.get() + 1);
        assemble_flux_residual(self.mesh, self.fluid, self.trans, pressure, residual);
    }

    /// Number of residual evaluations so far.
    pub fn applications(&self) -> usize {
        self.applications.get()
    }

    /// The mesh this operator sweeps.
    pub fn mesh(&self) -> &CartesianMesh3 {
        self.mesh
    }
}

/// Symmetric positive-definite Picard linearization: mobilities `λ` are
/// frozen at a reference pressure, giving
///
/// ```text
/// (A x)_K = Σ_L Υ_KL λ_KL (x_K − x_L)
/// ```
///
/// a weighted graph Laplacian plus an optional positive diagonal shift —
/// exactly the operator a pressure solve hands to conjugate gradients.
pub struct FrozenMobilityOperator<R> {
    /// `Υ_KL · λ_KL` per cell-face slot, `coeff[cell*10 + face]`.
    coeff: Vec<R>,
    /// Optional positive diagonal (e.g. compressibility `Vφc/Δt`).
    diag: Vec<R>,
    n: usize,
    nx: usize,
    ny: usize,
    nz: usize,
}

impl<R: Real> FrozenMobilityOperator<R> {
    /// Freezes mobilities at pressure `p_ref` (per-face arithmetic average of
    /// the two cell mobilities, which keeps the operator symmetric).
    pub fn new(
        mesh: &CartesianMesh3,
        fluid: &Fluid,
        trans: &Transmissibilities,
        p_ref: &[R],
    ) -> Self {
        assert_eq!(p_ref.len(), mesh.num_cells());
        let inv_mu = R::ONE / R::from_f64(fluid.viscosity);
        let n = mesh.num_cells();
        let mut coeff = vec![R::ZERO; n * NEIGHBOR_COUNT];
        for (i, c) in mesh.cells() {
            let rho_k = fluid.density(p_ref[i]);
            for nb in ALL_NEIGHBORS {
                let Some(l) = mesh.neighbor(c, nb) else {
                    continue;
                };
                let j = mesh.linear_idx(l);
                let rho_l = fluid.density(p_ref[j]);
                let lambda = (rho_k + rho_l) * R::HALF * inv_mu;
                coeff[i * NEIGHBOR_COUNT + nb.face_index()] = R::from_f64(trans.t(i, nb)) * lambda;
            }
        }
        Self {
            coeff,
            diag: vec![R::ZERO; n],
            n,
            nx: mesh.nx(),
            ny: mesh.ny(),
            nz: mesh.nz(),
        }
    }

    /// Adds a diagonal shift (must be non-negative to preserve SPD).
    pub fn with_diagonal(mut self, diag: Vec<R>) -> Self {
        assert_eq!(diag.len(), self.n);
        assert!(diag.iter().all(|d| *d >= R::ZERO));
        self.diag = diag;
        self
    }

    /// The diagonal of `A` (Jacobi preconditioner): `Σ_L Υλ + shift`.
    pub fn diagonal(&self) -> Vec<R> {
        let mut d = self.diag.clone();
        for i in 0..self.n {
            for k in 0..NEIGHBOR_COUNT {
                d[i] += self.coeff[i * NEIGHBOR_COUNT + k];
            }
        }
        d
    }

    #[inline]
    fn neighbor_index(&self, i: usize, face: usize) -> Option<usize> {
        // Decode structured coords from the linear index (x innermost).
        let x = i % self.nx;
        let y = (i / self.nx) % self.ny;
        let z = i / (self.nx * self.ny);
        let (dx, dy, dz) = crate::mesh::Neighbor::from_face_index(face).offset();
        let xx = x as i64 + dx;
        let yy = y as i64 + dy;
        let zz = z as i64 + dz;
        if xx < 0
            || yy < 0
            || zz < 0
            || xx >= self.nx as i64
            || yy >= self.ny as i64
            || zz >= self.nz as i64
        {
            None
        } else {
            Some(((zz as usize * self.ny) + yy as usize) * self.nx + xx as usize)
        }
    }
}

impl<R: Real> LinearOperator<R> for FrozenMobilityOperator<R> {
    fn apply(&self, x: &[R], y: &mut [R]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for i in 0..self.n {
            let mut acc = self.diag[i] * x[i];
            for face in 0..NEIGHBOR_COUNT {
                let c = self.coeff[i * NEIGHBOR_COUNT + face];
                if c == R::ZERO {
                    continue;
                }
                // boundary faces store 0 so unwrap-by-skip is safe
                if let Some(j) = self.neighbor_index(i, face) {
                    acc += c * (x[i] - x[j]);
                }
            }
            y[i] = acc;
        }
    }

    fn dim(&self) -> usize {
        self.n
    }
}

/// Frozen-upwind Newton Jacobian of the flux residual (optionally plus an
/// accumulation diagonal), applied matrix-free:
///
/// ```text
/// (J v)_K = Σ_L [ ∂F_KL/∂p_K · v_K + ∂F_KL/∂p_L · v_L ] + d_K v_K
/// ```
///
/// Nonsymmetric in general (upwinding!), so pair it with BiCGSTAB.
pub struct JacobianOperator<R> {
    /// `∂F/∂p_K` per cell-face slot.
    df_dpk: Vec<R>,
    /// `∂F/∂p_L` per cell-face slot.
    df_dpl: Vec<R>,
    /// Accumulation diagonal.
    diag: Vec<R>,
    n: usize,
    nx: usize,
    ny: usize,
    nz: usize,
}

impl<R: Real> JacobianOperator<R> {
    /// Linearizes the flux residual at pressure `p_lin`.
    pub fn new(
        mesh: &CartesianMesh3,
        fluid: &Fluid,
        trans: &Transmissibilities,
        p_lin: &[R],
    ) -> Self {
        assert_eq!(p_lin.len(), mesh.num_cells());
        let n = mesh.num_cells();
        let mut df_dpk = vec![R::ZERO; n * NEIGHBOR_COUNT];
        let mut df_dpl = vec![R::ZERO; n * NEIGHBOR_COUNT];
        for (i, c) in mesh.cells() {
            for nb in ALL_NEIGHBORS {
                let Some(l) = mesh.neighbor(c, nb) else {
                    continue;
                };
                let j = mesh.linear_idx(l);
                let g_dz = gravity_head(fluid, mesh, nb);
                let (_, dk, dl) = face_flux_derivatives(
                    fluid,
                    R::from_f64(trans.t(i, nb)),
                    p_lin[i],
                    p_lin[j],
                    g_dz,
                );
                df_dpk[i * NEIGHBOR_COUNT + nb.face_index()] = dk;
                df_dpl[i * NEIGHBOR_COUNT + nb.face_index()] = dl;
            }
        }
        Self {
            df_dpk,
            df_dpl,
            diag: vec![R::ZERO; n],
            n,
            nx: mesh.nx(),
            ny: mesh.ny(),
            nz: mesh.nz(),
        }
    }

    /// Adds the accumulation diagonal `V d(φρ)/dp / Δt`.
    pub fn with_diagonal(mut self, diag: Vec<R>) -> Self {
        assert_eq!(diag.len(), self.n);
        self.diag = diag;
        self
    }

    #[inline]
    fn neighbor_index(&self, i: usize, face: usize) -> Option<usize> {
        let x = i % self.nx;
        let y = (i / self.nx) % self.ny;
        let z = i / (self.nx * self.ny);
        let (dx, dy, dz) = crate::mesh::Neighbor::from_face_index(face).offset();
        let xx = x as i64 + dx;
        let yy = y as i64 + dy;
        let zz = z as i64 + dz;
        if xx < 0
            || yy < 0
            || zz < 0
            || xx >= self.nx as i64
            || yy >= self.ny as i64
            || zz >= self.nz as i64
        {
            None
        } else {
            Some(((zz as usize * self.ny) + yy as usize) * self.nx + xx as usize)
        }
    }
}

impl<R: Real> LinearOperator<R> for JacobianOperator<R> {
    fn apply(&self, x: &[R], y: &mut [R]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for i in 0..self.n {
            let mut acc = self.diag[i] * x[i];
            for face in 0..NEIGHBOR_COUNT {
                let dk = self.df_dpk[i * NEIGHBOR_COUNT + face];
                let dl = self.df_dpl[i * NEIGHBOR_COUNT + face];
                if dk == R::ZERO && dl == R::ZERO {
                    continue;
                }
                if let Some(j) = self.neighbor_index(i, face) {
                    acc += dk * x[i] + dl * x[j];
                }
            }
            y[i] = acc;
        }
    }

    fn dim(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::PermeabilityField;
    use crate::linalg::dot;
    use crate::mesh::{Extents, Spacing};
    use crate::state::FlowState;
    use crate::trans::StencilKind;

    fn setup() -> (CartesianMesh3, Fluid, Transmissibilities) {
        let mesh = CartesianMesh3::new(Extents::new(4, 3, 3), Spacing::uniform(2.0));
        let fluid = Fluid::water_like();
        let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.3, 21);
        let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
        (mesh, fluid, trans)
    }

    #[test]
    fn flux_operator_counts_applications() {
        let (mesh, fluid, trans) = setup();
        let op = FluxOperator::new(&mesh, &fluid, &trans);
        let p = FlowState::<f64>::uniform(&mesh, 1.0e7);
        let mut r = vec![0.0; mesh.num_cells()];
        for _ in 0..5 {
            op.residual(p.pressure(), &mut r);
        }
        assert_eq!(op.applications(), 5);
        assert_eq!(op.mesh().num_cells(), mesh.num_cells());
    }

    #[test]
    fn frozen_operator_is_symmetric() {
        let (mesh, fluid, trans) = setup();
        let p = FlowState::<f64>::varied(&mesh, 1.0e7, 1.1e7, 2);
        let a = FrozenMobilityOperator::new(&mesh, &fluid, &trans, p.pressure());
        let n = mesh.num_cells();
        // check xᵀAy == yᵀAx on random-ish vectors
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 17) as f64 - 8.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 53 + 5) % 13) as f64 - 6.0).collect();
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        a.apply(&x, &mut ax);
        a.apply(&y, &mut ay);
        let lhs = dot(&y, &ax);
        let rhs = dot(&x, &ay);
        assert!(
            (lhs - rhs).abs() <= 1e-10 * lhs.abs().max(1e-30),
            "lhs={lhs} rhs={rhs}"
        );
        assert_eq!(a.dim(), n);
    }

    #[test]
    fn frozen_operator_is_positive_semidefinite_and_kills_constants() {
        let (mesh, fluid, trans) = setup();
        let p = FlowState::<f64>::uniform(&mesh, 1.0e7);
        let a = FrozenMobilityOperator::new(&mesh, &fluid, &trans, p.pressure());
        let n = mesh.num_cells();
        // constants are in the null space (pure Laplacian, no diagonal)
        let ones = vec![1.0; n];
        let mut out = vec![0.0; n];
        a.apply(&ones, &mut out);
        assert!(out.iter().all(|&v| v.abs() < 1e-12));
        // xᵀAx >= 0
        let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64).collect();
        let mut ax = vec![0.0; n];
        a.apply(&x, &mut ax);
        assert!(dot(&x, &ax) >= -1e-12);
    }

    #[test]
    fn diagonal_shift_makes_operator_definite() {
        let (mesh, fluid, trans) = setup();
        let p = FlowState::<f64>::uniform(&mesh, 1.0e7);
        let n = mesh.num_cells();
        let a = FrozenMobilityOperator::new(&mesh, &fluid, &trans, p.pressure())
            .with_diagonal(vec![1.0; n]);
        let ones = vec![1.0; n];
        let mut out = vec![0.0; n];
        a.apply(&ones, &mut out);
        for v in out {
            assert!((v - 1.0).abs() < 1e-12);
        }
        let d = a.diagonal();
        assert!(d.iter().all(|&v| v >= 1.0));
    }

    #[test]
    fn jacobian_matches_finite_difference_of_residual() {
        let (mesh, fluid, trans) = setup();
        let n = mesh.num_cells();
        let p = FlowState::<f64>::varied(&mesh, 1.0e7, 1.05e7, 4);
        let jac = JacobianOperator::new(&mesh, &fluid, &trans, p.pressure());
        // direction
        let v: Vec<f64> = (0..n)
            .map(|i| (((i * 29 + 3) % 11) as f64 - 5.0) * 1.0)
            .collect();
        let mut jv = vec![0.0; n];
        jac.apply(&v, &mut jv);
        // finite difference of the nonlinear residual
        let eps = 1e-2; // Pa-scale perturbation
        let mut p_plus = p.pressure().to_vec();
        let mut p_minus = p.pressure().to_vec();
        for i in 0..n {
            p_plus[i] += eps * v[i];
            p_minus[i] -= eps * v[i];
        }
        let mut r_plus = vec![0.0; n];
        let mut r_minus = vec![0.0; n];
        assemble_flux_residual(&mesh, &fluid, &trans, &p_plus, &mut r_plus);
        assemble_flux_residual(&mesh, &fluid, &trans, &p_minus, &mut r_minus);
        let scale = jv.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
        for i in 0..n {
            let fd = (r_plus[i] - r_minus[i]) / (2.0 * eps);
            assert!(
                (fd - jv[i]).abs() < 1e-5 * scale.max(1e-30),
                "cell {i}: fd={fd} analytic={}",
                jv[i]
            );
        }
        assert_eq!(jac.dim(), n);
    }

    #[test]
    fn jacobian_diagonal_shift_applies() {
        let (mesh, fluid, trans) = setup();
        let n = mesh.num_cells();
        let p = FlowState::<f64>::uniform(&mesh, 1.0e7);
        let jac =
            JacobianOperator::new(&mesh, &fluid, &trans, p.pressure()).with_diagonal(vec![2.0; n]);
        let v = vec![1.0; n];
        let mut jv = vec![0.0; n];
        jac.apply(&v, &mut jv);
        // uniform pressure without perturbation: flux Jacobian rows sum to
        // the gravity coupling only; with gravity-free fluid it'd be exact.
        // Here just check the diagonal showed up.
        assert!(jv.iter().all(|&x| x != 0.0));
    }
}
