//! Cell-centered fields and synthetic geomodel generators.
//!
//! The paper runs on "highly detailed geomodels" that are proprietary; per
//! the reproduction plan we generate synthetic permeability and pressure
//! fields with the same statistical character (layered, heterogeneous,
//! log-normally distributed permeability — standard for subsurface models).

use crate::mesh::{CartesianMesh3, CellIdx};
use crate::real::Real;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A cell-centered scalar field stored in mesh linear-index order
/// (X innermost, Z outermost).
#[derive(Debug, Clone, PartialEq)]
pub struct CellField<R> {
    data: Vec<R>,
}

impl<R: Real> CellField<R> {
    /// A field of zeros sized for `mesh`.
    pub fn zeros(mesh: &CartesianMesh3) -> Self {
        Self {
            data: vec![R::ZERO; mesh.num_cells()],
        }
    }

    /// A constant field.
    pub fn constant(mesh: &CartesianMesh3, value: R) -> Self {
        Self {
            data: vec![value; mesh.num_cells()],
        }
    }

    /// Builds a field by evaluating `f` at every cell.
    pub fn from_fn(mesh: &CartesianMesh3, mut f: impl FnMut(CellIdx) -> R) -> Self {
        let mut data = Vec::with_capacity(mesh.num_cells());
        for (_, c) in mesh.cells() {
            data.push(f(c));
        }
        Self { data }
    }

    /// Wraps an existing vector (must match the mesh size).
    pub fn from_vec(mesh: &CartesianMesh3, data: Vec<R>) -> Self {
        assert_eq!(data.len(), mesh.num_cells(), "field/mesh size mismatch");
        Self { data }
    }

    /// Immutable view of the raw data.
    #[inline]
    pub fn as_slice(&self) -> &[R] {
        &self.data
    }

    /// Mutable view of the raw data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [R] {
        &mut self.data
    }

    /// Consumes the field, returning the raw vector.
    pub fn into_vec(self) -> Vec<R> {
        self.data
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the field has no cells (never the case for a valid mesh).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts element type (e.g. an `f64` reference field to the `f32`
    /// working precision used on the fabric).
    pub fn cast<S: Real>(&self) -> CellField<S> {
        CellField {
            data: self.data.iter().map(|&v| S::from_f64(v.to_f64())).collect(),
        }
    }
}

impl<R> std::ops::Index<usize> for CellField<R> {
    type Output = R;
    #[inline]
    fn index(&self, i: usize) -> &R {
        &self.data[i]
    }
}

impl<R> std::ops::IndexMut<usize> for CellField<R> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut R {
        &mut self.data[i]
    }
}

/// Scalar (isotropic) permeability field `κ` [m²].
#[derive(Debug, Clone, PartialEq)]
pub struct PermeabilityField {
    values: Vec<f64>,
}

impl PermeabilityField {
    /// Homogeneous permeability.
    pub fn uniform(mesh: &CartesianMesh3, kappa: f64) -> Self {
        assert!(kappa > 0.0, "permeability must be positive");
        Self {
            values: vec![kappa; mesh.num_cells()],
        }
    }

    /// Layered permeability: each Z layer gets one value, cycling through
    /// `layer_values` — mimics the sedimentary layering of real geomodels.
    pub fn layered(mesh: &CartesianMesh3, layer_values: &[f64]) -> Self {
        assert!(!layer_values.is_empty());
        assert!(layer_values.iter().all(|&k| k > 0.0));
        let mut values = vec![0.0; mesh.num_cells()];
        for (i, c) in mesh.cells() {
            values[i] = layer_values[c.z % layer_values.len()];
        }
        Self { values }
    }

    /// Log-normally distributed heterogeneous permeability with the given
    /// median and log₁₀ standard deviation, seeded for reproducibility.
    pub fn log_normal(mesh: &CartesianMesh3, median: f64, log10_sigma: f64, seed: u64) -> Self {
        assert!(median > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let normal = rand::distributions::Uniform::new(-1.0_f64, 1.0);
        // Sum of 6 uniforms ≈ normal (Irwin–Hall), scaled to unit variance.
        let values = (0..mesh.num_cells())
            .map(|_| {
                let z: f64 = (0..6).map(|_| normal.sample(&mut rng)).sum::<f64>() / 6.0_f64.sqrt()
                    * 3.0_f64.sqrt();
                median * 10.0_f64.powf(log10_sigma * z)
            })
            .collect();
        Self { values }
    }

    /// Permeability of the cell with linear index `idx`.
    #[inline]
    pub fn kappa(&self, idx: usize) -> f64 {
        self.values[idx]
    }

    /// Raw values.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Extents, Spacing};

    fn mesh() -> CartesianMesh3 {
        CartesianMesh3::new(Extents::new(4, 3, 5), Spacing::uniform(1.0))
    }

    #[test]
    fn zeros_and_constant() {
        let m = mesh();
        let z = CellField::<f64>::zeros(&m);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let c = CellField::constant(&m, 2.5_f64);
        assert!(c.as_slice().iter().all(|&v| v == 2.5));
        assert_eq!(c.len(), m.num_cells());
        assert!(!c.is_empty());
    }

    #[test]
    fn from_fn_sees_every_cell_in_order() {
        let m = mesh();
        let f = CellField::from_fn(&m, |c| (c.x + 10 * c.y + 100 * c.z) as f64);
        for (i, c) in m.cells() {
            assert_eq!(f[i], (c.x + 10 * c.y + 100 * c.z) as f64);
        }
    }

    #[test]
    fn cast_f64_to_f32_preserves_values() {
        let m = mesh();
        let f = CellField::from_fn(&m, |c| c.x as f64 * 0.5);
        let g: CellField<f32> = f.cast();
        for i in 0..f.len() {
            assert_eq!(g[i] as f64, f[i]);
        }
    }

    #[test]
    #[should_panic]
    fn from_vec_checks_size() {
        let m = mesh();
        let _ = CellField::from_vec(&m, vec![0.0_f64; 3]);
    }

    #[test]
    fn layered_permeability_cycles_by_z() {
        let m = mesh();
        let k = PermeabilityField::layered(&m, &[1e-12, 1e-14]);
        for (i, c) in m.cells() {
            let expect = if c.z % 2 == 0 { 1e-12 } else { 1e-14 };
            assert_eq!(k.kappa(i), expect);
        }
    }

    #[test]
    fn log_normal_is_reproducible_and_positive() {
        let m = mesh();
        let a = PermeabilityField::log_normal(&m, 1e-13, 0.5, 42);
        let b = PermeabilityField::log_normal(&m, 1e-13, 0.5, 42);
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.as_slice().iter().all(|&k| k > 0.0));
        let c = PermeabilityField::log_normal(&m, 1e-13, 0.5, 43);
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn log_normal_median_is_roughly_right() {
        let m = CartesianMesh3::new(Extents::new(20, 20, 20), Spacing::uniform(1.0));
        let k = PermeabilityField::log_normal(&m, 1e-13, 0.3, 7);
        let mut v: Vec<f64> = k.as_slice().to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!(
            (median.log10() - (-13.0)).abs() < 0.15,
            "median {median:e} too far from 1e-13"
        );
    }

    #[test]
    fn index_mut_roundtrip() {
        let m = mesh();
        let mut f = CellField::<f64>::zeros(&m);
        f[5] = 9.0;
        assert_eq!(f[5], 9.0);
        f.as_mut_slice()[6] = 4.0;
        assert_eq!(f.clone().into_vec()[6], 4.0);
    }
}
