//! Compact human-readable trace summary: per-PE utilization, per-color
//! wavelet histograms, per-shard busy/idle timelines, top-K hottest PEs.
//!
//! This is the tool for diagnosing shard load imbalance: the per-shard
//! lines show each shard's mean utilization and an ASCII busy-density
//! timeline, so a shard that is starved (or saturated) relative to its
//! peers is visible at a glance.

use std::fmt;

use crate::event::TraceEventKind;
use crate::trace::Trace;

/// Number of buckets in the per-shard ASCII timeline.
const TIMELINE_BUCKETS: usize = 48;
/// Density glyphs from idle to fully busy.
const DENSITY: &[u8] = b" .:-=+*#%@";

/// Aggregated metrics computed from a [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Fabric dims, copied from the trace.
    pub cols: usize,
    /// Fabric dims, copied from the trace.
    pub rows: usize,
    /// Shard count, copied from the trace.
    pub num_shards: usize,
    /// Fabric time at end of run.
    pub final_time: u64,
    /// Utilization horizon: `final_time` extended to the last task
    /// completion (tasks delivered near the end may finish after the last
    /// event pop that advances fabric time).
    pub horizon: u64,
    /// Total retained events.
    pub num_events: usize,
    /// Total dropped events.
    pub dropped: u64,
    /// Busy cycles per linear PE (sum of task costs).
    pub busy_by_pe: Vec<u64>,
    /// `(color, sends, recvs)` rows, descending by `sends + recvs`.
    pub wavelets_by_color: Vec<(u8, u64, u64)>,
    /// Per-shard `(busy_cycles, pe_count, timeline)` where `timeline` holds
    /// mean utilization per bucket in [0, 1].
    pub shard_load: Vec<(u64, usize, Vec<f64>)>,
    /// `(linear pe, busy cycles)` for the hottest PEs, descending.
    pub hottest: Vec<(u32, u64)>,
    /// Number of flow stalls observed.
    pub flow_stalls: u64,
    /// Number of edge drops observed.
    pub edge_drops: u64,
    /// Number of fault events (injections and detections) observed.
    pub faults: u64,
    /// `TaskEnd` / `RegionEnd` markers whose opening partner is missing from
    /// the retained stream — the drop-oldest ring evicted the `TaskStart` /
    /// `RegionStart` but kept the end. When nonzero, busy/region accounting
    /// covers only the retained tail and must not be read as a full-run
    /// busy-horizon.
    pub unpaired_ends: u64,
    /// `TaskStart` / `RegionStart` markers never closed within the retained
    /// stream (task or region still open when recording stopped).
    pub unclosed_starts: u64,
}

impl TraceSummary {
    /// Compute a summary, keeping the `top_k` hottest PEs.
    pub fn from_trace(trace: &Trace, top_k: usize) -> Self {
        let num_pes = trace.num_pes();
        let mut busy_by_pe = vec![0u64; num_pes];
        let mut color_sends = [0u64; 256];
        let mut color_recvs = [0u64; 256];
        let mut flow_stalls = 0u64;
        let mut edge_drops = 0u64;
        let mut faults = 0u64;
        let horizon = trace
            .final_time
            .max(trace.events.last().map_or(0, |e| e.time))
            .max(1);
        let mut shard_load: Vec<(u64, usize, Vec<f64>)> = (0..trace.num_shards.max(1))
            .map(|_| (0, 0, vec![0.0; TIMELINE_BUCKETS]))
            .collect();
        for (pe, &shard) in trace.shard_of.iter().enumerate() {
            if let Some(entry) = shard_load.get_mut(shard as usize) {
                entry.1 += 1;
            }
            let _ = pe;
        }

        for ev in &trace.events {
            match ev.kind {
                TraceEventKind::TaskEnd => {
                    let cost = u64::from(ev.payload);
                    if let Some(b) = busy_by_pe.get_mut(ev.pe as usize) {
                        *b += cost;
                    }
                    let shard = *trace.shard_of.get(ev.pe as usize).unwrap_or(&0) as usize;
                    if let Some(entry) = shard_load.get_mut(shard) {
                        entry.0 += cost;
                        // Spread the task's busy interval over the timeline
                        // buckets it overlaps.
                        let start = ev.time.saturating_sub(cost);
                        let mut t = start;
                        while t < ev.time {
                            let bucket = ((t * TIMELINE_BUCKETS as u64) / horizon)
                                .min(TIMELINE_BUCKETS as u64 - 1)
                                as usize;
                            let bucket_end =
                                ((bucket as u64 + 1) * horizon).div_ceil(TIMELINE_BUCKETS as u64);
                            let step = bucket_end.min(ev.time).max(t + 1);
                            entry.2[bucket] += (step - t) as f64;
                            t = step;
                        }
                    }
                }
                TraceEventKind::WaveletSend => color_sends[ev.a as usize] += 1,
                TraceEventKind::WaveletRecv => color_recvs[ev.a as usize] += 1,
                TraceEventKind::FlowStall => flow_stalls += 1,
                TraceEventKind::EdgeDrop => edge_drops += 1,
                TraceEventKind::Fault => faults += 1,
                _ => {}
            }
        }

        // Normalize timelines: bucket busy-cycles → mean utilization of the
        // shard's PEs across the bucket's wall-clock span.
        for entry in &mut shard_load {
            let pes = entry.1.max(1) as f64;
            let bucket_span = (horizon as f64 / TIMELINE_BUCKETS as f64).max(1.0);
            for v in &mut entry.2 {
                *v = (*v / (pes * bucket_span)).min(1.0);
            }
        }

        let mut hottest: Vec<(u32, u64)> = busy_by_pe
            .iter()
            .enumerate()
            .map(|(pe, &b)| (pe as u32, b))
            .collect();
        hottest.sort_unstable_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        hottest.truncate(top_k);

        // Marker-pairing scan (per PE, causal order): a drop-oldest ring can
        // evict a TaskStart/RegionStart while its matching end survives;
        // count those so the busy/region numbers are not silently read as a
        // full-run horizon.
        let mut unpaired_ends = 0u64;
        let mut unclosed_starts = 0u64;
        for stream in trace.by_pe() {
            let mut in_task = false;
            let mut region_stack: Vec<u8> = Vec::new();
            for ev in &stream {
                match ev.kind {
                    TraceEventKind::TaskStart => {
                        if in_task {
                            unclosed_starts += 1;
                        }
                        in_task = true;
                    }
                    TraceEventKind::TaskEnd => {
                        if in_task {
                            in_task = false;
                        } else {
                            unpaired_ends += 1;
                        }
                    }
                    TraceEventKind::RegionStart => region_stack.push(ev.a),
                    TraceEventKind::RegionEnd => {
                        if region_stack.last() == Some(&ev.a) {
                            region_stack.pop();
                        } else {
                            unpaired_ends += 1;
                        }
                    }
                    _ => {}
                }
            }
            unclosed_starts += u64::from(in_task) + region_stack.len() as u64;
        }

        let mut wavelets_by_color: Vec<(u8, u64, u64)> = (0..256usize)
            .filter(|&c| color_sends[c] + color_recvs[c] > 0)
            .map(|c| (c as u8, color_sends[c], color_recvs[c]))
            .collect();
        wavelets_by_color
            .sort_unstable_by(|x, y| (y.1 + y.2).cmp(&(x.1 + x.2)).then(x.0.cmp(&y.0)));

        Self {
            cols: trace.cols,
            rows: trace.rows,
            num_shards: trace.num_shards,
            final_time: trace.final_time,
            horizon,
            num_events: trace.events.len(),
            dropped: trace.dropped,
            busy_by_pe,
            wavelets_by_color,
            shard_load,
            hottest,
            flow_stalls,
            edge_drops,
            faults,
            unpaired_ends,
            unclosed_starts,
        }
    }

    /// Mean utilization across all PEs in [0, 1].
    pub fn mean_utilization(&self) -> f64 {
        if self.busy_by_pe.is_empty() || self.horizon == 0 {
            return 0.0;
        }
        let total: u64 = self.busy_by_pe.iter().sum();
        total as f64 / (self.horizon as f64 * self.busy_by_pe.len() as f64)
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace summary: {}x{} fabric, {} shard(s), final_time={} cycles, {} events ({} dropped)",
            self.cols, self.rows, self.num_shards, self.final_time, self.num_events, self.dropped
        )?;
        writeln!(
            f,
            "  mean PE utilization: {:5.1}%   flow stalls: {}   edge drops: {}   faults: {}",
            100.0 * self.mean_utilization(),
            self.flow_stalls,
            self.edge_drops,
            self.faults
        )?;
        if self.unpaired_ends + self.unclosed_starts > 0 {
            writeln!(
                f,
                "  WARNING: {} unpaired end marker(s), {} unclosed start marker(s) — \
                 ring eviction truncated task/region pairs; busy and region \
                 figures cover the retained tail only, not the full run",
                self.unpaired_ends, self.unclosed_starts
            )?;
        }
        writeln!(
            f,
            "  per-shard load (utilization timeline, {} buckets):",
            TIMELINE_BUCKETS
        )?;
        for (shard, (busy, pes, timeline)) in self.shard_load.iter().enumerate() {
            let denom = (self.horizon.max(1) as f64) * (*pes).max(1) as f64;
            let util = 100.0 * *busy as f64 / denom;
            let bar: String = timeline
                .iter()
                .map(|&v| {
                    let idx =
                        ((v * (DENSITY.len() - 1) as f64).round() as usize).min(DENSITY.len() - 1);
                    DENSITY[idx] as char
                })
                .collect();
            writeln!(
                f,
                "    shard {shard:>3} ({pes:>4} PEs): {util:5.1}% |{bar}|"
            )?;
        }
        writeln!(f, "  wavelets by color (sends/recvs):")?;
        for &(color, sends, recvs) in self.wavelets_by_color.iter().take(12) {
            writeln!(
                f,
                "    color {color:>3}: {sends:>8} sent {recvs:>8} delivered"
            )?;
        }
        if self.wavelets_by_color.len() > 12 {
            writeln!(f, "    … {} more colors", self.wavelets_by_color.len() - 12)?;
        }
        writeln!(f, "  hottest PEs (busy cycles):")?;
        for &(pe, busy) in &self.hottest {
            let (col, row) = (
                pe as usize % self.cols.max(1),
                pe as usize / self.cols.max(1),
            );
            let util = 100.0 * busy as f64 / self.horizon.max(1) as f64;
            writeln!(f, "    PE ({col},{row}): {busy:>10} cycles  {util:5.1}%")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::EventRing;

    #[test]
    fn summary_aggregates_busy_and_colors() {
        let mut r0 = EventRing::new(0, 64);
        let mut r1 = EventRing::new(1, 64);
        let host = EventRing::new(crate::HOST_PE, 4);
        r0.record_at(240, TraceEventKind::TaskEnd, 5, 0, 240);
        r0.record_at(480, TraceEventKind::TaskEnd, 5, 0, 120);
        r0.record_at(1, TraceEventKind::WaveletSend, 5, 1, 0);
        r1.record_at(480, TraceEventKind::TaskEnd, 7, 0, 480);
        r1.record_at(2, TraceEventKind::WaveletRecv, 5, 4, 0);
        r1.record_at(3, TraceEventKind::FlowStall, 7, 0, 0);
        let t = Trace::from_rings(2, 1, 2, vec![0, 1], 480, &[&r0, &r1], &host);
        let s = TraceSummary::from_trace(&t, 2);
        assert_eq!(s.busy_by_pe, vec![360, 480]);
        assert_eq!(s.hottest, vec![(1, 480), (0, 360)]);
        assert_eq!(s.wavelets_by_color, vec![(5, 1, 1)]);
        assert_eq!(s.flow_stalls, 1);
        // PE1 busy the whole run, PE0 busy 75% → mean 87.5%.
        assert!((s.mean_utilization() - 0.875).abs() < 1e-12);
        // Shard 1's timeline is fully busy.
        assert!(s.shard_load[1].2.iter().all(|&v| v > 0.99));
        let text = s.to_string();
        assert!(text.contains("shard   0"));
        assert!(text.contains("hottest PEs"));
        // The bare TaskEnds above have no retained TaskStart: reported, not
        // silently folded into the busy horizon.
        assert_eq!(s.unpaired_ends, 3);
    }

    #[test]
    fn eviction_that_splits_marker_pairs_is_reported() {
        use crate::event::{TraceEventKind as K, TraceRegion};
        // Capacity 3: recording start/end pairs for two tasks (with a region
        // inside the second) evicts the older events, leaving end markers
        // whose starts are gone.
        let mut ring = EventRing::new(0, 3);
        let host = EventRing::new(crate::HOST_PE, 1);
        ring.record_at(0, K::TaskStart, 1, 0, 0);
        ring.record_at(10, K::TaskEnd, 1, 0, 10);
        ring.record_at(20, K::TaskStart, 1, 0, 0);
        ring.record_at(21, K::RegionStart, TraceRegion::FluxCompute.code(), 0, 0);
        ring.record_at(29, K::RegionEnd, TraceRegion::FluxCompute.code(), 0, 0);
        ring.record_at(30, K::TaskEnd, 1, 0, 10);
        let t = Trace::from_rings(1, 1, 1, vec![0], 30, &[&ring], &host);
        assert!(t.dropped > 0);
        let s = TraceSummary::from_trace(&t, 1);
        // Retained tail: RegionStart, RegionEnd, TaskEnd — the TaskEnd's
        // start was evicted.
        assert_eq!(s.unpaired_ends, 1);
        assert_eq!(s.unclosed_starts, 0);
        assert!(s.to_string().contains("WARNING"));

        // An uncapped ring pairs cleanly.
        let mut full = EventRing::new(0, 64);
        full.record_at(0, K::TaskStart, 1, 0, 0);
        full.record_at(5, K::RegionStart, TraceRegion::HaloExchange.code(), 0, 0);
        full.record_at(8, K::RegionEnd, TraceRegion::HaloExchange.code(), 0, 0);
        full.record_at(10, K::TaskEnd, 1, 0, 10);
        let t2 = Trace::from_rings(1, 1, 1, vec![0], 10, &[&full], &host);
        let s2 = TraceSummary::from_trace(&t2, 1);
        assert_eq!(s2.unpaired_ends, 0);
        assert_eq!(s2.unclosed_starts, 0);
        assert!(!s2.to_string().contains("WARNING"));
    }
}
