//! Shared parsing for the `--trace out.json [--trace-cap N]` and
//! `--profile out.json` flags used by the benchmark binaries and the
//! quickstart example.

use crate::sink::{TraceSpec, DEFAULT_RING_CAPACITY};

/// A parsed `--trace` request: where to write the Chrome JSON and how big
/// each per-PE ring should be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRequest {
    /// Output path for the Chrome `trace_event` JSON.
    pub path: String,
    /// Per-PE ring capacity in events.
    pub capacity: usize,
}

impl TraceRequest {
    /// The [`TraceSpec`] to put in `FabricConfig` / the simulator builder.
    pub fn spec(&self) -> TraceSpec {
        TraceSpec::ring(self.capacity)
    }
}

/// Parse `--trace <path> [--trace-cap <events>]` from an argument slice.
/// Returns `None` when `--trace` is absent or has no path value.
pub fn trace_request_from_arg_slice(args: &[String]) -> Option<TraceRequest> {
    let path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))?
        .clone();
    let capacity = args
        .iter()
        .position(|a| a == "--trace-cap")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_RING_CAPACITY);
    Some(TraceRequest { path, capacity })
}

/// [`trace_request_from_arg_slice`] over the process's own CLI arguments.
pub fn trace_request_from_args() -> Option<TraceRequest> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    trace_request_from_arg_slice(&args)
}

/// A parsed `--profile` request: where to write the profile JSON and how
/// big each per-PE ring should be. Profiling implies tracing (the profile is
/// derived from the event trace), so the ring capacity is shared with
/// `--trace-cap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRequest {
    /// Output path for the profile JSON.
    pub path: String,
    /// Per-PE ring capacity in events.
    pub capacity: usize,
}

impl ProfileRequest {
    /// The [`TraceSpec`] to put in `FabricConfig` / the simulator builder.
    pub fn spec(&self) -> TraceSpec {
        TraceSpec::ring(self.capacity)
    }
}

/// Parse `--profile <path> [--trace-cap <events>]` from an argument slice.
/// Returns `None` when `--profile` is absent or has no path value.
pub fn profile_request_from_arg_slice(args: &[String]) -> Option<ProfileRequest> {
    let path = args
        .iter()
        .position(|a| a == "--profile")
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))?
        .clone();
    let capacity = args
        .iter()
        .position(|a| a == "--trace-cap")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_RING_CAPACITY);
    Some(ProfileRequest { path, capacity })
}

/// [`profile_request_from_arg_slice`] over the process's own CLI arguments.
pub fn profile_request_from_args() -> Option<ProfileRequest> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    profile_request_from_arg_slice(&args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_trace_flag_with_and_without_cap() {
        assert_eq!(trace_request_from_arg_slice(&to_args("")), None);
        assert_eq!(trace_request_from_arg_slice(&to_args("--shards 4")), None);
        assert_eq!(
            trace_request_from_arg_slice(&to_args("--trace out.json")),
            Some(TraceRequest {
                path: "out.json".into(),
                capacity: DEFAULT_RING_CAPACITY
            })
        );
        assert_eq!(
            trace_request_from_arg_slice(&to_args("--shards 4 --trace t.json --trace-cap 128")),
            Some(TraceRequest {
                path: "t.json".into(),
                capacity: 128
            })
        );
        // `--trace` immediately followed by another flag is not a path.
        assert_eq!(
            trace_request_from_arg_slice(&to_args("--trace --trace-cap 128")),
            None
        );
    }

    #[test]
    fn parses_profile_flag_with_shared_cap() {
        assert_eq!(profile_request_from_arg_slice(&to_args("")), None);
        assert_eq!(
            profile_request_from_arg_slice(&to_args("--profile p.json")),
            Some(ProfileRequest {
                path: "p.json".into(),
                capacity: DEFAULT_RING_CAPACITY
            })
        );
        assert_eq!(
            profile_request_from_arg_slice(&to_args(
                "--trace t.json --profile p.json --trace-cap 64"
            )),
            Some(ProfileRequest {
                path: "p.json".into(),
                capacity: 64
            })
        );
        assert_eq!(
            profile_request_from_arg_slice(&to_args("--profile --trace-cap 64")),
            None
        );
    }
}
