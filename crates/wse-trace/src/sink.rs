//! Trace sinks: where events go at record time.
//!
//! The simulator's hot path holds a [`PeTracer`] per PE — an enum over
//! [`NullSink`] (tracing off, every record is a no-op the optimizer deletes)
//! and [`EventRing`] (tracing on, bounded drop-oldest ring buffer). Enum
//! dispatch instead of `dyn TraceSink` keeps the off path free of virtual
//! calls and lets the whole record body inline away.

use crate::event::{TraceEvent, TraceEventKind, TraceOp, TraceRegion};

/// Default per-PE ring capacity (events). At ≤ 32 bytes per event this is
/// ≤ 128 KiB per PE.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Tracing request carried through `FabricConfig` / `DataflowOptions`.
///
/// The default is off; an off spec costs one predictable branch per
/// instrumentation site and zero memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Record events into per-PE ring buffers?
    pub enabled: bool,
    /// Ring capacity per PE in events (drop-oldest once full). Clamped to a
    /// minimum of 1.
    pub per_pe_capacity: usize,
}

impl TraceSpec {
    /// Tracing disabled (the default).
    pub const OFF: Self = Self {
        enabled: false,
        per_pe_capacity: DEFAULT_RING_CAPACITY,
    };

    /// Tracing enabled with the given per-PE ring capacity.
    pub fn ring(per_pe_capacity: usize) -> Self {
        Self {
            enabled: true,
            per_pe_capacity,
        }
    }
}

impl Default for TraceSpec {
    fn default() -> Self {
        Self::OFF
    }
}

/// Minimal sink interface: accept a fully-formed event, report drops.
///
/// The simulator's per-PE hot path does not go through this trait (it uses
/// [`PeTracer`]'s inherent methods so the off arm stays branch-only); the
/// trait exists for exporters, tests, and out-of-band consumers that want to
/// feed pre-built events into a sink generically.
pub trait TraceSink {
    /// Record one event (the sink may drop it if bounded and full).
    fn record(&mut self, ev: TraceEvent);
    /// Number of events dropped so far because the sink was full.
    fn dropped(&self) -> u64;
}

/// Sink that discards everything. All methods compile to no-ops.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}

    #[inline(always)]
    fn dropped(&self) -> u64 {
        0
    }
}

/// Bounded drop-oldest ring buffer of [`TraceEvent`]s for one PE.
///
/// The ring also owns the PE's trace `seq` counter and the task time base
/// used to timestamp DSD ops (see [`EventRing::task_begin`]). `seq`
/// increments on every record attempt — even when the ring is full and the
/// oldest event is evicted — so a capped ring's contents are always exactly
/// the tail of what an uncapped ring would hold.
#[derive(Debug, Clone)]
pub struct EventRing {
    pe: u32,
    capacity: usize,
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring is full (next eviction slot).
    head: usize,
    next_seq: u32,
    dropped: u64,
    /// Fabric time at which the current task started.
    base_time: u64,
    /// The PE's cycle counter at task start; DSD op time is
    /// `base_time + (cycles_now − base_cycles)`.
    base_cycles: u64,
}

impl EventRing {
    /// New empty ring for linear PE index `pe` holding up to `capacity`
    /// events (clamped to ≥ 1).
    pub fn new(pe: u32, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            pe,
            capacity,
            // Lazily grown up to `capacity` so huge caps only cost what is
            // actually recorded.
            buf: Vec::new(),
            head: 0,
            next_seq: 0,
            dropped: 0,
            base_time: 0,
            base_cycles: 0,
        }
    }

    /// Linear PE index this ring records for.
    #[inline]
    pub fn pe(&self) -> u32 {
        self.pe
    }

    /// Configured capacity in events.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Set the time base for the task now starting: `start` is the fabric
    /// time the task begins, `cycles` the PE cycle counter at that instant.
    #[inline]
    pub fn task_begin(&mut self, start: u64, cycles: u64) {
        self.base_time = start;
        self.base_cycles = cycles;
    }

    /// Fabric-time estimate for "now" inside the current task, given the
    /// PE's current cycle counter.
    #[inline]
    pub fn now(&self, cycles: u64) -> u64 {
        self.base_time + cycles.saturating_sub(self.base_cycles)
    }

    /// Record an event at `time`, assigning this ring's PE index and next
    /// sequence number.
    #[inline]
    pub fn record_at(&mut self, time: u64, kind: TraceEventKind, a: u8, b: u16, payload: u32) {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.push(TraceEvent {
            time,
            seq,
            pe: self.pe,
            payload,
            kind,
            a,
            b,
        });
    }

    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Retained events oldest-first (causal `seq` order for this PE).
    pub fn ordered(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Sequence/base counters as `(next_seq, dropped, base_time,
    /// base_cycles)` — the part of a ring a fabric checkpoint preserves so
    /// post-restore events continue the per-PE causal `seq` chain. Ring
    /// *contents* are observability, not simulation state, and are not
    /// captured.
    pub fn seq_state(&self) -> (u32, u64, u64, u64) {
        (
            self.next_seq,
            self.dropped,
            self.base_time,
            self.base_cycles,
        )
    }

    /// Restores counters captured by [`EventRing::seq_state`]. Retained
    /// events are left alone: a restored ring keeps whatever it recorded
    /// since construction and merely resumes numbering where the snapshot
    /// left off.
    pub fn restore_seq_state(
        &mut self,
        next_seq: u32,
        dropped: u64,
        base_time: u64,
        base_cycles: u64,
    ) {
        self.next_seq = next_seq;
        self.dropped = dropped;
        self.base_time = base_time;
        self.base_cycles = base_cycles;
    }
}

impl TraceSink for EventRing {
    /// Insert a pre-built event verbatim (the caller owns `pe`/`seq`),
    /// still honouring drop-oldest.
    fn record(&mut self, ev: TraceEvent) {
        self.push(ev);
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A whole fabric's worth of rings plus one host/meta ring, routable by the
/// `pe` field of incoming events. This is the "RingSink" the simulator
/// assembles a [`crate::Trace`] from.
#[derive(Debug, Clone)]
pub struct RingSink {
    rings: Vec<EventRing>,
    host: EventRing,
}

impl RingSink {
    /// One ring per PE (linear index order) plus a host ring, each with
    /// `per_pe_capacity` slots.
    pub fn new(num_pes: usize, per_pe_capacity: usize) -> Self {
        Self {
            rings: (0..num_pes)
                .map(|pe| EventRing::new(pe as u32, per_pe_capacity))
                .collect(),
            host: EventRing::new(crate::HOST_PE, per_pe_capacity),
        }
    }

    /// Ring for linear PE index `pe`.
    pub fn ring(&self, pe: usize) -> &EventRing {
        &self.rings[pe]
    }

    /// Mutable ring for linear PE index `pe`.
    pub fn ring_mut(&mut self, pe: usize) -> &mut EventRing {
        &mut self.rings[pe]
    }

    /// The host/meta ring (PE index [`crate::HOST_PE`]).
    pub fn host(&self) -> &EventRing {
        &self.host
    }

    /// Mutable host/meta ring.
    pub fn host_mut(&mut self) -> &mut EventRing {
        &mut self.host
    }

    /// Number of per-PE rings.
    pub fn num_pes(&self) -> usize {
        self.rings.len()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        if (ev.pe as usize) < self.rings.len() {
            self.rings[ev.pe as usize].record(ev);
        } else {
            self.host.record(ev);
        }
    }

    fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum::<u64>() + self.host.dropped
    }
}

/// Per-PE tracer held on the simulator hot path: either a no-op or a ring.
///
/// Every method is `#[inline]` and starts with the enum match, so with
/// tracing off each instrumentation site costs a single well-predicted
/// branch and the argument computation folds away.
#[derive(Debug, Clone)]
pub enum PeTracer {
    /// Tracing off — all records are no-ops.
    Null(NullSink),
    /// Tracing on — records land in this PE's bounded ring.
    Ring(Box<EventRing>),
}

impl PeTracer {
    /// A disabled tracer.
    #[inline]
    pub fn null() -> Self {
        Self::Null(NullSink)
    }

    /// Build from a [`TraceSpec`] for linear PE index `pe`.
    pub fn for_spec(spec: TraceSpec, pe: u32) -> Self {
        if spec.enabled {
            Self::Ring(Box::new(EventRing::new(pe, spec.per_pe_capacity)))
        } else {
            Self::null()
        }
    }

    /// Is this tracer recording?
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, Self::Ring(_))
    }

    /// The ring, if tracing is on.
    pub fn ring(&self) -> Option<&EventRing> {
        match self {
            Self::Null(_) => None,
            Self::Ring(r) => Some(r),
        }
    }

    /// Record an event at fabric time `time`.
    #[inline]
    pub fn record_at(&mut self, time: u64, kind: TraceEventKind, a: u8, b: u16, payload: u32) {
        match self {
            Self::Null(_) => {}
            Self::Ring(r) => r.record_at(time, kind, a, b, payload),
        }
    }

    /// Mark the start of a task: `start` is fabric time, `cycles` the PE's
    /// cycle counter at that instant (see [`EventRing::task_begin`]).
    #[inline]
    pub fn task_begin(&mut self, start: u64, cycles: u64) {
        match self {
            Self::Null(_) => {}
            Self::Ring(r) => r.task_begin(start, cycles),
        }
    }

    /// Record one DSD vector instruction of length `len`, timestamped from
    /// the current task base and the PE's cycle counter *before* the
    /// instruction's cost is added.
    #[inline]
    pub fn dsd(&mut self, cycles_before: u64, op: TraceOp, len: u32) {
        match self {
            Self::Null(_) => {}
            Self::Ring(r) => {
                let t = r.now(cycles_before);
                r.record_at(t, TraceEventKind::DsdOp, op.code(), 0, len);
            }
        }
    }

    /// Open a named profiling region, timestamped from the current task base
    /// and the PE's current cycle counter (like [`PeTracer::dsd`]). With
    /// tracing off this is a single predicted branch.
    #[inline]
    pub fn region_begin(&mut self, cycles_now: u64, region: TraceRegion) {
        match self {
            Self::Null(_) => {}
            Self::Ring(r) => {
                let t = r.now(cycles_now);
                r.record_at(t, TraceEventKind::RegionStart, region.code(), 0, 0);
            }
        }
    }

    /// Close the matching profiling region (same timestamping rule as
    /// [`PeTracer::region_begin`]).
    #[inline]
    pub fn region_end(&mut self, cycles_now: u64, region: TraceRegion) {
        match self {
            Self::Null(_) => {}
            Self::Ring(r) => {
                let t = r.now(cycles_now);
                r.record_at(t, TraceEventKind::RegionEnd, region.code(), 0, 0);
            }
        }
    }

    /// Events dropped by this tracer's ring (0 when off).
    #[inline]
    pub fn dropped(&self) -> u64 {
        match self {
            Self::Null(_) => 0,
            Self::Ring(r) => r.dropped,
        }
    }

    /// [`EventRing::seq_state`] of the ring, or all zeros when tracing is
    /// off (zeros restore as a no-op, so off-tracer snapshots round-trip).
    pub fn seq_state(&self) -> (u32, u64, u64, u64) {
        match self {
            Self::Null(_) => (0, 0, 0, 0),
            Self::Ring(r) => r.seq_state(),
        }
    }

    /// Restores [`EventRing::restore_seq_state`] counters; no-op when
    /// tracing is off.
    pub fn restore_seq_state(
        &mut self,
        next_seq: u32,
        dropped: u64,
        base_time: u64,
        base_cycles: u64,
    ) {
        match self {
            Self::Null(_) => {}
            Self::Ring(r) => r.restore_seq_state(next_seq, dropped, base_time, base_cycles),
        }
    }
}

impl Default for PeTracer {
    fn default() -> Self {
        Self::null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_kinds(ring: &EventRing) -> Vec<u32> {
        ring.ordered().iter().map(|e| e.payload).collect()
    }

    #[test]
    fn ring_drop_oldest_keeps_tail_and_counts_drops() {
        let mut ring = EventRing::new(7, 4);
        for i in 0..10u32 {
            ring.record_at(i as u64, TraceEventKind::TaskStart, 0, 0, i);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped, 6);
        assert_eq!(drain_kinds(&ring), vec![6, 7, 8, 9]);
        // seq keeps counting through drops: the retained tail carries the
        // original sequence numbers.
        let seqs: Vec<_> = ring.ordered().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(ring.ordered().iter().all(|e| e.pe == 7));
    }

    #[test]
    fn capped_ring_matches_tail_of_uncapped() {
        let mut big = EventRing::new(0, 1000);
        let mut small = EventRing::new(0, 8);
        for i in 0..37u32 {
            big.record_at(i as u64, TraceEventKind::WaveletSend, 1, 2, i);
            small.record_at(i as u64, TraceEventKind::WaveletSend, 1, 2, i);
        }
        let all = big.ordered();
        assert_eq!(small.ordered(), all[all.len() - 8..].to_vec());
        assert_eq!(small.dropped, 37 - 8);
        assert_eq!(big.dropped, 0);
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let mut ring = EventRing::new(0, 0);
        ring.record_at(0, TraceEventKind::TaskStart, 0, 0, 1);
        ring.record_at(1, TraceEventKind::TaskStart, 0, 0, 2);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped, 1);
        assert_eq!(drain_kinds(&ring), vec![2]);
    }

    #[test]
    fn null_tracer_records_nothing() {
        let mut t = PeTracer::null();
        t.task_begin(5, 10);
        t.record_at(6, TraceEventKind::Error, 1, 0, 0);
        t.dsd(11, TraceOp::Fmul, 8);
        t.region_begin(11, TraceRegion::FluxCompute);
        t.region_end(12, TraceRegion::FluxCompute);
        assert!(!t.enabled());
        assert_eq!(t.dropped(), 0);
        assert!(t.ring().is_none());
    }

    #[test]
    fn region_markers_time_like_dsd_ops() {
        let mut t = PeTracer::for_spec(TraceSpec::ring(16), 3);
        t.task_begin(100, 40);
        t.region_begin(40, TraceRegion::HaloExchange); // at task start → 100
        t.dsd(44, TraceOp::FmovOut, 4); // 4 cycles in → 104
        t.region_end(52, TraceRegion::HaloExchange); // 12 cycles in → 112
        let evs = t.ring().unwrap().ordered();
        assert_eq!(
            evs.iter().map(|e| (e.kind, e.time)).collect::<Vec<_>>(),
            vec![
                (TraceEventKind::RegionStart, 100),
                (TraceEventKind::DsdOp, 104),
                (TraceEventKind::RegionEnd, 112),
            ]
        );
        assert!(evs
            .iter()
            .filter(|e| e.kind != TraceEventKind::DsdOp)
            .all(|e| e.a == TraceRegion::HaloExchange.code()));
    }

    #[test]
    fn dsd_times_offset_from_task_base() {
        let mut t = PeTracer::for_spec(TraceSpec::ring(16), 3);
        t.task_begin(100, 40);
        t.dsd(40, TraceOp::Fmul, 8); // at task start → time 100
        t.dsd(48, TraceOp::Fadd, 8); // 8 cycles in → time 108
        let ring = t.ring().unwrap();
        let times: Vec<_> = ring.ordered().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![100, 108]);
        assert_eq!(ring.ordered()[1].a, TraceOp::Fadd.code());
    }

    #[test]
    fn ring_sink_routes_by_pe() {
        let mut sink = RingSink::new(2, 4);
        let ev = |pe| TraceEvent {
            time: 0,
            seq: 0,
            pe,
            payload: 0,
            kind: TraceEventKind::TaskStart,
            a: 0,
            b: 0,
        };
        sink.record(ev(0));
        sink.record(ev(1));
        sink.record(ev(crate::HOST_PE));
        assert_eq!(sink.ring(0).len(), 1);
        assert_eq!(sink.ring(1).len(), 1);
        assert_eq!(sink.host().len(), 1);
        assert_eq!(sink.dropped(), 0);
    }
}
