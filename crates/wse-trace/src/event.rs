//! Fixed-size trace records.
//!
//! Every observation the simulator makes is squeezed into one [`TraceEvent`]
//! of at most 32 bytes (asserted at compile time), so ring-buffer memory cost
//! is predictable: `capacity × size_of::<TraceEvent>()` per PE, no heap
//! allocation per event.

/// What happened. The discriminant is stable and part of the export format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceEventKind {
    /// A task handler started executing on a PE (`a` = color, `b` = 1 for a
    /// control wavelet / 0 for data, `payload` = raw wavelet bits; `time` is
    /// the cycle the PE became free to run it).
    TaskStart = 0,
    /// The matching task handler finished (`a` = color, `payload` = cost in
    /// cycles; `time` is start + cost).
    TaskEnd = 1,
    /// The router forwarded a wavelet onto a fabric link (`a` = color,
    /// `b` = link code | control flag, `payload` = raw wavelet bits).
    WaveletSend = 2,
    /// The router delivered a wavelet down the ramp to the CE (`a` = color,
    /// `b` = arrival-link code | control flag, `payload` = raw wavelet bits).
    WaveletRecv = 3,
    /// One DSD vector instruction was issued (`a` = [`TraceOp`] code,
    /// `payload` = vector length; `time` is the fabric-time estimate for the
    /// instruction's issue inside its surrounding task).
    DsdOp = 4,
    /// A control wavelet toggled a switchable router config (`a` = color,
    /// `b` = the switch position now active).
    RouterSwitch = 5,
    /// Flow control parked a wavelet because the PE's CE was busy
    /// (`a` = color, `b` = arrival-link code | control flag).
    FlowStall = 6,
    /// A wavelet was routed off the fabric edge and dropped (`a` = color,
    /// `b` = link code | control flag).
    EdgeDrop = 7,
    /// A fabric error was recorded (`a` = error class code, `payload` =
    /// detail; see `wse-sim` for the class table).
    Error = 8,
    /// Superstep barrier crossed by the sharded engine (`payload` = superstep
    /// index, `time` = window start). Meta stream only: the sequential engine
    /// has no barriers, so these are excluded from trace equivalence.
    Barrier = 9,
    /// Host-side phase marker emitted by the driver (`a` = phase code,
    /// `payload` = application index). Meta stream only.
    HostPhase = 10,
    /// A named profiling region opened inside the current task
    /// (`a` = [`TraceRegion`] code; `time` is the fabric-time estimate at the
    /// open, derived from the task base like a [`TraceEventKind::DsdOp`]).
    RegionStart = 11,
    /// The matching profiling region closed (`a` = [`TraceRegion`] code).
    RegionEnd = 12,
    /// A fault was injected or detected by the fault-injection subsystem
    /// (`a` = fault class code, `b` = link code | control flag where
    /// applicable, `payload` = class-dependent detail such as the raw
    /// wavelet bits; see `wse-sim::fault` for the class table).
    Fault = 13,
}

impl TraceEventKind {
    /// Stable numeric code (the enum discriminant).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`TraceEventKind::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Self::TaskStart,
            1 => Self::TaskEnd,
            2 => Self::WaveletSend,
            3 => Self::WaveletRecv,
            4 => Self::DsdOp,
            5 => Self::RouterSwitch,
            6 => Self::FlowStall,
            7 => Self::EdgeDrop,
            8 => Self::Error,
            9 => Self::Barrier,
            10 => Self::HostPhase,
            11 => Self::RegionStart,
            12 => Self::RegionEnd,
            13 => Self::Fault,
            _ => return None,
        })
    }

    /// Short label used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Self::TaskStart => "task_start",
            Self::TaskEnd => "task_end",
            Self::WaveletSend => "wavelet_send",
            Self::WaveletRecv => "wavelet_recv",
            Self::DsdOp => "dsd_op",
            Self::RouterSwitch => "router_switch",
            Self::FlowStall => "flow_stall",
            Self::EdgeDrop => "edge_drop",
            Self::Error => "error",
            Self::Barrier => "barrier",
            Self::HostPhase => "host_phase",
            Self::RegionStart => "region_start",
            Self::RegionEnd => "region_end",
            Self::Fault => "fault",
        }
    }
}

/// Named profiling region carried in a [`TraceEventKind::RegionStart`] /
/// [`TraceEventKind::RegionEnd`] event's `a` field. Region markers are
/// emitted by the kernel program (see `tpfa-dataflow`), so they live in the
/// per-PE streams and stay bit-identical across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceRegion {
    /// Cardinal/diagonal pressure-halo exchange: fabric sends, receive
    /// stores, and router hand-over control traffic.
    HaloExchange = 0,
    /// TPFA face-flux evaluation (the 12-instruction kernel body plus the
    /// equation-of-state density pass).
    FluxCompute = 1,
    /// Residual accumulation (the kernel's final subtract into `r`).
    ResidualAccumulate = 2,
    /// Router reconfiguration. No markers are emitted for this region; the
    /// profiler synthesizes it from `RouterSwitch` / `FlowStall` events.
    RouterSwitch = 3,
}

/// Number of named regions (the profiler adds one extra "other" bucket for
/// cycles outside any marked region).
pub const NUM_REGIONS: usize = 4;

impl TraceRegion {
    /// Stable numeric code (the enum discriminant).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`TraceRegion::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Self::HaloExchange,
            1 => Self::FluxCompute,
            2 => Self::ResidualAccumulate,
            3 => Self::RouterSwitch,
            _ => return None,
        })
    }

    /// Short label used by the exporters and the profiler.
    pub fn name(self) -> &'static str {
        match self {
            Self::HaloExchange => "halo-exchange",
            Self::FluxCompute => "flux-compute",
            Self::ResidualAccumulate => "residual-accumulate",
            Self::RouterSwitch => "router-switch",
        }
    }
}

/// DSD vector-instruction opcode carried in a [`TraceEventKind::DsdOp`]
/// event's `a` field. Mirrors the instruction set in `wse-sim::dsd`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceOp {
    /// Elementwise `@fmuls` multiply.
    Fmul = 0,
    /// Gated `@fmuls` (upwinding select); accounted identically to `Fmul`.
    FmulGate = 1,
    /// Elementwise `@fsubs` subtract.
    Fsub = 2,
    /// Elementwise `@fadds` add.
    Fadd = 3,
    /// Fused multiply-accumulate `@fmacs`.
    Fma = 4,
    /// Elementwise `@fnegs` negate.
    Fneg = 5,
    /// Equation-of-state density evaluation.
    Eos = 6,
    /// Fabric receive into memory (`@fmovs` with fabric-input DSD); one
    /// event per delivered element (`payload` = 1).
    FmovIn = 7,
    /// Memory-to-fabric send (`@fmovs` with fabric-output DSD);
    /// `payload` = vector length.
    FmovOut = 8,
}

impl TraceOp {
    /// Stable numeric code (the enum discriminant).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`TraceOp::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Self::Fmul,
            1 => Self::FmulGate,
            2 => Self::Fsub,
            3 => Self::Fadd,
            4 => Self::Fma,
            5 => Self::Fneg,
            6 => Self::Eos,
            7 => Self::FmovIn,
            8 => Self::FmovOut,
            _ => return None,
        })
    }

    /// Assembly-flavoured mnemonic used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Self::Fmul => "fmuls",
            Self::FmulGate => "fmuls.gate",
            Self::Fsub => "fsubs",
            Self::Fadd => "fadds",
            Self::Fma => "fmacs",
            Self::Fneg => "fnegs",
            Self::Eos => "eos",
            Self::FmovIn => "fmovs.in",
            Self::FmovOut => "fmovs.out",
        }
    }
}

/// Bit set in a send/recv/stall/drop event's `b` field when the wavelet was
/// a control wavelet (the low byte holds the link code).
pub const LINK_CONTROL_BIT: u16 = 1 << 8;

/// Human-readable name for a link code (the low byte of `b` on wavelet
/// events). Codes follow `wse-sim`'s `Direction`: 0=N, 1=E, 2=S, 3=W,
/// 4=ramp.
pub fn link_name(code: u8) -> &'static str {
    match code {
        0 => "north",
        1 => "east",
        2 => "south",
        3 => "west",
        4 => "ramp",
        _ => "?",
    }
}

/// One fixed-size trace record.
///
/// `time` is fabric time (cycles). `seq` is a per-PE sequence number assigned
/// by the ring at record time — it increments on *every* record attempt,
/// including ones dropped by a full ring, so capped traces stay comparable to
/// uncapped ones. `pe` is the linear PE index (row-major), or
/// [`crate::HOST_PE`] for host/engine meta events. The meaning of `payload`,
/// `a`, and `b` depends on `kind` (see [`TraceEventKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Fabric time in cycles.
    pub time: u64,
    /// Per-PE sequence number (monotonic per PE, gapless across drops).
    pub seq: u32,
    /// Linear PE index, or [`crate::HOST_PE`] for meta events.
    pub pe: u32,
    /// Kind-dependent 32-bit payload (wavelet bits, vector length, cost…).
    pub payload: u32,
    /// What happened.
    pub kind: TraceEventKind,
    /// Kind-dependent small operand (color, opcode, error class…).
    pub a: u8,
    /// Kind-dependent small operand (link code | control flag, position…).
    pub b: u16,
}

impl TraceEvent {
    /// Deterministic global sort key. Sorting every PE's stream by this key
    /// yields a total order that is bit-identical between the sequential and
    /// sharded engines (events of one PE keep their causal `seq` order; ties
    /// across PEs at equal time break on the PE index).
    #[inline]
    pub fn key(&self) -> (u64, u32, u32) {
        (self.time, self.pe, self.seq)
    }
}

/// Ring-buffer memory budgeting relies on this staying small.
const _: () = assert!(std::mem::size_of::<TraceEvent>() <= 32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_event_fits_in_32_bytes() {
        // The const assert above enforces this at compile time; keep a
        // runtime witness so the guarantee shows up in test output too.
        assert!(std::mem::size_of::<TraceEvent>() <= 32);
    }

    #[test]
    fn kind_and_op_codes_round_trip() {
        for code in 0..=13u8 {
            let kind = TraceEventKind::from_code(code).unwrap();
            assert_eq!(kind.code(), code);
        }
        assert_eq!(TraceEventKind::from_code(14), None);
        for code in 0..=8u8 {
            let op = TraceOp::from_code(code).unwrap();
            assert_eq!(op.code(), code);
        }
        assert_eq!(TraceOp::from_code(9), None);
    }

    #[test]
    fn region_codes_round_trip() {
        for code in 0..NUM_REGIONS as u8 {
            let region = TraceRegion::from_code(code).unwrap();
            assert_eq!(region.code(), code);
            assert!(!region.name().is_empty());
        }
        assert_eq!(TraceRegion::from_code(NUM_REGIONS as u8), None);
    }

    #[test]
    fn sort_key_orders_time_then_pe_then_seq() {
        let ev = |time, pe, seq| TraceEvent {
            time,
            seq,
            pe,
            payload: 0,
            kind: TraceEventKind::TaskStart,
            a: 0,
            b: 0,
        };
        let mut events = [ev(2, 0, 0), ev(1, 1, 4), ev(1, 1, 2), ev(1, 0, 9)];
        events.sort_unstable_by_key(TraceEvent::key);
        let keys: Vec<_> = events.iter().map(TraceEvent::key).collect();
        assert_eq!(keys, vec![(1, 0, 9), (1, 1, 2), (1, 1, 4), (2, 0, 0)]);
    }
}
