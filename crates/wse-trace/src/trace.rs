//! An assembled, sorted trace of one fabric run.

use crate::event::{TraceEvent, TraceEventKind};
use crate::sink::EventRing;

/// Everything the per-PE rings held, merged into one deterministically
/// sorted stream plus a side channel of engine/host meta events.
///
/// `events` is sorted by [`TraceEvent::key`] = `(time, pe, seq)`. Because
/// each PE's events are recorded in the same causal order by the sequential
/// and sharded engines, this sorted stream is **bit-identical across
/// engines** for the same program — a much stronger determinism probe than
/// comparing residuals. Engine-specific observations (superstep barriers,
/// host phases, budget errors) go to `meta`, which is *excluded* from that
/// guarantee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Fabric width in PEs.
    pub cols: usize,
    /// Fabric height in PEs.
    pub rows: usize,
    /// Number of shards the run was partitioned into (1 for sequential).
    pub num_shards: usize,
    /// Shard owning each linear PE index (all 0 for sequential).
    pub shard_of: Vec<u32>,
    /// Fabric time when the run finished.
    pub final_time: u64,
    /// All retained per-PE events, sorted by `(time, pe, seq)`.
    pub events: Vec<TraceEvent>,
    /// Engine/host meta events (barriers, host phases, run-level errors),
    /// sorted by the same key. Not engine-invariant.
    pub meta: Vec<TraceEvent>,
    /// Total events dropped across all per-PE rings (drop-oldest).
    pub dropped: u64,
    /// Events dropped per linear PE index.
    pub dropped_by_pe: Vec<u64>,
}

impl Trace {
    /// Merge per-PE rings (in linear PE order) and the host ring into a
    /// sorted trace.
    pub fn from_rings(
        cols: usize,
        rows: usize,
        num_shards: usize,
        shard_of: Vec<u32>,
        final_time: u64,
        rings: &[&EventRing],
        host: &EventRing,
    ) -> Self {
        use crate::sink::TraceSink;
        let mut events = Vec::with_capacity(rings.iter().map(|r| r.len()).sum());
        let mut dropped_by_pe = Vec::with_capacity(rings.len());
        for ring in rings {
            events.extend(ring.ordered());
            dropped_by_pe.push(ring.dropped());
        }
        events.sort_unstable_by_key(TraceEvent::key);
        let mut meta = host.ordered();
        meta.sort_unstable_by_key(TraceEvent::key);
        let dropped = dropped_by_pe.iter().sum::<u64>() + host.dropped();
        Self {
            cols,
            rows,
            num_shards,
            shard_of,
            final_time,
            events,
            meta,
            dropped,
            dropped_by_pe,
        }
    }

    /// Total number of PEs.
    pub fn num_pes(&self) -> usize {
        self.cols * self.rows
    }

    /// Events of one PE in causal (`seq`) order.
    pub fn events_for_pe(&self, pe: u32) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self.events.iter().filter(|e| e.pe == pe).copied().collect();
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// All per-PE streams in one pass: `result[pe]` holds PE `pe`'s retained
    /// events in causal (`seq`) order. This is the bulk form of
    /// [`Trace::events_for_pe`] — O(events) grouping instead of one full scan
    /// per PE — and the entry point profilers iterate from.
    pub fn by_pe(&self) -> Vec<Vec<TraceEvent>> {
        let mut streams: Vec<Vec<TraceEvent>> = vec![Vec::new(); self.num_pes()];
        for ev in &self.events {
            if let Some(stream) = streams.get_mut(ev.pe as usize) {
                stream.push(*ev);
            }
        }
        for stream in &mut streams {
            stream.sort_unstable_by_key(|e| e.seq);
        }
        streams
    }

    /// Iterate `(linear pe, seq-ordered events)` pairs for every PE that
    /// retained at least one event (built on [`Trace::by_pe`]).
    pub fn iter_pe_streams(&self) -> impl Iterator<Item = (u32, Vec<TraceEvent>)> {
        self.by_pe()
            .into_iter()
            .enumerate()
            .filter(|(_, evs)| !evs.is_empty())
            .map(|(pe, evs)| (pe as u32, evs))
    }

    /// Count of retained events of a given kind.
    pub fn count(&self, kind: TraceEventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::EventRing;

    #[test]
    fn from_rings_sorts_and_sums_drops() {
        let mut r0 = EventRing::new(0, 2);
        let mut r1 = EventRing::new(1, 8);
        let mut host = EventRing::new(crate::HOST_PE, 8);
        r0.record_at(5, TraceEventKind::TaskStart, 0, 0, 0);
        r0.record_at(1, TraceEventKind::TaskStart, 0, 0, 0);
        r0.record_at(9, TraceEventKind::TaskStart, 0, 0, 0); // evicts time=5
        r1.record_at(1, TraceEventKind::WaveletSend, 0, 0, 0);
        host.record_at(0, TraceEventKind::HostPhase, 0, 0, 0);
        let t = Trace::from_rings(2, 1, 1, vec![0, 0], 9, &[&r0, &r1], &host);
        let keys: Vec<_> = t.events.iter().map(TraceEvent::key).collect();
        assert_eq!(keys, vec![(1, 0, 1), (1, 1, 0), (9, 0, 2)]);
        assert_eq!(t.dropped, 1);
        assert_eq!(t.dropped_by_pe, vec![1, 0]);
        assert_eq!(t.meta.len(), 1);
        assert_eq!(t.count(TraceEventKind::TaskStart), 2);
        assert_eq!(t.events_for_pe(0).len(), 2);
    }

    #[test]
    fn by_pe_matches_events_for_pe() {
        let mut r0 = EventRing::new(0, 8);
        let mut r1 = EventRing::new(1, 8);
        let host = EventRing::new(crate::HOST_PE, 1);
        r0.record_at(5, TraceEventKind::TaskStart, 0, 0, 0);
        r0.record_at(1, TraceEventKind::WaveletSend, 0, 0, 0);
        r1.record_at(3, TraceEventKind::TaskStart, 0, 0, 0);
        let t = Trace::from_rings(2, 1, 1, vec![0, 0], 5, &[&r0, &r1], &host);
        let streams = t.by_pe();
        assert_eq!(streams.len(), 2);
        for pe in 0..2u32 {
            assert_eq!(streams[pe as usize], t.events_for_pe(pe));
        }
        // seq order, not time order.
        assert_eq!(
            streams[0].iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1]
        );
        let pairs: Vec<u32> = t.iter_pe_streams().map(|(pe, _)| pe).collect();
        assert_eq!(pairs, vec![0, 1]);
    }
}
