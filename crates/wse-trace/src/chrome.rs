//! Chrome `trace_event` JSON exporter.
//!
//! Produces the JSON Object Format understood by `chrome://tracing` and
//! Perfetto (<https://ui.perfetto.dev>): one "process" per shard, one
//! "thread" per PE row inside that shard, complete (`"X"`) events for task
//! executions and instant (`"i"`) events for wavelet/router/DSD
//! observations. Timestamps are fabric cycles reported in the `ts`
//! microsecond field (1 cycle ⇒ 1 µs on the timeline).
//!
//! The emitter is hand-rolled (this workspace builds offline with no JSON
//! dependency); everything written is ASCII from fixed tables and numbers,
//! so no string escaping is required. A small [`validate`] parser is
//! provided for tests and smoke checks.

use crate::event::{link_name, TraceEventKind, TraceOp, TraceRegion, LINK_CONTROL_BIT};
use crate::trace::Trace;

/// Synthetic `tid` used for engine/host meta events (the meta "process" is
/// `pid = num_shards`).
const META_TID: usize = 0;

struct Emitter {
    out: String,
    first: bool,
}

impl Emitter {
    fn new() -> Self {
        Self {
            out: String::from("{\"traceEvents\":["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
        self.out.push('\n');
    }

    fn metadata(&mut self, name: &str, pid: usize, tid: usize, value: &str) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{value}\"}}}}"
        ));
    }

    fn complete(&mut self, name: &str, ts: u64, dur: u64, pid: usize, tid: usize, args: &str) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}"
        ));
    }

    fn instant(&mut self, name: &str, ts: u64, pid: usize, tid: usize, args: &str) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}"
        ));
    }

    fn finish(mut self, trace: &Trace) -> String {
        self.out.push_str("\n],\n\"displayTimeUnit\":\"ms\",\n");
        self.out.push_str(&format!(
            "\"otherData\":{{\"fabric\":\"{}x{}\",\"shards\":{},\"final_time\":{},\"dropped_events\":{}}}}}\n",
            trace.cols, trace.rows, trace.num_shards, trace.final_time, trace.dropped
        ));
        self.out
    }
}

fn link_args(b: u16) -> String {
    let control = (b & LINK_CONTROL_BIT) != 0;
    format!(
        "\"link\":\"{}\",\"control\":{}",
        link_name((b & 0xff) as u8),
        control
    )
}

/// Render a trace as Chrome `trace_event` JSON.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut em = Emitter::new();
    // Process/thread naming: pid = shard, tid = PE row within the fabric.
    for shard in 0..trace.num_shards {
        em.metadata("process_name", shard, 0, &format!("shard {shard}"));
    }
    em.metadata("process_name", trace.num_shards, META_TID, "engine/host");
    for row in 0..trace.rows {
        // A row may span several shards; name the tid in every shard that
        // owns at least one PE of that row.
        let mut named: Vec<usize> = Vec::new();
        for col in 0..trace.cols {
            let pe = row * trace.cols + col;
            let shard = *trace.shard_of.get(pe).unwrap_or(&0) as usize;
            if !named.contains(&shard) {
                named.push(shard);
                em.metadata("thread_name", shard, row, &format!("PE row {row}"));
            }
        }
    }

    for ev in &trace.events {
        let pe = ev.pe as usize;
        let (col, row) = (pe % trace.cols, pe / trace.cols);
        let pid = *trace.shard_of.get(pe).unwrap_or(&0) as usize;
        let tid = row;
        let loc = format!("\"pe\":\"({col},{row})\",\"seq\":{}", ev.seq);
        match ev.kind {
            TraceEventKind::TaskEnd => {
                let dur = u64::from(ev.payload);
                let start = ev.time.saturating_sub(dur);
                em.complete(
                    &format!("task c{}", ev.a),
                    start,
                    dur,
                    pid,
                    tid,
                    &format!("{loc},\"color\":{},\"cost_cycles\":{dur}", ev.a),
                );
            }
            // TaskStart is implied by the TaskEnd complete event; skip it to
            // keep the JSON compact (it remains in the raw trace).
            TraceEventKind::TaskStart => {}
            TraceEventKind::DsdOp => {
                let op = TraceOp::from_code(ev.a).map_or("dsd?", TraceOp::name);
                em.instant(
                    op,
                    ev.time,
                    pid,
                    tid,
                    &format!("{loc},\"len\":{}", ev.payload),
                );
            }
            TraceEventKind::WaveletSend
            | TraceEventKind::WaveletRecv
            | TraceEventKind::FlowStall
            | TraceEventKind::EdgeDrop => {
                em.instant(
                    ev.kind.name(),
                    ev.time,
                    pid,
                    tid,
                    &format!("{loc},\"color\":{},{}", ev.a, link_args(ev.b)),
                );
            }
            TraceEventKind::RouterSwitch => {
                em.instant(
                    "router_switch",
                    ev.time,
                    pid,
                    tid,
                    &format!("{loc},\"color\":{},\"position\":{}", ev.a, ev.b),
                );
            }
            TraceEventKind::Error => {
                em.instant(
                    "error",
                    ev.time,
                    pid,
                    tid,
                    &format!("{loc},\"class\":{},\"detail\":{}", ev.a, ev.payload),
                );
            }
            TraceEventKind::Fault => {
                em.instant(
                    "fault",
                    ev.time,
                    pid,
                    tid,
                    &format!(
                        "{loc},\"fault_class\":{},{},\"detail\":{}",
                        ev.a,
                        link_args(ev.b),
                        ev.payload
                    ),
                );
            }
            TraceEventKind::RegionStart | TraceEventKind::RegionEnd => {
                let region = TraceRegion::from_code(ev.a).map_or("region?", TraceRegion::name);
                em.instant(
                    if ev.kind == TraceEventKind::RegionStart {
                        "region_start"
                    } else {
                        "region_end"
                    },
                    ev.time,
                    pid,
                    tid,
                    &format!("{loc},\"region\":\"{region}\""),
                );
            }
            TraceEventKind::Barrier | TraceEventKind::HostPhase => {
                // Meta kinds never appear in the per-PE stream; ignore
                // defensively if they do.
            }
        }
    }

    for ev in &trace.meta {
        let pid = trace.num_shards;
        match ev.kind {
            TraceEventKind::Barrier => em.instant(
                "superstep_barrier",
                ev.time,
                pid,
                META_TID,
                &format!("\"superstep\":{}", ev.payload),
            ),
            TraceEventKind::HostPhase => em.instant(
                if ev.a == 0 {
                    "host_inject"
                } else {
                    "host_collect"
                },
                ev.time,
                pid,
                META_TID,
                &format!("\"application\":{}", ev.payload),
            ),
            _ => em.instant(
                ev.kind.name(),
                ev.time,
                pid,
                META_TID,
                &format!("\"class\":{},\"detail\":{}", ev.a, ev.payload),
            ),
        }
    }

    em.finish(trace)
}

/// Minimal JSON well-formedness check, returning the number of elements in
/// the top-level `traceEvents` array.
///
/// This is not a general JSON parser — just enough structure validation
/// (balanced syntax, string/number/bool tokens, the `traceEvents` key) for
/// tests to assert the exporter emits parseable, non-empty output without a
/// JSON dependency.
pub fn validate(json: &str) -> Result<usize, String> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        pos: 0,
        trace_events: None,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    p.trace_events
        .ok_or_else(|| "no traceEvents array found".to_string())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    trace_events: Option<usize>,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<usize, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| 0),
            Some(b't') => self.literal("true").map(|_| 0),
            Some(b'f') => self.literal("false").map(|_| 0),
            Some(b'n') => self.literal("null").map(|_| 0),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number().map(|_| 0),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<usize, String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(0);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let count = self.value()?;
            if key == "traceEvents" {
                self.trace_events = Some(count);
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(0);
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<usize, String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(0);
        }
        let mut n = 0usize;
        loop {
            self.value()?;
            n += 1;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(n);
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'"' => {
                    let s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => self.pos += 2,
                _ => self.pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            Err(format!("empty number at offset {start}"))
        } else {
            Ok(())
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::EventRing;

    fn tiny_trace() -> Trace {
        let mut r0 = EventRing::new(0, 64);
        let mut r1 = EventRing::new(1, 64);
        let mut host = EventRing::new(crate::HOST_PE, 64);
        r0.record_at(0, TraceEventKind::TaskStart, 16, 0, 0x1234);
        r0.record_at(10, TraceEventKind::TaskEnd, 16, 0, 10);
        r0.record_at(3, TraceEventKind::DsdOp, TraceOp::Fma.code(), 0, 8);
        r0.record_at(4, TraceEventKind::WaveletSend, 2, 1, 0xdead);
        r1.record_at(
            5,
            TraceEventKind::WaveletRecv,
            2,
            4 | LINK_CONTROL_BIT,
            0xbeef,
        );
        r1.record_at(6, TraceEventKind::RouterSwitch, 2, 1, 0);
        r1.record_at(7, TraceEventKind::FlowStall, 2, 3, 0);
        r1.record_at(8, TraceEventKind::EdgeDrop, 2, 1, 0);
        r1.record_at(9, TraceEventKind::Error, 1, 0, 7);
        host.record_at(0, TraceEventKind::HostPhase, 0, 0, 0);
        host.record_at(2, TraceEventKind::Barrier, 0, 0, 1);
        Trace::from_rings(2, 1, 2, vec![0, 1], 10, &[&r0, &r1], &host)
    }

    #[test]
    fn exported_json_validates_and_is_nonempty() {
        let json = chrome_trace_json(&tiny_trace());
        let n = validate(&json).expect("exporter emits well-formed JSON");
        // metadata + per-PE events (TaskStart is folded into the complete
        // event) + meta events.
        assert!(n > 10, "expected >10 trace events, got {n}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("superstep_barrier"));
        assert!(json.contains("fmacs"));
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate("{\"traceEvents\":[").is_err());
        assert!(validate("{\"traceEvents\":[]} trailing").is_err());
        assert!(validate("[1,2,3]").is_err()); // no traceEvents key
        assert_eq!(validate("{\"traceEvents\":[1,2,3]}"), Ok(3));
    }
}
