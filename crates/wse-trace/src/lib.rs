//! `wse-trace`: zero-overhead-when-off tracing & metrics for the `wse-sim`
//! fabric simulator.
//!
//! The simulator's aggregate [`OpCounters`]-style accounting answers *how
//! much* work happened but not *when* or *where*; this crate restores the
//! time dimension. Each PE records fixed-size (≤ 32-byte, compile-time
//! asserted) [`TraceEvent`]s — task activations/completions, wavelet
//! sends/receives with color and link, DSD vector ops, router config
//! switches, flow stalls, errors — into a bounded drop-oldest
//! [`EventRing`]. With tracing off (the default) every instrumentation site
//! dispatches through [`PeTracer::Null`] and compiles down to a single
//! predictable branch: the `engine/64x64` benchmark shows no measurable
//! regression, guarded by the `trace_overhead` criterion group.
//!
//! A finished run is assembled into a [`Trace`] whose event stream is
//! sorted by the deterministic key `(time, pe, seq)`; because the
//! sequential and sharded engines process each PE's events in the same
//! causal order, the sorted stream is **bit-identical across engines** —
//! used as a determinism probe far stronger than residual equality.
//! Exporters render a trace as Chrome `trace_event` JSON
//! ([`chrome::chrome_trace_json`], openable in `chrome://tracing` or
//! Perfetto) or as a compact load summary ([`summary::TraceSummary`]) with
//! per-PE utilization, per-color wavelet histograms, per-shard busy/idle
//! timelines and the top-K hottest PEs.
//!
//! This crate is dependency-free and knows nothing about `wse-sim`; the
//! simulator depends on it and re-exports it as `wse_sim::trace`.
//!
//! [`OpCounters`]: https://docs.rs/wse-sim (see `wse-sim::stats`)

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod chrome;
pub mod cli;
pub mod event;
pub mod sink;
pub mod summary;
pub mod trace;

pub use chrome::{chrome_trace_json, validate};
pub use cli::{
    profile_request_from_arg_slice, profile_request_from_args, trace_request_from_arg_slice,
    trace_request_from_args, ProfileRequest, TraceRequest,
};
pub use event::{
    link_name, TraceEvent, TraceEventKind, TraceOp, TraceRegion, LINK_CONTROL_BIT, NUM_REGIONS,
};
pub use sink::{
    EventRing, NullSink, PeTracer, RingSink, TraceSink, TraceSpec, DEFAULT_RING_CAPACITY,
};
pub use summary::TraceSummary;
pub use trace::Trace;

/// Pseudo-PE index used for host/engine meta events (barriers, host phases,
/// run-level errors).
pub const HOST_PE: u32 = u32::MAX;
