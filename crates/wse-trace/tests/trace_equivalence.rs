//! Differential determinism tests at the trace level: the *sorted per-PE
//! event stream* of a full TPFA dataflow run must be bit-identical between
//! the sequential engine and the sharded engine at several shard counts —
//! a probe far stronger than comparing residual vectors, because it checks
//! every task activation, wavelet hop, DSD op and router switch, with
//! timestamps.
//!
//! Also covers the bounded-ring semantics end-to-end: a capacity-limited
//! run keeps exactly the *newest* events of each PE (drop-oldest) and
//! reports an accurate drop count.

use fv_core::eos::Fluid;
use fv_core::fields::PermeabilityField;
use fv_core::mesh::{CartesianMesh3, Extents, Spacing};
use fv_core::state::FlowState;
use fv_core::trans::{StencilKind, Transmissibilities};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_sim::fabric::Execution;
use wse_trace::{Trace, TraceEventKind, TraceSpec};

const NX: usize = 16;
const NY: usize = 16;
const NZ: usize = 6;

/// Runs one application of Algorithm 1 on a 16×16×6 ten-point TPFA problem
/// with tracing on, returning the trace and the residual.
fn traced_run(execution: Execution, capacity: usize) -> (Trace, Vec<f32>) {
    let mesh = CartesianMesh3::new(Extents::new(NX, NY, NZ), Spacing::new(10.0, 10.0, 4.0));
    let fluid = Fluid::water_like();
    let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.4, 7);
    let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
    let pressure = FlowState::<f32>::varied(&mesh, 1.0e7, 1.2e7, 3)
        .pressure()
        .to_vec();
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .execution(execution)
        .trace(TraceSpec::ring(capacity))
        .build()
        .unwrap();
    let residual = sim.apply(&pressure).expect("traced run failed");
    let trace = sim.trace().expect("tracing was enabled");
    (trace, residual)
}

#[test]
fn sorted_trace_is_bit_identical_across_engines() {
    let (seq, r_seq) = traced_run(Execution::Sequential, 8192);
    assert!(
        seq.events.len() > 10_000,
        "expected a substantial trace, got {} events",
        seq.events.len()
    );
    assert_eq!(seq.dropped, 0, "capacity must hold the full run");
    for shards in [1usize, 4, 9] {
        let (sh, r_sh) = traced_run(Execution::Sharded { shards, threads: 2 }, 8192);
        assert_eq!(sh.dropped, 0);
        assert!(
            r_seq
                .iter()
                .zip(&r_sh)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{shards}-shard residual diverged"
        );
        assert_eq!(
            seq.events, sh.events,
            "{shards}-shard sorted trace diverged from sequential"
        );
        // Shard attribution reflects the partition actually used.
        assert_eq!(sh.num_shards, shards);
        assert_eq!(sh.shard_of.len(), NX * NY);
    }
}

#[test]
fn trace_covers_every_event_family() {
    let (trace, _) = traced_run(Execution::Sequential, 8192);
    for kind in [
        TraceEventKind::TaskStart,
        TraceEventKind::TaskEnd,
        TraceEventKind::WaveletSend,
        TraceEventKind::WaveletRecv,
        TraceEventKind::DsdOp,
        TraceEventKind::RouterSwitch,
        TraceEventKind::EdgeDrop,
        TraceEventKind::RegionStart,
        TraceEventKind::RegionEnd,
    ] {
        assert!(
            trace.count(kind) > 0,
            "expected at least one {} event in a full TPFA run",
            kind.name()
        );
    }
    // The host stream carries the inject/collect phase markers.
    assert!(
        trace
            .meta
            .iter()
            .filter(|e| e.kind == TraceEventKind::HostPhase)
            .count()
            >= 2,
        "host inject + collect markers expected"
    );
}

#[test]
fn sharded_meta_stream_records_one_quiescence_barrier() {
    let (sh, _) = traced_run(
        Execution::Sharded {
            shards: 4,
            threads: 2,
        },
        8192,
    );
    let barriers = sh
        .meta
        .iter()
        .filter(|e| e.kind == TraceEventKind::Barrier)
        .count();
    // The conservative-lookahead protocol has no superstep barriers: the
    // only rendezvous left is the final global quiescence, logged exactly
    // once per run.
    assert_eq!(barriers, 1, "one quiescence marker per sharded run");
    // Barriers live in the meta stream only — never in the per-PE streams,
    // which is what keeps those streams engine-independent.
    assert_eq!(sh.count(TraceEventKind::Barrier), 0);
}

#[test]
fn capped_ring_keeps_exact_tail_and_counts_drops() {
    let (full, _) = traced_run(Execution::Sequential, 1 << 20);
    let cap = 64usize;
    let (capped, _) = traced_run(Execution::Sequential, cap);
    assert_eq!(full.dropped, 0);
    assert!(capped.dropped > 0, "small rings must overflow on this run");

    let mut expected_dropped = 0u64;
    for pe in 0..(NX * NY) as u32 {
        let all = full.events_for_pe(pe);
        let kept = capped.events_for_pe(pe);
        let tail_len = all.len().min(cap);
        assert_eq!(
            kept,
            all[all.len() - tail_len..],
            "PE {pe}: capped ring must hold exactly the newest {tail_len} events"
        );
        let dropped = (all.len() - tail_len) as u64;
        assert_eq!(
            capped.dropped_by_pe[pe as usize], dropped,
            "PE {pe}: drop counter mismatch"
        );
        expected_dropped += dropped;
    }
    assert_eq!(capped.dropped, expected_dropped);
}
