//! Runtime telemetry for the serving stack.
//!
//! A `std`-only metrics registry in the spirit of the Prometheus client
//! libraries, shaped by the same constraints as the rest of this
//! workspace:
//!
//! * **Lock-free hot path.** Registration (naming a metric, fixing its
//!   label set) happens once, up front, behind a mutex; the returned
//!   [`Counter`]/[`Gauge`]/[`Histogram`] handles are `Arc`'d atomic cells
//!   updated with plain `fetch_add`/`store` — no allocation, no locking,
//!   no formatting on the recording path.
//! * **Zero overhead when off.** Every handle has a [`Counter::Null`]
//!   variant that compiles to a no-op, exactly like the trace sink's
//!   `PeTracer::Null`: code instruments unconditionally and the null hub
//!   erases the cost. `benches/metrics_overhead.rs` in the bench crate
//!   enforces this the same way `trace_overhead` does for tracing.
//! * **Determinism boundary.** Deterministic quantities (event counts,
//!   stalls, drops, fast-forward hops) are *published into* metrics from
//!   the engines' already-bit-identical aggregates after a run — telemetry
//!   never feeds back into simulation, so `perf_diff --deterministic
//!   --strict` is unaffected. Wall-clock quantities (latencies, rates) are
//!   kept in separately named metrics and never mixed into deterministic
//!   ones. `tests/metrics_equivalence.rs` pins the split.
//! * **Hand-rolled exposition.** [`MetricsHub::prometheus_text`] and
//!   [`MetricsHub::json_snapshot`] are written by hand like
//!   `wse-prof::bench_json` — the offline build environment has no serde.
//!
//! The crate also hosts the [`FlightRecorder`]: a bounded drop-oldest ring
//! of recent events that the job server attaches to failures, so a typed
//! error arrives with its last-N-events context instead of a bare code.

#![deny(missing_docs)]

pub mod expose;
pub mod flight;
pub mod registry;

pub use flight::FlightRecorder;
pub use registry::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, MetricsHub, Registry, Sample,
    SampleValue, HIST_BUCKETS,
};
