//! Failure flight recorder: a bounded, drop-oldest ring of recent events.
//!
//! The job server keeps one recorder per job and pushes a short line for
//! every notable transition (chunk completed, preempt, checkpoint, fault
//! observed). When a job fails, the recorder's contents are the last-N
//! events of context that travel with the typed error — the serving
//! analogue of `wse-trace`'s ring-capped sink, and like that sink the
//! ring is the *exact tail* of the full stream (`tests` below pin this).
//!
//! This is a plain data structure, not a concurrent one: the owner is
//! expected to hold it under whatever lock already guards the job state,
//! so recording stays a couple of `VecDeque` operations.

use std::collections::VecDeque;

/// Bounded drop-oldest ring buffer of recent events.
#[derive(Debug, Clone)]
pub struct FlightRecorder<T> {
    cap: usize,
    buf: VecDeque<T>,
    dropped: u64,
}

impl<T> FlightRecorder<T> {
    /// Creates a recorder that retains the most recent `cap` entries.
    /// A capacity of zero records nothing (every push is dropped).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            buf: VecDeque::with_capacity(cap.min(1024)),
            dropped: 0,
        }
    }

    /// Appends an entry, evicting the oldest if the ring is full.
    pub fn push(&mut self, entry: T) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(entry);
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of entries evicted (or never retained, for `cap == 0`)
    /// since creation. `dropped() + len()` equals the total pushed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

impl<T: Clone> FlightRecorder<T> {
    /// Copies the retained tail out, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        self.buf.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_the_exact_tail_of_the_full_stream() {
        let full: Vec<u32> = (0..1000).collect();
        for cap in [1usize, 7, 64, 999, 1000, 1500] {
            let mut ring = FlightRecorder::new(cap);
            for &v in &full {
                ring.push(v);
            }
            let keep = cap.min(full.len());
            assert_eq!(ring.to_vec(), full[full.len() - keep..]);
            assert_eq!(ring.len(), keep);
            assert_eq!(ring.dropped() as usize, full.len() - keep);
        }
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut ring = FlightRecorder::new(0);
        for v in 0..10u32 {
            ring.push(v);
        }
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 10);
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut ring = FlightRecorder::new(8);
        for v in ["a", "b", "c"] {
            ring.push(v.to_string());
        }
        assert_eq!(ring.to_vec(), ["a", "b", "c"]);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.capacity(), 8);
    }
}
