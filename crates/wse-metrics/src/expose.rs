//! Exposition: Prometheus text format and a JSON snapshot, hand-rolled
//! like `wse-prof::bench_json` (the offline build has no serde).
//!
//! The text format follows the Prometheus conventions the scrape parser
//! actually enforces: one `# HELP`/`# TYPE` pair per metric name, sample
//! lines `name{label="value"} value`, and for histograms the cumulative
//! `_bucket{le="..."}` series ending in `le="+Inf"` plus `_sum`/`_count`.
//! CI validates the output with a small python checker, the same way the
//! Chrome-trace export is validated.

use std::fmt::Write as _;

use crate::registry::{bucket_upper_bound, Sample, SampleValue};

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `{k1="v1",k2="v2"}`, or the empty string for an empty label set;
/// `extra` appends one more pair (the histogram `le` label).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // Prometheus spells non-finite values out; NaN should not occur,
        // but never emit something the parser rejects.
        if v.is_nan() {
            "NaN".to_string()
        } else if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    }
}

/// Renders samples in the Prometheus text exposition format.
pub fn prometheus_text(samples: &[Sample]) -> String {
    let mut out = String::with_capacity(64 * samples.len().max(1));
    let mut last_name: Option<&str> = None;
    for s in samples {
        // One HELP/TYPE pair per name; samples of the same family are
        // registered consecutively, so consecutive dedup suffices.
        if last_name != Some(s.name.as_str()) {
            let kind = match s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram { .. } => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", s.name, s.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {} {kind}", s.name);
            last_name = Some(s.name.as_str());
        }
        match &s.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {v}", s.name, label_block(&s.labels, None));
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    fmt_f64(*v)
                );
            }
            SampleValue::Histogram {
                buckets,
                sum,
                count,
            } => {
                let mut cumulative = 0u64;
                for (i, n) in buckets.iter().enumerate() {
                    cumulative += n;
                    // Collapse empty interior buckets: Prometheus is happy
                    // either way, humans and diffs prefer short output.
                    // Always emit the +Inf bucket.
                    let last = i == buckets.len() - 1;
                    if *n == 0 && !last {
                        continue;
                    }
                    let le = match bucket_upper_bound(i) {
                        Some(b) => b.to_string(),
                        None => "+Inf".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        s.name,
                        label_block(&s.labels, Some(("le", &le)))
                    );
                }
                let _ = writeln!(out, "{}_sum{} {sum}", s.name, label_block(&s.labels, None));
                let _ = writeln!(
                    out,
                    "{}_count{} {count}",
                    s.name,
                    label_block(&s.labels, None)
                );
            }
        }
    }
    out
}

/// Renders samples as a standalone JSON document:
/// `{"metrics": [{"name": ..., "type": ..., "labels": {...}, ...}]}`.
pub fn json_snapshot(samples: &[Sample]) -> String {
    let mut out = String::with_capacity(96 * samples.len().max(1));
    out.push_str("{\n  \"metrics\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let labels = s
            .labels
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", escape_json(k), escape_json(v)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"labels\": {{{labels}}}, ",
            escape_json(&s.name)
        );
        match &s.value {
            SampleValue::Counter(v) => {
                let _ = write!(out, "\"type\": \"counter\", \"value\": {v}");
            }
            SampleValue::Gauge(v) => {
                let v = if v.is_finite() { *v } else { 0.0 };
                let _ = write!(out, "\"type\": \"gauge\", \"value\": {v}");
            }
            SampleValue::Histogram {
                buckets,
                sum,
                count,
            } => {
                let bs = buckets
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = write!(
                    out,
                    "\"type\": \"histogram\", \"buckets\": [{bs}], \"sum\": {sum}, \"count\": {count}"
                );
            }
        }
        let _ = writeln!(out, "}}{}", if i + 1 < samples.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::registry::MetricsHub;

    fn demo_hub() -> MetricsHub {
        let hub = MetricsHub::new_live();
        hub.counter("events_total", "Fabric events", &[("engine", "sequential")])
            .add(12);
        hub.gauge("queue_depth", "Queued jobs", &[]).set_u64(3);
        let h = hub.histogram("latency_ns", "Latency", &[]);
        h.observe(0);
        h.observe(5);
        h.observe(5);
        hub
    }

    #[test]
    fn prometheus_text_has_help_type_and_samples() {
        let text = demo_hub().prometheus_text();
        assert!(text.contains("# HELP events_total Fabric events\n"));
        assert!(text.contains("# TYPE events_total counter\n"));
        assert!(text.contains("events_total{engine=\"sequential\"} 12\n"));
        assert!(text.contains("# TYPE queue_depth gauge\n"));
        assert!(text.contains("queue_depth 3\n"));
        assert!(text.contains("# TYPE latency_ns histogram\n"));
        // 0 → bucket 0 (le="0"); two 5s → bucket 3 (le="7"); cumulative.
        assert!(text.contains("latency_ns_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("latency_ns_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("latency_ns_sum 10\n"));
        assert!(text.contains("latency_ns_count 3\n"));
    }

    #[test]
    fn histogram_bucket_series_is_cumulative_and_ends_at_count() {
        let hub = MetricsHub::new_live();
        let h = hub.histogram("h", "h", &[]);
        for v in 0..100u64 {
            h.observe(v);
        }
        let text = hub.prometheus_text();
        let inf = text
            .lines()
            .find(|l| l.starts_with("h_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket always present");
        assert_eq!(inf, "h_bucket{le=\"+Inf\"} 100");
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("h_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "cumulative series must be monotone: {line}");
            prev = v;
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let hub = MetricsHub::new_live();
        hub.counter("x_total", "x", &[("path", "a\"b\\c\nd")]).inc();
        let text = hub.prometheus_text();
        assert!(text.contains("x_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
        let json = hub.json_snapshot();
        assert!(json.contains("\"path\": \"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn json_snapshot_is_balanced_and_complete() {
        let json = demo_hub().json_snapshot();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(json.contains("\"name\": \"events_total\""));
        assert!(json.contains("\"type\": \"counter\", \"value\": 12"));
        assert!(json.contains("\"sum\": 10, \"count\": 3"));
        // A null hub still produces a valid document.
        assert_eq!(
            MetricsHub::Null.json_snapshot(),
            "{\n  \"metrics\": [\n  ]\n}\n"
        );
    }
}
