//! The metric registry and its lock-free handles.
//!
//! [`MetricsHub`] is the cheap, clonable capability threaded through the
//! stack (simulator builder, job server, bench binaries). Registering a
//! metric takes the registry mutex once and returns a handle whose
//! recording methods are single atomic operations; the [`MetricsHub::Null`]
//! hub returns [`Counter::Null`]-style handles that compile to no-ops.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero, one per power of two up to
/// `2^63`, and a final catch-all ([`bucket_upper_bound`] returns `None`
/// for it — exposed as `le="+Inf"`).
pub const HIST_BUCKETS: usize = 65;

/// The log2 bucket an observation lands in: bucket `0` holds exactly the
/// value `0`; bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]`; bucket `64` holds
/// everything from `2^63` up.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`), or `None` for the
/// final `+Inf` bucket.
///
/// # Panics
///
/// Panics when `i >= HIST_BUCKETS`.
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    assert!(i < HIST_BUCKETS, "bucket index {i} out of range");
    if i == HIST_BUCKETS - 1 {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

/// The atomic cells of one histogram.
#[derive(Debug)]
pub struct HistCell {
    /// Per-bucket observation counts (non-cumulative; exposition
    /// accumulates them into Prometheus' cumulative `_bucket` series).
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    #[inline]
    fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub enum Counter {
    /// Metrics off: every method is a no-op.
    #[default]
    Null,
    /// A live cell in some registry.
    Live(Arc<AtomicU64>),
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Counter::Live(cell) = self {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for [`Counter::Null`]).
    pub fn get(&self) -> u64 {
        match self {
            Counter::Null => 0,
            Counter::Live(cell) => cell.load(Ordering::Relaxed),
        }
    }
}

/// A gauge handle; the cell stores `f64` bits so rates fit too.
#[derive(Debug, Clone, Default)]
pub enum Gauge {
    /// Metrics off: every method is a no-op.
    #[default]
    Null,
    /// A live cell in some registry.
    Live(Arc<AtomicU64>),
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Gauge::Live(cell) = self {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Sets the gauge from an integer quantity.
    #[inline]
    pub fn set_u64(&self, value: u64) {
        self.set(value as f64);
    }

    /// Current value (0.0 for [`Gauge::Null`]).
    pub fn get(&self) -> f64 {
        match self {
            Gauge::Null => 0.0,
            Gauge::Live(cell) => f64::from_bits(cell.load(Ordering::Relaxed)),
        }
    }
}

/// A log2-bucketed histogram handle for non-negative integer observations
/// (cycle counts, nanoseconds, event counts).
#[derive(Debug, Clone, Default)]
pub enum Histogram {
    /// Metrics off: every method is a no-op.
    #[default]
    Null,
    /// A live cell set in some registry.
    Live(Arc<HistCell>),
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Histogram::Live(cell) = self {
            cell.observe(value);
        }
    }

    /// Total observations so far (0 for [`Histogram::Null`]).
    pub fn count(&self) -> u64 {
        match self {
            Histogram::Null => 0,
            Histogram::Live(cell) => cell.count.load(Ordering::Relaxed),
        }
    }

    /// Sum of all observations so far (0 for [`Histogram::Null`]).
    pub fn sum(&self) -> u64 {
        match self {
            Histogram::Null => 0,
            Histogram::Live(cell) => cell.sum.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Cell {
    Scalar(Arc<AtomicU64>),
    Hist(Arc<HistCell>),
}

#[derive(Debug)]
struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    kind: MetricKind,
    cell: Cell,
}

/// One metric's point-in-time value, as read by [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (Prometheus conventions: `snake_case`, counters end in
    /// `_total`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// The preregistered label set, in registration order.
    pub labels: Vec<(String, String)>,
    /// The value, by metric kind.
    pub value: SampleValue,
}

/// A [`Sample`]'s value.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's last set value.
    Gauge(f64),
    /// A histogram's per-bucket counts (non-cumulative, indexed like
    /// [`bucket_index`]), sum, and count.
    Histogram {
        /// Non-cumulative per-bucket observation counts.
        buckets: Vec<u64>,
        /// Sum of all observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// The metric store behind a live [`MetricsHub`].
///
/// The mutex guards the registration list only; recording goes straight to
/// the `Arc`'d atomic cells and never takes it.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

impl Registry {
    fn register(&self, kind: MetricKind, name: &str, help: &str, labels: &[(&str, &str)]) -> Cell {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some(existing) = metrics
            .iter()
            .find(|m| m.name == name && label_eq(&m.labels, labels))
        {
            assert!(
                existing.kind == kind,
                "metric {name:?} re-registered as {} (was {})",
                kind.as_str(),
                existing.kind.as_str()
            );
            return match &existing.cell {
                Cell::Scalar(c) => Cell::Scalar(Arc::clone(c)),
                Cell::Hist(c) => Cell::Hist(Arc::clone(c)),
            };
        }
        let cell = match kind {
            MetricKind::Histogram => Cell::Hist(Arc::new(HistCell::new())),
            _ => Cell::Scalar(Arc::new(AtomicU64::new(0))),
        };
        let handle = match &cell {
            Cell::Scalar(c) => Cell::Scalar(Arc::clone(c)),
            Cell::Hist(c) => Cell::Hist(Arc::clone(c)),
        };
        metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            kind,
            cell,
        });
        handle
    }

    /// Reads every registered metric, in registration order.
    pub fn snapshot(&self) -> Vec<Sample> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|m| Sample {
                name: m.name.clone(),
                help: m.help.clone(),
                labels: m.labels.clone(),
                value: match (&m.cell, m.kind) {
                    (Cell::Scalar(c), MetricKind::Counter) => {
                        SampleValue::Counter(c.load(Ordering::Relaxed))
                    }
                    (Cell::Scalar(c), _) => {
                        SampleValue::Gauge(f64::from_bits(c.load(Ordering::Relaxed)))
                    }
                    (Cell::Hist(h), _) => SampleValue::Histogram {
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        sum: h.sum.load(Ordering::Relaxed),
                        count: h.count.load(Ordering::Relaxed),
                    },
                },
            })
            .collect()
    }
}

fn label_eq(a: &[(String, String)], b: &[(&str, &str)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
}

/// The telemetry capability: either off ([`MetricsHub::Null`], the
/// default — every derived handle is a no-op) or a shared live
/// [`Registry`]. Cloning is cheap; all clones feed the same registry.
#[derive(Debug, Clone, Default)]
pub enum MetricsHub {
    /// Metrics off: registration returns null handles, exposition is
    /// empty.
    #[default]
    Null,
    /// Metrics on, recording into the shared registry.
    Live(Arc<Registry>),
}

impl MetricsHub {
    /// A live hub with a fresh, empty registry.
    pub fn new_live() -> Self {
        MetricsHub::Live(Arc::new(Registry::default()))
    }

    /// Whether this hub records anything.
    pub fn is_live(&self) -> bool {
        matches!(self, MetricsHub::Live(_))
    }

    /// Registers (or re-acquires) a counter under `name` with a fixed
    /// label set. Counter names should end in `_total`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self {
            MetricsHub::Null => Counter::Null,
            MetricsHub::Live(reg) => match reg.register(MetricKind::Counter, name, help, labels) {
                Cell::Scalar(c) => Counter::Live(c),
                Cell::Hist(_) => unreachable!("counter registered a scalar cell"),
            },
        }
    }

    /// Registers (or re-acquires) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self {
            MetricsHub::Null => Gauge::Null,
            MetricsHub::Live(reg) => match reg.register(MetricKind::Gauge, name, help, labels) {
                Cell::Scalar(c) => Gauge::Live(c),
                Cell::Hist(_) => unreachable!("gauge registered a scalar cell"),
            },
        }
    }

    /// Registers (or re-acquires) a log2-bucketed histogram.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self {
            MetricsHub::Null => Histogram::Null,
            MetricsHub::Live(reg) => {
                match reg.register(MetricKind::Histogram, name, help, labels) {
                    Cell::Hist(c) => Histogram::Live(c),
                    Cell::Scalar(_) => unreachable!("histogram registered a hist cell"),
                }
            }
        }
    }

    /// Point-in-time snapshot of every metric (empty for a null hub).
    pub fn snapshot(&self) -> Vec<Sample> {
        match self {
            MetricsHub::Null => Vec::new(),
            MetricsHub::Live(reg) => reg.snapshot(),
        }
    }

    /// The registry rendered in the Prometheus text exposition format
    /// (empty string for a null hub).
    pub fn prometheus_text(&self) -> String {
        crate::expose::prometheus_text(&self.snapshot())
    }

    /// The registry rendered as a JSON document (an empty `metrics` array
    /// for a null hub).
    pub fn json_snapshot(&self) -> String {
        crate::expose::json_snapshot(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handles_are_inert() {
        let hub = MetricsHub::Null;
        let c = hub.counter("x_total", "x", &[]);
        let g = hub.gauge("g", "g", &[]);
        let h = hub.histogram("h", "h", &[]);
        c.inc();
        g.set(3.0);
        h.observe(7);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert!(hub.snapshot().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_record() {
        let hub = MetricsHub::new_live();
        let c = hub.counter("events_total", "events", &[("engine", "seq")]);
        c.add(41);
        c.inc();
        assert_eq!(c.get(), 42);
        let g = hub.gauge("depth", "queue depth", &[]);
        g.set_u64(9);
        assert_eq!(g.get(), 9.0);
        let h = hub.histogram("lat_ns", "latency", &[]);
        h.observe(100);
        h.observe(200);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 300);
        assert_eq!(hub.snapshot().len(), 3);
    }

    #[test]
    fn reregistration_returns_the_same_cell() {
        let hub = MetricsHub::new_live();
        let a = hub.counter("x_total", "x", &[("k", "v")]);
        let b = hub.counter("x_total", "x", &[("k", "v")]);
        a.add(5);
        b.add(2);
        assert_eq!(a.get(), 7);
        assert_eq!(hub.snapshot().len(), 1, "one cell, not two");
        // A different label set is a different cell.
        let c = hub.counter("x_total", "x", &[("k", "w")]);
        c.inc();
        assert_eq!(a.get(), 7);
        assert_eq!(hub.snapshot().len(), 2);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_panics() {
        let hub = MetricsHub::new_live();
        let _ = hub.counter("x_total", "x", &[]);
        let _ = hub.gauge("x_total", "x", &[]);
    }

    #[test]
    fn log2_bucket_boundaries_are_exact() {
        // Bucket 0 is exactly {0}; bucket i ≥ 1 is [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        for i in 1..=63usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
        }
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Upper bounds: 2^i - 1, +Inf for the last bucket.
        assert_eq!(bucket_upper_bound(0), Some(0));
        assert_eq!(bucket_upper_bound(1), Some(1));
        assert_eq!(bucket_upper_bound(5), Some(31));
        assert_eq!(bucket_upper_bound(HIST_BUCKETS - 1), None);
        // Every representable value lands in the bucket whose bound
        // brackets it: bound(i-1) < v <= bound(i).
        for v in [0u64, 1, 2, 3, 1023, 1024, 1025, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            if let Some(hi) = bucket_upper_bound(i) {
                assert!(v <= hi);
            }
            if i > 0 {
                let below = bucket_upper_bound(i - 1).unwrap();
                assert!(v > below, "{v} must be above bucket {}'s bound", i - 1);
            }
        }
    }

    #[test]
    fn histogram_observations_land_in_their_buckets() {
        let hub = MetricsHub::new_live();
        let h = hub.histogram("h", "h", &[]);
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.observe(v);
        }
        let snap = hub.snapshot();
        let SampleValue::Histogram {
            buckets,
            sum: _,
            count,
        } = &snap[0].value
        else {
            panic!("histogram sample expected");
        };
        assert_eq!(*count, 7);
        assert_eq!(buckets[0], 1); // 0
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[3], 1); // 4
        assert_eq!(buckets[10], 1); // 1000 ∈ [512, 1023]
        assert_eq!(buckets[64], 1); // u64::MAX
    }
}
