//! Determinism contract of the driver/fabric telemetry: every metric
//! whose name starts with `fabric_` or `driver_` (except the documented
//! engine-DEPENDENT `fabric_ff_jumps_total` and
//! `fabric_region_ff_jumps_total`) must be **bit-identical** across
//! engines — sequential vs sharded 1/4/9 — and across fast-forwarding
//! on/off, because they are pure functions of the deterministic event
//! stream. Wall-clock series (`wall_*`) are excluded by construction.
//! (`fabric_eq_classes` stays in: every configuration here uses the
//! deduplicated arena, where the class count is a pure function of the
//! route program.)
//!
//! Also pins the two boundary behaviors the exposition depends on:
//! log2-bucket edges and the flight ring's exact-tail property — here at
//! the integration level, against the public API.

use std::collections::BTreeMap;

use fv_core::eos::Fluid;
use fv_core::fields::PermeabilityField;
use fv_core::mesh::{CartesianMesh3, Extents, Spacing};
use fv_core::state::FlowState;
use fv_core::trans::{StencilKind, Transmissibilities};
use tpfa_dataflow::DataflowFluxSimulator;
use wse_metrics::{bucket_index, bucket_upper_bound, FlightRecorder, MetricsHub, SampleValue};
use wse_sim::fabric::Execution;

const NX: usize = 9;
const NY: usize = 9;
const NZ: usize = 6;
const APPS: usize = 3;

/// Runs `APPS` applications on the given engine/fast-forward combination
/// with a live hub, and returns the deterministic subset of the snapshot:
/// `fabric_*`/`driver_*` values keyed by name, with the engine label
/// stripped (it necessarily differs across configurations) and the
/// engine-dependent jump counter excluded.
fn deterministic_metrics(execution: Execution, fast_forward: bool) -> BTreeMap<String, u64> {
    let mesh = CartesianMesh3::new(Extents::new(NX, NY, NZ), Spacing::new(10.0, 10.0, 4.0));
    let fluid = Fluid::water_like();
    let perm = PermeabilityField::log_normal(&mesh, 1e-13, 0.4, 42);
    let trans = Transmissibilities::tpfa(&mesh, &perm, StencilKind::TenPoint);
    let hub = MetricsHub::new_live();
    let mut sim = DataflowFluxSimulator::builder(&mesh)
        .fluid(&fluid)
        .transmissibilities(&trans)
        .execution(execution)
        .fast_forward(fast_forward)
        .metrics(hub.clone())
        .build()
        .expect("equivalence problem must pass builder validation");
    for i in 0..APPS {
        let p = FlowState::<f32>::varied(&mesh, 1.0e7, 1.2e7, i as u64)
            .pressure()
            .to_vec();
        sim.apply(&p).expect("equivalence run failed");
    }
    let mut out = BTreeMap::new();
    for s in hub.snapshot() {
        let deterministic = (s.name.starts_with("fabric_") || s.name.starts_with("driver_"))
            && s.name != "fabric_ff_jumps_total"
            && s.name != "fabric_region_ff_jumps_total";
        if !deterministic {
            continue;
        }
        let v = match s.value {
            SampleValue::Counter(v) => v,
            // The only deterministic gauges are integer-valued fabric
            // coordinates; their f64 bits are exact.
            SampleValue::Gauge(g) => g as u64,
            SampleValue::Histogram { .. } => {
                panic!("no deterministic histograms expected, got {}", s.name)
            }
        };
        out.insert(s.name, v);
    }
    out
}

#[test]
fn deterministic_series_are_bit_identical_across_engines() {
    let seq = deterministic_metrics(Execution::Sequential, true);
    assert!(
        seq.contains_key("fabric_events_total") && seq["fabric_events_total"] > 0,
        "instrumented run must publish events"
    );
    assert_eq!(seq["driver_applications_total"], APPS as u64);
    for shards in [1usize, 4, 9] {
        let sh = deterministic_metrics(Execution::Sharded { shards, threads: 2 }, true);
        assert_eq!(
            seq, sh,
            "sharded{shards} must publish bit-identical deterministic metrics"
        );
    }
}

#[test]
fn deterministic_series_are_invariant_under_fast_forwarding() {
    // ff_hops is engine-invariant AND fast-forward-sensitive: with FF off
    // it must be exactly 0, with FF on the engines must agree on it (the
    // segment-hop sums equal the chain-hop sums). Every other
    // deterministic series must not move at all.
    let mut on = deterministic_metrics(Execution::Sequential, true);
    let mut off = deterministic_metrics(Execution::Sequential, false);
    let sh_off = deterministic_metrics(
        Execution::Sharded {
            shards: 4,
            threads: 2,
        },
        false,
    );
    assert_eq!(off, sh_off, "FF-off engines must agree");
    assert!(
        on["fabric_ff_hops_total"] > 0,
        "fast-forwarding must take static-route jumps on this fabric"
    );
    assert_eq!(off["fabric_ff_hops_total"], 0, "no jumps with FF off");
    on.remove("fabric_ff_hops_total");
    off.remove("fabric_ff_hops_total");
    assert_eq!(
        on, off,
        "all other deterministic series must be FF-invariant"
    );
}

#[test]
fn log2_bucket_boundaries_are_exact() {
    // bucket 0 = {0}; bucket i = [2^(i-1), 2^i - 1]; bucket 64 = +Inf tail.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    for i in 2..=63u32 {
        let lo = 1u64 << (i - 1);
        let hi = (1u64 << i) - 1;
        assert_eq!(bucket_index(lo), i as usize, "lower edge of bucket {i}");
        assert_eq!(bucket_index(hi), i as usize, "upper edge of bucket {i}");
        assert_eq!(bucket_index(lo - 1), (i - 1) as usize, "below bucket {i}");
    }
    assert_eq!(bucket_index(u64::MAX), 64, "u64::MAX lands in the tail");
    assert_eq!(bucket_upper_bound(0), Some(0));
    assert_eq!(bucket_upper_bound(3), Some(7));
    assert_eq!(bucket_upper_bound(64), None, "the tail bucket is +Inf");
}

#[test]
fn flight_ring_is_the_exact_tail_through_the_public_api() {
    let mut ring = FlightRecorder::new(5);
    for i in 0..23u32 {
        ring.push(i);
    }
    assert_eq!(ring.to_vec(), vec![18, 19, 20, 21, 22]);
    assert_eq!(ring.dropped(), 18);
}
