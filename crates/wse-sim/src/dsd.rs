//! DSD (Data Structure Descriptor) vector operations.
//!
//! "Most hardware architecture offer dedicated mechanisms to process arrays
//! of data ... In the architecture at hand, this is implemented by using
//! special registers holding Data Structure Descriptors, that act as
//! vectors, on which a given instruction can operate ... The DSD contains
//! information about the address, length, and stride of the arrays."
//! (paper §5.3.3)
//!
//! Every operation here processes `len` elements, increments the per-PE
//! instruction counters with the canonical traffic of its kind (the paper's
//! Table 4 convention: FMUL/FSUB/FADD = 2 loads + 1 store per element,
//! FNEG = 1 + 1, FMA = 3 + 1, FMOV = 1 fabric load + 1 store), and costs one
//! cycle per element — "no matter how long the input and output arrays are,
//! the throughput of the instruction will be constant".

use crate::memory::PeMemory;
use crate::stats::OpCounters;
use serde::{Deserialize, Serialize};
use wse_trace::{PeTracer, TraceOp};

/// A vector view of PE memory: base address, length, stride (in words).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dsd {
    /// Base word address.
    pub base: usize,
    /// Number of elements.
    pub len: usize,
    /// Stride between elements, in words.
    pub stride: usize,
}

impl Dsd {
    /// A unit-stride vector over `[base, base+len)`.
    pub fn contiguous(base: usize, len: usize) -> Self {
        Self {
            base,
            len,
            stride: 1,
        }
    }

    /// A strided vector.
    pub fn strided(base: usize, len: usize, stride: usize) -> Self {
        assert!(stride >= 1, "stride must be >= 1");
        Self { base, len, stride }
    }

    /// The address of element `i`.
    #[inline]
    pub fn at(&self, i: usize) -> usize {
        debug_assert!(i < self.len);
        self.base + i * self.stride
    }

    /// A view of the same vector shifted by `delta` elements of the
    /// underlying storage (used for the ±z neighbor access within a PE's
    /// column).
    pub fn shifted(&self, delta: isize) -> Self {
        let base = self.base as isize + delta * self.stride as isize;
        assert!(base >= 0, "shifted DSD base underflows");
        Self {
            base: base as usize,
            len: self.len,
            stride: self.stride,
        }
    }
}

/// A vector operand: another memory vector or a broadcast scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Element-wise memory operand.
    Mem(Dsd),
    /// Broadcast scalar (a register on real hardware; counted with the same
    /// traffic as a memory operand, following the paper's uniform Table-4
    /// accounting).
    Scalar(f32),
}

impl Operand {
    #[inline]
    fn get(&self, mem: &PeMemory, i: usize) -> f32 {
        match self {
            Operand::Mem(d) => mem.read_f32(d.at(i)),
            Operand::Scalar(s) => *s,
        }
    }
}

/// The operation kinds of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Multiply.
    Fmul,
    /// Subtract.
    Fsub,
    /// Add.
    Fadd,
    /// Fused multiply-add.
    Fma,
    /// Negate.
    Fneg,
    /// Fabric ↔ memory move.
    Fmov,
}

fn check_same_len(dst: Dsd, a: &Operand, b: Option<&Operand>) {
    if let Operand::Mem(d) = a {
        assert_eq!(d.len, dst.len, "operand length mismatch");
    }
    if let Some(Operand::Mem(d)) = b {
        assert_eq!(d.len, dst.len, "operand length mismatch");
    }
}

/// `dst[i] = a[i] * b[i]` — FMUL.
pub fn fmuls(
    mem: &mut PeMemory,
    ctr: &mut OpCounters,
    trace: &mut PeTracer,
    dst: Dsd,
    a: Operand,
    b: Operand,
) {
    check_same_len(dst, &a, Some(&b));
    trace.dsd(ctr.cycles(), TraceOp::Fmul, dst.len as u32);
    for i in 0..dst.len {
        let v = a.get(mem, i) * b.get(mem, i);
        mem.write_f32(dst.at(i), v);
    }
    let n = dst.len as u64;
    ctr.fmul += n;
    ctr.mem_loads += 2 * n;
    ctr.mem_stores += n;
    ctr.compute_cycles += n;
}

/// `dst[i] = a[i] * H(gate[i])` where `H` is the Heaviside step
/// (`1` if `gate > 0`, else `0`) — a *predicated* multiply.
///
/// Real SIMD hardware performs upwind selection with lane predication at
/// multiply throughput; this op models that, and is counted as a plain FMUL
/// (2 loads, 1 store, 1 FLOP per element). It is the only non-textbook op
/// the TPFA kernel needs to stay branch-free on vectors.
pub fn fmuls_gate(
    mem: &mut PeMemory,
    ctr: &mut OpCounters,
    trace: &mut PeTracer,
    dst: Dsd,
    a: Operand,
    gate: Operand,
) {
    check_same_len(dst, &a, Some(&gate));
    trace.dsd(ctr.cycles(), TraceOp::FmulGate, dst.len as u32);
    for i in 0..dst.len {
        let g = if gate.get(mem, i) > 0.0 { 1.0 } else { 0.0 };
        let v = a.get(mem, i) * g;
        mem.write_f32(dst.at(i), v);
    }
    let n = dst.len as u64;
    ctr.fmul += n;
    ctr.mem_loads += 2 * n;
    ctr.mem_stores += n;
    ctr.compute_cycles += n;
}

/// `dst[i] = a[i] - b[i]` — FSUB.
pub fn fsubs(
    mem: &mut PeMemory,
    ctr: &mut OpCounters,
    trace: &mut PeTracer,
    dst: Dsd,
    a: Operand,
    b: Operand,
) {
    check_same_len(dst, &a, Some(&b));
    trace.dsd(ctr.cycles(), TraceOp::Fsub, dst.len as u32);
    for i in 0..dst.len {
        let v = a.get(mem, i) - b.get(mem, i);
        mem.write_f32(dst.at(i), v);
    }
    let n = dst.len as u64;
    ctr.fsub += n;
    ctr.mem_loads += 2 * n;
    ctr.mem_stores += n;
    ctr.compute_cycles += n;
}

/// `dst[i] = a[i] + b[i]` — FADD.
pub fn fadds(
    mem: &mut PeMemory,
    ctr: &mut OpCounters,
    trace: &mut PeTracer,
    dst: Dsd,
    a: Operand,
    b: Operand,
) {
    check_same_len(dst, &a, Some(&b));
    trace.dsd(ctr.cycles(), TraceOp::Fadd, dst.len as u32);
    for i in 0..dst.len {
        let v = a.get(mem, i) + b.get(mem, i);
        mem.write_f32(dst.at(i), v);
    }
    let n = dst.len as u64;
    ctr.fadd += n;
    ctr.mem_loads += 2 * n;
    ctr.mem_stores += n;
    ctr.compute_cycles += n;
}

/// `dst[i] = a[i] * b[i] + dst[i]` — FMA (accumulating form; 2 FLOPs,
/// 3 loads + 1 store per element).
pub fn fmacs(
    mem: &mut PeMemory,
    ctr: &mut OpCounters,
    trace: &mut PeTracer,
    dst: Dsd,
    a: Operand,
    b: Operand,
) {
    check_same_len(dst, &a, Some(&b));
    trace.dsd(ctr.cycles(), TraceOp::Fma, dst.len as u32);
    for i in 0..dst.len {
        let v = a
            .get(mem, i)
            .mul_add(b.get(mem, i), mem.read_f32(dst.at(i)));
        mem.write_f32(dst.at(i), v);
    }
    let n = dst.len as u64;
    ctr.fma += n;
    ctr.mem_loads += 3 * n;
    ctr.mem_stores += n;
    ctr.compute_cycles += n;
}

/// `dst[i] = -a[i]` — FNEG (1 load + 1 store per element).
pub fn fnegs(mem: &mut PeMemory, ctr: &mut OpCounters, trace: &mut PeTracer, dst: Dsd, a: Operand) {
    check_same_len(dst, &a, None);
    trace.dsd(ctr.cycles(), TraceOp::Fneg, dst.len as u32);
    for i in 0..dst.len {
        let v = -a.get(mem, i);
        mem.write_f32(dst.at(i), v);
    }
    let n = dst.len as u64;
    ctr.fneg += n;
    ctr.mem_loads += n;
    ctr.mem_stores += n;
    ctr.compute_cycles += n;
}

/// Stores one received wavelet payload to memory — the receive half of
/// FMOV (1 fabric load + 1 memory store).
pub fn fmov_recv(
    mem: &mut PeMemory,
    ctr: &mut OpCounters,
    trace: &mut PeTracer,
    addr: usize,
    value: f32,
) {
    trace.dsd(ctr.cycles(), TraceOp::FmovIn, 1);
    mem.write_f32(addr, value);
    ctr.fmov_in += 1;
    ctr.mem_stores += 1;
    ctr.fabric_loads += 1;
    ctr.comm_cycles += 1;
}

/// Reads `src` element-wise for sending — the transmit half of FMOV
/// (1 fabric store per element). Returns the values in order; the caller
/// turns them into wavelets.
///
/// The send-side memory reads happen in the fabric-output engine and are
/// **not** counted as PE memory traffic: the paper's Table 4 charges FMOV
/// with "1 store, 1 fabric load" on the *receiving* side only, so the
/// per-cell loads+stores total (406) excludes transmit reads.
pub fn fmov_send(mem: &PeMemory, ctr: &mut OpCounters, trace: &mut PeTracer, src: Dsd) -> Vec<f32> {
    trace.dsd(ctr.cycles(), TraceOp::FmovOut, src.len as u32);
    let out: Vec<f32> = (0..src.len).map(|i| mem.read_f32(src.at(i))).collect();
    let n = src.len as u64;
    ctr.fmov_out += n;
    ctr.fabric_stores += n;
    ctr.comm_cycles += n;
    out
}

/// Scalar density evaluation (Eq. 5, `ρ = ρ_ref·exp(c_f(p − p_ref))`) over
/// a vector — performed once per cell per iteration, *outside* the Table-4
/// flux accounting (tracked via `eos_evals`).
#[allow(clippy::too_many_arguments)]
pub fn eos_density(
    mem: &mut PeMemory,
    ctr: &mut OpCounters,
    trace: &mut PeTracer,
    dst: Dsd,
    p: Dsd,
    rho_ref: f32,
    c_f: f32,
    p_ref: f32,
) {
    assert_eq!(dst.len, p.len);
    trace.dsd(ctr.cycles(), TraceOp::Eos, dst.len as u32);
    for i in 0..dst.len {
        let pv = mem.read_f32(p.at(i));
        mem.write_f32(dst.at(i), rho_ref * (c_f * (pv - p_ref)).exp());
    }
    let n = dst.len as u64;
    ctr.eos_evals += n;
    // exp costs several cycles; model it as 4 per element
    ctr.compute_cycles += 4 * n;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(len: usize) -> (PeMemory, OpCounters, PeTracer, Dsd, Dsd, Dsd) {
        let mut mem = PeMemory::with_capacity_bytes(4096);
        let a = mem.alloc(len).unwrap();
        let b = mem.alloc(len).unwrap();
        let d = mem.alloc(len).unwrap();
        for i in 0..len {
            mem.write_f32(a.at(i), i as f32 + 1.0);
            mem.write_f32(b.at(i), 2.0);
        }
        (
            mem,
            OpCounters::default(),
            PeTracer::null(),
            Dsd::contiguous(a.offset, len),
            Dsd::contiguous(b.offset, len),
            Dsd::contiguous(d.offset, len),
        )
    }

    #[test]
    fn fmuls_computes_and_counts() {
        let (mut mem, mut ctr, mut tr, a, b, d) = setup(5);
        fmuls(
            &mut mem,
            &mut ctr,
            &mut tr,
            d,
            Operand::Mem(a),
            Operand::Mem(b),
        );
        for i in 0..5 {
            assert_eq!(mem.read_f32(d.at(i)), (i as f32 + 1.0) * 2.0);
        }
        assert_eq!(ctr.fmul, 5);
        assert_eq!(ctr.mem_loads, 10);
        assert_eq!(ctr.mem_stores, 5);
        assert_eq!(ctr.compute_cycles, 5);
        assert_eq!(ctr.flops(), 5);
    }

    #[test]
    fn scalar_operand_broadcasts() {
        let (mut mem, mut ctr, mut tr, a, _, d) = setup(4);
        fmuls(
            &mut mem,
            &mut ctr,
            &mut tr,
            d,
            Operand::Mem(a),
            Operand::Scalar(0.5),
        );
        for i in 0..4 {
            assert_eq!(mem.read_f32(d.at(i)), (i as f32 + 1.0) * 0.5);
        }
    }

    #[test]
    fn fsubs_fadds_fnegs() {
        let (mut mem, mut ctr, mut tr, a, b, d) = setup(3);
        fsubs(
            &mut mem,
            &mut ctr,
            &mut tr,
            d,
            Operand::Mem(a),
            Operand::Mem(b),
        );
        assert_eq!(mem.read_f32(d.at(0)), -1.0);
        fadds(
            &mut mem,
            &mut ctr,
            &mut tr,
            d,
            Operand::Mem(a),
            Operand::Mem(b),
        );
        assert_eq!(mem.read_f32(d.at(2)), 5.0);
        fnegs(&mut mem, &mut ctr, &mut tr, d, Operand::Mem(a));
        assert_eq!(mem.read_f32(d.at(1)), -2.0);
        assert_eq!(ctr.fsub, 3);
        assert_eq!(ctr.fadd, 3);
        assert_eq!(ctr.fneg, 3);
        // FNEG traffic is 1 load + 1 store
        assert_eq!(ctr.mem_loads, 6 + 6 + 3);
        assert_eq!(ctr.mem_stores, 9);
    }

    #[test]
    fn fmacs_accumulates_with_two_flops() {
        let (mut mem, mut ctr, mut tr, a, b, d) = setup(3);
        for i in 0..3 {
            mem.write_f32(d.at(i), 10.0);
        }
        fmacs(
            &mut mem,
            &mut ctr,
            &mut tr,
            d,
            Operand::Mem(a),
            Operand::Mem(b),
        );
        assert_eq!(mem.read_f32(d.at(0)), 12.0);
        assert_eq!(mem.read_f32(d.at(2)), 16.0);
        assert_eq!(ctr.fma, 3);
        assert_eq!(ctr.flops(), 6);
        assert_eq!(ctr.mem_loads, 9);
        assert_eq!(ctr.mem_stores, 3);
    }

    #[test]
    fn gate_multiply_implements_upwind_selection() {
        let (mut mem, mut ctr, mut tr, a, b, d) = setup(4);
        // gate: alternate signs, zero counts as "not >0"
        mem.write_f32(b.at(0), 1.0);
        mem.write_f32(b.at(1), -1.0);
        mem.write_f32(b.at(2), 0.0);
        mem.write_f32(b.at(3), 5.0);
        fmuls_gate(
            &mut mem,
            &mut ctr,
            &mut tr,
            d,
            Operand::Mem(a),
            Operand::Mem(b),
        );
        assert_eq!(mem.read_f32(d.at(0)), 1.0);
        assert_eq!(mem.read_f32(d.at(1)), 0.0);
        assert_eq!(mem.read_f32(d.at(2)), 0.0);
        assert_eq!(mem.read_f32(d.at(3)), 4.0);
        assert_eq!(ctr.fmul, 4); // counted as FMUL
    }

    #[test]
    fn fmov_pair_counts_fabric_traffic() {
        let (mut mem, mut ctr, mut tr, a, _, d) = setup(4);
        let vals = fmov_send(&mem, &mut ctr, &mut tr, a);
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ctr.fmov_out, 4);
        assert_eq!(ctr.fabric_stores, 4);
        assert_eq!(ctr.mem_loads, 0, "transmit reads are not PE memory traffic");
        for (i, v) in vals.iter().enumerate() {
            fmov_recv(&mut mem, &mut ctr, &mut tr, d.at(i), *v);
        }
        assert_eq!(ctr.fmov_in, 4);
        assert_eq!(ctr.fabric_loads, 4);
        assert_eq!(ctr.mem_stores, 4);
        assert_eq!(ctr.comm_cycles, 8);
        assert_eq!(mem.read_f32(d.at(3)), 4.0);
    }

    #[test]
    fn shifted_dsd_views_the_z_neighbor() {
        let mut mem = PeMemory::with_capacity_bytes(256);
        let col = mem.alloc(6).unwrap();
        for i in 0..6 {
            mem.write_f32(col.at(i), i as f32 * 10.0);
        }
        let center = Dsd::contiguous(col.offset + 1, 4); // elements 1..5
        let up = center.shifted(1); // elements 2..6
        let down = center.shifted(-1); // elements 0..4
        assert_eq!(mem.read_f32(up.at(0)), 20.0);
        assert_eq!(mem.read_f32(down.at(0)), 0.0);
        assert_eq!(mem.read_f32(center.at(0)), 10.0);
    }

    #[test]
    fn strided_dsd() {
        let mut mem = PeMemory::with_capacity_bytes(256);
        let r = mem.alloc(12).unwrap();
        for i in 0..12 {
            mem.write_f32(r.at(i), i as f32);
        }
        let every3 = Dsd::strided(r.offset, 4, 3);
        assert_eq!(mem.read_f32(every3.at(0)), 0.0);
        assert_eq!(mem.read_f32(every3.at(3)), 9.0);
    }

    #[test]
    fn eos_density_matches_formula() {
        let mut mem = PeMemory::with_capacity_bytes(256);
        let mut ctr = OpCounters::default();
        let p = mem.alloc(3).unwrap();
        let rho = mem.alloc(3).unwrap();
        for i in 0..3 {
            mem.write_f32(p.at(i), 1.0e7 + i as f32 * 1.0e5);
        }
        let mut tr = PeTracer::null();
        eos_density(
            &mut mem,
            &mut ctr,
            &mut tr,
            Dsd::contiguous(rho.offset, 3),
            Dsd::contiguous(p.offset, 3),
            1000.0,
            4.5e-10,
            1.0e7,
        );
        for i in 0..3 {
            let pv = mem.read_f32(p.at(i));
            let expect = 1000.0 * (4.5e-10 * (pv - 1.0e7)).exp();
            assert_eq!(mem.read_f32(rho.at(i)), expect);
        }
        assert_eq!(ctr.eos_evals, 3);
        assert_eq!(ctr.flops(), 0, "EOS is outside Table-4 accounting");
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let (mut mem, mut ctr, mut tr, a, _, d) = setup(4);
        let short = Dsd::contiguous(a.base, 2);
        fmuls(
            &mut mem,
            &mut ctr,
            &mut tr,
            d,
            Operand::Mem(short),
            Operand::Scalar(1.0),
        );
    }
}
