//! The fabric: a 2D grid of PEs + routers driven by a deterministic
//! discrete-event loop.
//!
//! Wavelets advance one router hop per `hop_latency` cycles; handlers run
//! when a wavelet reaches a ramp and their DSD-op cycle cost pushes the PE's
//! busy-time forward, so communication and computation overlap exactly as
//! the paper's implementation arranges (§5.3.2: "the fabric and routers work
//! completely independently from the processing elements").
//!
//! # Two execution engines, one result
//!
//! [`Fabric::run`] dispatches on [`FabricConfig::execution`]:
//!
//! * [`Execution::Sequential`] — a single event queue popped in key order
//!   (the reference engine).
//! * [`Execution::Sharded`] — the PE grid is partitioned into rectangular
//!   shards, each with a private event queue, advanced by a scoped-thread
//!   worker pool under **conservative lookahead** (CMB/null-message style;
//!   no global barrier). Each directed pair of adjacent shards carries a
//!   monotone *channel clock*: a promise that every event the source shard
//!   will henceforth push into the destination's mailbox has time ≥ the
//!   clock. A shard may safely process everything strictly below the
//!   minimum of its in-edge clocks (its *earliest input time*, EIT), so
//!   lightly-coupled shards free-run far ahead of their neighbors instead
//!   of synchronizing every `hop_latency` window. Clocks advance by
//!   *position-aware lookahead*: a pending event at a PE `d` links away
//!   from a shard boundary cannot influence the neighbor across it before
//!   `d · hop_latency` cycles, so a stalled shard publishes
//!   `min(event.time + d·hop_latency)` over its queue (and `EIT +
//!   hop_latency` for anything it may yet receive and relay), which is what
//!   lets interior work stop throttling boundary neighbors.
//!
//! Both engines order events by the same key `(time, seq, src)`, where
//! `seq` is a counter private to the *creating* PE (or to the host) and
//! `src` identifies that creator. A pure pass-through hop — a data wavelet
//! crossing a *fixed* single-cardinal-output route — is **key-preserving**:
//! the router forwards the event with `(seq, src)` untouched, advancing
//! only its time, so passive forwarding routers never contribute to the
//! key. Every other emission (ramp delivery, fan-out, task output, local
//! activation) gets a fresh `seq` from its creator. The key is causally
//! local: it depends only on the originating PE's own processing history,
//! never on global interleaving, so both engines assign identical keys to
//! identical events. Keys of *pending* events are unique (each creator
//! numbers its events, and a key-preserved forward consumes its predecessor
//! and is its only descendant), giving a strict total order, so queue
//! insertion order is irrelevant. Determinism of the sharded engine then
//! follows from the channel-clock promise: a shard pops only events with
//! time strictly below its EIT, and every *future* cross-shard arrival has
//! time ≥ EIT (clocks are read with `Acquire` *before* the mailbox is
//! drained, and senders flush their batches *before* publishing, so any
//! event the promise does not cover is already visible in the drain). Each
//! shard therefore processes its PEs' events in exactly the key order the
//! sequential engine would, and per-event processing touches only one PE's
//! slot. Results, per-PE [`OpCounters`], [`RunReport`] totals, and error
//! reporting are bit-identical between the engines.
//!
//! # Event engine
//!
//! Events live in a bucketed [`CalendarQueue`] — O(1) push/pop for the
//! near-term, integer-cycle times the fabric produces (see
//! [`crate::queue`]) — behind the [`EventQueue`] trait both engines share.
//! On fault-free, untraced runs the engines also **fast-forward static
//! routes**: a per-`(pe, color)` table of passive-forwarding hops is built
//! at `run()` entry, and a data wavelet entering a k-hop chain of fixed
//! single-cardinal-output routes is delivered to the chain's end as *one*
//! event at `t + k·hop_latency`, with each intermediate router's
//! `fabric_hops` bumped exactly as the per-hop walk would bump it. Key
//! preservation makes both walks emit the same final event, so results are
//! bit-identical with fast-forwarding on or off
//! ([`FabricConfig::fast_forward`]). Chains re-validate each hop against
//! [`Router::version`] at walk time, so runtime reconfiguration falls back
//! to per-hop routing. Sharded chains cross shard boundaries *segmented*:
//! the owning shard jumps the chain to the first PE past its boundary and
//! delivers that event into the neighbor's mailbox with the exact
//! accumulated arrival time `t + j·hop_latency`; the neighbor continues the
//! chain from there when it pops the event. Each segment bumps its own
//! routers' `fabric_hops`, and a k-hop chain costs `1 + (k−1)` budget
//! events in both engines regardless of how many boundaries split it, so
//! counters, budgets, and results stay bit-identical.

use crate::fault::{FaultClass, FaultEvent, FaultKind, FaultPlan};
use crate::geometry::{Direction, FabricDims, PeCoord, CARDINALS};
use crate::memory::PeMemory;
use crate::pe::{PeContext, PeProgram};
use crate::queue::{advance_time, CalendarQueue, EventQueue, Timestamped};
use crate::route::{DirMask, RouteError, RouteTable, Router};
use crate::snapshot::{
    EventRecord, FabricSnapshot, FaultRecord, PeRecord, RestoreError, TraceSeqRecord,
};
use crate::stats::{FabricStats, OpCounters};
use crate::wavelet::{Color, Wavelet, WaveletKind, MAX_COLORS};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use wse_trace::{EventRing, PeTracer, Trace, TraceEventKind, TraceSpec, HOST_PE, LINK_CONTROL_BIT};

/// Which event-loop engine [`Fabric::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// The single-threaded reference engine.
    #[default]
    Sequential,
    /// The parallel engine: rectangular shards with private event queues,
    /// synchronized by per-shard-pair conservative-lookahead channel clocks
    /// (null-message style — no global barrier). Bit-identical to
    /// [`Execution::Sequential`].
    Sharded {
        /// Number of rectangular shards to partition the PE grid into
        /// (clamped to the PE count; an infeasible count is reduced until a
        /// rectangular factorization fits the fabric).
        shards: usize,
        /// Worker threads to run the shards on (clamped to the shard
        /// count; shards are dealt round-robin to workers).
        threads: usize,
    },
}

/// Fabric-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Per-PE memory capacity in bytes (default: WSE-2's 48 kB).
    pub pe_memory_bytes: usize,
    /// Router-to-router latency in cycles (default 1). Must be ≥ 1 for
    /// [`Execution::Sharded`] — it is the engine's lookahead.
    pub hop_latency: u64,
    /// Safety cap on processed events (default 10⁹).
    pub max_events: u64,
    /// Event-loop engine (default [`Execution::Sequential`]).
    pub execution: Execution,
    /// Tracing request (default off — zero overhead beyond one predictable
    /// branch per instrumentation site). When enabled, each PE records into
    /// a bounded drop-oldest ring; read the result with [`Fabric::trace`].
    pub trace: TraceSpec,
    /// Static-route fast-forwarding (default on): deliver wavelets across
    /// chains of passive fixed-route routers as one event instead of one
    /// per hop. Results are bit-identical either way (see the module docs);
    /// the toggle exists for differential testing and benchmarking. Ignored
    /// (treated as off) while tracing is enabled or a non-empty
    /// [`FaultPlan`] is installed — those paths need per-hop semantics.
    pub fast_forward: bool,
    /// Route-table deduplication (default on): after `load`, routers with
    /// identical static tables share one `Arc<RouteTable>` per equivalence
    /// class — O(classes) route storage for SPMD programs instead of
    /// O(PEs), and a class-indexed fast-forward table. Results are
    /// bit-identical either way; `false` keeps the legacy one-table-per-PE
    /// representation as the differential axis for equivalence tests.
    pub dedup_routes: bool,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            pe_memory_bytes: crate::memory::WSE2_PE_MEMORY_BYTES,
            hop_latency: 1,
            max_events: 1_000_000_000,
            execution: Execution::Sequential,
            trace: TraceSpec::OFF,
            fast_forward: true,
            dedup_routes: true,
        }
    }
}

/// `src` value for events injected by the host (sorts after all PEs).
const HOST_SRC: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Goes through the PE's router (input side recorded).
    Route(Direction),
    /// Delivered directly to the PE's program (ramp arrival / activation).
    Deliver,
}

/// The deterministic event key: see the module docs. `seq` is private to
/// `src`, so keys are unique and causally local.
type EventKey = (u64, u64, usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    /// Sequence number from the creating PE's (or the host's) own counter.
    seq: u64,
    /// Linear index of the creating PE, or [`HOST_SRC`].
    src: usize,
    /// Destination PE (linear index).
    pe: usize,
    kind: EventKind,
    wavelet: Wavelet,
}

impl Event {
    fn key(&self) -> EventKey {
        (self.time, self.seq, self.src)
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl Timestamped for Event {
    fn time(&self) -> u64 {
        self.time
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
// Events carry Wavelet (PartialEq only via derive); provide Eq manually.
impl Eq for Wavelet {}

/// Per-PE fault-injection state, distributed from a [`FaultPlan`] by
/// [`Fabric::set_fault_plan`]. All fields are static during a run (except
/// the one-shot pending lists and the log), and every decision is keyed on
/// `(event time, this state)` — both engine-invariant — so fault behavior
/// is bit-identical between the sequential and sharded engines.
#[derive(Default)]
struct PeFaultState {
    /// Fast-path gate: true iff any fault is scheduled at this PE.
    active: bool,
    /// Verify wavelet checksums at ramp delivery (set fabric-wide whenever
    /// a fault plan is installed: corruption may be injected at a *different*
    /// PE than the receiver, so a local `active` check is insufficient).
    verify_checksums: bool,
    /// Downed outgoing links: `(dir, from, until)` — drops in `[from, until)`.
    link_down: Vec<(Direction, u64, u64)>,
    /// The PE swallows every delivery at time ≥ this.
    halt_at: Option<u64>,
    /// Slow-down windows: `(from, until, factor)`, sorted; first match wins.
    slow: Vec<(u64, u64, u32)>,
    /// One fault event has been logged for each slow window already applied.
    slow_logged: Vec<bool>,
    /// Pending payload corruptions `(at, xor)`, sorted by `at`; each fires
    /// on the first wavelet routed here at time ≥ `at`, then is consumed.
    corrupt: Vec<(u64, u32)>,
    /// Pending spurious router flips `(at, color)`, sorted by `at`; each
    /// fires at the first route event at time ≥ `at`, then is consumed.
    flips: Vec<(u64, Color)>,
    /// Every injection/detection at this PE, in processing order (times are
    /// non-decreasing because each PE processes events in key order).
    log: Vec<FaultEvent>,
    /// A non-benign fault touched this PE (drives `Degrade` validity maps).
    tainted: bool,
}

/// Per-PE state that does *not* fit the struct-of-arrays arena: the things
/// with per-PE identity (memory, program, router dynamic state, fault
/// machinery, trace sink). Every plain per-PE scalar lives in
/// [`PeScalars`] instead, indexed by the engine's slot index.
struct PeSlot {
    memory: PeMemory,
    counters: OpCounters,
    router: Router,
    program: Box<dyn PeProgram>,
    outbox: Vec<Wavelet>,
    activations: Vec<(Color, u32)>,
    /// Wavelets stalled by flow control: the active switch position does
    /// not accept their input link yet. Real WSE routers backpressure the
    /// link in this situation; we park the wavelet and re-inject it when a
    /// control wavelet toggles the color's position. FIFO per color.
    parked: Vec<(Direction, Wavelet)>,
    /// `process_route`'s work list, kept on the slot so the routing hot
    /// path never allocates. Always drained back to empty. The flag marks
    /// the primary (incoming) wavelet, whose hop may be key-preserving.
    route_scratch: VecDeque<(Direction, Wavelet, bool)>,
    /// Fault-injection state (inert unless a plan is installed).
    faults: PeFaultState,
    /// This PE's trace sink (a no-op unless tracing is enabled).
    trace: PeTracer,
}

/// The struct-of-arrays arena of per-PE scalar state: flat slices indexed
/// by PE slot index — fabric-linear on the sequential engine, shard-local
/// on the sharded engine (see [`PeScalars::gather`]). Keeping these nine
/// words out of [`PeSlot`] keeps the hot counters densely packed and the
/// slot itself small, which is what paper-scale PE counts need.
#[derive(Debug, Clone, Default)]
struct PeScalars {
    /// The PE's CE is busy until this fabric time.
    busy_until: Vec<u64>,
    /// This PE's private event sequence counter (the `seq` of events it
    /// creates). Causally local: advances only when this PE processes an
    /// event, identically in both engines.
    seq: Vec<u64>,
    /// Wavelets this PE sent off the fabric edge.
    edge_drops: Vec<u64>,
    /// Backpressure (park) events at this PE's router.
    flow_stalls: Vec<u64>,
    /// Cycles deliveries spent queued behind this PE's busy CE before their
    /// task could start (`busy_until − delivery time`, summed). Accumulated
    /// in the shared `process_deliver` path, so it is bit-identical between
    /// the sequential and sharded engines.
    queue_wait_cycles: Vec<u64>,
    /// Wavelets dropped or swallowed by injected faults at this PE.
    fault_drops: Vec<u64>,
    /// Corrupted wavelets caught by checksum verification at this ramp.
    checksum_drops: Vec<u64>,
    /// Wavelets this PE's router forwarded per fabric link (excludes ramp
    /// deliveries). Lived on the router before the static/dynamic split;
    /// routing is pure now and the engines count here.
    fabric_hops: Vec<u64>,
    /// Wavelets this PE's router delivered up the ramp.
    ramp_deliveries: Vec<u64>,
}

impl PeScalars {
    fn new(n: usize) -> Self {
        Self {
            busy_until: vec![0; n],
            seq: vec![0; n],
            edge_drops: vec![0; n],
            flow_stalls: vec![0; n],
            queue_wait_cycles: vec![0; n],
            fault_drops: vec![0; n],
            checksum_drops: vec![0; n],
            fabric_hops: vec![0; n],
            ramp_deliveries: vec![0; n],
        }
    }

    fn fields(&self) -> [&Vec<u64>; 9] {
        [
            &self.busy_until,
            &self.seq,
            &self.edge_drops,
            &self.flow_stalls,
            &self.queue_wait_cycles,
            &self.fault_drops,
            &self.checksum_drops,
            &self.fabric_hops,
            &self.ramp_deliveries,
        ]
    }

    fn fields_mut(&mut self) -> [&mut Vec<u64>; 9] {
        [
            &mut self.busy_until,
            &mut self.seq,
            &mut self.edge_drops,
            &mut self.flow_stalls,
            &mut self.queue_wait_cycles,
            &mut self.fault_drops,
            &mut self.checksum_drops,
            &mut self.fabric_hops,
            &mut self.ramp_deliveries,
        ]
    }

    /// Copies the rows at fabric-linear indices `linear` out into a dense
    /// shard-local arena (row `j` of the result is row `linear[j]` here).
    /// Shard rects are non-contiguous in linear order, so this is the
    /// split half of the sharded engine's slot hand-off.
    fn gather(&self, linear: &[usize]) -> PeScalars {
        let mut out = PeScalars::new(linear.len());
        for (src, dst) in self.fields().into_iter().zip(out.fields_mut()) {
            for (j, &i) in linear.iter().enumerate() {
                dst[j] = src[i];
            }
        }
        out
    }

    /// Merge half of [`PeScalars::gather`]: writes a shard-local arena's
    /// rows back to their fabric-linear positions.
    fn scatter(&mut self, linear: &[usize], local: &PeScalars) {
        for (dst, src) in self.fields_mut().into_iter().zip(local.fields()) {
            for (j, &i) in linear.iter().enumerate() {
                dst[i] = src[j];
            }
        }
    }
}

/// Traces and logs one fault injection/detection at a PE, in the PE's own
/// deterministic processing order.
fn record_fault(
    slot: &mut PeSlot,
    coord: PeCoord,
    time: u64,
    class: FaultClass,
    link: u16,
    detail: u32,
    benign: bool,
) {
    slot.trace
        .record_at(time, TraceEventKind::Fault, class.code(), link, detail);
    slot.faults.log.push(FaultEvent {
        time,
        pe: coord,
        class,
        detail,
        benign,
    });
    if !benign {
        slot.faults.tainted = true;
    }
}

/// Outcome of a [`Fabric::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Events processed in this run.
    pub events: u64,
    /// Simulated time (cycles) when the fabric went quiescent.
    pub final_time: u64,
    /// Wavelets dropped at the fabric edge during this run.
    pub edge_drops: u64,
    /// Fault injections/detections logged during this run (benign ones
    /// included); zero unless a [`FaultPlan`] is installed.
    pub faults: u64,
}

/// Outcome of a [`Fabric::run_until`] call: the per-call [`RunReport`]
/// plus whether the run paused early with events still pending. Because
/// every [`RunReport`] field is a per-call count (deltas for drops/faults,
/// pops for `events`), the reports of a paused-and-resumed run sum
/// component-wise to the report of the equivalent uninterrupted run —
/// `final_time` is the cumulative fabric clock and the last segment's
/// value matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseReport {
    /// What this segment of the run processed.
    pub report: RunReport,
    /// True when the event limit tripped with work still pending; false
    /// when the fabric reached quiescence first.
    pub paused: bool,
}

/// A fatal simulation error (program bug).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// A router rejected a wavelet.
    Route {
        /// Offending PE.
        pe: PeCoord,
        /// The underlying router error.
        error: RouteError,
    },
    /// The event cap was reached (runaway program).
    EventBudgetExceeded {
        /// The configured cap.
        max_events: u64,
    },
    /// An injected fault was detected (see `wse-sim::fault`). Reported in
    /// preference to route/deadlock errors — those are usually *consequences*
    /// of the fault — but after the event budget.
    Fault {
        /// The PE at which the fault fired (for detections, the detector).
        pe: PeCoord,
        /// Fabric time of the first non-benign fault event.
        time: u64,
        /// What kind of fault.
        class: FaultClass,
        /// Class-dependent detail (see [`FaultEvent::detail`]).
        detail: u32,
    },
    /// The fabric went quiescent with wavelets still stalled by flow
    /// control — no control wavelet will ever release them.
    Deadlock {
        /// A PE holding stalled wavelets.
        pe: PeCoord,
        /// How many are stalled there.
        stalled: usize,
        /// Human-readable list of the stalled wavelets.
        details: String,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Route { pe, error } => {
                write!(f, "router error at PE ({}, {}): {error}", pe.col, pe.row)
            }
            FabricError::EventBudgetExceeded { max_events } => {
                write!(f, "event budget exceeded ({max_events})")
            }
            FabricError::Fault {
                pe,
                time,
                class,
                detail,
            } => write!(
                f,
                "injected fault detected: {} at PE ({}, {}) at t={time} (detail {detail})",
                class.name(),
                pe.col,
                pe.row
            ),
            FabricError::Deadlock {
                pe,
                stalled,
                details,
            } => write!(
                f,
                "deadlock: {stalled} wavelet(s) stalled at PE ({}, {}) with the fabric \
                 quiescent: {details}",
                pe.col, pe.row
            ),
        }
    }
}

impl std::error::Error for FabricError {}

/// Trace `a`/`payload` encoding of a [`FabricError`]: `(class, detail)`.
/// Classes: 0 = event budget, 1 = route, 2 = deadlock, 3 = fault. Route
/// errors carry the offending color id as detail; deadlocks carry the
/// stalled count; faults carry the [`FaultClass`] code.
fn error_code(error: &FabricError) -> (u8, u32) {
    match error {
        FabricError::EventBudgetExceeded { .. } => (0, 0),
        FabricError::Route { error, .. } => {
            let color = match error {
                RouteError::UnconfiguredColor(c) => c.id(),
                RouteError::InputNotAccepted { color, .. } => color.id(),
            };
            (1, u32::from(color))
        }
        FabricError::Deadlock { stalled, .. } => (2, *stalled as u32),
        FabricError::Fault { class, .. } => (3, u32::from(class.code())),
    }
}

/// Keeps the error with the smallest event key — "the first error", under
/// the engine-independent key order, regardless of which engine (or which
/// shard) encountered it. Pure merge: used when combining already-observed
/// (and therefore already-traced) errors, e.g. across shards.
fn merge_min_error(best: &mut Option<(EventKey, FabricError)>, key: EventKey, error: FabricError) {
    match best {
        Some((k, _)) if *k <= key => {}
        _ => *best = Some((key, error)),
    }
}

/// The single entry point for *newly observed* errors: emits a trace error
/// event on the observing sink, then merges into the running minimum. Every
/// creation site goes through here, so an error can never be recorded
/// without being traced.
fn report_error(
    trace: &mut PeTracer,
    time: u64,
    best: &mut Option<(EventKey, FabricError)>,
    key: EventKey,
    error: FabricError,
) {
    let (class, detail) = error_code(&error);
    trace.record_at(time, TraceEventKind::Error, class, 0, detail);
    merge_min_error(best, key, error);
}

// ---------------------------------------------------------------------------
// Per-event processing, shared verbatim by both engines.
//
// Each function mutates exactly one PE's slot and hands created events to
// `emit`; nothing else is touched, which is what makes shard-parallel
// execution sound.
// ---------------------------------------------------------------------------

/// Trace link code for a wavelet event: low byte = direction index,
/// bit 8 = control flag.
#[inline]
fn link_code(dir: Direction, control: bool) -> u16 {
    dir.index() as u16 | if control { LINK_CONTROL_BIT } else { 0 }
}

#[allow(clippy::too_many_arguments)]
fn process_route(
    slot: &mut PeSlot,
    sc: &mut PeScalars,
    idx: usize,
    pe: usize,
    coord: PeCoord,
    dims: FabricDims,
    hop_latency: u64,
    ev: &Event,
    input: Direction,
    emit: &mut impl FnMut(Event),
    first_error: &mut Option<(EventKey, FabricError)>,
) {
    // Work list (slot-resident, so the hot path never allocates): the
    // incoming wavelet, then — in arrival order — any previously stalled
    // wavelets a toggle releases. Releases are processed *within this
    // event* so that no later-queued wavelet of the same color can
    // overtake them (link-order preservation). Only the incoming wavelet
    // is `primary`: released wavelets share this event's time, so
    // key-preserving their hops too would duplicate pending keys.
    debug_assert!(slot.route_scratch.is_empty());
    let mut incoming = ev.wavelet;
    if slot.faults.active {
        // Spurious router-configuration flips scheduled at or before this
        // event's time fire first (consumed one-shot, in `at` order). An
        // effective flip releases parked wavelets of that color, exactly
        // like a legitimate control toggle would.
        while slot
            .faults
            .flips
            .first()
            .is_some_and(|&(at, _)| at <= ev.time)
        {
            let (_, color) = slot.faults.flips.remove(0);
            match slot.router.force_toggle(color) {
                Some(pos) => {
                    record_fault(
                        slot,
                        coord,
                        ev.time,
                        FaultClass::RouterFlip,
                        0,
                        pos as u32,
                        false,
                    );
                    let mut released = Vec::new();
                    slot.parked.retain(|(dir, w)| {
                        if w.color == color {
                            released.push((*dir, *w));
                            false
                        } else {
                            true
                        }
                    });
                    for (dir, w) in released {
                        slot.route_scratch.push_back((dir, w, false));
                    }
                }
                // Unconfigured or fixed color: the flip has no observable
                // effect — benign by construction.
                None => record_fault(
                    slot,
                    coord,
                    ev.time,
                    FaultClass::RouterFlip,
                    0,
                    u32::MAX,
                    true,
                ),
            }
        }
        // In-flight payload corruption: the first wavelet routed here at
        // time ≥ `at` has its payload XORed with a stale checksum. The
        // injection itself is benign — detection (non-benign) happens at
        // the receiving ramp's checksum verification.
        if slot
            .faults
            .corrupt
            .first()
            .is_some_and(|&(at, _)| at <= ev.time)
        {
            let (_, xor) = slot.faults.corrupt.remove(0);
            incoming.corrupt_payload(xor);
            record_fault(
                slot,
                coord,
                ev.time,
                FaultClass::CorruptInjected,
                link_code(input, incoming.is_control()),
                xor,
                true,
            );
        }
    }
    slot.route_scratch.push_back((input, incoming, true));
    while let Some((inp, wavelet, primary)) = slot.route_scratch.pop_front() {
        let outcome = match slot.router.route(wavelet.color, inp, wavelet.is_control()) {
            Ok(o) => o,
            // Flow control: the active switch position does not accept
            // this link yet (the hardware would backpressure). Park the
            // wavelet; a control toggling this color releases it.
            Err(RouteError::InputNotAccepted { .. }) => {
                slot.trace.record_at(
                    ev.time,
                    TraceEventKind::FlowStall,
                    wavelet.color.id(),
                    link_code(inp, wavelet.is_control()),
                    wavelet.payload,
                );
                slot.parked.push((inp, wavelet));
                sc.flow_stalls[idx] += 1;
                continue;
            }
            // A hard routing error: record it (the run continues so that
            // both engines observe the same error set and can agree on the
            // smallest-key one) and drop the wavelet.
            Err(error) => {
                report_error(
                    &mut slot.trace,
                    ev.time,
                    first_error,
                    ev.key(),
                    FabricError::Route { pe: coord, error },
                );
                continue;
            }
        };
        // Link-traffic accounting (routing itself is pure since the
        // static/dynamic router split): every successful route bumps the
        // arena counters exactly as the router used to.
        let (hop_fwds, hop_ramps) = outcome.hop_counts();
        sc.fabric_hops[idx] += hop_fwds;
        sc.ramp_deliveries[idx] += hop_ramps;
        if outcome.toggled {
            slot.trace.record_at(
                ev.time,
                TraceEventKind::RouterSwitch,
                wavelet.color.id(),
                outcome.position as u16,
                wavelet.payload,
            );
            // the switch moved: stalled wavelets of this color may pass
            let mut released = Vec::new();
            slot.parked.retain(|(dir, w)| {
                if w.color == wavelet.color {
                    released.push((*dir, *w));
                    false
                } else {
                    true
                }
            });
            // keep their original relative order, ahead of nothing else
            for (dir, w) in released.into_iter().rev() {
                slot.route_scratch.push_front((dir, w, false));
            }
        }
        for dir in outcome.outputs.iter() {
            if dir == Direction::Ramp {
                slot.trace.record_at(
                    ev.time,
                    TraceEventKind::WaveletRecv,
                    wavelet.color.id(),
                    link_code(inp, wavelet.is_control()),
                    wavelet.payload,
                );
                sc.seq[idx] += 1;
                emit(Event {
                    time: ev.time,
                    seq: sc.seq[idx],
                    src: pe,
                    pe,
                    kind: EventKind::Deliver,
                    wavelet,
                });
            } else {
                // A send is traced per fabric-link traversal — recorded
                // even at the fabric edge, matching the router's
                // `fabric_hops` counting (the drop gets its own event).
                slot.trace.record_at(
                    ev.time,
                    TraceEventKind::WaveletSend,
                    wavelet.color.id(),
                    link_code(dir, wavelet.is_control()),
                    wavelet.payload,
                );
                // A downed link drops the wavelet after the router forwards
                // it — traced as both a fault and an edge drop, and counted
                // in both `fault_drops` and `edge_drops`, so trace-derived
                // stats stay exact.
                let downed =
                    slot.faults.active
                        && slot.faults.link_down.iter().any(|&(d, from, until)| {
                            d == dir && ev.time >= from && ev.time < until
                        });
                if downed {
                    record_fault(
                        slot,
                        coord,
                        ev.time,
                        FaultClass::LinkDown,
                        link_code(dir, wavelet.is_control()),
                        wavelet.payload,
                        false,
                    );
                    slot.trace.record_at(
                        ev.time,
                        TraceEventKind::EdgeDrop,
                        wavelet.color.id(),
                        link_code(dir, wavelet.is_control()),
                        wavelet.payload,
                    );
                    sc.edge_drops[idx] += 1;
                    sc.fault_drops[idx] += 1;
                    continue;
                }
                match dims.neighbor(coord, dir) {
                    Some(n) => {
                        // Key-preserving forward (see the module docs): the
                        // primary data wavelet crossing a fixed single-
                        // cardinal-output route keeps its `(seq, src)` and
                        // advances only in time — the hop is pure
                        // pass-through, so the forwarding router stays out
                        // of the key and fast-forwarding the chain emits
                        // the identical event.
                        let preserve = primary
                            && !wavelet.is_control()
                            && outcome.fixed
                            && outcome.outputs.len() == 1;
                        let (seq, src) = if preserve {
                            (ev.seq, ev.src)
                        } else {
                            sc.seq[idx] += 1;
                            (sc.seq[idx], pe)
                        };
                        emit(Event {
                            time: advance_time(ev.time, hop_latency),
                            seq,
                            src,
                            pe: dims.linear(n),
                            kind: EventKind::Route(dir.arrival_side()),
                            wavelet,
                        });
                    }
                    None => {
                        slot.trace.record_at(
                            ev.time,
                            TraceEventKind::EdgeDrop,
                            wavelet.color.id(),
                            link_code(dir, wavelet.is_control()),
                            wavelet.payload,
                        );
                        sc.edge_drops[idx] += 1;
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn process_deliver(
    slot: &mut PeSlot,
    sc: &mut PeScalars,
    idx: usize,
    pe: usize,
    coord: PeCoord,
    dims: FabricDims,
    ev: &Event,
    emit: &mut impl FnMut(Event),
) {
    // A halted PE swallows every delivery without running a task.
    if slot.faults.active && slot.faults.halt_at.is_some_and(|h| ev.time >= h) {
        record_fault(
            slot,
            coord,
            ev.time,
            FaultClass::PeHalt,
            u16::from(ev.wavelet.is_control()),
            ev.wavelet.payload,
            false,
        );
        sc.fault_drops[idx] += 1;
        return;
    }
    // Checksum verification at the ramp (on whenever a fault plan is
    // installed): a corrupted payload never reaches a task handler.
    if slot.faults.verify_checksums && !ev.wavelet.checksum_ok() {
        record_fault(
            slot,
            coord,
            ev.time,
            FaultClass::CorruptDetected,
            u16::from(ev.wavelet.is_control()),
            ev.wavelet.payload,
            false,
        );
        sc.checksum_drops[idx] += 1;
        return;
    }
    let start = sc.busy_until[idx].max(ev.time);
    sc.queue_wait_cycles[idx] += start - ev.time;
    let cycles_before = slot.counters.cycles();
    slot.trace.record_at(
        start,
        TraceEventKind::TaskStart,
        ev.wavelet.color.id(),
        u16::from(ev.wavelet.is_control()),
        ev.wavelet.payload,
    );
    slot.trace.task_begin(start, cycles_before);
    {
        let mut ctx = PeContext::new(
            coord,
            dims,
            &mut slot.memory,
            &mut slot.counters,
            &mut slot.trace,
            &mut slot.router,
            &mut slot.outbox,
            &mut slot.activations,
        );
        match ev.wavelet.kind {
            WaveletKind::Data => slot.program.on_data(&mut ctx, ev.wavelet),
            WaveletKind::Control => slot.program.on_control(&mut ctx, ev.wavelet),
        }
    }
    let mut cost = slot.counters.cycles() - cycles_before;
    // A slow-down window multiplies the task's timing cost (busy horizon
    // only — the instruction counters stay truthful). Logged once per
    // window, at the first affected task.
    if slot.faults.active {
        if let Some(i) = slot
            .faults
            .slow
            .iter()
            .position(|&(from, until, _)| start >= from && start < until)
        {
            let factor = slot.faults.slow[i].2;
            cost = cost.saturating_mul(u64::from(factor));
            if !slot.faults.slow_logged[i] {
                slot.faults.slow_logged[i] = true;
                record_fault(slot, coord, start, FaultClass::PeSlow, 0, factor, false);
            }
        }
    }
    sc.busy_until[idx] = advance_time(start, cost);
    slot.trace.record_at(
        sc.busy_until[idx],
        TraceEventKind::TaskEnd,
        ev.wavelet.color.id(),
        u16::from(ev.wavelet.is_control()),
        cost as u32,
    );
    flush_pe_output(slot, sc, idx, pe, sc.busy_until[idx], emit);
}

/// Injects a PE's pending sends (through its own router, ramp input) and
/// local activations. The outbox/activation buffers are recycled
/// (take/clear/restore), so steady-state flushes allocate nothing.
fn flush_pe_output(
    slot: &mut PeSlot,
    sc: &mut PeScalars,
    idx: usize,
    pe: usize,
    at: u64,
    emit: &mut impl FnMut(Event),
) {
    // Wavelets are sealed (checksum installed) at network injection only
    // while a fault plan has verification on — the fault-free path never
    // computes a checksum.
    let verify = slot.faults.verify_checksums;
    let mut outbox = std::mem::take(&mut slot.outbox);
    // Successive wavelets leave the ramp one cycle apart.
    for (k, w) in outbox.iter_mut().enumerate() {
        if verify {
            w.seal();
        }
        sc.seq[idx] += 1;
        emit(Event {
            time: advance_time(at, k as u64),
            seq: sc.seq[idx],
            src: pe,
            pe,
            kind: EventKind::Route(Direction::Ramp),
            wavelet: *w,
        });
    }
    outbox.clear();
    slot.outbox = outbox;
    let mut acts = std::mem::take(&mut slot.activations);
    for &(color, payload) in acts.iter() {
        let mut w = Wavelet::data(color, payload);
        if verify {
            w.seal();
        }
        sc.seq[idx] += 1;
        emit(Event {
            time: at,
            seq: sc.seq[idx],
            src: pe,
            pe,
            kind: EventKind::Deliver,
            wavelet: w,
        });
    }
    acts.clear();
    slot.activations = acts;
}

// ---------------------------------------------------------------------------
// Static-route fast-forwarding
// ---------------------------------------------------------------------------

/// One precomputed passive-forwarding hop: what a fixed single-cardinal-
/// output route does to a data wavelet, when valid. Stored per
/// *equivalence class* of route tables (not per PE): every PE sharing an
/// interned `Arc<RouteTable>` behaves identically, and the downstream PE
/// is recomputed from the traversed PE's coordinate at walk time.
#[derive(Clone, Copy)]
struct FwdStep {
    valid: bool,
    /// Input links the fixed position accepts.
    rx: DirMask,
    /// The single cardinal output of the fixed position.
    out: Direction,
}

const INVALID_STEP: FwdStep = FwdStep {
    valid: false,
    rx: DirMask::EMPTY,
    out: Direction::North,
};

/// The class-indexed fast-forward table, built once at `run()` entry when
/// fast-forwarding is enabled (never while tracing is on or fault state is
/// installed — see [`Fabric::fwd_table`]). Each PE maps to the equivalence
/// class of its (interned) route table; steps are stored per
/// `(class, color)` — O(classes · colors), not O(PEs · colors), which is
/// what makes a homogeneous interior *region* one table row. Without route
/// deduplication every PE is its own class and the table degenerates to
/// the legacy per-PE layout.
struct FwdTable {
    /// Equivalence class of each PE's route table (fabric-linear).
    class_of: Vec<u32>,
    /// [`Router::version`] of each PE at build time (fabric-linear); a
    /// mismatch at walk time means the program reconfigured the router
    /// mid-run — the chain breaks there and routing falls back to per-hop.
    versions: Vec<u32>,
    /// Per-`(class, color)` passive-forwarding steps.
    steps: Vec<FwdStep>,
    num_pes: usize,
}

impl FwdTable {
    fn build(pes: &[PeSlot]) -> Self {
        let mut classes: HashMap<*const RouteTable, u32> = HashMap::new();
        let mut class_of = Vec::with_capacity(pes.len());
        let mut versions = Vec::with_capacity(pes.len());
        let mut steps: Vec<FwdStep> = Vec::new();
        for slot in pes {
            versions.push(slot.router.version());
            let key = Arc::as_ptr(slot.router.table());
            let next = classes.len() as u32;
            let class = *classes.entry(key).or_insert_with(|| {
                steps.extend(table_steps(slot.router.table()));
                next
            });
            class_of.push(class);
        }
        Self {
            class_of,
            versions,
            steps,
            num_pes: pes.len(),
        }
    }

    #[inline]
    fn step(&self, pe: usize, color: usize) -> FwdStep {
        self.steps[self.class_of[pe] as usize * MAX_COLORS + color]
    }
}

/// The per-color passive-forwarding steps of one route table (one
/// equivalence class): exactly the key-preserving hop shape — a fixed
/// route with one cardinal output. Edge adjacency is *not* baked in here
/// (a class spans PEs at different coordinates); the walk recomputes the
/// downstream neighbor and stops at the fabric edge, where drops must be
/// counted per hop.
fn table_steps(table: &RouteTable) -> [FwdStep; MAX_COLORS] {
    let mut out = [INVALID_STEP; MAX_COLORS];
    for (c, slot) in out.iter_mut().enumerate() {
        let Some(cfg) = table.config(Color::new(c as u8)) else {
            continue;
        };
        if !cfg.is_fixed() {
            continue;
        }
        let pos = cfg.active();
        if pos.tx.len() != 1 || pos.tx.contains(Direction::Ramp) {
            continue;
        }
        *slot = FwdStep {
            valid: true,
            rx: pos.rx,
            out: pos.tx.iter().next().expect("single output"),
        };
    }
    out
}

/// Walks the passive-forwarding chain starting at `ev`'s PE and delivers
/// the wavelet across all of it as one event: returns the hop count and
/// the chain-end event (key preserved, time advanced `hops · hop_latency`),
/// or `None` when the first hop is not a chain hop. With class-deduped
/// route tables the chain extends across whole homogeneous *regions* — k
/// identical interior PEs advance in one jump with bulk accounting: each
/// traversed PE's `fabric_hops` is bumped exactly as the per-hop walk
/// would. `map` turns a linear PE index into the caller's slot/arena
/// index — `None` stops the chain. The sharded engine maps only its own
/// shard's slots, so a chain spanning shards is walked as *segments*: each
/// shard jumps to the first PE past its boundary and mails the
/// key-preserved continuation (time already advanced by its segment's
/// hops) to the neighbor, which resumes the walk on pop. Segment budgets
/// sum to the sequential chain's `1 + (k-1)` pops and each segment bumps
/// exactly its own PEs' `fabric_hops`, so counters and event budgets stay
/// bit-identical.
#[allow(clippy::too_many_arguments)]
fn fast_forward(
    table: &FwdTable,
    dims: FabricDims,
    slots: &mut [PeSlot],
    sc: &mut PeScalars,
    map: impl Fn(usize) -> Option<usize>,
    hop_latency: u64,
    ev: &Event,
    input: Direction,
) -> Option<(u64, Event)> {
    let color = ev.wavelet.color.index();
    let mut time = ev.time;
    let mut pe = ev.pe;
    let mut coord = dims.coord(pe);
    let mut input = input;
    let mut hops = 0u64;
    // A chain of distinct eligible routers can never be longer than the
    // fabric; stopping there re-queues the wavelet mid-cycle and lets the
    // event budget catch genuinely circular routes.
    while hops < table.num_pes as u64 {
        let step = table.step(pe, color);
        if !step.valid || !step.rx.contains(input) {
            break;
        }
        // An edge-pointing hop leaves the chain: the drop must be counted
        // (and traced) by the per-hop path.
        let Some(n) = dims.neighbor(coord, step.out) else {
            break;
        };
        let Some(local) = map(pe) else { break };
        if slots[local].router.version() != table.versions[pe] {
            break;
        }
        sc.fabric_hops[local] += 1;
        time = advance_time(time, hop_latency);
        input = step.out.arrival_side();
        coord = n;
        pe = dims.linear(n);
        hops += 1;
    }
    if hops == 0 {
        return None;
    }
    Some((
        hops,
        Event {
            time,
            seq: ev.seq,
            src: ev.src,
            pe,
            kind: EventKind::Route(input),
            wavelet: ev.wavelet,
        },
    ))
}

// ---------------------------------------------------------------------------
// Shard partitioning
// ---------------------------------------------------------------------------

/// One rectangular shard: columns `[col0, col1)` × rows `[row0, row1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShardRect {
    col0: usize,
    col1: usize,
    row0: usize,
    row1: usize,
}

impl ShardRect {
    #[inline]
    fn local_index(&self, c: PeCoord) -> usize {
        (c.row - self.row0) * (self.col1 - self.col0) + (c.col - self.col0)
    }

    /// Linear PE indices of the rect, in local-index order.
    fn iter_linear(self, dims: FabricDims) -> impl Iterator<Item = usize> {
        (self.row0..self.row1)
            .flat_map(move |r| (self.col0..self.col1).map(move |c| r * dims.cols + c))
    }

    /// Fabric-link crossings a wavelet at `c` (inside this rect) needs to
    /// reach the *nearest* PE across the rect's `dir` boundary — the
    /// position-aware lookahead distance. Always ≥ 1.
    #[inline]
    fn link_dist(&self, c: PeCoord, dir: Direction) -> u64 {
        (match dir {
            Direction::East => self.col1 - c.col,
            Direction::West => c.col - self.col0 + 1,
            Direction::South => self.row1 - c.row,
            Direction::North => c.row - self.row0 + 1,
            Direction::Ramp => unreachable!("ramp is not a shard boundary"),
        }) as u64
    }
}

/// A rectangular partition of the fabric into `nx × ny` shards with
/// balanced (possibly uneven) extents.
#[derive(Debug, Clone)]
struct ShardPlan {
    nx: usize,
    ny: usize,
    col_of: Vec<u32>,
    row_of: Vec<u32>,
    rects: Vec<ShardRect>,
}

impl ShardPlan {
    /// Chooses a feasible `nx × ny = shards` factorization whose shard
    /// aspect best matches the fabric's, reducing the shard count when no
    /// factorization fits (`shards = 1` always does).
    fn new(dims: FabricDims, requested: usize) -> Self {
        let mut s = requested.clamp(1, dims.num_pes());
        let (nx, ny) = loop {
            let mut best: Option<(usize, usize, f64)> = None;
            for nx in 1..=s {
                if !s.is_multiple_of(nx) {
                    continue;
                }
                let ny = s / nx;
                if nx > dims.cols || ny > dims.rows {
                    continue;
                }
                let score = (dims.cols as f64 / nx as f64 - dims.rows as f64 / ny as f64).abs();
                match best {
                    Some((_, _, b)) if b <= score => {}
                    _ => best = Some((nx, ny, score)),
                }
            }
            if let Some((nx, ny, _)) = best {
                break (nx, ny);
            }
            s -= 1;
        };
        let mut col_of = vec![0u32; dims.cols];
        for k in 0..nx {
            col_of[k * dims.cols / nx..(k + 1) * dims.cols / nx].fill(k as u32);
        }
        let mut row_of = vec![0u32; dims.rows];
        for k in 0..ny {
            row_of[k * dims.rows / ny..(k + 1) * dims.rows / ny].fill(k as u32);
        }
        let rects = (0..nx * ny)
            .map(|i| {
                let (sx, sy) = (i % nx, i / nx);
                ShardRect {
                    col0: sx * dims.cols / nx,
                    col1: (sx + 1) * dims.cols / nx,
                    row0: sy * dims.rows / ny,
                    row1: (sy + 1) * dims.rows / ny,
                }
            })
            .collect();
        Self {
            nx,
            ny,
            col_of,
            row_of,
            rects,
        }
    }

    #[inline]
    fn count(&self) -> usize {
        self.nx * self.ny
    }

    #[inline]
    fn shard_of(&self, c: PeCoord) -> usize {
        self.row_of[c.row] as usize * self.nx + self.col_of[c.col] as usize
    }

    /// The cardinally adjacent shard in `dir`, if any. Shards tile the
    /// fabric rectangularly, so these are the only shards a cross-shard
    /// event can be pushed to directly.
    fn shard_neighbor(&self, id: usize, dir: Direction) -> Option<usize> {
        let (sx, sy) = ((id % self.nx) as i64, (id / self.nx) as i64);
        let (dx, dy) = dir.offset();
        let (tx, ty) = (sx + dx, sy + dy);
        (tx >= 0 && tx < self.nx as i64 && ty >= 0 && ty < self.ny as i64)
            .then(|| ty as usize * self.nx + tx as usize)
    }
}

// ---------------------------------------------------------------------------
// Sharded engine machinery (conservative lookahead)
// ---------------------------------------------------------------------------

/// One directed channel from a shard to a cardinally adjacent shard.
#[derive(Clone, Copy)]
struct ShardLink {
    /// Index of this link's clock in [`SharedCoord::clocks`].
    idx: usize,
    /// Boundary the link crosses (from the source shard's point of view).
    dir: Direction,
    /// Destination shard id.
    dest: usize,
}

/// One shard's private state, owned by a worker thread during a run.
struct Shard {
    id: usize,
    rect: ShardRect,
    slots: Vec<PeSlot>,
    queue: CalendarQueue<Event>,
    events: u64,
    max_time: u64,
    error: Option<(EventKey, FabricError)>,
    /// Outgoing cross-shard batches, one per destination shard id; always
    /// flushed (and the destination's mail flag raised) before this shard's
    /// clocks are published, so the channel-clock promise covers them.
    out: Vec<Vec<Event>>,
    /// This shard's outgoing channels, in [`CARDINALS`] order.
    out_links: Vec<ShardLink>,
    /// Clock indices of the incoming channels (the neighbors' links back).
    in_links: Vec<usize>,
    /// The queue changed since `saved_terms` was computed.
    dirty: bool,
    /// Consecutive unproductive rounds; the position-aware scan only runs
    /// once a stall persists (tightly-coupled shards resolve stalls in one
    /// gossip round and never pay for it).
    stalls: u32,
    /// Cached per-out-link position-aware queue bounds from the last stall
    /// scan (`min over pending e of e.time + dist(e.pe, link)·hop_latency`),
    /// aligned with `out_links`. Valid while `dirty` is false.
    saved_terms: Vec<u64>,
    /// Fast-forwarded hops on this shard (summed into [`Fabric::ff_hops`]
    /// at merge; segment hops add up to whole-chain hops, so the global
    /// total matches the sequential engine).
    ff_hops: u64,
    /// Fast-forward jumps (per-segment) taken on this shard.
    ff_jumps: u64,
    /// Region jumps (per-segment): fast-forward jumps that crossed ≥ 2
    /// identical PEs in one event. Engine-dependent (boundaries segment
    /// chains), like `ff_jumps`.
    region_ff_jumps: u64,
    /// This shard's slice of the per-PE scalar arena, gathered from the
    /// fabric arena at run entry and scattered back at merge (shard-local
    /// indices, aligned with `slots`).
    scalars: PeScalars,
}

impl Shard {
    /// Quiescent for termination purposes: nothing pending below
    /// `u64::MAX` (events *at* the end of time are unreachable in either
    /// engine and are handed back to the host queue after the run).
    fn is_idle(&self) -> bool {
        self.queue.next_time().is_none_or(|t| t == u64::MAX)
    }
}

/// State shared by all shard workers.
struct SharedCoord {
    /// Cross-shard deliveries, appended in batches by neighbors and drained
    /// by the owner.
    inboxes: Vec<Mutex<Vec<Event>>>,
    /// One flag per shard, raised (`Release`) after a batch lands in its
    /// inbox and lowered (`Acquire`) by the owner before draining — skips
    /// the inbox lock on the (common) empty polls.
    mail_flags: Vec<AtomicBool>,
    /// Channel clocks, indexed `shard_id·4 + dir.index()` for the link
    /// *out of* `shard_id` across boundary `dir`. Monotone (`fetch_max`).
    /// Invariant: every event the source will push into the destination's
    /// inbox *after* a publish has time ≥ the published value; senders
    /// flush batches before publishing and receivers read clocks
    /// (`Acquire`) before draining, so events the promise does not cover
    /// are already in the drain.
    clocks: Vec<AtomicU64>,
    /// Workers whose owned shards are all idle with empty out-batches.
    idle: AtomicUsize,
    /// Global-quiescence verdict, set once by the leader while holding
    /// every inbox lock.
    done: AtomicBool,
    workers: usize,
    /// Global pop counter for the event budget (flushed in batches).
    pops: AtomicU64,
    over_budget: AtomicBool,
    /// Pop count at which the run pauses ([`Fabric::run_until`]);
    /// `u64::MAX` when unbounded. Checked at the same batched flush points
    /// as the budget, so the pause lands near — not exactly at — the
    /// requested count; confluence of the remaining events makes the final
    /// state independent of the exact pause point.
    pause_at: u64,
    /// Raised when some worker crossed `pause_at`; every worker stops at
    /// its next flush/loop boundary.
    paused: AtomicBool,
}

/// How many pops a shard accumulates locally before flushing to the global
/// budget counter.
const BUDGET_BATCH: u64 = 64;

/// Pops and processes every event of `shard` strictly below `eit`, batching
/// cross-shard emissions into `shard.out`. Returns the number of budget
/// events consumed (fast-forwarded hops count in bulk, exactly as the
/// sequential engine counts them) and whether the round *aborted* — stopped
/// on the budget or pause flag with events below `eit` possibly still
/// queued. The stop flags are checked **before** popping, so an abort never
/// loses an event, and an aborted round must not publish the
/// everything-below-EIT clock promise.
fn process_shard(
    shard: &mut Shard,
    eit: u64,
    dims: FabricDims,
    config: &FabricConfig,
    plan: &ShardPlan,
    fwd: Option<&FwdTable>,
    shared: &SharedCoord,
) -> (u64, bool) {
    let Shard {
        id,
        rect,
        slots,
        queue,
        max_time,
        error,
        out,
        ff_hops,
        ff_jumps,
        region_ff_jumps,
        scalars,
        ..
    } = shard;
    let mut processed = 0u64;
    let mut batch = 0u64;
    let mut aborted = false;
    loop {
        if batch >= BUDGET_BATCH {
            let global = shared.pops.fetch_add(batch, Ordering::SeqCst) + batch;
            batch = 0;
            if global > config.max_events || shared.over_budget.load(Ordering::SeqCst) {
                shared.over_budget.store(true, Ordering::SeqCst);
                aborted = true;
                break;
            }
            if global >= shared.pause_at || shared.paused.load(Ordering::SeqCst) {
                shared.paused.store(true, Ordering::SeqCst);
                aborted = true;
                break;
            }
        }
        let Some(ev) = queue.pop_before(eit) else {
            break;
        };
        processed += 1;
        batch += 1;
        *max_time = (*max_time).max(ev.time);
        let pe = ev.pe;
        let coord = dims.coord(pe);
        if let (Some(table), EventKind::Route(input)) = (fwd, ev.kind) {
            if ev.wavelet.kind == WaveletKind::Data {
                let own = |i: usize| {
                    let c = dims.coord(i);
                    (plan.shard_of(c) == *id).then(|| rect.local_index(c))
                };
                if let Some((hops, jumped)) = fast_forward(
                    table,
                    dims,
                    slots,
                    scalars,
                    own,
                    config.hop_latency,
                    &ev,
                    input,
                ) {
                    // The chain's intermediate pops happened in bulk.
                    processed += hops - 1;
                    batch += hops - 1;
                    *ff_hops += hops;
                    *ff_jumps += 1;
                    if hops >= 2 {
                        *region_ff_jumps += 1;
                    }
                    let dest = plan.shard_of(dims.coord(jumped.pe));
                    if dest == *id {
                        queue.push(jumped);
                    } else {
                        // Segmented cross-shard continuation: the neighbor
                        // picks the chain back up when it pops this event.
                        out[dest].push(jumped);
                    }
                    continue;
                }
            }
        }
        let idx = rect.local_index(coord);
        let slot = &mut slots[idx];
        let mut emit = |e: Event| {
            let dest = plan.shard_of(dims.coord(e.pe));
            if dest == *id {
                queue.push(e);
            } else {
                debug_assert!(
                    CARDINALS
                        .iter()
                        .any(|&d| plan.shard_neighbor(*id, d) == Some(dest)),
                    "cross-shard events only ever target adjacent shards"
                );
                out[dest].push(e);
            }
        };
        match ev.kind {
            EventKind::Route(input) => process_route(
                slot,
                scalars,
                idx,
                pe,
                coord,
                dims,
                config.hop_latency,
                &ev,
                input,
                &mut emit,
                error,
            ),
            EventKind::Deliver => {
                process_deliver(slot, scalars, idx, pe, coord, dims, &ev, &mut emit)
            }
        }
    }
    if batch > 0 {
        // Tail flush: the loop ended by draining the queue below `eit`, so
        // tripping a flag here still leaves the round complete (not an
        // abort) — the clock promise is sound.
        let global = shared.pops.fetch_add(batch, Ordering::SeqCst) + batch;
        if global > config.max_events {
            shared.over_budget.store(true, Ordering::SeqCst);
        } else if global >= shared.pause_at {
            shared.paused.store(true, Ordering::SeqCst);
        }
    }
    shard.events += processed;
    (processed, aborted)
}

/// Recomputes `shard.saved_terms`: for each out-link, the exact
/// position-aware lower bound `min over pending e of
/// e.time + dist(e.pe, link)·hop_latency` on anything the *queue* can send
/// across that boundary. O(pending · links), so it runs only on stalled
/// rounds whose queue actually changed.
fn exact_link_terms(shard: &mut Shard, dims: FabricDims, hop_latency: u64) {
    let Shard {
        rect,
        queue,
        out_links,
        saved_terms,
        ..
    } = shard;
    saved_terms.clear();
    saved_terms.resize(out_links.len(), u64::MAX);
    for ev in queue.iter() {
        let c = dims.coord(ev.pe);
        for (k, link) in out_links.iter().enumerate() {
            let bound = advance_time(
                ev.time,
                rect.link_dist(c, link.dir).saturating_mul(hop_latency),
            );
            if bound < saved_terms[k] {
                saved_terms[k] = bound;
            }
        }
    }
}

/// One lookahead round for one shard: snapshot in-link clocks (before the
/// mailbox drain — the ordering the promise requires), drain mail, process
/// everything below the EIT, flush outgoing batches, then republish out-link
/// clocks. Returns (budget events consumed, mailbox drained).
fn advance_shard(
    shard: &mut Shard,
    dims: FabricDims,
    config: &FabricConfig,
    plan: &ShardPlan,
    fwd: Option<&FwdTable>,
    shared: &SharedCoord,
) -> (u64, bool) {
    let eit = shard_eit(shard, shared);
    let mut drained = false;
    if shared.mail_flags[shard.id].swap(false, Ordering::Acquire) {
        let mut inbox = shared.inboxes[shard.id].lock().unwrap();
        if !inbox.is_empty() {
            drained = true;
            shard.dirty = true;
            shard.queue.append_batch(&mut inbox);
        }
    }
    let (processed, aborted) = process_shard(shard, eit, dims, config, plan, fwd, shared);
    // Flush before publishing: events the new clock value does not promise
    // to bound must already be visible in their inboxes.
    for link in &shard.out_links {
        if !shard.out[link.dest].is_empty() {
            let mut inbox = shared.inboxes[link.dest].lock().unwrap();
            inbox.append(&mut shard.out[link.dest]);
            drop(inbox);
            shared.mail_flags[link.dest].store(true, Ordering::Release);
        }
    }
    if aborted {
        // The round stopped on the budget/pause flag with events below
        // `eit` possibly still queued, so the productive-round promise
        // below would overpromise. Publish nothing: the previously
        // published clocks stay sound (they predate this round's pops),
        // and every worker is about to stop at its next flag check.
        shard.dirty |= processed > 0;
        return (processed, drained);
    }
    // Publish. After a productive round the queue minimum is ≥ EIT (we
    // popped everything below it) and future receives are ≥ EIT, so
    // `EIT + hop_latency` is a sound, O(links) bound. On a stalled round
    // the position-aware scan gives the much stronger per-link bound that
    // lets neighbors free-run past our interior work.
    let relay = advance_time(eit, config.hop_latency);
    if processed > 0 {
        shard.dirty = true;
        shard.stalls = 0;
        for link in &shard.out_links {
            shared.clocks[link.idx].fetch_max(relay, Ordering::AcqRel);
        }
    } else {
        shard.stalls = shard.stalls.saturating_add(1);
        if shard.dirty && shard.stalls >= 2 {
            exact_link_terms(shard, dims, config.hop_latency);
            shard.dirty = false;
        }
        for (k, link) in shard.out_links.iter().enumerate() {
            // Stale terms are never used: `dirty` tracks queue changes.
            let bound = if shard.dirty {
                relay
            } else {
                shard.saved_terms[k].min(relay)
            };
            shared.clocks[link.idx].fetch_max(bound, Ordering::AcqRel);
        }
    }
    (processed, drained)
}

/// A shard's earliest input time: the minimum of its in-link channel
/// clocks (`Acquire` — must happen before the mailbox drain). Everything
/// strictly below it is safe to process; shards with no in-links (a 1-shard
/// plan) free-run unboundedly, degenerating to the sequential engine.
fn shard_eit(shard: &Shard, shared: &SharedCoord) -> u64 {
    shard
        .in_links
        .iter()
        .map(|&l| shared.clocks[l].load(Ordering::Acquire))
        .min()
        .unwrap_or(u64::MAX)
}

/// Degenerate schedule for a lone worker that owns *every* shard: no
/// channel clocks, mail flags, or inbox locks — the worker always advances
/// the shard holding the globally earliest pending event, bounded by the
/// earliest event any *other* shard could still send it. That bound is the
/// same conservative argument the concurrent protocol derives from channel
/// clocks: every cross-shard emission crosses at least one boundary link,
/// so a neighbor whose earliest pending event is at `t₁` cannot deliver
/// anything before `t₁ + hop_latency`. Cross-shard batches land straight in
/// the sibling queue. This is the fastest valid lookahead schedule on a
/// single core (zero synchronization, maximal window per round), and the
/// one the engine picks whenever `threads: 1` is requested.
fn run_shards_single_worker(
    owned: &mut [Shard],
    dims: FabricDims,
    config: &FabricConfig,
    plan: &ShardPlan,
    fwd: Option<&FwdTable>,
    shared: &SharedCoord,
) {
    loop {
        if shared.over_budget.load(Ordering::SeqCst) || shared.paused.load(Ordering::SeqCst) {
            break;
        }
        // The shard with the globally earliest pending event, and the
        // runner-up time across the *other* shards (its lookahead bound).
        let mut first = (u64::MAX, 0usize);
        let mut second = u64::MAX;
        for (i, sh) in owned.iter().enumerate() {
            let t = sh.queue.next_time().unwrap_or(u64::MAX);
            if t < first.0 {
                second = first.0;
                first = (t, i);
            } else {
                second = second.min(t);
            }
        }
        let (t0, s) = first;
        if t0 == u64::MAX {
            // Only end-of-time events (if any) remain: globally quiescent.
            break;
        }
        let eit = advance_time(second, config.hop_latency);
        process_shard(&mut owned[s], eit, dims, config, plan, fwd, shared);
        // Hand cross-shard batches straight to the sibling queues (keeping
        // the drained allocations for the next round).
        for dest in 0..owned.len() {
            if dest != s && !owned[s].out[dest].is_empty() {
                let mut batch = std::mem::take(&mut owned[s].out[dest]);
                owned[dest].queue.append_batch(&mut batch);
                owned[s].out[dest] = batch;
            }
        }
    }
}

/// One worker's lookahead loop. Workers own whole shards and loop rounds of
/// `advance_shard` until the leader confirms global quiescence (or the
/// budget trips). No barriers: a stalled worker keeps gossiping clocks so
/// its neighbors' EITs (and its own) can rise, and yields the CPU between
/// unproductive rounds.
fn shard_worker(
    mut owned: Vec<Shard>,
    leader: bool,
    dims: FabricDims,
    config: FabricConfig,
    plan: &ShardPlan,
    fwd: Option<&FwdTable>,
    shared: &SharedCoord,
) -> Vec<Shard> {
    if shared.workers == 1 {
        run_shards_single_worker(&mut owned, dims, &config, plan, fwd, shared);
        return owned;
    }
    let mut registered_idle = false;
    loop {
        if shared.done.load(Ordering::Acquire)
            || shared.over_budget.load(Ordering::SeqCst)
            || shared.paused.load(Ordering::SeqCst)
        {
            break;
        }
        if registered_idle {
            // While registered we must not touch any inbox (the leader's
            // quiescence check relies on it): only peek at mail flags, and
            // deregister before draining anything.
            if owned
                .iter()
                .any(|sh| shared.mail_flags[sh.id].load(Ordering::Acquire))
            {
                shared.idle.fetch_sub(1, Ordering::AcqRel);
                registered_idle = false;
                continue;
            }
            // Keep gossiping clocks: a stalled (non-idle) neighbor's EIT
            // may be capped by ours, and ours rises as the gossip spreads.
            // An idle shard's queue bound is `u64::MAX` (nothing pending
            // below the end of time), so the relay term alone is exact.
            for sh in owned.iter() {
                let relay = advance_time(shard_eit(sh, shared), config.hop_latency);
                for link in &sh.out_links {
                    shared.clocks[link.idx].fetch_max(relay, Ordering::AcqRel);
                }
            }
            if leader && shared.idle.load(Ordering::Acquire) == shared.workers {
                // Quiescence confirmation, holding *every* inbox lock: a
                // neighbor mid-flush is blocked on one of these locks and
                // has not yet re-registered (registration follows the
                // flush), so if the count still reads full and every inbox
                // is empty there is provably nothing left in flight.
                let guards: Vec<_> = shared.inboxes.iter().map(|m| m.lock().unwrap()).collect();
                if shared.idle.load(Ordering::Acquire) == shared.workers
                    && guards.iter().all(|g| g.is_empty())
                {
                    shared.done.store(true, Ordering::Release);
                }
            }
            std::thread::yield_now();
            continue;
        }
        let mut progressed = false;
        let mut all_idle = true;
        for sh in owned.iter_mut() {
            let (n, drained) = advance_shard(sh, dims, &config, plan, fwd, shared);
            progressed |= n > 0 || drained;
            all_idle &= sh.is_idle();
        }
        if all_idle && !progressed {
            shared.idle.fetch_add(1, Ordering::AcqRel);
            registered_idle = true;
        } else if !progressed {
            // Blocked on a neighbor's clock: the round above already
            // republished ours (gossip), so give the neighbor the CPU.
            std::thread::yield_now();
        }
    }
    owned
}

/// The simulated wafer: PEs, routers, and the event queue.
pub struct Fabric {
    dims: FabricDims,
    config: FabricConfig,
    pes: Vec<PeSlot>,
    /// The per-PE scalar arena (fabric-linear), split into shard-local
    /// slices for the sharded engine and merged back after each run.
    scalars: PeScalars,
    queue: CalendarQueue<Event>,
    host_seq: u64,
    time: u64,
    initialized: bool,
    /// Meta trace stream for host-side and engine-level events (barriers,
    /// host phases, budget/deadlock errors). Kept separate from the per-PE
    /// streams so sequential and sharded per-PE traces stay bit-identical.
    host_trace: PeTracer,
    /// Cumulative fast-forwarded hops (deterministic: segment hops sum to
    /// chain hops, so the total is engine-invariant). Telemetry only — not
    /// part of [`FabricSnapshot`], so checkpoints neither carry nor restore
    /// it (the codec schema is unchanged).
    ff_hops: u64,
    /// Cumulative fast-forward jumps taken. **Not** engine-invariant: the
    /// sequential engine walks a passive chain as one jump where the
    /// sharded engine takes one jump per shard-boundary segment. Exposed
    /// for telemetry but excluded from deterministic equivalence checks.
    ff_jumps: u64,
    /// Cumulative *region* fast-forward jumps: jumps that crossed ≥ 2
    /// identical PEs in one event. Engine-dependent like `ff_jumps`
    /// (boundaries segment chains) — telemetry only.
    region_ff_jumps: u64,
    /// Route-table equivalence classes after `load` interning: the number
    /// of distinct static route tables across the fabric. O(1) for SPMD
    /// programs (interior / edges / corners); equals the PE count until
    /// `load` runs, or when [`FabricConfig::dedup_routes`] is off.
    eq_classes: usize,
}

impl Fabric {
    /// Builds a fabric, constructing one program instance per PE via
    /// `factory` (called in row-major order).
    pub fn new(
        dims: FabricDims,
        config: FabricConfig,
        mut factory: impl FnMut(PeCoord) -> Box<dyn PeProgram>,
    ) -> Self {
        let pes: Vec<PeSlot> = dims
            .iter()
            .enumerate()
            .map(|(i, c)| PeSlot {
                memory: PeMemory::with_capacity_bytes(config.pe_memory_bytes),
                counters: OpCounters::default(),
                router: Router::new(),
                program: factory(c),
                outbox: Vec::new(),
                activations: Vec::new(),
                parked: Vec::new(),
                route_scratch: VecDeque::new(),
                faults: PeFaultState::default(),
                trace: PeTracer::for_spec(config.trace, i as u32),
            })
            .collect();
        let num_pes = pes.len();
        Self {
            dims,
            config,
            pes,
            scalars: PeScalars::new(num_pes),
            queue: CalendarQueue::new(),
            host_seq: 0,
            time: 0,
            initialized: false,
            host_trace: PeTracer::for_spec(config.trace, HOST_PE),
            ff_hops: 0,
            ff_jumps: 0,
            region_ff_jumps: 0,
            eq_classes: num_pes,
        }
    }

    /// Fabric dimensions.
    pub fn dims(&self) -> FabricDims {
        self.dims
    }

    /// Current simulated time in cycles.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Runs every PE's `init` handler (allocate memory, configure routes),
    /// then — when [`FabricConfig::dedup_routes`] is on — interns the
    /// resulting static route tables: PEs with identical tables share one
    /// `Arc<RouteTable>` per equivalence class. Interning happens per PE
    /// right after its `init`, so the transient footprint is O(classes),
    /// not O(PEs). SPMD programs collapse to a handful of classes
    /// (interior / edges / corners); see [`Fabric::eq_classes`].
    pub fn load(&mut self) {
        assert!(!self.initialized, "fabric already loaded");
        self.initialized = true;
        let mut interned: HashSet<Arc<RouteTable>> = HashSet::new();
        for i in 0..self.pes.len() {
            let coord = self.dims.coord(i);
            let dims = self.dims;
            let slot = &mut self.pes[i];
            // Init runs at t = 0; DSD ops traced from init are stamped
            // relative to the PE's cycle count at this point.
            slot.trace.task_begin(0, slot.counters.cycles());
            let mut ctx = PeContext::new(
                coord,
                dims,
                &mut slot.memory,
                &mut slot.counters,
                &mut slot.trace,
                &mut slot.router,
                &mut slot.outbox,
                &mut slot.activations,
            );
            slot.program.init(&mut ctx);
            if self.config.dedup_routes {
                let canonical = match interned.get(slot.router.table()) {
                    Some(c) => c.clone(),
                    None => {
                        let c = slot.router.table().clone();
                        interned.insert(c.clone());
                        c
                    }
                };
                slot.router.intern_table(&canonical);
            }
        }
        self.eq_classes = if self.config.dedup_routes {
            interned.len()
        } else {
            self.pes.len()
        };
        // Anything sent from init is injected at t = 0.
        let Self {
            pes,
            scalars,
            queue,
            ..
        } = self;
        for (i, slot) in pes.iter_mut().enumerate() {
            flush_pe_output(slot, scalars, i, i, 0, &mut |e| queue.push(e));
        }
    }

    /// Delivers a wavelet directly to a PE's program at the current time —
    /// the host-side "launch" (like the SDK starting a kernel).
    pub fn activate(&mut self, coord: PeCoord, color: Color, payload: u32) {
        self.host_seq += 1;
        let pe = self.dims.linear(coord);
        let mut wavelet = Wavelet::data(color, payload);
        if self.pes[pe].faults.verify_checksums {
            wavelet.seal();
        }
        let ev = Event {
            time: self.time,
            seq: self.host_seq,
            src: HOST_SRC,
            pe,
            kind: EventKind::Deliver,
            wavelet,
        };
        self.queue.push(ev);
    }

    /// Activates every PE (host broadcast launch).
    pub fn activate_all(&mut self, color: Color, payload: u32) {
        let coords: Vec<PeCoord> = self.dims.iter().collect();
        for c in coords {
            self.activate(c, color, payload);
        }
    }

    /// Installs a [`FaultPlan`], distributing each fault to its PE's slot
    /// and enabling fabric-wide checksum verification. Replaces any prior
    /// plan (logs and taint flags are cleared). Fault times are absolute
    /// fabric time, which keeps advancing across runs. The fault-free fast
    /// path is untouched when the plan is empty.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] for this fabric.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        plan.validate(self.dims)
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        let verify = !plan.is_empty();
        for slot in &mut self.pes {
            slot.faults = PeFaultState {
                verify_checksums: verify,
                ..PeFaultState::default()
            };
        }
        if verify {
            // Wavelets already queued (e.g. sent from `init` during
            // `load`, before this plan existed) predate sealing — install
            // their checksums now so verification doesn't misread them as
            // corrupted.
            for mut e in self.queue.drain_unordered() {
                e.wavelet.seal();
                self.queue.push(e);
            }
        }
        for f in &plan.faults {
            let st = &mut self.pes[self.dims.linear(f.pe)].faults;
            st.active = true;
            match f.kind {
                FaultKind::LinkDown { dir, until } => st.link_down.push((dir, f.at, until)),
                FaultKind::PeHalt => {
                    st.halt_at = Some(st.halt_at.map_or(f.at, |h| h.min(f.at)));
                }
                FaultKind::PeSlow { factor, until } => st.slow.push((f.at, until, factor)),
                FaultKind::CorruptPayload { xor } => st.corrupt.push((f.at, xor)),
                FaultKind::RouterFlip { color } => st.flips.push((f.at, color)),
            }
        }
        for slot in &mut self.pes {
            slot.faults.slow.sort_unstable();
            slot.faults.slow_logged = vec![false; slot.faults.slow.len()];
            slot.faults.corrupt.sort_unstable();
            slot.faults.flips.sort_unstable();
        }
    }

    /// Every fault injection/detection recorded so far, ordered by
    /// `(time, PE linear index, per-PE log position)` — bit-identical
    /// between the sequential and sharded engines.
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        let mut out = Vec::new();
        for slot in &self.pes {
            out.extend_from_slice(&slot.faults.log);
        }
        // Stable sort: ties keep linear-PE then log order.
        out.sort_by_key(|e| e.time);
        out
    }

    /// Per-PE taint flags in linear order: true where a non-benign fault
    /// fired (injection or detection site). Drives `Degrade` validity maps
    /// in the host driver.
    pub fn tainted_pes(&self) -> Vec<bool> {
        self.pes.iter().map(|s| s.faults.tainted).collect()
    }

    /// Per-PE program progress counters in linear order (see
    /// [`PeProgram::progress`]); the host watchdog compares these against
    /// the expected count after each run.
    pub fn progress_by_pe(&self) -> Vec<Option<u64>> {
        self.pes.iter().map(|s| s.program.progress()).collect()
    }

    /// The typed error for the earliest non-benign fault recorded so far
    /// (`(time, PE linear index, log position)` order), if any. Lets the
    /// host surface watchdog stalls it reported after a run through the
    /// same typed-error channel the engines use.
    pub fn first_fault_error(&self) -> Option<FabricError> {
        self.scan_faults()
    }

    /// Records a host-watchdog stall detection: the PE's program made less
    /// progress than expected after a run (it lost wavelets to a fault).
    /// Logged and traced like a fabric-detected fault — non-benign, taints
    /// the PE.
    pub fn report_watchdog_stall(&mut self, coord: PeCoord, observed: u64) {
        let i = self.dims.linear(coord);
        let time = self.time;
        record_fault(
            &mut self.pes[i],
            coord,
            time,
            FaultClass::WatchdogStall,
            0,
            observed as u32,
            false,
        );
    }

    /// Captures complete fabric state between runs as plain data: the
    /// pending event list in canonical `(time, seq, src)` order, every PE's
    /// memory/counters/router positions/program state/fault progress/trace
    /// sequence counters, and the host clock and sequence state. Works
    /// identically under both engines — between `run()` calls the sharded
    /// engine's channel clocks and mailboxes are fully drained back into
    /// the canonical queue, so the event list is their serialized form.
    pub fn snapshot(&self) -> FabricSnapshot {
        let mut events: Vec<EventRecord> = self
            .queue
            .iter()
            .map(|e| EventRecord {
                time: e.time,
                seq: e.seq,
                src: e.src,
                pe: e.pe,
                route_input: match e.kind {
                    EventKind::Route(d) => Some(d),
                    EventKind::Deliver => None,
                },
                wavelet: e.wavelet,
            })
            .collect();
        events.sort_by_key(|e| (e.time, e.seq, e.src));
        let sc = &self.scalars;
        let pes = self
            .pes
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                debug_assert!(
                    slot.outbox.is_empty()
                        && slot.activations.is_empty()
                        && slot.route_scratch.is_empty(),
                    "PE scratch buffers are always drained between events"
                );
                PeRecord {
                    memory_words: slot.memory.snapshot_words(),
                    memory_allocated: slot.memory.allocated_words(),
                    counters: slot.counters,
                    router_positions: slot.router.switch_positions(),
                    router_version: slot.router.version(),
                    fabric_hops: sc.fabric_hops[i],
                    ramp_deliveries: sc.ramp_deliveries[i],
                    program_state: slot.program.save_state(),
                    busy_until: sc.busy_until[i],
                    parked: slot.parked.clone(),
                    seq: sc.seq[i],
                    edge_drops: sc.edge_drops[i],
                    flow_stalls: sc.flow_stalls[i],
                    queue_wait_cycles: sc.queue_wait_cycles[i],
                    fault_drops: sc.fault_drops[i],
                    checksum_drops: sc.checksum_drops[i],
                    faults: FaultRecord {
                        active: slot.faults.active,
                        verify_checksums: slot.faults.verify_checksums,
                        link_down: slot.faults.link_down.clone(),
                        halt_at: slot.faults.halt_at,
                        slow: slot.faults.slow.clone(),
                        slow_logged: slot.faults.slow_logged.clone(),
                        corrupt: slot.faults.corrupt.clone(),
                        flips: slot.faults.flips.clone(),
                        log: slot.faults.log.clone(),
                        tainted: slot.faults.tainted,
                    },
                    trace_seq: TraceSeqRecord::from_tuple(slot.trace.seq_state()),
                }
            })
            .collect();
        FabricSnapshot {
            cols: self.dims.cols,
            rows: self.dims.rows,
            time: self.time,
            host_seq: self.host_seq,
            host_trace_seq: TraceSeqRecord::from_tuple(self.host_trace.seq_state()),
            events,
            pes,
        }
    }

    /// Overwrites this fabric's dynamic state from a snapshot. The target
    /// must be *structurally identical* to the snapshotted fabric: same
    /// dimensions and configuration, built from the same programs, and
    /// already loaded ([`Fabric::load`]) so allocations and router
    /// configurations are in place — restore then rewinds/advances every
    /// dynamic field on top of that structure. Mismatches are rejected with
    /// a typed [`RestoreError`]; on error the fabric may be partially
    /// overwritten and must be discarded.
    pub fn restore(&mut self, snap: &FabricSnapshot) -> Result<(), RestoreError> {
        if !self.initialized {
            return Err(RestoreError::NotLoaded);
        }
        if snap.cols != self.dims.cols
            || snap.rows != self.dims.rows
            || snap.pes.len() != self.pes.len()
        {
            return Err(RestoreError::DimsMismatch {
                snapshot: (snap.cols, snap.rows),
                fabric: (self.dims.cols, self.dims.rows),
            });
        }
        let num_pes = self.pes.len();
        for (i, er) in snap.events.iter().enumerate() {
            if er.pe >= num_pes {
                return Err(RestoreError::Event {
                    index: i,
                    detail: format!("target PE {} out of range ({num_pes} PEs)", er.pe),
                });
            }
            if er.src != HOST_SRC && er.src >= num_pes {
                return Err(RestoreError::Event {
                    index: i,
                    detail: format!("source PE {} out of range ({num_pes} PEs)", er.src),
                });
            }
        }
        let Self { pes, scalars, .. } = self;
        for (i, (slot, rec)) in pes.iter_mut().zip(&snap.pes).enumerate() {
            slot.memory
                .restore_words(&rec.memory_words, rec.memory_allocated)
                .map_err(|detail| RestoreError::Memory { pe: i, detail })?;
            slot.counters = rec.counters;
            slot.router
                .restore_dynamic(&rec.router_positions, rec.router_version)
                .map_err(|detail| RestoreError::Router { pe: i, detail })?;
            scalars.fabric_hops[i] = rec.fabric_hops;
            scalars.ramp_deliveries[i] = rec.ramp_deliveries;
            slot.program
                .load_state(&rec.program_state)
                .map_err(|detail| RestoreError::Program { pe: i, detail })?;
            scalars.busy_until[i] = rec.busy_until;
            scalars.seq[i] = rec.seq;
            slot.parked = rec.parked.clone();
            slot.outbox.clear();
            slot.activations.clear();
            slot.route_scratch.clear();
            scalars.edge_drops[i] = rec.edge_drops;
            scalars.flow_stalls[i] = rec.flow_stalls;
            scalars.queue_wait_cycles[i] = rec.queue_wait_cycles;
            scalars.fault_drops[i] = rec.fault_drops;
            scalars.checksum_drops[i] = rec.checksum_drops;
            slot.faults = PeFaultState {
                active: rec.faults.active,
                verify_checksums: rec.faults.verify_checksums,
                link_down: rec.faults.link_down.clone(),
                halt_at: rec.faults.halt_at,
                slow: rec.faults.slow.clone(),
                slow_logged: rec.faults.slow_logged.clone(),
                corrupt: rec.faults.corrupt.clone(),
                flips: rec.faults.flips.clone(),
                log: rec.faults.log.clone(),
                tainted: rec.faults.tainted,
            };
            let t = rec.trace_seq;
            slot.trace
                .restore_seq_state(t.next_seq, t.dropped, t.base_time, t.base_cycles);
        }
        let _ = self.queue.drain_unordered();
        for er in &snap.events {
            self.queue.push(Event {
                time: er.time,
                seq: er.seq,
                src: er.src,
                pe: er.pe,
                kind: er.route_input.map_or(EventKind::Deliver, EventKind::Route),
                wavelet: er.wavelet,
            });
        }
        self.time = snap.time;
        self.host_seq = snap.host_seq;
        let t = snap.host_trace_seq;
        self.host_trace
            .restore_seq_state(t.next_seq, t.dropped, t.base_time, t.base_cycles);
        Ok(())
    }

    /// Processes events until the fabric is quiescent, with the engine
    /// selected by [`FabricConfig::execution`].
    ///
    /// Error precedence (identical in both engines): the event budget, then
    /// the first non-benign injected fault, then the routing error with the
    /// smallest event key, then a deadlock scan in PE linear order. Routing errors do not abort processing — the
    /// offending wavelet is dropped and the run continues to quiescence, so
    /// both engines observe the same error set.
    pub fn run(&mut self) -> Result<RunReport, FabricError> {
        self.run_inner(None).map(|p| p.report)
    }

    /// Like [`Fabric::run`], but pauses once at least `event_limit` events
    /// have been processed *in this call*, leaving all remaining events
    /// queued. A paused fabric is a perfectly ordinary between-runs fabric:
    /// it can be snapshotted ([`Fabric::snapshot`]), resumed with another
    /// `run_until`/`run` call, or both — the final state is bit-identical
    /// to an uninterrupted run regardless of where the pauses landed.
    ///
    /// The sequential engine pauses exactly at the limit; the sharded
    /// engine checks the global pop counter at batched flush points, so it
    /// overshoots by up to one batch per worker. Fault and routing errors
    /// detected in the processed prefix are still reported; the deadlock
    /// scan is skipped while paused (parked wavelets may simply not have
    /// been freed *yet*).
    pub fn run_until(&mut self, event_limit: u64) -> Result<PauseReport, FabricError> {
        self.run_inner(Some(event_limit))
    }

    fn run_inner(&mut self, limit: Option<u64>) -> Result<PauseReport, FabricError> {
        assert!(self.initialized, "call load() before run()");
        let result = match self.config.execution {
            Execution::Sequential => self.run_sequential(limit),
            Execution::Sharded { shards, threads } => self.run_sharded(shards, threads, limit),
        };
        if let Err(error) = &result {
            // Route errors are traced per-PE where they occur; budget and
            // deadlock errors are engine-level, so they go to the meta
            // stream (keeping per-PE streams engine-independent).
            if !matches!(error, FabricError::Route { .. }) {
                let (class, detail) = error_code(error);
                let time = self.time;
                self.host_trace
                    .record_at(time, TraceEventKind::Error, class, 0, detail);
            }
        }
        result
    }

    /// Builds the fast-forwarding table for a run, or `None` when the
    /// feature is gated off: disabled by config, tracing on (per-hop sends
    /// must be recorded), or fault state installed (faults interpose on
    /// individual hops).
    fn fwd_table(&self) -> Option<FwdTable> {
        if !self.config.fast_forward || self.config.trace.enabled {
            return None;
        }
        if self
            .pes
            .iter()
            .any(|s| s.faults.active || s.faults.verify_checksums)
        {
            return None;
        }
        Some(FwdTable::build(&self.pes))
    }

    fn run_sequential(&mut self, limit: Option<u64>) -> Result<PauseReport, FabricError> {
        let mut events = 0u64;
        let mut hit_limit = false;
        let drops_before = self.total_edge_drops();
        let faults_before = self.total_fault_events();
        let mut first_error: Option<(EventKey, FabricError)> = None;
        let dims = self.dims;
        let hop_latency = self.config.hop_latency;
        let max_events = self.config.max_events;
        let fwd = self.fwd_table();
        loop {
            if limit.is_some_and(|lim| events >= lim) {
                hit_limit = true;
                break;
            }
            let Some(ev) = self.queue.pop() else {
                break;
            };
            events += 1;
            if events > max_events {
                return Err(FabricError::EventBudgetExceeded { max_events });
            }
            self.time = self.time.max(ev.time);
            let pe = ev.pe;
            let coord = dims.coord(pe);
            let Self {
                pes,
                scalars,
                queue,
                ff_hops,
                ff_jumps,
                region_ff_jumps,
                ..
            } = self;
            if let (Some(table), EventKind::Route(input)) = (&fwd, ev.kind) {
                if ev.wavelet.kind == WaveletKind::Data {
                    if let Some((hops, jumped)) =
                        fast_forward(table, dims, pes, scalars, Some, hop_latency, &ev, input)
                    {
                        // The chain's intermediate pops happened in bulk.
                        events += hops - 1;
                        *ff_hops += hops;
                        *ff_jumps += 1;
                        if hops >= 2 {
                            *region_ff_jumps += 1;
                        }
                        if events > max_events {
                            return Err(FabricError::EventBudgetExceeded { max_events });
                        }
                        queue.push(jumped);
                        continue;
                    }
                }
            }
            let slot = &mut pes[pe];
            let mut emit = |e: Event| queue.push(e);
            match ev.kind {
                EventKind::Route(input) => process_route(
                    slot,
                    scalars,
                    pe,
                    pe,
                    coord,
                    dims,
                    hop_latency,
                    &ev,
                    input,
                    &mut emit,
                    &mut first_error,
                ),
                EventKind::Deliver => {
                    process_deliver(slot, scalars, pe, pe, coord, dims, &ev, &mut emit)
                }
            }
        }
        if let Some(error) = self.scan_faults() {
            return Err(error);
        }
        if let Some((_, error)) = first_error {
            return Err(error);
        }
        let paused = hit_limit && !self.queue.is_empty();
        if !paused {
            self.scan_deadlock()?;
        }
        Ok(PauseReport {
            report: RunReport {
                events,
                final_time: self.time,
                edge_drops: self.total_edge_drops() - drops_before,
                faults: self.total_fault_events() - faults_before,
            },
            paused,
        })
    }

    fn run_sharded(
        &mut self,
        shards: usize,
        threads: usize,
        limit: Option<u64>,
    ) -> Result<PauseReport, FabricError> {
        assert!(
            self.config.hop_latency >= 1,
            "sharded execution requires hop_latency >= 1 (it is the conservative lookahead)"
        );
        let dims = self.dims;
        let config = self.config;
        let plan = ShardPlan::new(dims, shards);
        let n = plan.count();
        let workers = threads.clamp(1, n);
        let drops_before = self.total_edge_drops();
        let faults_before = self.total_fault_events();
        let fwd = self.fwd_table();

        // Move each PE's slot into its shard; restored before returning.
        let mut slot_opts: Vec<Option<PeSlot>> = self.pes.drain(..).map(Some).collect();
        let mut shard_states: Vec<Shard> = (0..n)
            .map(|id| {
                let rect = plan.rects[id];
                let linear: Vec<usize> = rect.iter_linear(dims).collect();
                let slots = linear
                    .iter()
                    .map(|&i| slot_opts[i].take().unwrap())
                    .collect();
                let scalars = self.scalars.gather(&linear);
                let out_links: Vec<ShardLink> = CARDINALS
                    .iter()
                    .filter_map(|&dir| {
                        plan.shard_neighbor(id, dir).map(|dest| ShardLink {
                            idx: id * 4 + dir.index(),
                            dir,
                            dest,
                        })
                    })
                    .collect();
                // The in-link across boundary `dir` is the neighbor's link
                // back toward us (its `arrival_side(dir)` boundary).
                let in_links: Vec<usize> = CARDINALS
                    .iter()
                    .filter_map(|&dir| {
                        plan.shard_neighbor(id, dir)
                            .map(|src| src * 4 + dir.arrival_side().index())
                    })
                    .collect();
                let saved_terms = vec![u64::MAX; out_links.len()];
                Shard {
                    id,
                    rect,
                    slots,
                    queue: CalendarQueue::new(),
                    events: 0,
                    max_time: 0,
                    error: None,
                    out: (0..n).map(|_| Vec::new()).collect(),
                    out_links,
                    in_links,
                    dirty: true,
                    stalls: 0,
                    saved_terms,
                    ff_hops: 0,
                    ff_jumps: 0,
                    region_ff_jumps: 0,
                    scalars,
                }
            })
            .collect();
        for ev in self.queue.drain_unordered() {
            shard_states[plan.shard_of(dims.coord(ev.pe))]
                .queue
                .push(ev);
        }

        // Channel clocks start at T₀ + hop_latency, where T₀ is the global
        // minimum pending time: any cross-shard push derives from an event
        // ≥ T₀ plus at least one link crossing, so the promise holds from
        // the first round (and no cold-start gossip creep is needed).
        let t0 = shard_states
            .iter()
            .filter_map(|s| s.queue.next_time())
            .min()
            .unwrap_or(u64::MAX);
        let clock0 = advance_time(t0, config.hop_latency);
        let shared = SharedCoord {
            inboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            mail_flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
            clocks: (0..n * 4).map(|_| AtomicU64::new(clock0)).collect(),
            idle: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            workers,
            pops: AtomicU64::new(0),
            over_budget: AtomicBool::new(false),
            pause_at: limit.unwrap_or(u64::MAX),
            paused: AtomicBool::new(false),
        };
        let mut per_worker: Vec<Vec<Shard>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, sh) in shard_states.into_iter().enumerate() {
            per_worker[i % workers].push(sh);
        }

        let finished: Vec<Shard> = if workers == 1 {
            // A lone worker runs inline (no spawn/join round-trip) and takes
            // the synchronization-free fast path inside `shard_worker`.
            shard_worker(
                per_worker.pop().unwrap(),
                true,
                dims,
                config,
                &plan,
                fwd.as_ref(),
                &shared,
            )
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = per_worker
                    .into_iter()
                    .enumerate()
                    .map(|(w, owned)| {
                        let (shared, plan, fwd) = (&shared, &plan, fwd.as_ref());
                        scope.spawn(move || {
                            shard_worker(owned, w == 0, dims, config, plan, fwd, shared)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
        };

        // Restore PE slots (and, after an abort, unprocessed events).
        let mut events = 0u64;
        let mut min_error: Option<(EventKey, FabricError)> = None;
        for mut sh in finished {
            events += sh.events;
            self.ff_hops += sh.ff_hops;
            self.ff_jumps += sh.ff_jumps;
            self.region_ff_jumps += sh.region_ff_jumps;
            self.time = self.time.max(sh.max_time);
            if let Some((k, e)) = sh.error.take() {
                merge_min_error(&mut min_error, k, e);
            }
            for ev in sh.queue.drain_unordered() {
                self.queue.push(ev);
            }
            let linear: Vec<usize> = sh.rect.iter_linear(dims).collect();
            self.scalars.scatter(&linear, &sh.scalars);
            for (lin, slot) in linear.into_iter().zip(sh.slots) {
                slot_opts[lin] = Some(slot);
            }
        }
        self.pes = slot_opts
            .into_iter()
            .map(|o| o.expect("every PE belongs to exactly one shard"))
            .collect();
        // One quiescence marker in the host meta stream: the lookahead
        // protocol has no supersteps, so the only rendezvous left to log is
        // the final one. Keeps barriers out of per-PE streams, which is what
        // makes those streams engine-independent.
        self.host_trace.record_at(
            self.time,
            TraceEventKind::Barrier,
            0,
            n as u16,
            events as u32,
        );
        let paused_flag = shared.paused.load(Ordering::SeqCst);
        for inbox in shared.inboxes {
            for ev in inbox.into_inner().unwrap() {
                self.queue.push(ev);
            }
        }

        if shared.over_budget.load(Ordering::SeqCst) {
            return Err(FabricError::EventBudgetExceeded {
                max_events: config.max_events,
            });
        }
        if let Some(error) = self.scan_faults() {
            return Err(error);
        }
        if let Some((_, error)) = min_error {
            return Err(error);
        }
        let paused = paused_flag && !self.queue.is_empty();
        if !paused {
            self.scan_deadlock()?;
        }
        Ok(PauseReport {
            report: RunReport {
                events,
                final_time: self.time,
                edge_drops: self.total_edge_drops() - drops_before,
                faults: self.total_fault_events() - faults_before,
            },
            paused,
        })
    }

    /// The fabric is quiescent: any wavelet still parked can never be
    /// delivered — a protocol deadlock in the program. Scans PEs in linear
    /// order so both engines report the same PE.
    fn scan_deadlock(&self) -> Result<(), FabricError> {
        for (i, slot) in self.pes.iter().enumerate() {
            if !slot.parked.is_empty() {
                let details: Vec<String> = slot
                    .parked
                    .iter()
                    .map(|(d, w)| format!("color {} from {:?} ({:?})", w.color.id(), d, w.kind))
                    .collect();
                return Err(FabricError::Deadlock {
                    pe: self.dims.coord(i),
                    stalled: slot.parked.len(),
                    details: details.join(", "),
                });
            }
        }
        Ok(())
    }

    /// The minimal non-benign fault event across all PEs under the
    /// engine-independent order `(time, PE linear index, log position)`,
    /// as a typed error. Per-PE log times are non-decreasing (each PE
    /// processes events in key order), so the first non-benign entry of a
    /// log is that PE's earliest.
    fn scan_faults(&self) -> Option<FabricError> {
        let mut best: Option<(u64, usize, FabricError)> = None;
        for (i, slot) in self.pes.iter().enumerate() {
            if let Some(evt) = slot.faults.log.iter().find(|e| !e.benign) {
                if best
                    .as_ref()
                    .is_none_or(|&(t, p, _)| (evt.time, i) < (t, p))
                {
                    best = Some((
                        evt.time,
                        i,
                        FabricError::Fault {
                            pe: evt.pe,
                            time: evt.time,
                            class: evt.class,
                            detail: evt.detail,
                        },
                    ));
                }
            }
        }
        best.map(|(_, _, e)| e)
    }

    fn total_fault_events(&self) -> u64 {
        self.pes.iter().map(|s| s.faults.log.len() as u64).sum()
    }

    fn total_edge_drops(&self) -> u64 {
        self.scalars.edge_drops.iter().sum()
    }

    /// Cycles each PE's deliveries spent queued behind its busy CE before
    /// their task started, in linear PE order. Accumulated identically by
    /// both engines (the accounting lives in the shared delivery path), so
    /// this vector is bit-identical between `Execution::Sequential` and
    /// `Execution::Sharded`.
    pub fn queue_wait_by_pe(&self) -> Vec<u64> {
        self.scalars.queue_wait_cycles.clone()
    }

    /// Total queued-delivery wait cycles across all PEs (see
    /// [`Fabric::queue_wait_by_pe`]).
    pub fn queue_wait_cycles(&self) -> u64 {
        self.scalars.queue_wait_cycles.iter().sum()
    }

    /// Cumulative fast-forwarded hops across all runs so far. Deterministic
    /// and engine-invariant: the sharded engine splits a passive chain into
    /// per-shard segments, but the segment hop counts sum to the whole
    /// chain's, so this total is bit-identical Sequential vs Sharded. Zero
    /// whenever fast-forwarding is disabled or inhibited (tracing, faults).
    pub fn ff_hops(&self) -> u64 {
        self.ff_hops
    }

    /// Cumulative fast-forward jumps across all runs so far. **Not**
    /// engine-invariant (one jump per chain sequentially, one per segment
    /// sharded) — compare [`Fabric::ff_hops`] across engines instead.
    pub fn ff_jumps(&self) -> u64 {
        self.ff_jumps
    }

    /// Cumulative *region* fast-forward jumps (jumps that crossed ≥ 2 PEs
    /// in one event) across all runs so far. Engine-dependent like
    /// [`Fabric::ff_jumps`] — excluded from the determinism contract.
    pub fn region_ff_jumps(&self) -> u64 {
        self.region_ff_jumps
    }

    /// Route-table equivalence classes after [`Fabric::load`]: the number
    /// of distinct static route tables across the fabric. An SPMD program
    /// yields O(1) classes regardless of grid size (interior / edges /
    /// corners); with [`FabricConfig::dedup_routes`] off, every PE is its
    /// own class.
    pub fn eq_classes(&self) -> usize {
        self.eq_classes
    }

    /// A PE's cumulative fabric-link forwards (per-PE diagnostics; the
    /// aggregate lives in [`FabricStats::fabric_hops`]).
    pub fn fabric_hops_at(&self, coord: PeCoord) -> u64 {
        self.scalars.fabric_hops[self.dims.linear(coord)]
    }

    /// Event-queue occupancy `(ring, overflow)`: items resident in the
    /// calendar queue's near-term ring vs parked in the far-future overflow
    /// heap. A host-side telemetry probe; reading it does not perturb
    /// scheduling. During a sharded run the per-shard queues are private to
    /// their workers, so this reflects the host queue only (which is where
    /// all pending events live between runs).
    pub fn queue_occupancy(&self) -> (usize, usize) {
        (self.queue.ring_occupancy(), self.queue.overflow_occupancy())
    }

    /// Host access to a PE's memory (SDK `memcpy`).
    pub fn memory(&self, coord: PeCoord) -> &PeMemory {
        &self.pes[self.dims.linear(coord)].memory
    }

    /// Mutable host access to a PE's memory.
    pub fn memory_mut(&mut self, coord: PeCoord) -> &mut PeMemory {
        let i = self.dims.linear(coord);
        &mut self.pes[i].memory
    }

    /// A PE's instruction counters.
    pub fn counters(&self, coord: PeCoord) -> &OpCounters {
        &self.pes[self.dims.linear(coord)].counters
    }

    /// A PE's router (diagnostics).
    pub fn router(&self, coord: PeCoord) -> &Router {
        &self.pes[self.dims.linear(coord)].router
    }

    /// Zeroes all PE counters (between measurement phases).
    pub fn reset_counters(&mut self) {
        for slot in &mut self.pes {
            slot.counters = OpCounters::default();
        }
    }

    fn pe_stats(&self, i: usize) -> FabricStats {
        let slot = &self.pes[i];
        let sc = &self.scalars;
        FabricStats {
            total: slot.counters,
            max_pe_cycles: slot.counters.cycles(),
            max_pe_compute_cycles: slot.counters.compute_cycles,
            max_pe_comm_cycles: slot.counters.comm_cycles,
            fabric_hops: sc.fabric_hops[i],
            ramp_deliveries: sc.ramp_deliveries[i],
            edge_drops: sc.edge_drops[i],
            flow_stalls: sc.flow_stalls[i],
            fault_drops: sc.fault_drops[i],
            checksum_drops: sc.checksum_drops[i],
            num_pes: 1,
        }
    }

    /// Aggregated fabric statistics.
    pub fn stats(&self) -> FabricStats {
        let mut s = FabricStats::default();
        for i in 0..self.pes.len() {
            s.merge(&self.pe_stats(i));
        }
        s
    }

    /// Per-shard statistics under the rectangular partition the sharded
    /// engine would use for `shards` — one [`FabricStats`] per shard, in
    /// shard-id order. `stats()` equals the merge of all entries.
    pub fn shard_stats(&self, shards: usize) -> Vec<FabricStats> {
        let plan = ShardPlan::new(self.dims, shards);
        let mut out = vec![FabricStats::default(); plan.count()];
        for i in 0..self.pes.len() {
            let sh = plan.shard_of(self.dims.coord(i));
            out[sh].merge(&self.pe_stats(i));
        }
        out
    }

    /// Whether event tracing was enabled in [`FabricConfig::trace`].
    pub fn trace_enabled(&self) -> bool {
        self.config.trace.enabled
    }

    /// Records a host-side phase marker (e.g. inject/collect) into the meta
    /// trace stream at the current fabric time. No-op when tracing is off.
    pub fn trace_host(&mut self, phase: u8, payload: u32) {
        let time = self.time;
        self.host_trace
            .record_at(time, TraceEventKind::HostPhase, phase, 0, payload);
    }

    /// Snapshot of the recorded trace, attributing PEs to the shards of the
    /// configured execution mode (1 shard when sequential). `None` when
    /// tracing is off.
    pub fn trace(&self) -> Option<Trace> {
        let shards = match self.config.execution {
            Execution::Sequential => 1,
            Execution::Sharded { shards, .. } => shards,
        };
        self.trace_with_shards(shards)
    }

    /// Snapshot of the recorded trace under the rectangular partition the
    /// sharded engine would use for `shards`. The per-PE event streams are
    /// engine-independent; only this shard attribution changes.
    pub fn trace_with_shards(&self, shards: usize) -> Option<Trace> {
        if !self.config.trace.enabled {
            return None;
        }
        let plan = ShardPlan::new(self.dims, shards);
        let shard_of: Vec<u32> = (0..self.dims.num_pes())
            .map(|i| plan.shard_of(self.dims.coord(i)) as u32)
            .collect();
        let rings: Vec<&EventRing> = self.pes.iter().filter_map(|s| s.trace.ring()).collect();
        let empty_host = EventRing::new(HOST_PE, 1);
        let host = self.host_trace.ring().unwrap_or(&empty_host);
        Some(Trace::from_rings(
            self.dims.cols,
            self.dims.rows,
            plan.count(),
            shard_of,
            self.time,
            &rings,
            host,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{ColorConfig, DirMask, RouterPosition};
    use Direction::{East, Ramp, West};

    const DATA: Color = Color::new(0);
    const START: Color = Color::new(1);

    /// Eastward shift: every PE stores one value; on START it sends the
    /// value east; values arriving from the west are stored.
    struct Shifter {
        value: f32,
        slot: Option<crate::memory::MemRange>,
        received: Option<crate::memory::MemRange>,
    }

    impl Shifter {
        fn new(value: f32) -> Self {
            Self {
                value,
                slot: None,
                received: None,
            }
        }
    }

    impl PeProgram for Shifter {
        fn init(&mut self, ctx: &mut PeContext) {
            let slot = ctx.alloc(1);
            let received = ctx.alloc(1);
            ctx.memory.write_f32(slot.at(0), self.value);
            ctx.memory.write_f32(received.at(0), f32::NAN);
            self.slot = Some(slot);
            self.received = Some(received);
            // DATA: accept from ramp (to send east) and from the west
            // (deliver to ramp). Expressed as two switch positions is the
            // hardware-faithful way, but East-sends and West-receives never
            // collide in this test, so a send position suffices per parity.
            // Here we exercise a *fixed* route on the boundary-safe pattern:
            // rx {Ramp, West} → tx {East-if-sending}. Instead we use two
            // colors... keep it simple: a single fixed config where ramp
            // wavelets go east and west wavelets go to the ramp cannot be
            // expressed in one position, so use two positions + control.
            let sending = RouterPosition::new(DirMask::single(Ramp), DirMask::single(East));
            let receiving = RouterPosition::new(DirMask::single(West), DirMask::single(Ramp));
            // even columns start sending; odd start receiving
            let initial = if ctx.coord.col.is_multiple_of(2) {
                0
            } else {
                1
            };
            ctx.configure_color(DATA, ColorConfig::switchable(sending, receiving, initial));
        }

        fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
            if w.color == START {
                if ctx.coord.col.is_multiple_of(2) {
                    // senders: data then a control to flip ourselves+neighbor
                    ctx.send_f32(DATA, self.value);
                    ctx.send_control(DATA, 0);
                }
            } else if w.color == DATA {
                ctx.recv_store(self.received.unwrap().at(0), w.as_f32());
            }
        }

        fn on_control(&mut self, ctx: &mut PeContext, _w: Wavelet) {
            // our router flipped to sending: send our value east
            ctx.send_f32(DATA, self.value);
        }
    }

    fn build_shifter_fabric(cols: usize) -> Fabric {
        build_shifter_fabric_with(cols, FabricConfig::default())
    }

    fn build_shifter_fabric_with(cols: usize, config: FabricConfig) -> Fabric {
        let dims = FabricDims::new(cols, 1);
        let mut f = Fabric::new(dims, config, |c| {
            Box::new(Shifter::new(c.col as f32 + 100.0))
        });
        f.load();
        f
    }

    #[test]
    fn two_step_switching_shifts_values_east() {
        let mut f = build_shifter_fabric(4);
        f.activate_all(START, 0);
        let report = f.run().unwrap();
        assert!(report.events > 0);
        // Every PE except column 0 must have received its west neighbor's
        // value; column 0 receives nothing.
        for col in 1..4 {
            let pe = PeCoord::new(col, 0);
            let received = f.memory(pe).read_f32(1); // second allocated word
            assert_eq!(received, (col - 1) as f32 + 100.0, "col {col}");
        }
        let col0 = f.memory(PeCoord::new(0, 0)).read_f32(1);
        assert!(col0.is_nan(), "column 0 has no west neighbor");
    }

    #[test]
    fn routers_return_to_initial_position_after_two_controls() {
        let mut f = build_shifter_fabric(4);
        f.activate_all(START, 0);
        f.run().unwrap();
        // Columns 0..2 forwarded (or received) exactly one control each;
        // the control count through each router is 1 (odd), so positions
        // ended toggled exactly once from initial. Column parity check:
        for col in 0..4 {
            let r = f.router(PeCoord::new(col, 0));
            let pos = r.position_index(DATA).unwrap();
            let initial = if col % 2 == 0 { 0 } else { 1 };
            // Each even column sent one control (toggling itself); each odd
            // column's router was toggled by the control passing through.
            // The odd column's own on_control sent data but no control, so
            // every router toggled exactly once.
            assert_eq!(pos, 1 - initial, "col {col}");
        }
    }

    #[test]
    fn edge_sends_are_dropped_and_counted() {
        // Column 3 (odd) flips to sending on control and sends east into
        // the void; column 2's control also leaves east from column 3? No —
        // column 3's data send at the east edge is the drop.
        let mut f = build_shifter_fabric(4);
        f.activate_all(START, 0);
        let report = f.run().unwrap();
        assert!(report.edge_drops >= 1);
        let stats = f.stats();
        assert_eq!(stats.edge_drops, report.edge_drops);
    }

    #[test]
    fn counters_track_fmov_traffic() {
        let mut f = build_shifter_fabric(2);
        f.activate_all(START, 0);
        f.run().unwrap();
        // PE 1 received exactly one value with FMOV accounting.
        let c = f.counters(PeCoord::new(1, 0));
        assert_eq!(c.fmov_in, 1);
        assert_eq!(c.fabric_loads, 1);
        assert_eq!(c.mem_stores, 1);
        let stats = f.stats();
        assert_eq!(stats.num_pes, 2);
        assert!(stats.ramp_deliveries >= 1);
        assert!(stats.fabric_hops >= 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut f = build_shifter_fabric(6);
            f.activate_all(START, 0);
            let r = f.run().unwrap();
            let mem: Vec<f32> = (0..6)
                .map(|c| f.memory(PeCoord::new(c, 0)).read_f32(1))
                .collect();
            (r.events, r.final_time, format!("{mem:?}"))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_counters_zeroes_everything() {
        let mut f = build_shifter_fabric(2);
        f.activate_all(START, 0);
        f.run().unwrap();
        f.reset_counters();
        let s = f.stats();
        assert_eq!(s.total.fmov_in, 0);
        assert_eq!(s.total.cycles(), 0);
    }

    #[test]
    fn event_budget_guards_runaway_programs() {
        /// Sends to itself forever via local activation.
        struct Loopy;
        impl PeProgram for Loopy {
            fn init(&mut self, _ctx: &mut PeContext) {}
            fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
                ctx.activate(w.color, 0);
            }
        }
        let mut f = Fabric::new(
            FabricDims::new(1, 1),
            FabricConfig {
                max_events: 100,
                ..FabricConfig::default()
            },
            |_| Box::new(Loopy),
        );
        f.load();
        f.activate_all(DATA, 0);
        let err = f.run().unwrap_err();
        assert!(matches!(err, FabricError::EventBudgetExceeded { .. }));
        assert!(format!("{err}").contains("budget"));
    }

    #[test]
    fn route_error_is_reported_with_pe_coordinates() {
        /// Sends on an unconfigured color.
        struct Bad;
        impl PeProgram for Bad {
            fn init(&mut self, _ctx: &mut PeContext) {}
            fn on_data(&mut self, ctx: &mut PeContext, _w: Wavelet) {
                ctx.send_f32(Color::new(17), 1.0);
            }
        }
        let mut f = Fabric::new(FabricDims::new(2, 2), FabricConfig::default(), |_| {
            Box::new(Bad)
        });
        f.load();
        f.activate(PeCoord::new(1, 1), DATA, 0);
        let err = f.run().unwrap_err();
        match err {
            FabricError::Route { pe, .. } => assert_eq!(pe, PeCoord::new(1, 1)),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(format!("{err}").contains("(1, 1)"));
    }

    #[test]
    fn flow_control_parks_and_releases_in_fifo_order() {
        use crate::route::{ColorConfig, RouterPosition};
        const C: Color = Color::new(7);
        /// Left PE sends 3 data + 1 control east immediately; right PE's
        /// router starts in Sending position (would reject west arrivals),
        /// and only its own control — sent *later* — toggles it open.
        struct Sender;
        impl PeProgram for Sender {
            fn init(&mut self, ctx: &mut PeContext) {
                let sending = RouterPosition::new(DirMask::single(Ramp), DirMask::single(East));
                let receiving = RouterPosition::new(DirMask::single(West), DirMask::single(Ramp));
                ctx.configure_color(C, ColorConfig::switchable(sending, receiving, 0));
            }
            fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
                if w.color == DATA {
                    // the launch: send data then the hand-over control
                    for v in [1.0_f32, 2.0, 3.0] {
                        ctx.send_f32(C, v);
                    }
                    ctx.send_control(C, 0);
                } else {
                    // record arrivals in order
                    let slot = ctx.memory.read_u32(0) as usize;
                    ctx.memory.write_f32(1 + slot, w.as_f32());
                    ctx.memory.write_u32(0, slot as u32 + 1);
                }
            }
        }
        struct Receiver;
        impl PeProgram for Receiver {
            fn init(&mut self, ctx: &mut PeContext) {
                let sending = RouterPosition::new(DirMask::single(Ramp), DirMask::single(East));
                let receiving = RouterPosition::new(DirMask::single(West), DirMask::single(Ramp));
                // starts in Sending: incoming data must be parked
                ctx.configure_color(C, ColorConfig::switchable(sending, receiving, 0));
                let _ = ctx.alloc(8);
            }
            fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
                if w.color == DATA {
                    // burn cycles first (a slow PE), so the neighbor's data
                    // reaches our still-Sending router and gets parked
                    let burn = crate::dsd::Dsd::contiguous(4, 4);
                    for _ in 0..20 {
                        ctx.fmuls(
                            burn,
                            crate::dsd::Operand::Mem(burn),
                            crate::dsd::Operand::Scalar(1.0),
                        );
                    }
                    // then open the channel: send into the void, and let the
                    // control toggle us to Receiving
                    ctx.send_f32(C, 9.0);
                    ctx.send_control(C, 0);
                } else {
                    let slot = ctx.memory.read_u32(0) as usize;
                    ctx.memory.write_f32(1 + slot, w.as_f32());
                    ctx.memory.write_u32(0, slot as u32 + 1);
                }
            }
        }
        let mut f = Fabric::new(FabricDims::new(2, 1), FabricConfig::default(), |c| {
            if c.col == 0 {
                Box::new(Sender) as Box<dyn PeProgram>
            } else {
                Box::new(Receiver)
            }
        });
        f.load();
        // left fires immediately; right is activated only "later" (larger
        // seq) so the left data reaches a Sending-position router first.
        f.activate(PeCoord::new(0, 0), DATA, 0);
        f.activate(PeCoord::new(1, 0), DATA, 0);
        f.run().unwrap();
        let stats = f.stats();
        assert!(stats.flow_stalls > 0, "data must have been backpressured");
        // all three values arrive, in their original order
        let mem = f.memory(PeCoord::new(1, 0));
        assert_eq!(mem.read_u32(0), 3);
        assert_eq!(mem.read_f32(1), 1.0);
        assert_eq!(mem.read_f32(2), 2.0);
        assert_eq!(mem.read_f32(3), 3.0);
    }

    #[test]
    fn quiescent_fabric_with_stalled_wavelets_is_a_deadlock_error() {
        use crate::route::{ColorConfig, RouterPosition};
        const C: Color = Color::new(5);
        /// Sends east on a color whose receiving side never opens.
        struct Stuck;
        impl PeProgram for Stuck {
            fn init(&mut self, ctx: &mut PeContext) {
                let sending = RouterPosition::new(DirMask::single(Ramp), DirMask::single(East));
                let receiving = RouterPosition::new(DirMask::single(West), DirMask::single(Ramp));
                // every PE stays in Sending: the east side never opens
                ctx.configure_color(C, ColorConfig::switchable(sending, receiving, 0));
            }
            fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
                if w.color == DATA && ctx.coord.col == 0 {
                    ctx.send_f32(C, 1.0); // neighbor stays in Sending forever
                }
                let _ = w;
            }
        }
        let mut f = Fabric::new(FabricDims::new(2, 1), FabricConfig::default(), |_| {
            Box::new(Stuck)
        });
        f.load();
        f.activate(PeCoord::new(0, 0), DATA, 0);
        let err = f.run().unwrap_err();
        match &err {
            FabricError::Deadlock { pe, stalled, .. } => {
                assert_eq!(*pe, PeCoord::new(1, 0));
                assert_eq!(*stalled, 1);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert!(format!("{err}").contains("deadlock"));
    }

    #[test]
    fn handler_cost_advances_simulated_time() {
        /// Burns vector cycles on activation.
        struct Burner;
        impl PeProgram for Burner {
            fn init(&mut self, ctx: &mut PeContext) {
                let a = ctx.alloc(64);
                let _ = a;
            }
            fn on_data(&mut self, ctx: &mut PeContext, _w: Wavelet) {
                let d = crate::dsd::Dsd::contiguous(0, 64);
                ctx.fmuls(
                    d,
                    crate::dsd::Operand::Mem(d),
                    crate::dsd::Operand::Scalar(1.0),
                );
            }
        }
        let mut f = Fabric::new(FabricDims::new(1, 1), FabricConfig::default(), |_| {
            Box::new(Burner)
        });
        f.load();
        f.activate_all(DATA, 0);
        let r = f.run().unwrap();
        assert!(r.events >= 1);
        let c = f.counters(PeCoord::new(0, 0));
        assert_eq!(c.fmul, 64);
        assert_eq!(c.compute_cycles, 64);
    }

    // -- sharded engine ----------------------------------------------------

    fn sharded(shards: usize, threads: usize) -> FabricConfig {
        FabricConfig {
            execution: Execution::Sharded { shards, threads },
            ..FabricConfig::default()
        }
    }

    #[test]
    fn shard_plan_factorizations_match_fabric_aspect() {
        let square = FabricDims::new(12, 12);
        let p = ShardPlan::new(square, 4);
        assert_eq!((p.nx, p.ny), (2, 2));
        let p = ShardPlan::new(square, 9);
        assert_eq!((p.nx, p.ny), (3, 3));
        let wide = FabricDims::new(16, 4);
        let p = ShardPlan::new(wide, 2);
        assert_eq!((p.nx, p.ny), (2, 1), "wide fabrics split by columns");
        // 7 shards cannot tile 4×4 (needs a 7 on one axis); falls back to 6
        let p = ShardPlan::new(FabricDims::new(4, 4), 7);
        assert_eq!(p.count(), 6);
        // more shards than PEs is clamped
        let p = ShardPlan::new(FabricDims::new(2, 2), 64);
        assert_eq!(p.count(), 4);
    }

    #[test]
    fn shard_plan_covers_every_pe_exactly_once() {
        let dims = FabricDims::new(7, 5); // misaligned splits
        let plan = ShardPlan::new(dims, 6);
        let mut seen = vec![0u32; dims.num_pes()];
        for (id, rect) in plan.rects.iter().enumerate() {
            for lin in rect.iter_linear(dims) {
                seen[lin] += 1;
                assert_eq!(plan.shard_of(dims.coord(lin)), id);
            }
        }
        assert!(seen.iter().all(|&n| n == 1));
    }

    #[test]
    fn sharded_matches_sequential_on_shifter() {
        let outcome = |config: FabricConfig| {
            let mut f = build_shifter_fabric_with(8, config);
            f.activate_all(START, 0);
            let r = f.run().unwrap();
            let mem: Vec<u32> = (0..8)
                .map(|c| f.memory(PeCoord::new(c, 0)).read_u32(1))
                .collect();
            let counters: Vec<OpCounters> =
                (0..8).map(|c| *f.counters(PeCoord::new(c, 0))).collect();
            (r, mem, counters, f.time())
        };
        let seq = outcome(FabricConfig::default());
        for (shards, threads) in [(1, 1), (2, 2), (4, 2), (4, 4), (8, 3)] {
            let par = outcome(sharded(shards, threads));
            assert_eq!(seq, par, "shards={shards} threads={threads}");
        }
    }

    #[test]
    fn sharded_reports_identical_deadlock() {
        let build = |config: FabricConfig| {
            use crate::route::{ColorConfig, RouterPosition};
            const C: Color = Color::new(5);
            struct Stuck;
            impl PeProgram for Stuck {
                fn init(&mut self, ctx: &mut PeContext) {
                    let sending = RouterPosition::new(DirMask::single(Ramp), DirMask::single(East));
                    let receiving =
                        RouterPosition::new(DirMask::single(West), DirMask::single(Ramp));
                    ctx.configure_color(C, ColorConfig::switchable(sending, receiving, 0));
                }
                fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
                    if w.color == DATA && ctx.coord.col == 0 {
                        ctx.send_f32(C, 1.0);
                    }
                    let _ = w;
                }
            }
            let mut f = Fabric::new(FabricDims::new(4, 1), config, |_| Box::new(Stuck));
            f.load();
            f.activate(PeCoord::new(0, 0), DATA, 0);
            f.run().unwrap_err()
        };
        let seq_err = build(FabricConfig::default());
        let par_err = build(sharded(4, 2));
        assert_eq!(seq_err, par_err);
    }

    #[test]
    fn sharded_event_budget_error_matches_sequential() {
        struct Loopy;
        impl PeProgram for Loopy {
            fn init(&mut self, _ctx: &mut PeContext) {}
            fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
                ctx.activate(w.color, 0);
            }
        }
        let run = |execution: Execution| {
            let mut f = Fabric::new(
                FabricDims::new(2, 2),
                FabricConfig {
                    max_events: 500,
                    execution,
                    ..FabricConfig::default()
                },
                |_| Box::new(Loopy),
            );
            f.load();
            f.activate_all(DATA, 0);
            f.run().unwrap_err()
        };
        let seq = run(Execution::Sequential);
        let par = run(Execution::Sharded {
            shards: 4,
            threads: 4,
        });
        assert_eq!(seq, par);
        assert!(matches!(seq, FabricError::EventBudgetExceeded { .. }));
    }

    #[test]
    fn shard_stats_merge_to_global_stats() {
        let mut f = build_shifter_fabric(6);
        f.activate_all(START, 0);
        f.run().unwrap();
        let global = f.stats();
        for shards in [1, 2, 3, 6] {
            let per = f.shard_stats(shards);
            let mut merged = FabricStats::default();
            for s in &per {
                merged.merge(s);
            }
            assert_eq!(merged, global, "{shards} shards");
        }
    }
}
