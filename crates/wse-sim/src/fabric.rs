//! The fabric: a 2D grid of PEs + routers driven by a deterministic
//! discrete-event loop.
//!
//! Wavelets advance one router hop per `hop_latency` cycles; handlers run
//! when a wavelet reaches a ramp and their DSD-op cycle cost pushes the PE's
//! busy-time forward, so communication and computation overlap exactly as
//! the paper's implementation arranges (§5.3.2: "the fabric and routers work
//! completely independently from the processing elements").

use crate::geometry::{Direction, FabricDims, PeCoord};
use crate::memory::PeMemory;
use crate::pe::{PeContext, PeProgram};
use crate::route::{RouteError, Router};
use crate::stats::{FabricStats, OpCounters};
use crate::wavelet::{Color, Wavelet, WaveletKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fabric-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Per-PE memory capacity in bytes (default: WSE-2's 48 kB).
    pub pe_memory_bytes: usize,
    /// Router-to-router latency in cycles (default 1).
    pub hop_latency: u64,
    /// Safety cap on processed events (default 10⁹).
    pub max_events: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            pe_memory_bytes: crate::memory::WSE2_PE_MEMORY_BYTES,
            hop_latency: 1,
            max_events: 1_000_000_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Goes through the PE's router (input side recorded).
    Route(Direction),
    /// Delivered directly to the PE's program (ramp arrival / activation).
    Deliver,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    pe: usize,
    kind: EventKind,
    wavelet: Wavelet,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
// Events carry Wavelet (PartialEq only via derive); provide Eq manually.
impl Eq for Wavelet {}

struct PeSlot {
    memory: PeMemory,
    counters: OpCounters,
    router: Router,
    program: Box<dyn PeProgram>,
    busy_until: u64,
    outbox: Vec<Wavelet>,
    activations: Vec<(Color, u32)>,
    /// Wavelets stalled by flow control: the active switch position does
    /// not accept their input link yet. Real WSE routers backpressure the
    /// link in this situation; we park the wavelet and re-inject it when a
    /// control wavelet toggles the color's position. FIFO per color.
    parked: Vec<(Direction, Wavelet)>,
}

/// Outcome of a [`Fabric::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Events processed in this run.
    pub events: u64,
    /// Simulated time (cycles) when the fabric went quiescent.
    pub final_time: u64,
    /// Wavelets dropped at the fabric edge during this run.
    pub edge_drops: u64,
}

/// A fatal simulation error (program bug).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// A router rejected a wavelet.
    Route {
        /// Offending PE.
        pe: PeCoord,
        /// The underlying router error.
        error: RouteError,
    },
    /// The event cap was reached (runaway program).
    EventBudgetExceeded {
        /// The configured cap.
        max_events: u64,
    },
    /// The fabric went quiescent with wavelets still stalled by flow
    /// control — no control wavelet will ever release them.
    Deadlock {
        /// A PE holding stalled wavelets.
        pe: PeCoord,
        /// How many are stalled there.
        stalled: usize,
        /// Human-readable list of the stalled wavelets.
        details: String,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Route { pe, error } => {
                write!(f, "router error at PE ({}, {}): {error}", pe.col, pe.row)
            }
            FabricError::EventBudgetExceeded { max_events } => {
                write!(f, "event budget exceeded ({max_events})")
            }
            FabricError::Deadlock {
                pe,
                stalled,
                details,
            } => write!(
                f,
                "deadlock: {stalled} wavelet(s) stalled at PE ({}, {}) with the fabric \
                 quiescent: {details}",
                pe.col, pe.row
            ),
        }
    }
}

impl std::error::Error for FabricError {}

/// The simulated wafer: PEs, routers, and the event queue.
pub struct Fabric {
    dims: FabricDims,
    config: FabricConfig,
    pes: Vec<PeSlot>,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    time: u64,
    edge_drops: u64,
    parked_total: u64,
    initialized: bool,
}

impl Fabric {
    /// Builds a fabric, constructing one program instance per PE via
    /// `factory` (called in row-major order).
    pub fn new(
        dims: FabricDims,
        config: FabricConfig,
        mut factory: impl FnMut(PeCoord) -> Box<dyn PeProgram>,
    ) -> Self {
        let pes = dims
            .iter()
            .map(|c| PeSlot {
                memory: PeMemory::with_capacity_bytes(config.pe_memory_bytes),
                counters: OpCounters::default(),
                router: Router::new(),
                program: factory(c),
                busy_until: 0,
                outbox: Vec::new(),
                activations: Vec::new(),
                parked: Vec::new(),
            })
            .collect();
        Self {
            dims,
            config,
            pes,
            queue: BinaryHeap::new(),
            seq: 0,
            time: 0,
            edge_drops: 0,
            parked_total: 0,
            initialized: false,
        }
    }

    /// Fabric dimensions.
    pub fn dims(&self) -> FabricDims {
        self.dims
    }

    /// Current simulated time in cycles.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Runs every PE's `init` handler (allocate memory, configure routes).
    pub fn load(&mut self) {
        assert!(!self.initialized, "fabric already loaded");
        self.initialized = true;
        for i in 0..self.pes.len() {
            let coord = self.dims.coord(i);
            let dims = self.dims;
            let slot = &mut self.pes[i];
            let mut ctx = PeContext::new(
                coord,
                dims,
                &mut slot.memory,
                &mut slot.counters,
                &mut slot.router,
                &mut slot.outbox,
                &mut slot.activations,
            );
            slot.program.init(&mut ctx);
        }
        // Anything sent from init is injected at t = 0.
        for i in 0..self.pes.len() {
            self.flush_pe_output(i, 0);
        }
    }

    /// Delivers a wavelet directly to a PE's program at the current time —
    /// the host-side "launch" (like the SDK starting a kernel).
    pub fn activate(&mut self, coord: PeCoord, color: Color, payload: u32) {
        let ev = Event {
            time: self.time,
            seq: self.next_seq(),
            pe: self.dims.linear(coord),
            kind: EventKind::Deliver,
            wavelet: Wavelet::data(color, payload),
        };
        self.queue.push(Reverse(ev));
    }

    /// Activates every PE (host broadcast launch).
    pub fn activate_all(&mut self, color: Color, payload: u32) {
        let coords: Vec<PeCoord> = self.dims.iter().collect();
        for c in coords {
            self.activate(c, color, payload);
        }
    }

    /// Processes events until the fabric is quiescent.
    pub fn run(&mut self) -> Result<RunReport, FabricError> {
        assert!(self.initialized, "call load() before run()");
        let mut events = 0u64;
        let drops_before = self.edge_drops;
        while let Some(Reverse(ev)) = self.queue.pop() {
            events += 1;
            if events > self.config.max_events {
                return Err(FabricError::EventBudgetExceeded {
                    max_events: self.config.max_events,
                });
            }
            self.time = self.time.max(ev.time);
            match ev.kind {
                EventKind::Route(input) => self.process_route(ev, input)?,
                EventKind::Deliver => self.process_deliver(ev),
            }
        }
        // The fabric is quiescent. Any wavelet still parked can never be
        // delivered — a protocol deadlock in the program.
        for (i, slot) in self.pes.iter().enumerate() {
            if !slot.parked.is_empty() {
                let details: Vec<String> = slot
                    .parked
                    .iter()
                    .map(|(d, w)| format!("color {} from {:?} ({:?})", w.color.id(), d, w.kind))
                    .collect();
                return Err(FabricError::Deadlock {
                    pe: self.dims.coord(i),
                    stalled: slot.parked.len(),
                    details: details.join(", "),
                });
            }
        }
        Ok(RunReport {
            events,
            final_time: self.time,
            edge_drops: self.edge_drops - drops_before,
        })
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn process_route(&mut self, ev: Event, input: Direction) -> Result<(), FabricError> {
        let coord = self.dims.coord(ev.pe);
        // Work list: the incoming wavelet, then — in arrival order — any
        // previously stalled wavelets a toggle releases. Releases are
        // processed *within this event* so that no later-queued wavelet of
        // the same color can overtake them (link-order preservation).
        let mut work: std::collections::VecDeque<(Direction, Wavelet)> =
            std::collections::VecDeque::new();
        work.push_back((input, ev.wavelet));
        while let Some((inp, wavelet)) = work.pop_front() {
            let outcome =
                match self.pes[ev.pe]
                    .router
                    .route(wavelet.color, inp, wavelet.is_control())
                {
                    Ok(o) => o,
                    // Flow control: the active switch position does not accept
                    // this link yet (the hardware would backpressure). Park the
                    // wavelet; a control toggling this color releases it.
                    Err(crate::route::RouteError::InputNotAccepted { .. }) => {
                        self.pes[ev.pe].parked.push((inp, wavelet));
                        self.parked_total += 1;
                        continue;
                    }
                    Err(error) => return Err(FabricError::Route { pe: coord, error }),
                };
            if outcome.toggled {
                // the switch moved: stalled wavelets of this color may pass
                let mut released = Vec::new();
                self.pes[ev.pe].parked.retain(|(dir, w)| {
                    if w.color == wavelet.color {
                        released.push((*dir, *w));
                        false
                    } else {
                        true
                    }
                });
                // keep their original relative order, ahead of nothing else
                for r in released.into_iter().rev() {
                    work.push_front(r);
                }
            }
            for dir in &outcome.outputs {
                if *dir == Direction::Ramp {
                    let ev2 = Event {
                        time: ev.time,
                        seq: self.next_seq(),
                        pe: ev.pe,
                        kind: EventKind::Deliver,
                        wavelet,
                    };
                    self.queue.push(Reverse(ev2));
                } else {
                    match self.dims.neighbor(coord, *dir) {
                        Some(n) => {
                            let ev2 = Event {
                                time: ev.time + self.config.hop_latency,
                                seq: self.next_seq(),
                                pe: self.dims.linear(n),
                                kind: EventKind::Route(dir.arrival_side()),
                                wavelet,
                            };
                            self.queue.push(Reverse(ev2));
                        }
                        None => self.edge_drops += 1,
                    }
                }
            }
        }
        Ok(())
    }

    fn process_deliver(&mut self, ev: Event) {
        let coord = self.dims.coord(ev.pe);
        let dims = self.dims;
        let start;
        {
            let slot = &mut self.pes[ev.pe];
            start = slot.busy_until.max(ev.time);
            let cycles_before = slot.counters.cycles();
            let mut ctx = PeContext::new(
                coord,
                dims,
                &mut slot.memory,
                &mut slot.counters,
                &mut slot.router,
                &mut slot.outbox,
                &mut slot.activations,
            );
            match ev.wavelet.kind {
                WaveletKind::Data => slot.program.on_data(&mut ctx, ev.wavelet),
                WaveletKind::Control => slot.program.on_control(&mut ctx, ev.wavelet),
            }
            let cost = slot.counters.cycles() - cycles_before;
            slot.busy_until = start + cost;
        }
        let send_time = self.pes[ev.pe].busy_until;
        self.flush_pe_output(ev.pe, send_time);
    }

    /// Injects a PE's pending sends (through its own router, ramp input) and
    /// local activations.
    fn flush_pe_output(&mut self, pe: usize, at: u64) {
        let outbox: Vec<Wavelet> = self.pes[pe].outbox.drain(..).collect();
        // Successive wavelets leave the ramp one cycle apart.
        for (k, w) in outbox.into_iter().enumerate() {
            let ev = Event {
                time: at + k as u64,
                seq: self.next_seq(),
                pe,
                kind: EventKind::Route(Direction::Ramp),
                wavelet: w,
            };
            self.queue.push(Reverse(ev));
        }
        let acts: Vec<(Color, u32)> = self.pes[pe].activations.drain(..).collect();
        for (color, payload) in acts {
            let ev = Event {
                time: at,
                seq: self.next_seq(),
                pe,
                kind: EventKind::Deliver,
                wavelet: Wavelet::data(color, payload),
            };
            self.queue.push(Reverse(ev));
        }
    }

    /// Host access to a PE's memory (SDK `memcpy`).
    pub fn memory(&self, coord: PeCoord) -> &PeMemory {
        &self.pes[self.dims.linear(coord)].memory
    }

    /// Mutable host access to a PE's memory.
    pub fn memory_mut(&mut self, coord: PeCoord) -> &mut PeMemory {
        let i = self.dims.linear(coord);
        &mut self.pes[i].memory
    }

    /// A PE's instruction counters.
    pub fn counters(&self, coord: PeCoord) -> &OpCounters {
        &self.pes[self.dims.linear(coord)].counters
    }

    /// A PE's router (diagnostics).
    pub fn router(&self, coord: PeCoord) -> &Router {
        &self.pes[self.dims.linear(coord)].router
    }

    /// Zeroes all PE counters (between measurement phases).
    pub fn reset_counters(&mut self) {
        for slot in &mut self.pes {
            slot.counters = OpCounters::default();
        }
    }

    /// Aggregated fabric statistics.
    pub fn stats(&self) -> FabricStats {
        let mut s = FabricStats {
            num_pes: self.pes.len(),
            edge_drops: self.edge_drops,
            flow_stalls: self.parked_total,
            ..FabricStats::default()
        };
        for slot in &self.pes {
            s.total.merge(&slot.counters);
            s.max_pe_cycles = s.max_pe_cycles.max(slot.counters.cycles());
            s.max_pe_compute_cycles = s.max_pe_compute_cycles.max(slot.counters.compute_cycles);
            s.max_pe_comm_cycles = s.max_pe_comm_cycles.max(slot.counters.comm_cycles);
            s.fabric_hops += slot.router.fabric_hops;
            s.ramp_deliveries += slot.router.ramp_deliveries;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{ColorConfig, DirMask, RouterPosition};
    use Direction::{East, Ramp, West};

    const DATA: Color = Color::new(0);
    const START: Color = Color::new(1);

    /// Eastward shift: every PE stores one value; on START it sends the
    /// value east; values arriving from the west are stored.
    struct Shifter {
        value: f32,
        slot: Option<crate::memory::MemRange>,
        received: Option<crate::memory::MemRange>,
    }

    impl Shifter {
        fn new(value: f32) -> Self {
            Self {
                value,
                slot: None,
                received: None,
            }
        }
    }

    impl PeProgram for Shifter {
        fn init(&mut self, ctx: &mut PeContext) {
            let slot = ctx.alloc(1);
            let received = ctx.alloc(1);
            ctx.memory.write_f32(slot.at(0), self.value);
            ctx.memory.write_f32(received.at(0), f32::NAN);
            self.slot = Some(slot);
            self.received = Some(received);
            // DATA: accept from ramp (to send east) and from the west
            // (deliver to ramp). Expressed as two switch positions is the
            // hardware-faithful way, but East-sends and West-receives never
            // collide in this test, so a send position suffices per parity.
            // Here we exercise a *fixed* route on the boundary-safe pattern:
            // rx {Ramp, West} → tx {East-if-sending}. Instead we use two
            // colors... keep it simple: a single fixed config where ramp
            // wavelets go east and west wavelets go to the ramp cannot be
            // expressed in one position, so use two positions + control.
            let sending = RouterPosition::new(DirMask::single(Ramp), DirMask::single(East));
            let receiving = RouterPosition::new(DirMask::single(West), DirMask::single(Ramp));
            // even columns start sending; odd start receiving
            let initial = if ctx.coord.col.is_multiple_of(2) {
                0
            } else {
                1
            };
            ctx.configure_color(DATA, ColorConfig::switchable(sending, receiving, initial));
        }

        fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
            if w.color == START {
                if ctx.coord.col.is_multiple_of(2) {
                    // senders: data then a control to flip ourselves+neighbor
                    ctx.send_f32(DATA, self.value);
                    ctx.send_control(DATA, 0);
                }
            } else if w.color == DATA {
                ctx.recv_store(self.received.unwrap().at(0), w.as_f32());
            }
        }

        fn on_control(&mut self, ctx: &mut PeContext, _w: Wavelet) {
            // our router flipped to sending: send our value east
            ctx.send_f32(DATA, self.value);
        }
    }

    fn build_shifter_fabric(cols: usize) -> Fabric {
        let dims = FabricDims::new(cols, 1);
        let mut f = Fabric::new(dims, FabricConfig::default(), |c| {
            Box::new(Shifter::new(c.col as f32 + 100.0))
        });
        f.load();
        f
    }

    #[test]
    fn two_step_switching_shifts_values_east() {
        let mut f = build_shifter_fabric(4);
        f.activate_all(START, 0);
        let report = f.run().unwrap();
        assert!(report.events > 0);
        // Every PE except column 0 must have received its west neighbor's
        // value; column 0 receives nothing.
        for col in 1..4 {
            let pe = PeCoord::new(col, 0);
            let received = f.memory(pe).read_f32(1); // second allocated word
            assert_eq!(received, (col - 1) as f32 + 100.0, "col {col}");
        }
        let col0 = f.memory(PeCoord::new(0, 0)).read_f32(1);
        assert!(col0.is_nan(), "column 0 has no west neighbor");
    }

    #[test]
    fn routers_return_to_initial_position_after_two_controls() {
        let mut f = build_shifter_fabric(4);
        f.activate_all(START, 0);
        f.run().unwrap();
        // Columns 0..2 forwarded (or received) exactly one control each;
        // the control count through each router is 1 (odd), so positions
        // ended toggled exactly once from initial. Column parity check:
        for col in 0..4 {
            let r = f.router(PeCoord::new(col, 0));
            let pos = r.position_index(DATA).unwrap();
            let initial = if col % 2 == 0 { 0 } else { 1 };
            // Each even column sent one control (toggling itself); each odd
            // column's router was toggled by the control passing through.
            // The odd column's own on_control sent data but no control, so
            // every router toggled exactly once.
            assert_eq!(pos, 1 - initial, "col {col}");
        }
    }

    #[test]
    fn edge_sends_are_dropped_and_counted() {
        // Column 3 (odd) flips to sending on control and sends east into
        // the void; column 2's control also leaves east from column 3? No —
        // column 3's data send at the east edge is the drop.
        let mut f = build_shifter_fabric(4);
        f.activate_all(START, 0);
        let report = f.run().unwrap();
        assert!(report.edge_drops >= 1);
        let stats = f.stats();
        assert_eq!(stats.edge_drops, report.edge_drops);
    }

    #[test]
    fn counters_track_fmov_traffic() {
        let mut f = build_shifter_fabric(2);
        f.activate_all(START, 0);
        f.run().unwrap();
        // PE 1 received exactly one value with FMOV accounting.
        let c = f.counters(PeCoord::new(1, 0));
        assert_eq!(c.fmov_in, 1);
        assert_eq!(c.fabric_loads, 1);
        assert_eq!(c.mem_stores, 1);
        let stats = f.stats();
        assert_eq!(stats.num_pes, 2);
        assert!(stats.ramp_deliveries >= 1);
        assert!(stats.fabric_hops >= 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut f = build_shifter_fabric(6);
            f.activate_all(START, 0);
            let r = f.run().unwrap();
            let mem: Vec<f32> = (0..6)
                .map(|c| f.memory(PeCoord::new(c, 0)).read_f32(1))
                .collect();
            (r.events, r.final_time, format!("{mem:?}"))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_counters_zeroes_everything() {
        let mut f = build_shifter_fabric(2);
        f.activate_all(START, 0);
        f.run().unwrap();
        f.reset_counters();
        let s = f.stats();
        assert_eq!(s.total.fmov_in, 0);
        assert_eq!(s.total.cycles(), 0);
    }

    #[test]
    fn event_budget_guards_runaway_programs() {
        /// Sends to itself forever via local activation.
        struct Loopy;
        impl PeProgram for Loopy {
            fn init(&mut self, _ctx: &mut PeContext) {}
            fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
                ctx.activate(w.color, 0);
            }
        }
        let mut f = Fabric::new(
            FabricDims::new(1, 1),
            FabricConfig {
                max_events: 100,
                ..FabricConfig::default()
            },
            |_| Box::new(Loopy),
        );
        f.load();
        f.activate_all(DATA, 0);
        let err = f.run().unwrap_err();
        assert!(matches!(err, FabricError::EventBudgetExceeded { .. }));
        assert!(format!("{err}").contains("budget"));
    }

    #[test]
    fn route_error_is_reported_with_pe_coordinates() {
        /// Sends on an unconfigured color.
        struct Bad;
        impl PeProgram for Bad {
            fn init(&mut self, _ctx: &mut PeContext) {}
            fn on_data(&mut self, ctx: &mut PeContext, _w: Wavelet) {
                ctx.send_f32(Color::new(17), 1.0);
            }
        }
        let mut f = Fabric::new(FabricDims::new(2, 2), FabricConfig::default(), |_| {
            Box::new(Bad)
        });
        f.load();
        f.activate(PeCoord::new(1, 1), DATA, 0);
        let err = f.run().unwrap_err();
        match err {
            FabricError::Route { pe, .. } => assert_eq!(pe, PeCoord::new(1, 1)),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(format!("{err}").contains("(1, 1)"));
    }

    #[test]
    fn flow_control_parks_and_releases_in_fifo_order() {
        use crate::route::{ColorConfig, RouterPosition};
        const C: Color = Color::new(7);
        /// Left PE sends 3 data + 1 control east immediately; right PE's
        /// router starts in Sending position (would reject west arrivals),
        /// and only its own control — sent *later* — toggles it open.
        struct Sender;
        impl PeProgram for Sender {
            fn init(&mut self, ctx: &mut PeContext) {
                let sending = RouterPosition::new(DirMask::single(Ramp), DirMask::single(East));
                let receiving = RouterPosition::new(DirMask::single(West), DirMask::single(Ramp));
                ctx.configure_color(C, ColorConfig::switchable(sending, receiving, 0));
            }
            fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
                if w.color == DATA {
                    // the launch: send data then the hand-over control
                    for v in [1.0_f32, 2.0, 3.0] {
                        ctx.send_f32(C, v);
                    }
                    ctx.send_control(C, 0);
                } else {
                    // record arrivals in order
                    let slot = ctx.memory.read_u32(0) as usize;
                    ctx.memory.write_f32(1 + slot, w.as_f32());
                    ctx.memory.write_u32(0, slot as u32 + 1);
                }
            }
        }
        struct Receiver;
        impl PeProgram for Receiver {
            fn init(&mut self, ctx: &mut PeContext) {
                let sending = RouterPosition::new(DirMask::single(Ramp), DirMask::single(East));
                let receiving = RouterPosition::new(DirMask::single(West), DirMask::single(Ramp));
                // starts in Sending: incoming data must be parked
                ctx.configure_color(C, ColorConfig::switchable(sending, receiving, 0));
                let _ = ctx.alloc(8);
            }
            fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
                if w.color == DATA {
                    // burn cycles first (a slow PE), so the neighbor's data
                    // reaches our still-Sending router and gets parked
                    let burn = crate::dsd::Dsd::contiguous(4, 4);
                    for _ in 0..20 {
                        ctx.fmuls(
                            burn,
                            crate::dsd::Operand::Mem(burn),
                            crate::dsd::Operand::Scalar(1.0),
                        );
                    }
                    // then open the channel: send into the void, and let the
                    // control toggle us to Receiving
                    ctx.send_f32(C, 9.0);
                    ctx.send_control(C, 0);
                } else {
                    let slot = ctx.memory.read_u32(0) as usize;
                    ctx.memory.write_f32(1 + slot, w.as_f32());
                    ctx.memory.write_u32(0, slot as u32 + 1);
                }
            }
        }
        let mut f = Fabric::new(FabricDims::new(2, 1), FabricConfig::default(), |c| {
            if c.col == 0 {
                Box::new(Sender) as Box<dyn PeProgram>
            } else {
                Box::new(Receiver)
            }
        });
        f.load();
        // left fires immediately; right is activated only "later" (larger
        // seq) so the left data reaches a Sending-position router first.
        f.activate(PeCoord::new(0, 0), DATA, 0);
        f.activate(PeCoord::new(1, 0), DATA, 0);
        f.run().unwrap();
        let stats = f.stats();
        assert!(stats.flow_stalls > 0, "data must have been backpressured");
        // all three values arrive, in their original order
        let mem = f.memory(PeCoord::new(1, 0));
        assert_eq!(mem.read_u32(0), 3);
        assert_eq!(mem.read_f32(1), 1.0);
        assert_eq!(mem.read_f32(2), 2.0);
        assert_eq!(mem.read_f32(3), 3.0);
    }

    #[test]
    fn quiescent_fabric_with_stalled_wavelets_is_a_deadlock_error() {
        use crate::route::{ColorConfig, RouterPosition};
        const C: Color = Color::new(5);
        /// Sends east on a color whose receiving side never opens.
        struct Stuck;
        impl PeProgram for Stuck {
            fn init(&mut self, ctx: &mut PeContext) {
                let sending = RouterPosition::new(DirMask::single(Ramp), DirMask::single(East));
                let receiving = RouterPosition::new(DirMask::single(West), DirMask::single(Ramp));
                // every PE stays in Sending: the east side never opens
                ctx.configure_color(C, ColorConfig::switchable(sending, receiving, 0));
            }
            fn on_data(&mut self, ctx: &mut PeContext, w: Wavelet) {
                if w.color == DATA && ctx.coord.col == 0 {
                    ctx.send_f32(C, 1.0); // neighbor stays in Sending forever
                }
                let _ = w;
            }
        }
        let mut f = Fabric::new(FabricDims::new(2, 1), FabricConfig::default(), |_| {
            Box::new(Stuck)
        });
        f.load();
        f.activate(PeCoord::new(0, 0), DATA, 0);
        let err = f.run().unwrap_err();
        match &err {
            FabricError::Deadlock { pe, stalled, .. } => {
                assert_eq!(*pe, PeCoord::new(1, 0));
                assert_eq!(*stalled, 1);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert!(format!("{err}").contains("deadlock"));
    }

    #[test]
    fn handler_cost_advances_simulated_time() {
        /// Burns vector cycles on activation.
        struct Burner;
        impl PeProgram for Burner {
            fn init(&mut self, ctx: &mut PeContext) {
                let a = ctx.alloc(64);
                let _ = a;
            }
            fn on_data(&mut self, ctx: &mut PeContext, _w: Wavelet) {
                let d = crate::dsd::Dsd::contiguous(0, 64);
                ctx.fmuls(
                    d,
                    crate::dsd::Operand::Mem(d),
                    crate::dsd::Operand::Scalar(1.0),
                );
            }
        }
        let mut f = Fabric::new(FabricDims::new(1, 1), FabricConfig::default(), |_| {
            Box::new(Burner)
        });
        f.load();
        f.activate_all(DATA, 0);
        let r = f.run().unwrap();
        assert!(r.events >= 1);
        let c = f.counters(PeCoord::new(0, 0));
        assert_eq!(c.fmul, 64);
        assert_eq!(c.compute_cycles, 64);
    }
}
