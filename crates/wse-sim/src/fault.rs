//! Deterministic fault injection for the fabric simulator.
//!
//! A [`FaultPlan`] is a seeded, declarative schedule of faults to inject at
//! exact fabric times: link failure/flap on a specific `(pe, direction)`
//! edge, PE halt or slow-down, single-wavelet payload corruption, and
//! spurious router-configuration switches. Because the fabric processes
//! each PE's events in an engine-invariant order (see `fabric`), injecting
//! on `(event time, static per-PE schedule)` is automatically bit-identical
//! between `Execution::Sequential` and `Execution::Sharded`.
//!
//! Faults are *injected* by the fabric and *detected* by two mechanisms:
//! per-wavelet checksum verification at ramp delivery (see
//! [`crate::wavelet::Wavelet::checksum_ok`]) and a host-side progress
//! watchdog (driver crate). Every injection and detection is recorded as a
//! [`FaultEvent`]; non-benign events surface as the typed
//! `FabricError::Fault` with `Budget > Fault > Route > Deadlock` precedence.

use serde::{Deserialize, Serialize};

use crate::geometry::{Direction, FabricDims, PeCoord, CARDINALS};
use crate::wavelet::{Color, MAX_COLORS};

/// What kind of fault to inject at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The outgoing link in `dir` drops every wavelet routed onto it during
    /// `[at, until)` (a *flap* when `until` is finite and later traffic
    /// resumes; a hard failure when `until == u64::MAX`).
    LinkDown {
        /// The failed outgoing link direction (must be a cardinal).
        dir: Direction,
        /// First fabric time at which the link works again.
        until: u64,
    },
    /// The PE stops executing tasks: every delivery at time ≥ `at` is
    /// swallowed without running the program handler.
    PeHalt,
    /// Task costs on this PE are multiplied by `factor` for deliveries
    /// starting in `[at, until)`. This shifts the PE's send times and hence
    /// the arrival order at neighbors, so it is treated as a detected
    /// (non-benign) fault: the floating-point accumulation order — and the
    /// residual bits — can legitimately differ from the fault-free run.
    PeSlow {
        /// Cost multiplier (≥ 2 to have an effect).
        factor: u32,
        /// First fabric time at which costs return to normal.
        until: u64,
    },
    /// The first wavelet routed through this PE at time ≥ `at` has its
    /// payload XORed with `xor` *without* updating the wavelet checksum.
    /// Detected at the receiving ramp when checksum verification is on.
    CorruptPayload {
        /// Nonzero payload bit-flip mask.
        xor: u32,
    },
    /// The router's position for `color` is force-toggled at the first
    /// route event at time ≥ `at` — a spurious configuration switch. Benign
    /// (no observable effect) when the color is unconfigured or not
    /// switchable; non-benign otherwise.
    RouterFlip {
        /// The color whose router position is flipped.
        color: Color,
    },
}

impl FaultKind {
    /// The [`FaultClass`] this kind reports when *injected*.
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::LinkDown { .. } => FaultClass::LinkDown,
            FaultKind::PeHalt => FaultClass::PeHalt,
            FaultKind::PeSlow { .. } => FaultClass::PeSlow,
            FaultKind::CorruptPayload { .. } => FaultClass::CorruptInjected,
            FaultKind::RouterFlip { .. } => FaultClass::RouterFlip,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// The PE at which the fault is injected.
    pub pe: PeCoord,
    /// Fabric time (cycles) at which the fault arms. Times are absolute
    /// fabric time, which keeps advancing across `apply` calls.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
    /// Whether the fault survives a fabric rebuild (`Retry` recovery).
    /// Transient faults (`persistent == false`) only fire on attempt 0.
    pub persistent: bool,
}

/// Stable `u8` codes for fault classes, used in trace events (`a` field of
/// `TraceEventKind::Fault`) and in `FabricError::Fault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum FaultClass {
    /// A wavelet was dropped on a failed link.
    LinkDown = 0,
    /// A delivery was swallowed by a halted PE.
    PeHalt = 1,
    /// A task ran under a slow-down multiplier.
    PeSlow = 2,
    /// A payload was corrupted in flight (injection site; benign — the
    /// corresponding detection is `CorruptDetected`).
    CorruptInjected = 3,
    /// A stale checksum was caught at a receiving ramp.
    CorruptDetected = 4,
    /// A router position was spuriously toggled.
    RouterFlip = 5,
    /// The host progress watchdog found a PE that made no progress.
    WatchdogStall = 6,
}

impl FaultClass {
    /// The stable `u8` code.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`FaultClass::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Self::LinkDown,
            1 => Self::PeHalt,
            2 => Self::PeSlow,
            3 => Self::CorruptInjected,
            4 => Self::CorruptDetected,
            5 => Self::RouterFlip,
            6 => Self::WatchdogStall,
            _ => return None,
        })
    }

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::LinkDown => "link_down",
            Self::PeHalt => "pe_halt",
            Self::PeSlow => "pe_slow",
            Self::CorruptInjected => "corrupt_injected",
            Self::CorruptDetected => "corrupt_detected",
            Self::RouterFlip => "router_flip",
            Self::WatchdogStall => "watchdog_stall",
        }
    }
}

/// One injection or detection, recorded in fabric-deterministic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Fabric time of the injection/detection.
    pub time: u64,
    /// The PE at which it happened (for detections, the detecting PE).
    pub pe: PeCoord,
    /// What happened.
    pub class: FaultClass,
    /// Class-dependent detail: link code for `LinkDown`, XOR mask for
    /// corruption, new router position for `RouterFlip`, cost factor for
    /// `PeSlow`, observed progress for `WatchdogStall`.
    pub detail: u32,
    /// Benign events (ineffective flips, corruption injections whose
    /// detection fires downstream) never surface as `FabricError::Fault`.
    pub benign: bool,
}

/// A declarative, seeded schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, in no particular order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults; checksum verification stays off).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a fault and returns `self` (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The plan as seen by retry attempt `attempt`: attempt 0 sees every
    /// fault, later attempts only the persistent ones.
    pub fn for_attempt(&self, attempt: u32) -> Self {
        if attempt == 0 {
            return self.clone();
        }
        Self {
            faults: self
                .faults
                .iter()
                .copied()
                .filter(|f| f.persistent)
                .collect(),
        }
    }

    /// Validates the plan against a fabric: every site must be on-fabric,
    /// link faults must name a cardinal direction, and corruption masks
    /// must be nonzero. Returns a description of the first problem.
    pub fn validate(&self, dims: FabricDims) -> Result<(), String> {
        for (i, f) in self.faults.iter().enumerate() {
            if f.pe.col >= dims.cols || f.pe.row >= dims.rows {
                return Err(format!(
                    "fault {i}: pe ({}, {}) outside {}x{} fabric",
                    f.pe.col, f.pe.row, dims.cols, dims.rows
                ));
            }
            match f.kind {
                FaultKind::LinkDown { dir, until } => {
                    if dir == Direction::Ramp {
                        return Err(format!("fault {i}: LinkDown on the ramp is not a link"));
                    }
                    if until <= f.at {
                        return Err(format!("fault {i}: LinkDown until must be > at"));
                    }
                }
                FaultKind::PeSlow { factor, until } => {
                    if factor < 2 {
                        return Err(format!("fault {i}: PeSlow factor must be >= 2"));
                    }
                    if until <= f.at {
                        return Err(format!("fault {i}: PeSlow until must be > at"));
                    }
                }
                FaultKind::CorruptPayload { xor } => {
                    if xor == 0 {
                        return Err(format!("fault {i}: CorruptPayload xor must be nonzero"));
                    }
                }
                FaultKind::PeHalt | FaultKind::RouterFlip { .. } => {}
            }
        }
        Ok(())
    }

    /// A seeded random plan of `n` faults over `dims` with injection times
    /// in `[1, horizon]`. Same seed → identical plan, so chaos runs are
    /// reproducible. About half of the faults are transient.
    pub fn randomized(seed: u64, dims: FabricDims, horizon: u64, n: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let horizon = horizon.max(2);
        let mut faults = Vec::with_capacity(n);
        for _ in 0..n {
            let pe = PeCoord::new(
                rng.below(dims.cols as u64) as usize,
                rng.below(dims.rows as u64) as usize,
            );
            let at = 1 + rng.below(horizon);
            let kind = match rng.below(5) {
                0 => FaultKind::LinkDown {
                    dir: CARDINALS[rng.below(4) as usize],
                    until: at + 1 + rng.below(horizon),
                },
                1 => FaultKind::PeHalt,
                2 => FaultKind::PeSlow {
                    factor: 2 + rng.below(6) as u32,
                    until: at + 1 + rng.below(horizon),
                },
                3 => FaultKind::CorruptPayload {
                    xor: (rng.next() as u32) | 1,
                },
                _ => FaultKind::RouterFlip {
                    color: Color::new(rng.below(MAX_COLORS as u64) as u8),
                },
            };
            faults.push(Fault {
                pe,
                at,
                kind,
                persistent: rng.below(2) == 0,
            });
        }
        Self { faults }
    }
}

/// SplitMix64: tiny, dependency-free, high-quality 64-bit generator used to
/// derive reproducible fault schedules from a seed.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be ≥ 1.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound >= 1);
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_codes_round_trip() {
        for code in 0..=6u8 {
            let c = FaultClass::from_code(code).expect("valid code");
            assert_eq!(c.code(), code);
            assert!(!c.name().is_empty());
        }
        assert_eq!(FaultClass::from_code(7), None);
    }

    #[test]
    fn randomized_is_deterministic_and_valid() {
        let dims = FabricDims::new(6, 5);
        let a = FaultPlan::randomized(42, dims, 5_000, 32);
        let b = FaultPlan::randomized(42, dims, 5_000, 32);
        assert_eq!(a, b, "same seed must give the same plan");
        assert_eq!(a.faults.len(), 32);
        a.validate(dims).expect("randomized plans validate");
        let c = FaultPlan::randomized(43, dims, 5_000, 32);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn for_attempt_filters_transient_faults() {
        let f = |persistent| Fault {
            pe: PeCoord::new(0, 0),
            at: 10,
            kind: FaultKind::PeHalt,
            persistent,
        };
        let plan = FaultPlan::new().with(f(true)).with(f(false));
        assert_eq!(plan.for_attempt(0).faults.len(), 2);
        assert_eq!(plan.for_attempt(1).faults.len(), 1);
        assert!(plan.for_attempt(1).faults[0].persistent);
    }

    #[test]
    fn validate_rejects_bad_sites() {
        let dims = FabricDims::new(3, 3);
        let base = Fault {
            pe: PeCoord::new(9, 0),
            at: 1,
            kind: FaultKind::PeHalt,
            persistent: true,
        };
        assert!(FaultPlan::new().with(base).validate(dims).is_err());
        let ramp = Fault {
            pe: PeCoord::new(0, 0),
            at: 1,
            kind: FaultKind::LinkDown {
                dir: Direction::Ramp,
                until: 9,
            },
            persistent: true,
        };
        assert!(FaultPlan::new().with(ramp).validate(dims).is_err());
        let zero_xor = Fault {
            pe: PeCoord::new(0, 0),
            at: 1,
            kind: FaultKind::CorruptPayload { xor: 0 },
            persistent: true,
        };
        assert!(FaultPlan::new().with(zero_xor).validate(dims).is_err());
    }
}
