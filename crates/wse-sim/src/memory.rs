//! PE-private local memory.
//!
//! Each PE owns a small scratchpad ("single-level memory"): 48 kB on WSE-2.
//! "The cells in the same vertical column share the private memory of a PE,
//! therefore reducing the memory consumption on each PE is crucial to fit
//! the largest possible problem" (paper §5.3). The allocator here is a bump
//! allocator over 32-bit words with the hardware capacity enforced, so the
//! buffer-reuse optimization of §5.3.1 is a real, testable constraint.

use serde::{Deserialize, Serialize};

/// WSE-2 per-PE memory: 48 kB.
pub const WSE2_PE_MEMORY_BYTES: usize = 48 * 1024;

/// A contiguous allocation in PE memory, in 32-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRange {
    /// First word.
    pub offset: usize,
    /// Length in words.
    pub len: usize,
}

impl MemRange {
    /// The `i`-th word's absolute address.
    #[inline]
    pub fn at(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        self.offset + i
    }

    /// Splits off the first `n` words.
    pub fn split_at(&self, n: usize) -> (MemRange, MemRange) {
        assert!(n <= self.len);
        (
            MemRange {
                offset: self.offset,
                len: n,
            },
            MemRange {
                offset: self.offset + n,
                len: self.len - n,
            },
        )
    }
}

/// A PE's private memory: a word-addressed scratchpad with a bump allocator
/// and a capacity limit.
///
/// The backing store is *lazy*: construction allocates nothing, and the
/// word vector grows (zero-filled) only as high addresses are written.
/// Reads beyond the written prefix but within capacity return 0, exactly
/// as if the full arena had been zero-initialized eagerly. This is what
/// lets a paper-scale fabric (~738k PEs × 48 kB capacity) fit in host
/// memory: resident bytes track words actually touched, not capacity.
#[derive(Debug, Clone)]
pub struct PeMemory {
    words: Vec<u32>,
    next_free: usize,
    capacity_words: usize,
}

/// Allocation failure: the program exceeds the PE's scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Words requested.
    pub requested: usize,
    /// Words still available.
    pub available: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PE memory exhausted: requested {} words, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

impl PeMemory {
    /// Memory with the WSE-2 capacity (48 kB = 12288 words).
    pub fn wse2() -> Self {
        Self::with_capacity_bytes(WSE2_PE_MEMORY_BYTES)
    }

    /// Memory with an explicit byte capacity (must be a multiple of 4).
    /// No backing store is allocated until the first write.
    pub fn with_capacity_bytes(bytes: usize) -> Self {
        assert!(bytes.is_multiple_of(4), "capacity must be word-aligned");
        let capacity_words = bytes / 4;
        Self {
            words: Vec::new(),
            next_free: 0,
            capacity_words,
        }
    }

    /// Allocates `len` words, zero-initialized.
    pub fn alloc(&mut self, len: usize) -> Result<MemRange, OutOfMemory> {
        if self.next_free + len > self.capacity_words {
            return Err(OutOfMemory {
                requested: len,
                available: self.capacity_words - self.next_free,
            });
        }
        let r = MemRange {
            offset: self.next_free,
            len,
        };
        self.next_free += len;
        Ok(r)
    }

    /// Words currently allocated (the high-water mark — bump allocators
    /// never free).
    #[inline]
    pub fn allocated_words(&self) -> usize {
        self.next_free
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn allocated_bytes(&self) -> usize {
        self.next_free * 4
    }

    /// Total capacity in words.
    #[inline]
    pub fn capacity_words(&self) -> usize {
        self.capacity_words
    }

    /// The canonical word image for a fabric checkpoint: the written
    /// prefix with trailing zeros trimmed. Two memories with the same
    /// logical content produce bit-identical images regardless of how
    /// their lazy backing stores grew — which makes checkpoints
    /// representation-portable by construction.
    pub fn snapshot_words(&self) -> Vec<u32> {
        let end = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        self.words[..end].to_vec()
    }

    /// Overwrites the word store and allocation cursor from a checkpoint.
    /// `words` may be any length up to this arena's capacity (canonical
    /// images are trailing-zero-trimmed; older capacity-sized images
    /// restore identically) — words beyond its length read as zero.
    /// `allocated` must not exceed capacity: a violation means the
    /// snapshot was taken on a fabric with a larger memory configuration.
    pub fn restore_words(&mut self, words: &[u32], allocated: usize) -> Result<(), String> {
        if words.len() > self.capacity_words {
            return Err(format!(
                "memory capacity mismatch: snapshot has {} words, arena holds {}",
                words.len(),
                self.capacity_words
            ));
        }
        if allocated > self.capacity_words {
            return Err(format!(
                "allocation cursor {allocated} exceeds capacity {}",
                self.capacity_words
            ));
        }
        self.words.clear();
        self.words.extend_from_slice(words);
        self.next_free = allocated;
        Ok(())
    }

    /// Raw word read (host access / DSD engine — no traffic accounting
    /// here; the DSD layer counts). Reads past the lazily-grown prefix
    /// return 0, like the zero-initialized arena they stand in for.
    #[inline]
    pub fn read_u32(&self, addr: usize) -> u32 {
        if addr < self.words.len() {
            self.words[addr]
        } else {
            assert!(
                addr < self.capacity_words,
                "read at {addr} beyond capacity {}",
                self.capacity_words
            );
            0
        }
    }

    /// Raw word write, growing the lazy backing store as needed.
    #[inline]
    pub fn write_u32(&mut self, addr: usize, value: u32) {
        if addr >= self.words.len() {
            assert!(
                addr < self.capacity_words,
                "write at {addr} beyond capacity {}",
                self.capacity_words
            );
            self.words.resize(addr + 1, 0);
        }
        self.words[addr] = value;
    }

    /// `f32` view of a word.
    #[inline]
    pub fn read_f32(&self, addr: usize) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// `f32` store.
    #[inline]
    pub fn write_f32(&mut self, addr: usize, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Host-side bulk copy into PE memory (the SDK's `memcpy` in-direction).
    pub fn host_write_f32(&mut self, range: MemRange, data: &[f32]) {
        assert!(data.len() <= range.len, "host write exceeds range");
        for (i, &v) in data.iter().enumerate() {
            self.write_f32(range.at(i), v);
        }
    }

    /// Host-side bulk copy out of PE memory (the SDK's `memcpy`
    /// out-direction).
    pub fn host_read_f32(&self, range: MemRange) -> Vec<f32> {
        (0..range.len).map(|i| self.read_f32(range.at(i))).collect()
    }

    /// Allocation-free variant of [`PeMemory::host_read_f32`]: reads the
    /// range into a caller-owned buffer. The bulk-collect path over a
    /// paper-scale fabric calls this once per PE; per-PE `Vec` churn there
    /// is measurable.
    pub fn host_read_f32_into(&self, range: MemRange, out: &mut [f32]) {
        assert!(out.len() >= range.len, "host read exceeds buffer");
        for (i, slot) in out.iter_mut().take(range.len).enumerate() {
            *slot = self.read_f32(range.at(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wse2_capacity_is_48kb() {
        let m = PeMemory::wse2();
        assert_eq!(m.capacity_words(), 12_288);
        assert_eq!(m.allocated_words(), 0);
    }

    #[test]
    fn alloc_bumps_and_is_word_exact() {
        let mut m = PeMemory::with_capacity_bytes(64);
        let a = m.alloc(4).unwrap();
        let b = m.alloc(8).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 4);
        assert_eq!(m.allocated_words(), 12);
        assert_eq!(m.allocated_bytes(), 48);
        let c = m.alloc(4).unwrap();
        assert_eq!(c.offset, 12);
        // now full
        let err = m.alloc(1).unwrap_err();
        assert_eq!(err.available, 0);
        assert!(format!("{err}").contains("exhausted"));
    }

    #[test]
    fn overallocation_reports_availability() {
        let mut m = PeMemory::with_capacity_bytes(40); // 10 words
        let _ = m.alloc(6).unwrap();
        let err = m.alloc(5).unwrap_err();
        assert_eq!(err.requested, 5);
        assert_eq!(err.available, 4);
    }

    #[test]
    fn f32_storage_is_bit_exact() {
        let mut m = PeMemory::with_capacity_bytes(16);
        let r = m.alloc(4).unwrap();
        m.write_f32(r.at(0), -1.5);
        m.write_f32(r.at(1), f32::from_bits(0x7FC0_0001));
        assert_eq!(m.read_f32(r.at(0)), -1.5);
        assert_eq!(m.read_f32(r.at(1)).to_bits(), 0x7FC0_0001);
        m.write_u32(r.at(2), 0xDEAD_BEEF);
        assert_eq!(m.read_u32(r.at(2)), 0xDEAD_BEEF);
    }

    #[test]
    fn host_memcpy_roundtrip() {
        let mut m = PeMemory::with_capacity_bytes(64);
        let r = m.alloc(8).unwrap();
        let data: Vec<f32> = (0..8).map(|i| i as f32 * 0.25).collect();
        m.host_write_f32(r, &data);
        assert_eq!(m.host_read_f32(r), data);
    }

    #[test]
    fn range_split() {
        let r = MemRange { offset: 10, len: 6 };
        let (a, b) = r.split_at(2);
        assert_eq!((a.offset, a.len), (10, 2));
        assert_eq!((b.offset, b.len), (12, 4));
        assert_eq!(b.at(1), 13);
    }

    #[test]
    #[should_panic]
    fn unaligned_capacity_rejected() {
        let _ = PeMemory::with_capacity_bytes(42);
    }

    #[test]
    fn lazy_store_reads_zero_and_grows_on_write() {
        let mut m = PeMemory::with_capacity_bytes(64);
        // untouched words read as zero without materializing anything
        assert_eq!(m.read_u32(15), 0);
        assert_eq!(m.read_f32(3), 0.0);
        m.write_u32(10, 7);
        assert_eq!(m.read_u32(10), 7);
        assert_eq!(m.read_u32(11), 0); // still past the written prefix
    }

    #[test]
    #[should_panic]
    fn lazy_store_still_rejects_out_of_capacity_reads() {
        let m = PeMemory::with_capacity_bytes(64); // 16 words
        let _ = m.read_u32(16);
    }

    #[test]
    fn snapshot_words_are_canonical_across_growth_histories() {
        // same logical content, different growth history
        let mut a = PeMemory::with_capacity_bytes(64);
        let mut b = PeMemory::with_capacity_bytes(64);
        a.write_u32(2, 9);
        a.write_u32(12, 5);
        a.write_u32(12, 0); // grown to 13 words, then logically zeroed
        b.write_u32(2, 9);
        assert_eq!(a.snapshot_words(), b.snapshot_words());
        assert_eq!(a.snapshot_words(), vec![0, 0, 9]);
    }

    #[test]
    fn restore_accepts_short_and_capacity_sized_images() {
        let mut m = PeMemory::with_capacity_bytes(64); // 16 words
        m.restore_words(&[1, 2, 3], 8).unwrap();
        assert_eq!(m.read_u32(1), 2);
        assert_eq!(m.read_u32(9), 0);
        assert_eq!(m.allocated_words(), 8);
        // a capacity-sized (old-style) image restores identically
        let mut full = vec![0u32; 16];
        full[..3].copy_from_slice(&[1, 2, 3]);
        let mut m2 = PeMemory::with_capacity_bytes(64);
        m2.restore_words(&full, 8).unwrap();
        assert_eq!(m.snapshot_words(), m2.snapshot_words());
        // over-capacity images are rejected
        assert!(m2.restore_words(&[0u32; 17], 0).is_err());
        assert!(m2.restore_words(&[1], 17).is_err());
    }

    #[test]
    fn host_read_into_matches_alloc_read() {
        let mut m = PeMemory::with_capacity_bytes(64);
        let r = m.alloc(6).unwrap();
        m.host_write_f32(r, &[1.0, 2.0, 3.0]);
        let mut out = vec![0.0_f32; 6];
        m.host_read_f32_into(r, &mut out);
        assert_eq!(out, m.host_read_f32(r));
    }
}
