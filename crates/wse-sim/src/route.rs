//! Per-color router configuration with runtime-switchable positions.
//!
//! A WSE router routes a wavelet by its color: each color has a
//! configuration — a set of accepted input links (`rx`) and a set of output
//! links (`tx`). A wavelet arriving on an `rx` link is forwarded to **all**
//! `tx` links (local broadcast). Up to two *switch positions* can be defined
//! per color; a control wavelet flips the active position after being
//! forwarded, which is how the paper's Fig. 6 alternates a PE between
//! *Sending* (config 0: `ramp → fabric`) and *Receiving* (config 1:
//! `fabric → ramp`).

use crate::geometry::Direction;
use crate::wavelet::{Color, MAX_COLORS};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// A set of router links, packed as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DirMask(u8);

impl DirMask {
    /// The empty set.
    pub const EMPTY: DirMask = DirMask(0);

    /// A set from a list of directions.
    pub const fn of(dirs: &[Direction]) -> Self {
        let mut bits = 0u8;
        let mut i = 0;
        while i < dirs.len() {
            bits |= 1 << (dirs[i] as u8);
            i += 1;
        }
        DirMask(bits)
    }

    /// Single-direction set.
    pub const fn single(dir: Direction) -> Self {
        DirMask(1 << (dir as u8))
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, dir: Direction) -> bool {
        self.0 & (1 << (dir as u8)) != 0
    }

    /// Union.
    #[inline]
    pub fn with(self, dir: Direction) -> Self {
        DirMask(self.0 | (1 << (dir as u8)))
    }

    /// Number of members.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over member directions in N, E, S, W, Ramp order.
    pub fn iter(self) -> impl Iterator<Item = Direction> {
        use Direction::*;
        [North, East, South, West, Ramp]
            .into_iter()
            .filter(move |d| self.contains(*d))
    }
}

/// One switch position of a color's route: which links it accepts wavelets
/// from and which links it forwards them to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouterPosition {
    /// Accepted input links.
    pub rx: DirMask,
    /// Output links (wavelets are forwarded to **all** of them).
    pub tx: DirMask,
}

impl RouterPosition {
    /// Builds a position.
    pub const fn new(rx: DirMask, tx: DirMask) -> Self {
        Self { rx, tx }
    }
}

/// A color's routing configuration: one or two switch positions plus the
/// currently active one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColorConfig {
    positions: [RouterPosition; 2],
    num_positions: u8,
    current: u8,
}

impl ColorConfig {
    /// A single-position (static) route.
    pub const fn fixed(pos: RouterPosition) -> Self {
        Self {
            positions: [pos, pos],
            num_positions: 1,
            current: 0,
        }
    }

    /// A two-position switchable route, starting in `initial` (0 or 1).
    pub fn switchable(pos0: RouterPosition, pos1: RouterPosition, initial: usize) -> Self {
        assert!(initial < 2);
        Self {
            positions: [pos0, pos1],
            num_positions: 2,
            current: initial as u8,
        }
    }

    /// The active position.
    #[inline]
    pub fn active(&self) -> RouterPosition {
        self.positions[self.current as usize]
    }

    /// The active position's index (0 or 1).
    #[inline]
    pub fn current_index(&self) -> usize {
        self.current as usize
    }

    /// Toggles between positions (no-op for a fixed route).
    #[inline]
    pub fn toggle(&mut self) {
        if self.num_positions == 2 {
            self.current ^= 1;
        }
    }

    /// True for single-position routes (built with [`ColorConfig::fixed`]).
    #[inline]
    pub fn is_fixed(&self) -> bool {
        self.num_positions == 1
    }
}

/// What a router does with one incoming wavelet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteOutcome {
    /// Links the wavelet is forwarded to (may include `Ramp`), as a mask —
    /// no allocation on the routing hot path.
    pub outputs: DirMask,
    /// Whether a switch toggle occurred (control wavelet).
    pub toggled: bool,
    /// The active switch-position index after any toggle.
    pub position: usize,
    /// Whether the color's route is single-position (can never switch).
    /// Fixed single-cardinal-output routes are the passive-forwarding hops
    /// the fabric's static-route fast-forwarding elides.
    pub fixed: bool,
}

impl RouteOutcome {
    /// The traffic this outcome implies, as `(fabric_hops,
    /// ramp_deliveries)` increments: a ramp output is a delivery, every
    /// other output link is a fabric hop. Routing itself is pure; the
    /// fabric applies these to its per-PE counter arena.
    #[inline]
    pub fn hop_counts(&self) -> (u64, u64) {
        if self.outputs.contains(Direction::Ramp) {
            ((self.outputs.len() - 1) as u64, 1)
        } else {
            (self.outputs.len() as u64, 0)
        }
    }
}

/// The *static* half of a router: the 24 per-color configurations as
/// installed by the program, with each color's `current` field holding its
/// initial switch position. SPMD programs install only a handful of
/// distinct tables across the whole fabric (interior / edge / corner /
/// parity variants), so the fabric interns equal tables into shared
/// `Arc<RouteTable>`s — O(classes) route storage instead of O(PEs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouteTable {
    configs: [Option<ColorConfig>; MAX_COLORS],
}

impl RouteTable {
    /// A table with no colors configured.
    pub fn empty() -> Self {
        Self {
            configs: [None; MAX_COLORS],
        }
    }

    /// The installed configuration of a color (with `current` at its
    /// *initial* position — the live position is the router's dynamic
    /// state).
    #[inline]
    pub fn config(&self, color: Color) -> Option<&ColorConfig> {
        self.configs[color.index()].as_ref()
    }

    /// True if no color is configured.
    pub fn is_empty(&self) -> bool {
        self.configs.iter().all(|c| c.is_none())
    }
}

/// The one empty table every fresh router shares — building a paper-scale
/// fabric must not allocate 738k identical empty tables before `load`
/// interns the real ones.
fn empty_table() -> Arc<RouteTable> {
    static EMPTY: OnceLock<Arc<RouteTable>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(RouteTable::empty())).clone()
}

/// A per-PE router, split into an interned static [`RouteTable`] and two
/// words of dynamic state: the active switch position of each color (one
/// bit per color) and the configuration version.
#[derive(Debug, Clone)]
pub struct Router {
    table: Arc<RouteTable>,
    /// Bit `c` = the active switch position of color `c`.
    current_bits: u32,
    /// Bumped on every [`Router::configure`]; lets cached route chains
    /// detect runtime reconfiguration (load-time configuration happens
    /// before any chain is built, so steady-state versions never move).
    version: u32,
}

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

impl Router {
    /// A router with no colors configured.
    pub fn new() -> Self {
        Self {
            table: empty_table(),
            current_bits: 0,
            version: 0,
        }
    }

    /// Installs a color configuration (program-load time on real hardware).
    /// Clones the static table if it is shared (copy-on-write), so runtime
    /// reconfiguration quietly un-interns the PE from its class.
    pub fn configure(&mut self, color: Color, config: ColorConfig) {
        Arc::make_mut(&mut self.table).configs[color.index()] = Some(config);
        self.set_current(color.index(), config.current_index() as u8);
        self.version = self.version.wrapping_add(1);
    }

    #[inline]
    fn current(&self, idx: usize) -> usize {
        ((self.current_bits >> idx) & 1) as usize
    }

    #[inline]
    fn set_current(&mut self, idx: usize, pos: u8) {
        self.current_bits = (self.current_bits & !(1 << idx)) | ((pos as u32 & 1) << idx);
    }

    /// Configuration version: bumped on every [`Router::configure`] call.
    /// Cached forwarding chains compare this against the version they were
    /// built from and fall back to per-hop routing on mismatch.
    #[inline]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The static route table (shared across the PE's equivalence class).
    #[inline]
    pub fn table(&self) -> &Arc<RouteTable> {
        &self.table
    }

    /// Swaps the static table for a canonical shared copy with identical
    /// content — the fabric's interning hook. Dynamic state is untouched.
    pub fn intern_table(&mut self, canonical: &Arc<RouteTable>) {
        debug_assert_eq!(*self.table, **canonical, "interning must preserve routes");
        self.table = Arc::clone(canonical);
    }

    /// The configuration of a color, if installed, with `current` set to
    /// the *live* switch position.
    pub fn config(&self, color: Color) -> Option<ColorConfig> {
        self.table.configs[color.index()].map(|mut c| {
            c.current = self.current(color.index()) as u8;
            c
        })
    }

    /// The active switch-position index of a color (testing/diagnostics).
    pub fn position_index(&self, color: Color) -> Option<usize> {
        self.table.configs[color.index()].map(|_| self.current(color.index()))
    }

    /// Force-toggles a color's switch position outside the normal control
    /// protocol — the fault injector's model of a spurious configuration
    /// switch. Returns the new position index when the flip had an effect;
    /// `None` (benign) when the color is unconfigured or not switchable.
    pub fn force_toggle(&mut self, color: Color) -> Option<usize> {
        let idx = color.index();
        let cfg = self.table.configs[idx].as_ref()?;
        if cfg.num_positions != 2 {
            return None;
        }
        self.current_bits ^= 1 << idx;
        Some(self.current(idx))
    }

    /// Dynamic per-color switch positions as `(color id, active position)`
    /// pairs for every configured color, in color order — the part of the
    /// router a fabric checkpoint must capture. The configurations
    /// themselves are static program state, reinstalled by program `init`
    /// on the restore target.
    pub fn switch_positions(&self) -> Vec<(u8, u8)> {
        self.table
            .configs
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| (i as u8, self.current(i) as u8)))
            .collect()
    }

    /// Restores the dynamic state captured by [`Router::switch_positions`]
    /// plus the configuration version. Fails when a listed color is
    /// unconfigured on this router or its position index is out of range —
    /// the snapshot belongs to a differently-programmed fabric.
    pub fn restore_dynamic(&mut self, positions: &[(u8, u8)], version: u32) -> Result<(), String> {
        for &(id, current) in positions {
            let cfg = self
                .table
                .configs
                .get(id as usize)
                .and_then(|c| c.as_ref())
                .ok_or_else(|| format!("color {id} is not configured on this router"))?;
            if current >= cfg.num_positions {
                return Err(format!(
                    "color {id}: position {current} out of range ({} configured)",
                    cfg.num_positions
                ));
            }
            self.set_current(id as usize, current);
        }
        self.version = version;
        Ok(())
    }

    /// Routes one wavelet arriving on `input`. Returns the output links.
    /// Pure with respect to traffic accounting: the caller applies
    /// [`RouteOutcome::hop_counts`] to its counter arena.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error if the color is unconfigured or the
    /// active position does not accept the input link — both are program
    /// bugs that real hardware would surface as a hang.
    pub fn route(
        &mut self,
        color: Color,
        input: Direction,
        is_control: bool,
    ) -> Result<RouteOutcome, RouteError> {
        let idx = color.index();
        let cfg = self.table.configs[idx]
            .as_ref()
            .ok_or(RouteError::UnconfiguredColor(color))?;
        let pos = cfg.positions[self.current(idx)];
        if !pos.rx.contains(input) {
            return Err(RouteError::InputNotAccepted {
                color,
                input,
                position: self.current(idx),
            });
        }
        let outputs = pos.tx;
        let fixed = cfg.num_positions == 1;
        let toggled = if is_control {
            if !fixed {
                self.current_bits ^= 1 << idx;
            }
            true
        } else {
            false
        };
        Ok(RouteOutcome {
            outputs,
            toggled,
            position: self.current(idx),
            fixed,
        })
    }
}

/// Routing failure: a misconfigured program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No configuration installed for this color on this router.
    UnconfiguredColor(Color),
    /// The active switch position does not accept this input link.
    InputNotAccepted {
        /// The wavelet's color.
        color: Color,
        /// The link it arrived on.
        input: Direction,
        /// The active switch position index.
        position: usize,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnconfiguredColor(c) => {
                write!(f, "color {} has no route on this router", c.id())
            }
            RouteError::InputNotAccepted {
                color,
                input,
                position,
            } => write!(
                f,
                "color {} (position {position}) does not accept input {input:?}",
                color.id()
            ),
        }
    }
}

impl std::error::Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;
    use Direction::*;

    #[test]
    fn dirmask_basics() {
        let m = DirMask::of(&[North, Ramp]);
        assert!(m.contains(North));
        assert!(m.contains(Ramp));
        assert!(!m.contains(East));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!(DirMask::EMPTY.is_empty());
        let n = m.with(East);
        assert_eq!(n.len(), 3);
        let members: Vec<_> = n.iter().collect();
        assert_eq!(members, vec![North, East, Ramp]);
    }

    #[test]
    fn fixed_route_forwards_to_all_outputs() {
        let mut r = Router::new();
        let c = Color::new(2);
        r.configure(
            c,
            ColorConfig::fixed(RouterPosition::new(
                DirMask::single(Ramp),
                DirMask::of(&[East, West]),
            )),
        );
        let out = r.route(c, Ramp, false).unwrap();
        assert_eq!(out.outputs, DirMask::of(&[East, West]));
        assert!(!out.toggled);
        assert!(out.fixed);
        assert_eq!(out.hop_counts(), (2, 0));
    }

    #[test]
    fn unconfigured_color_errors() {
        let mut r = Router::new();
        let err = r.route(Color::new(5), Ramp, false).unwrap_err();
        assert_eq!(err, RouteError::UnconfiguredColor(Color::new(5)));
        assert!(format!("{err}").contains("no route"));
    }

    #[test]
    fn wrong_input_errors() {
        let mut r = Router::new();
        let c = Color::new(1);
        r.configure(
            c,
            ColorConfig::fixed(RouterPosition::new(
                DirMask::single(Ramp),
                DirMask::single(East),
            )),
        );
        let err = r.route(c, West, false).unwrap_err();
        assert!(matches!(err, RouteError::InputNotAccepted { .. }));
        assert!(format!("{err}").contains("does not accept"));
    }

    #[test]
    fn control_wavelet_toggles_switch_position() {
        // Paper Fig. 6: config 0 = Sending (ramp → east), config 1 =
        // Receiving (west → ramp). A control wavelet flips them.
        let mut r = Router::new();
        let c = Color::new(0);
        let sending = RouterPosition::new(DirMask::single(Ramp), DirMask::single(East));
        let receiving = RouterPosition::new(DirMask::single(West), DirMask::single(Ramp));
        r.configure(c, ColorConfig::switchable(sending, receiving, 0));
        assert_eq!(r.position_index(c), Some(0));

        // data flows ramp → east while in position 0
        let out = r.route(c, Ramp, false).unwrap();
        assert_eq!(out.outputs, DirMask::single(East));
        assert!(!out.fixed);

        // control wavelet is forwarded AND toggles
        let out = r.route(c, Ramp, true).unwrap();
        assert!(out.toggled);
        assert_eq!(out.outputs, DirMask::single(East));
        assert_eq!(r.position_index(c), Some(1));

        // now the router receives from the west instead
        let out = r.route(c, West, false).unwrap();
        assert_eq!(out.outputs, DirMask::single(Ramp));
        assert_eq!(out.hop_counts(), (0, 1));

        // ramp sends are rejected in receive position
        assert!(r.route(c, Ramp, false).is_err());

        // a second control returns to the initial position (involution)
        let _ = r.route(c, West, true).unwrap();
        assert_eq!(r.position_index(c), Some(0));
    }

    #[test]
    fn toggle_is_noop_for_fixed_routes() {
        let mut cfg = ColorConfig::fixed(RouterPosition::new(
            DirMask::single(Ramp),
            DirMask::single(North),
        ));
        let before = cfg.active();
        cfg.toggle();
        assert_eq!(cfg.active(), before);
    }

    #[test]
    fn broadcast_to_four_directions_counts_hops() {
        // The cardinal-exchange send: one wavelet fans to N, E, S, W.
        let mut r = Router::new();
        let c = Color::new(9);
        r.configure(
            c,
            ColorConfig::fixed(RouterPosition::new(
                DirMask::single(Ramp),
                DirMask::of(&[North, East, South, West]),
            )),
        );
        let out = r.route(c, Ramp, false).unwrap();
        assert_eq!(out.outputs.len(), 4);
        assert_eq!(out.hop_counts(), (4, 0));
    }

    #[test]
    fn interning_shares_tables_without_touching_dynamic_state() {
        let sending = RouterPosition::new(DirMask::single(Ramp), DirMask::single(East));
        let receiving = RouterPosition::new(DirMask::single(West), DirMask::single(Ramp));
        let mut a = Router::new();
        let mut b = Router::new();
        let c = Color::new(0);
        a.configure(c, ColorConfig::switchable(sending, receiving, 0));
        b.configure(c, ColorConfig::switchable(sending, receiving, 0));
        // equal content, separate allocations
        assert_eq!(**a.table(), **b.table());
        assert!(!Arc::ptr_eq(a.table(), b.table()));
        // intern b onto a's canonical table
        let canonical = Arc::clone(a.table());
        let _ = b.route(c, Ramp, true).unwrap(); // b toggles first
        b.intern_table(&canonical);
        assert!(Arc::ptr_eq(a.table(), b.table()));
        assert_eq!(b.position_index(c), Some(1), "dynamic state survives");
        assert_eq!(a.position_index(c), Some(0));
        // reconfiguring b un-shares via copy-on-write; a is unaffected
        b.configure(c, ColorConfig::fixed(sending));
        assert!(!Arc::ptr_eq(a.table(), b.table()));
        assert_eq!(a.position_index(c), Some(0));
        assert!(b.config(c).unwrap().is_fixed());
    }

    #[test]
    fn fresh_routers_share_the_empty_table() {
        let a = Router::new();
        let b = Router::new();
        assert!(Arc::ptr_eq(a.table(), b.table()));
        assert!(a.table().is_empty());
    }

    #[test]
    fn configure_bumps_the_version() {
        let mut r = Router::new();
        let v0 = r.version();
        r.configure(
            Color::new(3),
            ColorConfig::fixed(RouterPosition::new(
                DirMask::single(Ramp),
                DirMask::single(East),
            )),
        );
        assert_ne!(r.version(), v0);
        let v1 = r.version();
        // routing and force-toggles do not move the version
        let _ = r.route(Color::new(3), Ramp, false).unwrap();
        let _ = r.force_toggle(Color::new(3));
        assert_eq!(r.version(), v1);
    }
}
