//! The PE programming model: color-activated tasks over private memory.
//!
//! A [`PeProgram`] is the per-PE half of an SPMD fabric program, mirroring
//! the CSL model the paper's implementation is written in: handlers run when
//! a wavelet of some color reaches the PE's ramp, operate on the PE's
//! private memory through DSD vector ops, and send wavelets back into the
//! fabric through the router.

use crate::dsd::{self, Dsd, Operand};
use crate::geometry::{FabricDims, PeCoord};
use crate::memory::{MemRange, OutOfMemory, PeMemory};
use crate::route::{ColorConfig, Router};
use crate::stats::OpCounters;
use crate::wavelet::{Color, Wavelet};
use wse_trace::{PeTracer, TraceRegion};

/// Everything a handler may touch: the PE's own memory, counters, router,
/// and an outbox of wavelets to inject after the handler returns.
pub struct PeContext<'a> {
    /// This PE's fabric coordinate.
    pub coord: PeCoord,
    /// Fabric dimensions (for boundary awareness).
    pub dims: FabricDims,
    /// The PE's private memory.
    pub memory: &'a mut PeMemory,
    /// The PE's instruction counters.
    pub counters: &'a mut OpCounters,
    /// The PE's trace sink — a no-op unless tracing is enabled in
    /// [`crate::fabric::FabricConfig::trace`]. DSD ops record through it;
    /// pass it to [`crate::dsd`] free functions called directly.
    pub tracer: &'a mut PeTracer,
    router: &'a mut Router,
    outbox: &'a mut Vec<Wavelet>,
    activations: &'a mut Vec<(Color, u32)>,
}

impl<'a> PeContext<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        coord: PeCoord,
        dims: FabricDims,
        memory: &'a mut PeMemory,
        counters: &'a mut OpCounters,
        tracer: &'a mut PeTracer,
        router: &'a mut Router,
        outbox: &'a mut Vec<Wavelet>,
        activations: &'a mut Vec<(Color, u32)>,
    ) -> Self {
        Self {
            coord,
            dims,
            memory,
            counters,
            tracer,
            router,
            outbox,
            activations,
        }
    }

    /// Installs a router configuration for `color` (program-load time).
    pub fn configure_color(&mut self, color: Color, config: ColorConfig) {
        self.router.configure(color, config);
    }

    /// The active switch position of `color` on this PE's router.
    pub fn switch_position(&self, color: Color) -> Option<usize> {
        self.router.position_index(color)
    }

    /// Allocates PE memory (panics on exhaustion with a clear message — a
    /// program that overflows its scratchpad is a bug, like on hardware).
    pub fn alloc(&mut self, len: usize) -> MemRange {
        match self.memory.alloc(len) {
            Ok(r) => r,
            Err(OutOfMemory {
                requested,
                available,
            }) => panic!(
                "PE ({}, {}): out of local memory (requested {requested} words, \
                 {available} available of {})",
                self.coord.col,
                self.coord.row,
                self.memory.capacity_words()
            ),
        }
    }

    /// Sends one data wavelet into the fabric through this PE's router.
    pub fn send_f32(&mut self, color: Color, value: f32) {
        self.outbox.push(Wavelet::data_f32(color, value));
    }

    /// Sends a whole memory vector as consecutive wavelets (an FMOV-out
    /// per element, with fabric-traffic accounting).
    pub fn send_vector(&mut self, color: Color, src: Dsd) {
        let values = dsd::fmov_send(self.memory, self.counters, self.tracer, src);
        for v in values {
            self.outbox.push(Wavelet::data_f32(color, v));
        }
    }

    /// Sends a control wavelet (toggles switch positions along its route).
    pub fn send_control(&mut self, color: Color, payload: u32) {
        self.outbox.push(Wavelet::control(color, payload));
    }

    /// Activates a local task: the handler for `color` runs on this PE
    /// without touching the fabric (CSL's local task activation).
    pub fn activate(&mut self, color: Color, payload: u32) {
        self.activations.push((color, payload));
    }

    /// Stores a received wavelet payload (FMOV-in accounting).
    pub fn recv_store(&mut self, addr: usize, value: f32) {
        dsd::fmov_recv(self.memory, self.counters, self.tracer, addr, value);
    }

    /// Opens a named profiling region, timestamped from the PE's current
    /// cycle counter. A no-op (single predicted branch) with tracing off;
    /// region markers are recorded inside the task handler, so they land in
    /// the per-PE stream identically on both engines.
    pub fn region_begin(&mut self, region: TraceRegion) {
        self.tracer.region_begin(self.counters.cycles(), region);
    }

    /// Closes the matching profiling region (see
    /// [`PeContext::region_begin`]).
    pub fn region_end(&mut self, region: TraceRegion) {
        self.tracer.region_end(self.counters.cycles(), region);
    }

    // --- vector-op sugar, delegating to the DSD engine ------------------

    /// `dst = a * b`.
    pub fn fmuls(&mut self, dst: Dsd, a: Operand, b: Operand) {
        dsd::fmuls(self.memory, self.counters, self.tracer, dst, a, b);
    }

    /// `dst = a * H(gate > 0)` — predicated multiply (upwind selection).
    pub fn fmuls_gate(&mut self, dst: Dsd, a: Operand, gate: Operand) {
        dsd::fmuls_gate(self.memory, self.counters, self.tracer, dst, a, gate);
    }

    /// `dst = a - b`.
    pub fn fsubs(&mut self, dst: Dsd, a: Operand, b: Operand) {
        dsd::fsubs(self.memory, self.counters, self.tracer, dst, a, b);
    }

    /// `dst = a + b`.
    pub fn fadds(&mut self, dst: Dsd, a: Operand, b: Operand) {
        dsd::fadds(self.memory, self.counters, self.tracer, dst, a, b);
    }

    /// `dst += a * b`.
    pub fn fmacs(&mut self, dst: Dsd, a: Operand, b: Operand) {
        dsd::fmacs(self.memory, self.counters, self.tracer, dst, a, b);
    }

    /// `dst = -a`.
    pub fn fnegs(&mut self, dst: Dsd, a: Operand) {
        dsd::fnegs(self.memory, self.counters, self.tracer, dst, a);
    }

    /// Vector EOS density evaluation (Eq. 5) — outside Table-4 accounting.
    pub fn eos_density(&mut self, dst: Dsd, p: Dsd, rho_ref: f32, c_f: f32, p_ref: f32) {
        dsd::eos_density(
            self.memory,
            self.counters,
            self.tracer,
            dst,
            p,
            rho_ref,
            c_f,
            p_ref,
        );
    }
}

/// The per-PE half of an SPMD fabric program.
///
/// One instance exists per PE (constructed by the program factory passed to
/// [`crate::fabric::Fabric::new`]). Handlers must be deterministic; all
/// cross-PE communication goes through wavelets.
pub trait PeProgram: Send {
    /// Runs once at load time: allocate memory, configure router colors.
    fn init(&mut self, ctx: &mut PeContext);

    /// A data wavelet of some color reached this PE's ramp (either from the
    /// fabric or via local activation).
    fn on_data(&mut self, ctx: &mut PeContext, wavelet: Wavelet);

    /// A control wavelet reached this PE's ramp (after toggling the routers
    /// on its path, including this PE's).
    fn on_control(&mut self, ctx: &mut PeContext, wavelet: Wavelet) {
        let _ = (ctx, wavelet);
    }

    /// A monotone progress counter, if the program tracks one (e.g. the
    /// number of completed iterations). The host-side progress watchdog
    /// compares this across PEs after a run to localize silent stalls —
    /// a PE whose counter lags its peers lost wavelets to a fault.
    fn progress(&self) -> Option<u64> {
        None
    }

    /// Serializes the program's *dynamic* state for a fabric checkpoint —
    /// everything that changes after `init` (protocol cursors, progress
    /// counters). Static structure (allocations, router configuration) is
    /// reproduced by re-running `init` on the restore target and must not
    /// be included. The default empty encoding is correct for stateless
    /// programs.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state produced by [`PeProgram::save_state`] onto a freshly
    /// initialized instance of the same program. Implementations must
    /// reject malformed input with an error (the checkpoint is then refused
    /// as a whole) rather than silently diverging.
    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err("program has no dynamic state to restore".to_string())
        }
    }
}
