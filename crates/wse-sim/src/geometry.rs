//! Fabric geometry: PE coordinates, link directions, fabric dimensions.

use serde::{Deserialize, Serialize};

/// One of a router's five full-duplex links (paper §4: "The router manages
/// five full duplex links").
///
/// North/East/South/West connect to neighboring routers; `Ramp` connects a
/// router to its own PE. Fabric "north" is decreasing row index, matching
/// the paper's convention that a PE's northbound neighbor holds cell
/// `(x, y − 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    /// Toward row − 1.
    North = 0,
    /// Toward col + 1.
    East = 1,
    /// Toward row + 1.
    South = 2,
    /// Toward col − 1.
    West = 3,
    /// The PE ↔ router link.
    Ramp = 4,
}

/// The four fabric directions (everything but the ramp).
pub const CARDINALS: [Direction; 4] = [
    Direction::North,
    Direction::East,
    Direction::South,
    Direction::West,
];

impl Direction {
    /// The direction a wavelet sent this way *arrives from* at the neighbor:
    /// a wavelet sent East is received on the neighbor's West link.
    #[inline]
    pub fn arrival_side(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::Ramp => Direction::Ramp,
        }
    }

    /// Column/row offset of the neighboring router along this link.
    #[inline]
    pub fn offset(self) -> (i64, i64) {
        match self {
            Direction::North => (0, -1),
            Direction::East => (1, 0),
            Direction::South => (0, 1),
            Direction::West => (-1, 0),
            Direction::Ramp => (0, 0),
        }
    }

    /// Small index in `0..5` for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Position of a PE on the fabric: `(col, row)` = the paper's `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeCoord {
    /// Column (the paper's `x`).
    pub col: usize,
    /// Row (the paper's `y`).
    pub row: usize,
}

impl PeCoord {
    /// Creates a coordinate.
    pub fn new(col: usize, row: usize) -> Self {
        Self { col, row }
    }
}

/// Fabric dimensions in PEs.
///
/// The full WSE-2 exposes a usable region of 750 × 994 PEs to the SDK
/// (paper §7.1); simulations typically use much smaller fabrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FabricDims {
    /// Number of columns.
    pub cols: usize,
    /// Number of rows.
    pub rows: usize,
}

/// The usable fabric size of a CS-2 as reported in the paper's §7.1.
pub const CS2_MAX_FABRIC: FabricDims = FabricDims {
    cols: 750,
    rows: 994,
};

impl FabricDims {
    /// Creates fabric dimensions; both axes must be ≥ 1.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols >= 1 && rows >= 1, "fabric must be at least 1×1");
        Self { cols, rows }
    }

    /// Total PE count.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.cols * self.rows
    }

    /// Linear index of a coordinate (column innermost).
    #[inline]
    pub fn linear(&self, c: PeCoord) -> usize {
        debug_assert!(c.col < self.cols && c.row < self.rows);
        c.row * self.cols + c.col
    }

    /// Inverse of [`FabricDims::linear`].
    #[inline]
    pub fn coord(&self, idx: usize) -> PeCoord {
        debug_assert!(idx < self.num_pes());
        PeCoord {
            col: idx % self.cols,
            row: idx / self.cols,
        }
    }

    /// The neighboring coordinate along `dir`, or `None` at the fabric edge.
    #[inline]
    pub fn neighbor(&self, c: PeCoord, dir: Direction) -> Option<PeCoord> {
        let (dc, dr) = dir.offset();
        if dir == Direction::Ramp {
            return Some(c);
        }
        let col = c.col as i64 + dc;
        let row = c.row as i64 + dr;
        if col < 0 || row < 0 || col >= self.cols as i64 || row >= self.rows as i64 {
            None
        } else {
            Some(PeCoord::new(col as usize, row as usize))
        }
    }

    /// Iterates over all coordinates, row-major (column innermost).
    pub fn iter(&self) -> impl Iterator<Item = PeCoord> + '_ {
        (0..self.num_pes()).map(move |i| self.coord(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_side_is_opposite() {
        assert_eq!(Direction::East.arrival_side(), Direction::West);
        assert_eq!(Direction::North.arrival_side(), Direction::South);
        assert_eq!(Direction::Ramp.arrival_side(), Direction::Ramp);
        for d in CARDINALS {
            assert_eq!(d.arrival_side().arrival_side(), d);
        }
    }

    #[test]
    fn offsets_match_paper_convention() {
        // northbound neighbor holds (x, y−1)
        assert_eq!(Direction::North.offset(), (0, -1));
        assert_eq!(Direction::East.offset(), (1, 0));
    }

    #[test]
    fn linear_roundtrip() {
        let d = FabricDims::new(5, 3);
        for i in 0..d.num_pes() {
            assert_eq!(d.linear(d.coord(i)), i);
        }
        assert_eq!(d.num_pes(), 15);
    }

    #[test]
    fn neighbors_clip_at_edges() {
        let d = FabricDims::new(3, 3);
        let corner = PeCoord::new(0, 0);
        assert_eq!(d.neighbor(corner, Direction::North), None);
        assert_eq!(d.neighbor(corner, Direction::West), None);
        assert_eq!(
            d.neighbor(corner, Direction::East),
            Some(PeCoord::new(1, 0))
        );
        assert_eq!(
            d.neighbor(corner, Direction::South),
            Some(PeCoord::new(0, 1))
        );
        assert_eq!(d.neighbor(corner, Direction::Ramp), Some(corner));
    }

    #[test]
    fn iter_covers_fabric_once() {
        let d = FabricDims::new(4, 2);
        let v: Vec<_> = d.iter().collect();
        assert_eq!(v.len(), 8);
        assert_eq!(v[0], PeCoord::new(0, 0));
        assert_eq!(v[1], PeCoord::new(1, 0)); // column innermost
        assert_eq!(v[7], PeCoord::new(3, 1));
    }

    #[test]
    fn cs2_fabric_matches_paper() {
        assert_eq!(CS2_MAX_FABRIC.num_pes(), 745_500);
    }

    #[test]
    #[should_panic]
    fn zero_fabric_rejected() {
        let _ = FabricDims::new(0, 3);
    }
}
