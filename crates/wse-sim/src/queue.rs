//! Event queues for the discrete-event engines.
//!
//! Both fabric engines pop events in the strict key order `(time, seq,
//! src)`. The reference container is a [`BinaryHeap`] of reversed items
//! ([`HeapQueue`]), which costs O(log n) per hop. Fabric event times are
//! integer cycles and overwhelmingly near-term (`hop_latency`-quantized),
//! so the production container is a **bucketed calendar queue**
//! ([`CalendarQueue`]): a power-of-two ring of one-cycle buckets with an
//! occupancy bitmap gives O(1) push and near-O(1) pop, while an overflow
//! heap absorbs far-future items (fault schedules, saturated near-
//! `u64::MAX` times). Same-cycle ties land in the same bucket, which stays
//! unsorted until its cycle is reached and is then sorted once — restoring
//! the full key order, so the pop sequence is *identical* to the reference
//! heap's (asserted by `tests/queue_properties.rs`).
//!
//! Both containers implement [`EventQueue`], which is what the engines
//! program against.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Items a queue can order by simulated time. The full `Ord` on the item
/// breaks same-time ties (the fabric uses `(time, seq, src)`).
pub trait Timestamped {
    /// The item's simulated time in cycles.
    fn time(&self) -> u64;
}

/// A min-queue over [`Timestamped`] items, popped in full `Ord` order.
///
/// Contract: after the first pop, pushed items must not be earlier than the
/// last popped time (simulated time never rewinds while events are
/// pending). Pushing earlier items is only supported while the queue is
/// empty — the fabric re-seeds queues between runs this way.
pub trait EventQueue<T: Timestamped + Ord> {
    /// Inserts an item.
    fn push(&mut self, item: T);
    /// Removes and returns the minimum item.
    fn pop(&mut self) -> Option<T>;
    /// Removes and returns the minimum item only if its time is strictly
    /// before `bound` (the sharded engine's window test).
    fn pop_before(&mut self, bound: u64) -> Option<T>;
    /// The minimum pending time, if any.
    fn next_time(&self) -> Option<u64>;
    /// Number of pending items.
    fn len(&self) -> usize;
    /// True when nothing is pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Removes all items in no particular order.
    fn drain_unordered(&mut self) -> Vec<T>;
}

/// The reference queue: a binary heap of reversed items.
#[derive(Debug, Default)]
pub struct HeapQueue<T: Ord> {
    heap: BinaryHeap<Reverse<T>>,
}

impl<T: Ord> HeapQueue<T> {
    /// An empty heap queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T: Timestamped + Ord> EventQueue<T> for HeapQueue<T> {
    fn push(&mut self, item: T) {
        self.heap.push(Reverse(item));
    }

    fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn pop_before(&mut self, bound: u64) -> Option<T> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.time() < bound => self.pop(),
            _ => None,
        }
    }

    fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time())
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn drain_unordered(&mut self) -> Vec<T> {
        self.heap.drain().map(|Reverse(e)| e).collect()
    }
}

/// Ring size in buckets (one bucket per cycle). Power of two so the
/// time→bucket map is a mask. 1024 cycles of lookahead covers every
/// near-term event the fabric produces (hops are `hop_latency ≈ 1` ahead,
/// task ends at most a few hundred cycles ahead); anything later waits in
/// the overflow heap and migrates in as the cursor advances.
const RING_BUCKETS: usize = 1024;
const RING_MASK: u64 = (RING_BUCKETS - 1) as u64;
const BITMAP_WORDS: usize = RING_BUCKETS / 64;

/// A bucketed calendar queue: O(1) push, near-O(1) pop, identical pop
/// order to [`HeapQueue`]. See the module docs.
///
/// Lockstep workloads concentrate thousands of events into a handful of
/// cycles, so per-bucket ordering is the real cost. Buckets are therefore
/// *unsorted* `Vec`s — a push is a plain append — and a bucket is sorted
/// exactly once, when the cursor reaches its cycle and it becomes the
/// *drain*: a descending `Vec` popped from the tail. Items pushed for the
/// cycle currently being drained (routing emits same-cycle ramp
/// deliveries) go to a small `side` min-heap, and each pop takes the
/// smaller of the drain tail and the side head, which is exactly the
/// global minimum. Pending keys are unique (see the fabric's key
/// discussion), so the unstable sort is deterministic.
pub struct CalendarQueue<T: Ord> {
    /// One bucket per cycle in `[cursor, horizon)`; bucket `t & RING_MASK`
    /// holds the ring-resident items of time `t`, unsorted.
    buckets: Vec<Vec<T>>,
    /// Occupancy bitmap over `buckets` (bit = bucket non-empty).
    occupied: [u64; BITMAP_WORDS],
    /// All ring-resident items have time in `(cursor, horizon)`; all
    /// overflow items have time ≥ horizon, where
    /// `horizon = cursor.saturating_add(RING_BUCKETS)`; all drain/side
    /// items have time = cursor exactly.
    cursor: u64,
    /// Items too far in the future for the ring.
    overflow: BinaryHeap<Reverse<T>>,
    /// Items in `buckets` (excludes drain/side).
    ring_len: usize,
    /// The active cycle's items, sorted descending (pop = `Vec::pop`).
    /// All have time = `cursor`.
    drain: Vec<T>,
    /// Items pushed *for* the active cycle *during* its drain.
    side: BinaryHeap<Reverse<T>>,
}

impl<T: Timestamped + Ord> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Timestamped + Ord> CalendarQueue<T> {
    /// An empty calendar queue with its cursor at time 0.
    pub fn new() -> Self {
        Self {
            buckets: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            cursor: 0,
            overflow: BinaryHeap::new(),
            ring_len: 0,
            drain: Vec::new(),
            side: BinaryHeap::new(),
        }
    }

    #[inline]
    fn horizon(&self) -> u64 {
        self.cursor.saturating_add(RING_BUCKETS as u64)
    }

    #[inline]
    fn bucket_push(&mut self, item: T) {
        let b = (item.time() & RING_MASK) as usize;
        self.buckets[b].push(item);
        self.occupied[b / 64] |= 1 << (b % 64);
        self.ring_len += 1;
    }

    #[inline]
    fn active_len(&self) -> usize {
        self.drain.len() + self.side.len()
    }

    /// Items currently resident in the near-term ring (buckets plus the
    /// active drain), i.e. everything scheduled before the horizon.
    /// Telemetry only — does not affect scheduling order.
    pub fn ring_occupancy(&self) -> usize {
        self.ring_len + self.active_len()
    }

    /// Items parked in the far-future overflow heap (time ≥ horizon).
    /// Telemetry only — does not affect scheduling order.
    pub fn overflow_occupancy(&self) -> usize {
        self.overflow.len()
    }

    /// The smallest ring-resident time, via a circular bitmap scan from the
    /// cursor's bucket. Ring times live in `[cursor, horizon)`, so the
    /// circular distance from the cursor bucket recovers the absolute time.
    fn next_ring_time(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return None;
        }
        let start = (self.cursor & RING_MASK) as usize;
        let (w0, b0) = (start / 64, start % 64);
        let first = self.occupied[w0] & (!0u64 << b0);
        let found = if first != 0 {
            w0 * 64 + first.trailing_zeros() as usize
        } else {
            let mut found = None;
            for i in 1..=BITMAP_WORDS {
                let w = (w0 + i) % BITMAP_WORDS;
                let bits = if i == BITMAP_WORDS {
                    // back to the first word: only the wrapped-around low bits
                    self.occupied[w0] & !(!0u64 << b0)
                } else {
                    self.occupied[w]
                };
                if bits != 0 {
                    found = Some(w * 64 + bits.trailing_zeros() as usize);
                    break;
                }
            }
            found?
        };
        let dist = (found + RING_BUCKETS - start) % RING_BUCKETS;
        Some(self.cursor + dist as u64)
    }

    /// Makes cycle `t` the active drain: moves the cursor there, migrates
    /// newly near-term overflow items, then sorts `t`'s bucket descending
    /// into `drain`. The previous drain must be exhausted.
    fn activate(&mut self, t: u64) {
        debug_assert!(self.active_len() == 0);
        debug_assert!(t >= self.cursor);
        self.cursor = t;
        let horizon = self.horizon();
        while self
            .overflow
            .peek()
            .is_some_and(|Reverse(e)| e.time() < horizon)
        {
            let Reverse(e) = self.overflow.pop().unwrap();
            self.bucket_push(e);
        }
        let b = (t & RING_MASK) as usize;
        if self.buckets[b].is_empty() {
            return; // t's items are all in the saturated overflow
        }
        // Reuse the exhausted drain's capacity for the next cycles' pushes.
        std::mem::swap(&mut self.buckets[b], &mut self.drain);
        self.occupied[b / 64] &= !(1 << (b % 64));
        self.ring_len -= self.drain.len();
        self.drain.sort_unstable_by(|a, b| b.cmp(a));
    }

    /// Empties the ring and the active drain back into the overflow heap
    /// and restarts the window at `t` — the rare out-of-contract push (time
    /// before the cursor while items are pending, e.g. re-seeding a queue
    /// in arbitrary order).
    fn rebase(&mut self, t: u64) {
        for b in 0..RING_BUCKETS {
            for item in self.buckets[b].drain(..) {
                self.overflow.push(Reverse(item));
            }
        }
        for item in self.drain.drain(..) {
            self.overflow.push(Reverse(item));
        }
        self.overflow.append(&mut self.side);
        self.occupied = [0; BITMAP_WORDS];
        self.ring_len = 0;
        self.cursor = t;
        let horizon = self.horizon();
        while self
            .overflow
            .peek()
            .is_some_and(|Reverse(e)| e.time() < horizon)
        {
            let Reverse(e) = self.overflow.pop().unwrap();
            self.bucket_push(e);
        }
    }

    /// Visits every pending item, in no particular order. The lookahead
    /// engine's stall-time scan uses this to compute exact per-link
    /// earliest-output bounds without disturbing the queue.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buckets
            .iter()
            .flatten()
            .chain(self.drain.iter())
            .chain(self.side.iter().map(|Reverse(e)| e))
            .chain(self.overflow.iter().map(|Reverse(e)| e))
    }

    /// Bulk insertion: moves every item of `batch` into the queue (clearing
    /// `batch` but keeping its capacity). Within the ring horizon each item
    /// is a plain O(1) bucket append — the sharded engine injects whole
    /// cross-shard mailbox batches this way instead of one heap push at a
    /// time.
    pub fn append_batch(&mut self, batch: &mut Vec<T>) {
        for item in batch.drain(..) {
            self.push(item);
        }
    }

    fn pop_min(&mut self) -> Option<T> {
        // The active cycle is at the cursor — nothing pending is earlier.
        match (self.drain.last(), self.side.peek()) {
            (Some(d), Some(Reverse(s))) => {
                return if d <= s {
                    self.drain.pop()
                } else {
                    self.side.pop().map(|Reverse(e)| e)
                };
            }
            (Some(_), None) => return self.drain.pop(),
            (None, Some(_)) => return self.side.pop().map(|Reverse(e)| e),
            (None, None) => {}
        }
        let t_ring = self.next_ring_time();
        let t_over = self.overflow.peek().map(|Reverse(e)| e.time());
        let t = match (t_ring, t_over) {
            (Some(r), _) => r, // overflow times ≥ horizon > every ring time
            (None, Some(o)) => o,
            (None, None) => return None,
        };
        if t < self.horizon() {
            self.activate(t);
            self.drain.pop()
        } else {
            // The horizon is saturated at u64::MAX and so is `t`: the item
            // can never migrate into the ring — pop it from the overflow.
            self.overflow.pop().map(|Reverse(e)| e)
        }
    }
}

impl<T: Timestamped + Ord> EventQueue<T> for CalendarQueue<T> {
    fn push(&mut self, item: T) {
        let t = item.time();
        if t == self.cursor && self.active_len() > 0 {
            // A push for the cycle currently being drained.
            self.side.push(Reverse(item));
            return;
        }
        if self.len() == 0 {
            // An empty queue re-anchors its window at the pushed time, in
            // *both* directions. Anchoring forward matters as much as
            // backward: a queue built mid-simulation (the sharded engine
            // seeds fresh per-shard queues from a fabric whose clock is
            // already past `RING_BUCKETS`) would otherwise leave the cursor
            // at 0 forever, never activate a ring cycle, and silently
            // degenerate into its O(log n) overflow heap.
            self.cursor = t;
        } else if t < self.cursor {
            self.rebase(t);
        }
        if t < self.horizon() {
            self.bucket_push(item);
        } else {
            self.overflow.push(Reverse(item));
        }
    }

    fn pop(&mut self) -> Option<T> {
        self.pop_min()
    }

    fn pop_before(&mut self, bound: u64) -> Option<T> {
        match self.next_time() {
            Some(t) if t < bound => self.pop_min(),
            _ => None,
        }
    }

    fn next_time(&self) -> Option<u64> {
        if self.active_len() > 0 {
            return Some(self.cursor);
        }
        match (
            self.next_ring_time(),
            self.overflow.peek().map(|Reverse(e)| e.time()),
        ) {
            (Some(r), _) => Some(r),
            (None, o) => o,
        }
    }

    fn len(&self) -> usize {
        self.ring_len + self.overflow.len() + self.active_len()
    }

    fn drain_unordered(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for b in 0..RING_BUCKETS {
            out.append(&mut self.buckets[b]);
        }
        out.append(&mut self.drain);
        out.extend(self.side.drain().map(|Reverse(e)| e));
        self.occupied = [0; BITMAP_WORDS];
        self.ring_len = 0;
        out.extend(self.overflow.drain().map(|Reverse(e)| e));
        out
    }
}

/// Advances a simulated time by a delta, saturating at `u64::MAX` instead
/// of wrapping — the single overflow policy for every time computation in
/// the fabric (hop advancement, ramp injection offsets, busy horizons, BSP
/// window ends). Fault schedules may place events arbitrarily late, so
/// saturation is reachable, and both engines must agree on it.
#[inline]
pub fn advance_time(t: u64, dt: u64) -> u64 {
    t.saturating_add(dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Item(u64, u64);

    impl Timestamped for Item {
        fn time(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn pops_in_time_then_tie_order() {
        let mut q = CalendarQueue::new();
        for it in [Item(5, 1), Item(3, 2), Item(5, 0), Item(3, 1)] {
            q.push(it);
        }
        let popped: Vec<Item> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped, vec![Item(3, 1), Item(3, 2), Item(5, 0), Item(5, 1)]);
    }

    #[test]
    fn far_future_items_migrate_from_overflow() {
        let mut q = CalendarQueue::new();
        q.push(Item(0, 0));
        let far = 10 * RING_BUCKETS as u64;
        q.push(Item(far + 3, 0));
        q.push(Item(far, 0));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(Item(0, 0)));
        assert_eq!(q.pop(), Some(Item(far, 0)));
        assert_eq!(q.pop(), Some(Item(far + 3, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn saturated_times_pop_from_overflow() {
        let mut q = CalendarQueue::new();
        q.push(Item(u64::MAX, 1));
        q.push(Item(u64::MAX, 0));
        q.push(Item(u64::MAX - 3, 0));
        assert_eq!(q.pop(), Some(Item(u64::MAX - 3, 0)));
        assert_eq!(q.pop(), Some(Item(u64::MAX, 0)));
        assert_eq!(q.pop(), Some(Item(u64::MAX, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn empty_queue_accepts_earlier_times() {
        let mut q = CalendarQueue::new();
        q.push(Item(500, 0));
        assert_eq!(q.pop(), Some(Item(500, 0)));
        q.push(Item(10, 0)); // empty: the cursor rewinds
        assert_eq!(q.pop(), Some(Item(10, 0)));
    }

    #[test]
    fn out_of_contract_push_rebases() {
        let mut q = CalendarQueue::new();
        q.push(Item(900, 0));
        assert_eq!(q.pop(), Some(Item(900, 0)));
        q.push(Item(1000, 0));
        // 1000 and 80 are RING_BUCKETS apart modulo the ring minus 96 —
        // distinct buckets either way; what matters is the cursor rewind
        // with items pending, which forces a rebase.
        q.push(Item(80, 0));
        assert_eq!(q.pop(), Some(Item(80, 0)));
        assert_eq!(q.pop(), Some(Item(1000, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn empty_queue_anchors_forward_into_the_ring() {
        // A queue first used when the clock is already far past
        // RING_BUCKETS (the sharded engine seeds fresh per-shard queues
        // mid-simulation) must anchor its window at the pushed time and
        // stay ring-resident — not leave the cursor at 0 and degenerate
        // into the overflow heap.
        let mut q = CalendarQueue::new();
        let late = 40 * RING_BUCKETS as u64 + 7;
        q.push(Item(late + 2, 0));
        q.push(Item(late, 0));
        q.push(Item(late + 1, 0));
        assert_eq!(
            q.overflow.len(),
            0,
            "near-term pushes must stay in the ring"
        );
        assert_eq!(q.pop(), Some(Item(late, 0)));
        assert_eq!(q.pop(), Some(Item(late + 1, 0)));
        assert_eq!(q.pop(), Some(Item(late + 2, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_before_respects_bound() {
        let mut q = CalendarQueue::new();
        q.push(Item(4, 0));
        q.push(Item(9, 0));
        assert_eq!(q.pop_before(5), Some(Item(4, 0)));
        assert_eq!(q.pop_before(5), None);
        assert_eq!(q.next_time(), Some(9));
        assert_eq!(q.pop_before(10), Some(Item(9, 0)));
        assert!(q.is_empty());
    }

    #[test]
    fn advance_time_saturates() {
        assert_eq!(advance_time(5, 3), 8);
        assert_eq!(advance_time(u64::MAX - 1, 5), u64::MAX);
        assert_eq!(advance_time(u64::MAX, u64::MAX), u64::MAX);
    }
}
